// End-host path construction: combining up-/down-segments (plus peering and
// agreement crossings) into end-to-end AS-level paths.
//
// This is where PANs differ from BGP: the *source* composes the forwarding
// path and embeds it in packet headers, so GRC-violating crossings enabled
// by mutuality-based agreements (§III-B) are simply additional authorized
// ways to join two segments - no convergence question arises.
//
// All adjacency/role queries run on a CompiledTopology (CSR) snapshot
// compiled at construction, and candidate validation goes through the
// shared paths::PathEnumerator. enumerate_authorized() additionally
// exposes the agreement-crossing rule as a step policy on the same engine:
// an exhaustive DFS ground truth for the segment-join construction.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "panagree/pan/beaconing.hpp"
#include "panagree/pan/segment.hpp"
#include "panagree/paths/enumerator.hpp"
#include "panagree/topology/compiled.hpp"

namespace panagree::pan {

/// An authorized GRC-violating crossing created by an interconnection
/// agreement: at AS `at`, traffic arriving from `from` may be forwarded to
/// `to` even though neither is a customer of `at`. If `allowed_sources` is
/// non-empty, only paths originating at one of those ASes may use the
/// crossing (§III-B3: parties extend agreement paths to their customers
/// only).
struct Crossing {
  AsId at = topology::kInvalidAs;
  AsId from = topology::kInvalidAs;
  AsId to = topology::kInvalidAs;
  std::set<AsId> allowed_sources;

  friend auto operator<=>(const Crossing&, const Crossing&) = default;
};

/// Registry of authorized crossings (populated from concluded agreements).
class CrossingRegistry {
 public:
  void add(Crossing crossing);

  /// True iff traffic of `source` may cross at `at` from `from` to `to`.
  [[nodiscard]] bool allows(AsId source, AsId at, AsId from, AsId to) const;

  [[nodiscard]] const std::vector<Crossing>& crossings() const {
    return crossings_;
  }

 private:
  std::vector<Crossing> crossings_;
};

/// Step policy for the shared engine: valley-free steps, plus any step
/// authorized by a crossing registry (which re-opens no climbing right -
/// after a crossing the walk descends). Used by
/// PathConstructor::enumerate_authorized.
class CrossingStep {
 public:
  using State = paths::WalkPhase;

  explicit CrossingStep(const CrossingRegistry* crossings)
      : crossings_(crossings) {}

  [[nodiscard]] State initial_state() const {
    return paths::WalkPhase::kClimbing;
  }

  [[nodiscard]] bool allowed(const paths::Step& step, State state,
                             State& next_state) const {
    if (paths::ValleyFreeStep{}.allowed(step, state, next_state)) {
      return true;
    }
    if (crossings_ != nullptr && step.prev != topology::kInvalidAs &&
        crossings_->allows(step.source, step.cur, step.prev, step.next)) {
      next_state = paths::WalkPhase::kDescending;
      return true;
    }
    return false;
  }

 private:
  const CrossingRegistry* crossings_;
};

struct PathConstructionOptions {
  std::size_t max_paths = 32;
  std::size_t max_path_length = 10;
};

/// Constructs end-to-end AS paths from beacon segments.
class PathConstructor {
 public:
  PathConstructor(const Graph& graph, const BeaconService& beacons,
                  PathConstructionOptions options = {});

  /// Candidate simple AS paths src -> dst, shortest first:
  ///  * up(src) joined with down(dst) at a shared AS (including core),
  ///  * peering shortcut between an AS on up(src) and one on down(dst),
  ///  * agreement crossings from `crossings` (GRC-violating shortcuts).
  [[nodiscard]] std::vector<std::vector<AsId>> construct(
      AsId src, AsId dst, const CrossingRegistry* crossings = nullptr) const;

  /// Exhaustive DFS over the shared engine: all simple paths src -> dst of
  /// at most `max_len` ASes (0 = the constructor's max_path_length) that
  /// are valley-free except for authorized crossings, sorted
  /// shortest-first. With the default bound, every construct() candidate
  /// is a member (segment joins are valley-free walks; crossing splices
  /// are crossing steps), so this is the ground-truth superset for tests
  /// and small-topology studies. Cost is exponential in max_len.
  [[nodiscard]] std::vector<std::vector<AsId>> enumerate_authorized(
      AsId src, AsId dst, const CrossingRegistry* crossings = nullptr,
      std::size_t max_len = 0) const;

 private:
  void add_candidate(std::vector<std::vector<AsId>>& out,
                     std::vector<AsId> path) const;

  // No PathEnumerator member: it holds a pointer to compiled_, which would
  // dangle under the implicit copy/move; methods build one locally (free).
  topology::CompiledTopology compiled_;
  const BeaconService* beacons_;
  PathConstructionOptions options_;
};

/// True iff the path visits no AS twice.
[[nodiscard]] bool is_simple_path(const std::vector<AsId>& path);

}  // namespace panagree::pan
