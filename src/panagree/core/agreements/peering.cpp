#include "panagree/core/agreements/peering.hpp"

#include <algorithm>

namespace panagree::agreements {

Agreement make_classic_peering(const Graph& graph, AsId x, AsId y) {
  util::require(x < graph.num_ases() && y < graph.num_ases(),
                "make_classic_peering: AS out of range");
  util::require(x != y, "make_classic_peering: parties must differ");
  Agreement a;
  a.grant_x.grantor = x;
  a.grant_y.grantor = y;
  for (const AsId c : graph.customers(x)) {
    if (c != y) {
      a.grant_x.customers.push_back(c);
    }
  }
  for (const AsId c : graph.customers(y)) {
    if (c != x) {
      a.grant_y.customers.push_back(c);
    }
  }
  std::sort(a.grant_x.customers.begin(), a.grant_x.customers.end());
  std::sort(a.grant_y.customers.begin(), a.grant_y.customers.end());
  return a;
}

}  // namespace panagree::agreements
