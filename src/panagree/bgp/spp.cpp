#include "panagree/bgp/spp.hpp"

#include <algorithm>
#include <limits>
#include <set>

namespace panagree::bgp {

SppInstance::SppInstance(std::size_t num_nodes, AsId origin)
    : origin_(origin), runs_(num_nodes) {
  util::require(origin < num_nodes, "SppInstance: origin out of range");
  // The origin owns exactly its trivial path.
  pool_.push_back(origin);
  slices_.push_back(pool_.slice_of(0));
  runs_[origin] = Run{0, 1};
}

void SppInstance::set_permitted(AsId node, std::vector<Path> ranked) {
  util::require(node < runs_.size(), "set_permitted: node out of range");
  util::require(node != origin_,
                "set_permitted: the origin's path is fixed to itself");
  for (const Path& p : ranked) {
    util::require(!p.empty() && p.front() == node,
                  "set_permitted: path must start at the owning node");
    util::require(p.back() == origin_,
                  "set_permitted: path must end at the origin");
    std::set<AsId> seen(p.begin(), p.end());
    util::require(seen.size() == p.size(),
                  "set_permitted: path must be simple");
  }
  util::require(slices_.size() + ranked.size() <
                    std::numeric_limits<std::uint32_t>::max(),
                "set_permitted: too many permitted paths");
  const auto first = static_cast<std::uint32_t>(slices_.size());
  for (const Path& p : ranked) {
    slices_.push_back(pool_.intern(p));
  }
  runs_[node] = Run{first, static_cast<std::uint32_t>(ranked.size())};
}

paths::PathListView SppInstance::permitted(AsId node) const {
  util::require(node < runs_.size(), "permitted: node out of range");
  const Run& run = runs_[node];
  return {pool_, std::span<const paths::PathPool::Slice>(
                     slices_.data() + run.first, run.count)};
}

std::vector<Path> SppInstance::permitted_paths(AsId node) const {
  return permitted(node).materialize();
}

int SppInstance::rank_of(AsId node, const Path& path) const {
  const paths::PathListView paths = permitted(node);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (paths[i] == path) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<AsId> SppInstance::next_hops(AsId node) const {
  std::set<AsId> hops;
  for (const paths::PathView p : permitted(node)) {
    if (p.size() >= 2) {
      hops.insert(p[1]);
    }
  }
  return {hops.begin(), hops.end()};
}

void SppInstance::validate() const {
  for (AsId node = 0; node < runs_.size(); ++node) {
    const paths::PathListView paths = permitted(node);
    std::set<Path> unique;
    for (const paths::PathView p : paths) {
      unique.insert(p.to_path());
    }
    util::require(unique.size() == paths.size(),
                  "SppInstance: duplicate permitted path");
    if (node == origin_) {
      util::require(paths.size() == 1 && paths[0] == Path{origin_},
                    "SppInstance: origin must hold exactly its trivial path");
    }
  }
}

Path best_available_path(const SppInstance& instance, AsId node,
                         const Assignment& assignment) {
  if (node == instance.origin()) {
    return Path{node};
  }
  // A permitted path u.v.rest is available iff v currently selects v.rest.
  for (const paths::PathView candidate : instance.permitted(node)) {
    if (candidate.size() < 2) {
      continue;  // only the origin owns a length-1 path
    }
    const AsId next = candidate[1];
    const Path& next_path = assignment[next];
    if (next_path.size() + 1 == candidate.size() &&
        std::equal(next_path.begin(), next_path.end(),
                   candidate.begin() + 1)) {
      return candidate.to_path();
    }
  }
  return {};
}

bool is_stable(const SppInstance& instance, const Assignment& assignment) {
  util::require(assignment.size() == instance.num_nodes(),
                "is_stable: assignment size mismatch");
  for (AsId node = 0; node < instance.num_nodes(); ++node) {
    if (best_available_path(instance, node, assignment) != assignment[node]) {
      return false;
    }
  }
  return true;
}

namespace {

void enumerate(const SppInstance& instance, AsId node, Assignment& current,
               std::vector<Assignment>& found, std::size_t limit) {
  if (found.size() >= limit) {
    return;
  }
  if (node == instance.num_nodes()) {
    if (is_stable(instance, current)) {
      found.push_back(current);
    }
    return;
  }
  if (node == instance.origin()) {
    current[node] = Path{node};
    enumerate(instance, node + 1, current, found, limit);
    return;
  }
  // Try the empty path and every permitted path.
  current[node] = {};
  enumerate(instance, node + 1, current, found, limit);
  for (const paths::PathView p : instance.permitted(node)) {
    current[node] = p.to_path();
    enumerate(instance, node + 1, current, found, limit);
  }
  current[node] = {};
}

}  // namespace

std::vector<Assignment> find_stable_solutions(const SppInstance& instance,
                                              std::size_t limit) {
  std::vector<Assignment> found;
  Assignment current(instance.num_nodes());
  enumerate(instance, 0, current, found, limit);
  return found;
}

}  // namespace panagree::bgp
