// Shared configuration of the §VI reproduction benches: all figures run on
// the same synthetic Internet topology and the same 500-AS sample, mirroring
// the paper's single CAIDA snapshot + single AS sample.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "panagree/topology/capacity.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::benchcfg {

/// Topology size; override with PANAGREE_ASES for quick runs.
inline std::size_t num_ases() {
  if (const char* env = std::getenv("PANAGREE_ASES")) {
    return static_cast<std::size_t>(std::stoul(env));
  }
  return 12000;
}

/// Analyzed-source sample size (the paper samples 500 ASes); override with
/// PANAGREE_SOURCES.
inline std::size_t num_sources() {
  if (const char* env = std::getenv("PANAGREE_SOURCES")) {
    return static_cast<std::size_t>(std::stoul(env));
  }
  return 500;
}

/// Worker threads for per-source fan-outs (0 = one per hardware core);
/// override with PANAGREE_THREADS. Results are thread-count independent.
inline std::size_t num_threads() {
  if (const char* env = std::getenv("PANAGREE_THREADS")) {
    return static_cast<std::size_t>(std::stoul(env));
  }
  return 0;
}

inline constexpr std::uint64_t kTopologySeed = 424242;
inline constexpr std::uint64_t kSampleSeed = 7;

inline topology::GeneratorParams internet_params() {
  topology::GeneratorParams params;
  params.num_ases = num_ases();
  params.tier1_count = 12;
  params.seed = kTopologySeed;
  return params;
}

/// Generates the shared topology with degree-gravity capacities assigned.
inline topology::GeneratedTopology make_internet() {
  auto topo = topology::generate_internet(internet_params());
  topology::assign_degree_gravity_capacities(topo.graph);
  std::cerr << "[bench] topology: " << topo.graph.num_ases() << " ASes, "
            << topo.graph.num_links() << " links (seed " << kTopologySeed
            << ")\n";
  return topo;
}

}  // namespace panagree::benchcfg
