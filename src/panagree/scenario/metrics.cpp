#include "panagree/scenario/metrics.hpp"

#include <limits>
#include <optional>
#include <unordered_map>

#include "panagree/geo/coordinates.hpp"
#include "panagree/paths/enumerator.hpp"

namespace panagree::scenario {

SourcePathSet enumerate_length3(const Overlay& overlay, AsId src) {
  const paths::BasicPathEnumerator<Overlay> enumerator(overlay);
  SourcePathSet out;
  enumerator.visit_paths(src, 3, paths::ValleyFreeStep{},
                         [&](const paths::Path& path) {
                           if (path.size() == 3) {
                             out.grc.push_back({path[0], path[1], path[2]});
                           }
                           return true;
                         });
  enumerator.visit_paths(src, 3,
                         paths::BasicMaLength3Step<Overlay>(overlay, true),
                         [&](const paths::Path& path) {
                           if (path.size() == 3) {
                             out.ma.push_back({path[0], path[1], path[2]});
                           }
                           return true;
                         });
  return out;
}

MetricsDelta subtract(const ScenarioMetrics& scenario,
                      const ScenarioMetrics& baseline) {
  MetricsDelta delta;
  delta.paths =
      static_cast<double>(scenario.grc_paths + scenario.ma_paths) -
      static_cast<double>(baseline.grc_paths + baseline.ma_paths);
  delta.pairs =
      static_cast<double>(scenario.grc_pairs + scenario.ma_extra_pairs) -
      static_cast<double>(baseline.grc_pairs + baseline.ma_extra_pairs);
  delta.mean_best_geodistance_km = scenario.mean_best_geodistance_km -
                                   baseline.mean_best_geodistance_km;
  delta.transit_fees = scenario.transit_fees - baseline.transit_fees;
  return delta;
}

double operator_utility(const MetricsDelta& delta,
                        const UtilityWeights& weights) {
  return -delta.transit_fees + weights.per_new_pair * delta.pairs -
         weights.per_km_regression * delta.mean_best_geodistance_km;
}

MetricsAggregator::MetricsAggregator(const CompiledTopology& base,
                                     const geo::World* world,
                                     const econ::Economy* economy)
    : base_(&base), world_(world), economy_(economy) {
  if (world_ != nullptr) {
    geodesy_.emplace(base.graph(), *world_);
  }
}

double MetricsAggregator::path_geodistance_km(const Overlay& overlay,
                                              AsId s, AsId m, AsId d) const {
  util::require(geodesy_.has_value(),
                "MetricsAggregator: constructed without a geo::World");
  const auto l1 = overlay.link_between(s, m);
  const auto l2 = overlay.link_between(m, d);
  util::require(l1.has_value() && l2.has_value(),
                "path_geodistance_km: path hops must be linked");
  if (*l1 < overlay.first_added_link_id() &&
      *l2 < overlay.first_added_link_id()) {
    return geodesy_->path_geodistance_km(s, m, d);
  }
  // An added link has no interconnection facilities yet: approximate the
  // whole path by its endpoint-centroid great-circle legs.
  const topology::Graph& graph = base_->graph();
  return geo::great_circle_km(graph.info(s).centroid,
                              graph.info(m).centroid) +
         geo::great_circle_km(graph.info(m).centroid,
                              graph.info(d).centroid);
}

double MetricsAggregator::path_fee(const Overlay& overlay,
                                   std::span<const AsId> path,
                                   double volume) const {
  double fee = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const std::optional<NeighborRole> role =
        overlay.role_of(path[i], path[i + 1]);
    PANAGREE_ASSERT(role.has_value());
    switch (*role) {
      case NeighborRole::kProvider:
        fee += economy_->link_pricing(path[i + 1], path[i])(volume);
        break;
      case NeighborRole::kCustomer:
        fee += economy_->link_pricing(path[i], path[i + 1])(volume);
        break;
      case NeighborRole::kPeer:
        break;
    }
  }
  return fee;
}

ScenarioMetrics MetricsAggregator::aggregate(
    const Overlay& overlay, const std::vector<AsId>& sources,
    const std::vector<const SourcePathSet*>& results) const {
  util::require(sources.size() == results.size(),
                "MetricsAggregator::aggregate: sources/results mismatch");
  ScenarioMetrics metrics;

  const topology::Graph& graph = base_->graph();
  const auto km_of =
      [&](const diversity::Length3Path& p) -> std::optional<double> {
    if (!geodesy_.has_value() || !graph.info(p.src).has_geo ||
        !graph.info(p.mid).has_geo || !graph.info(p.dst).has_geo) {
      return std::nullopt;
    }
    return path_geodistance_km(overlay, p.src, p.mid, p.dst);
  };

  struct Best {
    diversity::Length3Path path;
    double km = std::numeric_limits<double>::infinity();
    bool has_km = false;
    bool grc_reachable = false;
  };
  double km_sum = 0.0;
  std::size_t km_pairs = 0;
  std::unordered_map<AsId, Best> best;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const SourcePathSet& result = *results[i];
    metrics.grc_paths += result.grc.size();
    metrics.ma_paths += result.ma.size();

    best.clear();
    const auto consider = [&](const diversity::Length3Path& p, bool grc) {
      auto [it, inserted] = best.try_emplace(p.dst);
      Best& slot = it->second;
      slot.grc_reachable = slot.grc_reachable || grc;
      const std::optional<double> km = km_of(p);
      // Without geodata the first-enumerated path wins (deterministic);
      // with it, the strictly shortest one.
      if (inserted) {
        slot.path = p;
        if (km.has_value()) {
          slot.km = *km;
          slot.has_km = true;
        }
        return;
      }
      if (km.has_value() && *km < slot.km) {
        slot.path = p;
        slot.km = *km;
        slot.has_km = true;
      }
    };
    for (const diversity::Length3Path& p : result.grc) {
      consider(p, /*grc=*/true);
    }
    for (const diversity::Length3Path& p : result.ma) {
      consider(p, /*grc=*/false);
    }

    for (const auto& [dst, slot] : best) {
      if (slot.grc_reachable) {
        ++metrics.grc_pairs;
      } else {
        ++metrics.ma_extra_pairs;
      }
      if (slot.has_km) {
        km_sum += slot.km;
        ++km_pairs;
      }
      const AsId hops[3] = {slot.path.src, slot.path.mid, slot.path.dst};
      metrics.transit_fees += path_fee(overlay, hops, 1.0);
    }
  }
  if (km_pairs > 0) {
    metrics.mean_best_geodistance_km = km_sum / static_cast<double>(km_pairs);
  }
  return metrics;
}

ScenarioMetrics MetricsAggregator::aggregate(
    const Overlay& overlay, const std::vector<AsId>& sources,
    const std::vector<SourcePathSet>& results) const {
  std::vector<const SourcePathSet*> refs;
  refs.reserve(results.size());
  for (const SourcePathSet& result : results) {
    refs.push_back(&result);
  }
  return aggregate(overlay, sources, refs);
}

}  // namespace panagree::scenario
