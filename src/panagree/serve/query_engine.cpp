#include "panagree/serve/query_engine.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <tuple>
#include <utility>

#include "panagree/obs/build_info.hpp"
#include "panagree/obs/metrics.hpp"
#include "panagree/obs/trace.hpp"

namespace panagree::serve {

namespace {

// Engine-level metrics (see README "Observability"). References cached
// once; every record is a relaxed add.
struct EngineMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& paths_cache_hits = reg.counter("engine.paths_cache_hits");
  obs::Counter& paths_cold = reg.counter("engine.paths_cold");
  obs::Counter& memo_hits = reg.counter("engine.whatif_memo_hits");
  obs::Counter& memo_shared = reg.counter("engine.whatif_memo_shared");
  obs::Counter& memo_unshared = reg.counter("engine.whatif_unshared");
  obs::Counter& rebases = reg.counter("engine.rebases");
  obs::Histogram& batch = reg.histogram("engine.whatif_batch");
};

[[nodiscard]] EngineMetrics& engine_metrics() {
  static EngineMetrics metrics;
  return metrics;
}

// Per-request-kind accounting at the dispatch point shared by the
// server workers and --direct (so a scripted session scores the same
// counters either way).
struct RequestMetrics {
  obs::Counter& count;
  obs::Histogram& latency_ns;
};

[[nodiscard]] RequestMetrics& request_metrics(RequestKind kind) {
  obs::Registry& reg = obs::Registry::global();
  static RequestMetrics paths{reg.counter("serve.requests.paths"),
                              reg.histogram("serve.latency_ns.paths")};
  static RequestMetrics diversity{
      reg.counter("serve.requests.diversity"),
      reg.histogram("serve.latency_ns.diversity")};
  static RequestMetrics whatif{reg.counter("serve.requests.whatif"),
                               reg.histogram("serve.latency_ns.whatif")};
  static RequestMetrics stats{reg.counter("serve.requests.stats"),
                              reg.histogram("serve.latency_ns.stats")};
  switch (kind) {
    case RequestKind::kPaths: return paths;
    case RequestKind::kDiversity: return diversity;
    case RequestKind::kWhatIf: return whatif;
    case RequestKind::kStats: return stats;
  }
  return paths;  // unreachable
}

[[nodiscard]] RequestMetrics& error_metrics() {
  obs::Registry& reg = obs::Registry::global();
  static RequestMetrics errors{reg.counter("serve.requests.errors"),
                               reg.histogram("serve.latency_ns.errors")};
  return errors;
}

[[nodiscard]] std::uint64_t elapsed_ns(
    std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

scenario::SourcePathSet enumerate(const scenario::Overlay& overlay,
                                  AsId src) {
  return scenario::enumerate_length3(overlay, src);
}

/// Order-insensitive key of a delta: the memo must batch "the same dirty
/// ball" however the client listed the links. Pair direction is kept for
/// added links (provider/customer roles) and normalized for removals
/// (undirected, like Overlay).
std::string canonical_delta_key(const scenario::Delta& delta) {
  std::vector<scenario::LinkChange> add = delta.add;
  std::sort(add.begin(), add.end(),
            [](const scenario::LinkChange& x, const scenario::LinkChange& y) {
              return std::tie(x.a, x.b, x.type) < std::tie(y.a, y.b, y.type);
            });
  std::vector<std::pair<AsId, AsId>> remove;
  remove.reserve(delta.remove.size());
  for (const auto& [x, y] : delta.remove) {
    remove.emplace_back(std::min(x, y), std::max(x, y));
  }
  std::sort(remove.begin(), remove.end());
  std::string key;
  for (const scenario::LinkChange& change : add) {
    key += '+';
    key += std::to_string(change.a);
    key += ',';
    key += std::to_string(change.b);
    key += change.type == topology::LinkType::kPeering ? 'p' : 't';
  }
  for (const auto& [x, y] : remove) {
    key += '-';
    key += std::to_string(x);
    key += ',';
    key += std::to_string(y);
  }
  return key;
}

[[nodiscard]] DiversityResult to_diversity_result(
    const scenario::SourceContribution& contribution) {
  DiversityResult result;
  result.grc_paths = contribution.grc_paths;
  result.ma_paths = contribution.ma_paths;
  result.grc_pairs = contribution.grc_pairs;
  result.ma_extra_pairs = contribution.ma_extra_pairs;
  result.mean_best_geodistance_km =
      contribution.km_pairs > 0
          ? contribution.km_sum /
                static_cast<double>(contribution.km_pairs)
          : 0.0;
  result.transit_fees = contribution.transit_fees;
  return result;
}

}  // namespace

/// The immutable unit the shared_mutex guards: one primed runner cache,
/// the overlay of its composed state, and the additive per-source
/// contributions that make whatif scoring an O(sources) fold. rebase()
/// copies, mutates the copy, and swaps - readers keep old snapshots
/// alive through the shared_ptr.
struct QueryEngine::State {
  State(const topology::CompiledTopology& base, std::vector<AsId> sources,
        scenario::SweepConfig config)
      : runner(base, std::move(sources), config), overlay(base) {}

  scenario::SweepRunner<scenario::SourcePathSet> runner;
  scenario::Overlay overlay;
  std::vector<scenario::SourceContribution> contribs;
  scenario::SourceContribution total;
  scenario::ScenarioMetrics metrics;

  /// Recomputes contribs/total/metrics from the runner's cache (after
  /// prime or rebase). Pure folds over already-enumerated path sets.
  void refresh_contributions(const scenario::MetricsAggregator& aggregator) {
    const std::vector<scenario::SourcePathSet>& cache = runner.baseline();
    contribs.clear();
    contribs.reserve(cache.size());
    total = scenario::SourceContribution{};
    scenario::MetricsAggregator::Scratch scratch;
    for (const scenario::SourcePathSet& sets : cache) {
      contribs.push_back(aggregator.contribution(overlay, sets, scratch));
      total += contribs.back();
    }
    metrics = scenario::finalize(total);
  }
};

QueryEngine::QueryEngine(const topology::CompiledTopology& base,
                         const geo::World* world,
                         const econ::Economy* economy,
                         std::vector<AsId> sources, EngineConfig config)
    : base_(&base),
      aggregator_(base, world, economy),
      sources_(std::move(sources)),
      config_(config) {
  source_index_.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    util::require(sources_[i] < base.num_ases(),
                  "QueryEngine: source out of range");
    source_index_.emplace(sources_[i], i);
  }
}

QueryEngine::~QueryEngine() = default;

void QueryEngine::prime() {
  const std::lock_guard<std::mutex> writer(rebase_mutex_);
  {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    if (state_ != nullptr) {
      return;
    }
  }
  scenario::SweepConfig sweep;
  sweep.threads = config_.threads;
  sweep.dirty_radius = scenario::kLength3DirtyRadius;
  sweep.exec.pin_threads = config_.pin_threads;
  auto state = std::make_shared<State>(*base_, sources_, sweep);
  state->runner.prime(enumerate);
  state->refresh_contributions(aggregator_);
  const std::unique_lock<std::shared_mutex> lock(state_mutex_);
  state_ = std::move(state);
}

std::shared_ptr<const QueryEngine::State> QueryEngine::snapshot() const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  util::require(state_ != nullptr, "QueryEngine: prime() first");
  return state_;
}

std::uint64_t QueryEngine::epoch() const {
  const std::shared_lock<std::shared_mutex> lock(state_mutex_);
  return epoch_;
}

scenario::ScenarioMetrics QueryEngine::state_metrics() const {
  return snapshot()->metrics;
}

void QueryEngine::paths(AsId src, const PathsSink& sink) const {
  const std::shared_ptr<const State> state = snapshot();
  const auto it = source_index_.find(src);
  if (it != source_index_.end()) {
    engine_metrics().paths_cache_hits.increment();
    const scenario::SourcePathSet& sets = state->runner.baseline()[it->second];
    sink(sets.grc(), sets.ma());
    return;
  }
  util::require(src < base_->num_ases(), "QueryEngine: source out of range");
  engine_metrics().paths_cold.increment();
  const scenario::SourcePathSet sets = enumerate(state->overlay, src);
  sink(sets.grc(), sets.ma());
}

DiversityResult QueryEngine::diversity(AsId src) const {
  const std::shared_ptr<const State> state = snapshot();
  const auto it = source_index_.find(src);
  if (it != source_index_.end()) {
    engine_metrics().paths_cache_hits.increment();
    return to_diversity_result(state->contribs[it->second]);
  }
  util::require(src < base_->num_ases(), "QueryEngine: source out of range");
  engine_metrics().paths_cold.increment();
  const scenario::SourcePathSet sets = enumerate(state->overlay, src);
  return to_diversity_result(aggregator_.contribution(state->overlay, sets));
}

WhatIfResult QueryEngine::compute_whatif(const State& state,
                                         const scenario::Delta& delta) const {
  scenario::SweepStats stats;
  std::vector<std::size_t> dirty_positions;
  std::vector<scenario::SourceContribution> fresh;
  scenario::MetricsAggregator::Scratch scratch;
  state.runner.evaluate_dirty_visit(
      delta, enumerate,
      [&](std::size_t i, const scenario::Overlay& overlay,
          const scenario::SourcePathSet& result) {
        dirty_positions.push_back(i);
        fresh.push_back(aggregator_.contribution(overlay, result, scratch));
      },
      &stats);

  // Splice the dirty slices into the state's per-source contributions
  // (fixed source-order association, exactly like the optimizer's fold).
  scenario::SourceContribution total;
  std::size_t next = 0;
  for (std::size_t i = 0; i < state.contribs.size(); ++i) {
    if (next < dirty_positions.size() && dirty_positions[next] == i) {
      total += fresh[next];
      ++next;
    } else {
      total += state.contribs[i];
    }
  }
  const scenario::ScenarioMetrics metrics = scenario::finalize(total);
  const scenario::MetricsDelta marginal =
      scenario::subtract(metrics, state.metrics);

  WhatIfResult result;
  result.paths_delta = marginal.paths;
  result.pairs_delta = marginal.pairs;
  result.mean_km_delta = marginal.mean_best_geodistance_km;
  result.fees_delta = marginal.transit_fees;
  result.utility = scenario::operator_utility(marginal, config_.weights);
  result.recomputed_sources = stats.recomputed_sources;
  result.cached_sources = stats.cached_sources;
  result.ball_size = stats.ball_size;
  return result;
}

WhatIfResult QueryEngine::whatif(const scenario::Delta& delta) const {
  std::shared_ptr<const State> state;
  std::uint64_t epoch = 0;
  {
    const std::shared_lock<std::shared_mutex> lock(state_mutex_);
    util::require(state_ != nullptr, "QueryEngine: prime() first");
    state = state_;
    epoch = epoch_;
  }
  if (config_.max_batch == 0) {
    engine_metrics().memo_unshared.increment();
    return compute_whatif(*state, delta);
  }

  const std::string key = canonical_delta_key(delta);
  std::shared_future<WhatIfResult> shared;
  std::promise<WhatIfResult> promise;
  bool owner = false;
  {
    const std::lock_guard<std::mutex> lock(memo_mutex_);
    const auto it = memo_.find(key);
    if (it != memo_.end() && it->second.epoch == epoch) {
      shared = it->second.future;
    } else if (it != memo_.end() || memo_.size() < config_.max_batch) {
      shared = promise.get_future().share();
      memo_[key] = MemoEntry{epoch, shared};
      owner = true;
    }
    // else: batch full - compute unshared below.
  }
  if (!owner && shared.valid()) {
    engine_metrics().memo_hits.increment();
    return shared.get();
  }
  if (!owner) {
    engine_metrics().memo_unshared.increment();
    return compute_whatif(*state, delta);
  }
  engine_metrics().memo_shared.increment();
  try {
    WhatIfResult result = compute_whatif(*state, delta);
    promise.set_value(result);
    return result;
  } catch (...) {
    promise.set_exception(std::current_exception());
    throw;
  }
}

void QueryEngine::rebase(const scenario::Delta& step) {
  const std::lock_guard<std::mutex> writer(rebase_mutex_);
  const std::shared_ptr<const State> current = snapshot();
  // Copy-on-rebase: the expensive work happens on a private clone while
  // readers keep serving the old snapshot.
  auto next = std::make_shared<State>(*current);
  next->runner.rebase(step, enumerate);
  next->overlay.clear();
  next->overlay.apply(next->runner.state());
  next->refresh_contributions(aggregator_);
  {
    const std::unique_lock<std::shared_mutex> lock(state_mutex_);
    state_ = std::move(next);
    ++epoch_;
  }
  engine_metrics().rebases.increment();
  flush_whatif_memo();
}

void QueryEngine::flush_whatif_memo() const {
  const std::lock_guard<std::mutex> lock(memo_mutex_);
  // The memo size at flush is the realized epoch batch: how many
  // distinct deltas shared this state generation.
  engine_metrics().batch.record(memo_.size());
  memo_.clear();
}

void QueryEngine::handle_line(std::string_view line, std::string& out) const {
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t id = 0;
  try {
    const Request request = parse_request(line, &id);
    // Count the request before handling it, so a stats response
    // deterministically includes itself (the CI smoke asserts exact
    // counts for a scripted session).
    RequestMetrics& metrics = request_metrics(request.kind);
    metrics.count.increment();
    switch (request.kind) {
      case RequestKind::kPaths: {
        const obs::TraceSpan span("serve.paths");
        paths(request.source,
              [&](std::span<const diversity::Length3Path> grc,
                  std::span<const diversity::Length3Path> ma) {
                append_paths_response(out, request.id, request.source, grc,
                                      ma);
              });
        metrics.latency_ns.record(elapsed_ns(start));
        return;
      }
      case RequestKind::kDiversity: {
        const obs::TraceSpan span("serve.diversity");
        append_diversity_response(out, request.id, request.source,
                                  diversity(request.source));
        metrics.latency_ns.record(elapsed_ns(start));
        return;
      }
      case RequestKind::kWhatIf: {
        const obs::TraceSpan span("serve.whatif");
        append_whatif_response(out, request.id, whatif(request.delta));
        metrics.latency_ns.record(elapsed_ns(start));
        return;
      }
      case RequestKind::kStats: {
        const obs::TraceSpan span("serve.stats");
        // Latency recorded before the snapshot, so the histogram's count
        // matches the counter in the response it ships.
        metrics.latency_ns.record(elapsed_ns(start));
        append_stats_response(out, request.id,
                              obs::build_info().git_describe, epoch(),
                              obs::snapshot_metrics());
        return;
      }
    }
    append_error_response(out, id, "unhandled request kind");
  } catch (const std::exception& e) {
    RequestMetrics& errors = error_metrics();
    errors.count.increment();
    errors.latency_ns.record(elapsed_ns(start));
    append_error_response(out, id, e.what());
  }
}

}  // namespace panagree::serve
