// Per-source work-stealing parallel driver for path enumeration.
//
// Every large-scale analysis in this repo fans out over independent source
// ASes (SPP compilation per node, diversity counts per sampled AS, the
// optimizer's candidate scenarios). The driver runs a per-index function
// over a std::thread pool and collects results *in index order*: each
// result lands in its index's preallocated slot, so the merged output is
// byte-identical for every thread count, including 1. Parallelism never
// changes results, only wall-clock time.
//
// Scheduling is work-stealing over chunked ranges (steal.hpp): the index
// space is split into one contiguous, cost-balanced seed range per worker
// (degree-aware estimates when the caller has them - per-source costs are
// heavy-tailed, a handful of hub ASes dominate a sweep), owners claim
// geometric chunks off the front of their range, and an idle worker steals
// the back half of a victim's remainder. Compared to the previous design -
// a single shared atomic cursor claiming one source per fetch_add - this
// removes the per-item claim from the hot path (one CAS per *chunk*, on a
// per-worker cache line) and stops tail sources from serializing the
// sweep: a mega-degree source pins one worker while the rest redistribute
// everything else among themselves. The old driver is preserved as
// map_indices_atomic, the measured baseline of the BM_MapSources_* benches
// (with its cursor/failed false sharing fixed - both now sit on their own
// cache lines).
//
// NUMA placement rides on the same seeding: ExecPolicy pins worker
// threads to cpus (TopologyPlacement), dealt to nodes in the same
// contiguous blocks as the seed ranges, so a node's workers walk a
// node-local shard of the source space.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <limits>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "panagree/obs/metrics.hpp"
#include "panagree/paths/placement.hpp"
#include "panagree/paths/steal.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/graph.hpp"
#include "panagree/util/error.hpp"

namespace panagree::paths {

namespace detail {

/// Driver metrics. Workers tally locally and flush once at exit, so the
/// instrumented hot loop adds no atomics at all; under PANAGREE_OBS_OFF
/// the tally code compiles out entirely (obs::enabled() is constexpr).
struct DriverMetrics {
  obs::Counter& items_claimed;
  obs::Counter& items_stolen;
  obs::Counter& steal_failures;
  obs::Histogram& worker_busy_ns;
};

[[nodiscard]] inline DriverMetrics& driver_metrics() {
  static DriverMetrics metrics{
      obs::Registry::global().counter("paths.items_claimed"),
      obs::Registry::global().counter("paths.items_stolen"),
      obs::Registry::global().counter("paths.steal_failures"),
      obs::Registry::global().histogram("paths.worker_busy_ns"),
  };
  return metrics;
}

/// One worker's local tallies; flushed by the destructor (covers every
/// exit path of the worker body, including the failure returns).
struct WorkerTally {
  std::uint64_t claimed = 0;
  std::uint64_t stolen = 0;
  std::uint64_t steal_failures = 0;
  std::uint64_t busy_ns = 0;

  ~WorkerTally() {
    if constexpr (obs::enabled()) {
      DriverMetrics& metrics = driver_metrics();
      if (claimed != 0) {
        metrics.items_claimed.add(claimed);
      }
      if (stolen != 0) {
        metrics.items_stolen.add(stolen);
      }
      if (steal_failures != 0) {
        metrics.steal_failures.add(steal_failures);
      }
      metrics.worker_busy_ns.record(busy_ns);
    }
  }
};

[[nodiscard]] inline std::uint64_t busy_clock_ns() noexcept {
  if constexpr (obs::enabled()) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  } else {
    return 0;
  }
}

}  // namespace detail

/// Resolves a requested worker count: 0 means "use the hardware", anything
/// else is taken literally. Always >= 1.
[[nodiscard]] std::size_t resolve_thread_count(std::size_t requested);

/// Below this many sources the driver runs serially regardless of the
/// requested worker count: thread spawn/join overhead dwarfs tiny
/// workloads, and results are identical either way.
inline constexpr std::size_t kMinParallelSources = 32;

/// How workers are placed on the machine. Results never depend on it.
struct ExecPolicy {
  /// Pin each worker thread to a cpu (node-blocked when the placement has
  /// several NUMA nodes). Defaults off: pinning helps dedicated sweep /
  /// serve processes and hurts oversubscribed shared hosts.
  bool pin_threads = false;
  /// Machine model used for pinning; nullptr = the detected system
  /// placement (TopologyPlacement::system()).
  const TopologyPlacement* placement = nullptr;
};

/// Tuning knobs of map_indices. The defaults reproduce the plain
/// map_indices(count, threads, fn) behavior.
struct MapOptions {
  /// Workload size below which the driver stays serial - keep the default
  /// for cheap per-source units, lower it when each unit is a heavy batch.
  std::size_t min_parallel = kMinParallelSources;
  /// Optional per-index cost estimates (size == count) seeding the
  /// initial partition; empty = equal-size seed ranges. Estimates only
  /// steer the seeding - stealing corrects any misestimate - so cheap
  /// proxies (degrees) are the right fidelity.
  std::span<const std::uint64_t> costs = {};
  ExecPolicy exec;
};

/// Degree-aware cost estimates for bounded-depth per-source enumerations:
/// cost(src) = 1 + sum of degree(neighbor) over src's neighbors - the
/// exact number of depth-2 extension candidates, the dominant term of the
/// length-3 analyses and a sound proxy for deeper walks.
[[nodiscard]] std::vector<std::uint64_t> two_hop_cost_estimates(
    const topology::CompiledTopology& topo,
    std::span<const topology::AsId> sources);

/// Binds the pages of `topo`'s CSR entry array and role lane to the
/// placement's NUMA nodes in contiguous per-node AS shards - the same
/// contiguous blocks node_of_worker deals workers into, so a node's
/// workers walk node-local rows. Best-effort and a no-op (returns false)
/// on single-node placements; already-touched private pages stay where
/// first-touch put them (bind right after loading a snapshot for the
/// bind to matter). Results are byte-identical either way.
bool bind_topology_to_nodes(const TopologyPlacement& placement,
                            const topology::CompiledTopology& topo);

/// Runs `fn(i)` for every index in [0, count) and returns the results in
/// index order - the generic core of the per-source driver, also the
/// fan-out for any other independent unit of work (the deployment
/// optimizer maps over *candidate scenarios* with it). `fn` must be
/// callable concurrently from multiple threads; its result type must be
/// default-constructible and movable. The first exception thrown by any
/// invocation is rethrown on the calling thread after all workers have
/// drained.
template <typename Fn>
[[nodiscard]] auto map_indices(std::size_t count, std::size_t threads,
                               Fn&& fn, const MapOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  // std::vector<bool> packs bits: concurrent writes to distinct indices
  // would race on shared bytes. Return char/int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "map_indices: bool results are not thread-safe "
                "(vector<bool> packs bits)");
  util::require(count <= std::numeric_limits<std::uint32_t>::max(),
                "map_indices: count exceeds 32-bit index space");
  std::vector<Result> results(count);
  const std::size_t workers = std::min(resolve_thread_count(threads), count);
  if (workers <= 1 || count < options.min_parallel) {
    detail::WorkerTally tally;
    const std::uint64_t start = detail::busy_clock_ns();
    for (std::size_t i = 0; i < count; ++i) {
      results[i] = fn(i);
    }
    tally.busy_ns = detail::busy_clock_ns() - start;
    tally.claimed = count;
    return results;
  }

  // Seed one range per worker, cost-balanced when estimates were given.
  const auto seeds = partition_by_cost(options.costs, count, workers);
  std::vector<detail::StealRange> ranges(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    ranges[w].reset(seeds[w].first, seeds[w].second);
  }

  // Indices executed so far, the termination test: work only ever moves
  // between ranges, so remaining == 0 means every index ran (or is
  // running on the worker that claimed it). Own cache line - this is the
  // one shared counter left, written once per chunk, not per item.
  struct alignas(kCacheLineAlign) Shared {
    std::atomic<std::size_t> remaining{0};
    alignas(kCacheLineAlign) std::atomic<bool> failed{false};
  } shared;
  shared.remaining.store(count, std::memory_order_relaxed);
  std::mutex error_mutex;
  std::exception_ptr error;

  const TopologyPlacement* placement =
      options.exec.placement != nullptr ? options.exec.placement
                                        : &TopologyPlacement::system();
  const bool pin = options.exec.pin_threads;

  const auto worker = [&](std::size_t self) {
    if (pin) {
      // Best-effort: a refused bind runs unpinned, results unchanged.
      (void)placement->bind_worker(self, workers);
    }
    detail::WorkerTally tally;  // flushes to the obs registry at exit
    bool range_is_stolen = false;
    detail::StealRange& own = ranges[self];
    for (;;) {
      std::uint32_t begin = 0;
      std::uint32_t end = 0;
      while (own.try_claim(begin, end)) {
        if (shared.failed.load(std::memory_order_relaxed)) {
          return;
        }
        const std::uint64_t start = detail::busy_clock_ns();
        try {
          for (std::uint32_t i = begin; i < end; ++i) {
            results[i] = fn(static_cast<std::size_t>(i));
          }
        } catch (...) {
          shared.failed.store(true, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) {
            error = std::current_exception();
          }
          return;
        }
        tally.busy_ns += detail::busy_clock_ns() - start;
        // Attribution: items run out of the seed range count as claimed,
        // items run after a steal as stolen (each item exactly once, by
        // the worker that executed it).
        (range_is_stolen ? tally.stolen : tally.claimed) += end - begin;
        shared.remaining.fetch_sub(end - begin, std::memory_order_acq_rel);
      }
      // Own range dry: scan victims round-robin for a back half.
      bool stole = false;
      for (std::size_t off = 1; off < workers && !stole; ++off) {
        const std::size_t victim = (self + off) % workers;
        if (ranges[victim].try_steal(begin, end)) {
          own.reset(begin, end);  // stolen work is stealable in turn
          range_is_stolen = true;
          stole = true;
        }
      }
      if (!stole) {
        if (shared.remaining.load(std::memory_order_acquire) == 0 ||
            shared.failed.load(std::memory_order_relaxed)) {
          return;
        }
        // A full victim scan came up empty while work is still in
        // flight: the steal-failure count is the driver's contention /
        // idle-spin signal.
        ++tally.steal_failures;
        // Everything is claimed-and-running or briefly in transit between
        // ranges; don't spin the cpu a working thread could use.
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t t = 0; t < workers; ++t) {
      pool.emplace_back(worker, t);
    }
  } catch (...) {
    // Thread creation failed (resource pressure): drain the workers that
    // did start, then let the error propagate - never terminate().
    shared.failed.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) {
      t.join();
    }
    throw;
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
  return results;
}

/// map_indices with an explicit serial-threshold override and default
/// options otherwise (the pre-MapOptions calling convention).
template <typename Fn>
[[nodiscard]] auto map_indices(std::size_t count, std::size_t threads,
                               Fn&& fn, std::size_t min_parallel)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  MapOptions options;
  options.min_parallel = min_parallel;
  return map_indices(count, threads, std::forward<Fn>(fn), options);
}

/// The previous driver - one shared atomic cursor claiming one index per
/// fetch_add - preserved verbatim as the measured baseline of the
/// BM_MapSources_* benches (like the *_GraphBaseline walkers), with its
/// false sharing fixed: cursor and failed each own a cache line instead
/// of splitting one, so the baseline measures the design, not the bug.
/// Identical contract and results as map_indices.
template <typename Fn>
[[nodiscard]] auto map_indices_atomic(std::size_t count, std::size_t threads,
                                      Fn&& fn,
                                      std::size_t min_parallel =
                                          kMinParallelSources)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_same_v<Result, bool>,
                "map_indices_atomic: bool results are not thread-safe "
                "(vector<bool> packs bits)");
  std::vector<Result> results(count);
  const std::size_t workers = std::min(resolve_thread_count(threads), count);
  if (workers <= 1 || count < min_parallel) {
    for (std::size_t i = 0; i < count; ++i) {
      results[i] = fn(i);
    }
    return results;
  }

  struct alignas(kCacheLineAlign) Shared {
    std::atomic<std::size_t> cursor{0};
    alignas(kCacheLineAlign) std::atomic<bool> failed{false};
  } shared;
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto worker = [&] {
    while (!shared.failed.load(std::memory_order_relaxed)) {
      const std::size_t i =
          shared.cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) {
        return;
      }
      try {
        results[i] = fn(i);
      } catch (...) {
        shared.failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t t = 0; t < workers; ++t) {
      pool.emplace_back(worker);
    }
  } catch (...) {
    shared.failed.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) {
      t.join();
    }
    throw;
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
  return results;
}

/// Runs `fn(sources[i])` for every i and returns the results in source
/// order (see map_indices for the concurrency contract).
template <typename Fn>
[[nodiscard]] auto map_sources(const std::vector<topology::AsId>& sources,
                               std::size_t threads, Fn&& fn,
                               const MapOptions& options = {})
    -> std::vector<std::invoke_result_t<Fn&, topology::AsId>> {
  return map_indices(
      sources.size(), threads,
      [&](std::size_t i) { return fn(sources[i]); }, options);
}

}  // namespace panagree::paths
