#include <gtest/gtest.h>

#include <cmath>

#include "panagree/topology/examples.hpp"
#include "panagree/traffic/elasticity.hpp"
#include "panagree/traffic/matrix.hpp"

namespace panagree::traffic {
namespace {

using topology::make_fig1;

TEST(Gravity, MassIsOnePlusCustomers) {
  const auto t = make_fig1();
  EXPECT_DOUBLE_EQ(gravity_mass(t.graph, t.H), 1.0);
  EXPECT_DOUBLE_EQ(gravity_mass(t.graph, t.D), 2.0);  // customer H
  EXPECT_DOUBLE_EQ(gravity_mass(t.graph, t.A), 3.0);  // customers C, D
}

TEST(Gravity, AllPairsVolumesSumToTotal) {
  const auto t = make_fig1();
  util::Rng rng(1);
  GravityParams params;
  params.total_volume = 500.0;
  const auto demands = generate_gravity_demands(t.graph, params, rng);
  EXPECT_EQ(demands.size(), 9u * 8u);
  double total = 0.0;
  for (const Demand& d : demands) {
    EXPECT_NE(d.src, d.dst);
    EXPECT_GT(d.volume, 0.0);
    total += d.volume;
  }
  EXPECT_NEAR(total, 500.0, 1e-9);
}

TEST(Gravity, HeavierPairsGetMoreTraffic) {
  const auto t = make_fig1();
  util::Rng rng(2);
  const auto demands = generate_gravity_demands(t.graph, {}, rng);
  double ab = 0.0;
  double hi = 0.0;
  for (const Demand& d : demands) {
    if (d.src == t.A && d.dst == t.B) {
      ab = d.volume;
    }
    if (d.src == t.H && d.dst == t.I) {
      hi = d.volume;
    }
  }
  // Masses: A has customers {C, D} -> 3; B has {E, F, G} -> 4; H, I -> 1.
  EXPECT_GT(ab, hi);
  EXPECT_NEAR(ab / hi, 12.0, 1e-9);
}

TEST(Gravity, SampledModeRespectsPairBudget) {
  const auto t = make_fig1();
  util::Rng rng(3);
  GravityParams params;
  params.total_volume = 100.0;
  params.sampled_pairs = 10;
  const auto demands = generate_gravity_demands(t.graph, params, rng);
  EXPECT_EQ(demands.size(), 10u);
  for (const Demand& d : demands) {
    EXPECT_NE(d.src, d.dst);
    EXPECT_DOUBLE_EQ(d.volume, 10.0);
  }
}

TEST(Gravity, ExponentZeroMakesUniformDemands) {
  const auto t = make_fig1();
  util::Rng rng(4);
  GravityParams params;
  params.exponent = 0.0;
  const auto demands = generate_gravity_demands(t.graph, params, rng);
  for (const Demand& d : demands) {
    EXPECT_NEAR(d.volume, demands.front().volume, 1e-12);
  }
}

TEST(Gravity, DeterministicUnderFixedSeed) {
  const auto t = make_fig1();
  GravityParams params;
  params.total_volume = 321.0;
  params.sampled_pairs = 64;
  util::Rng rng_a(1234);
  util::Rng rng_b(1234);
  const auto a = generate_gravity_demands(t.graph, params, rng_a);
  const auto b = generate_gravity_demands(t.graph, params, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_DOUBLE_EQ(a[i].volume, b[i].volume);
  }
  // A different seed reorders the sample (the draws are rng-driven).
  util::Rng rng_c(5678);
  const auto c = generate_gravity_demands(t.graph, params, rng_c);
  bool any_difference = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_difference |= a[i].src != c[i].src || a[i].dst != c[i].dst;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Gravity, SampledVolumesSumToTotal) {
  const auto t = make_fig1();
  util::Rng rng(9);
  GravityParams params;
  params.total_volume = 777.5;
  params.sampled_pairs = 51;  // does not divide the volume evenly
  const auto demands = generate_gravity_demands(t.graph, params, rng);
  double total = 0.0;
  for (const Demand& d : demands) {
    total += d.volume;
  }
  EXPECT_NEAR(total, 777.5, 1e-9);
}

TEST(Gravity, SampledPairsAreMassProportional) {
  const auto t = make_fig1();
  util::Rng rng(31337);
  GravityParams params;
  params.sampled_pairs = 40000;
  const auto demands = generate_gravity_demands(t.graph, params, rng);

  // Source draws are unconditioned (the dst rejection loop only re-draws
  // the destination), so empirical source frequencies must converge to
  // mass_i / sum(mass).
  double mass_sum = 0.0;
  for (AsId as = 0; as < t.graph.num_ases(); ++as) {
    mass_sum += gravity_mass(t.graph, as);
  }
  std::vector<std::size_t> counts(t.graph.num_ases(), 0);
  for (const Demand& d : demands) {
    ++counts[d.src];
  }
  for (AsId as = 0; as < t.graph.num_ases(); ++as) {
    const double expected = gravity_mass(t.graph, as) / mass_sum;
    const double observed = static_cast<double>(counts[as]) /
                            static_cast<double>(demands.size());
    // 4-sigma binomial tolerance: fails with probability ~1e-4 per AS if
    // sampling were biased; deterministic under the fixed seed anyway.
    const double sigma = std::sqrt(
        expected * (1.0 - expected) / static_cast<double>(demands.size()));
    EXPECT_NEAR(observed, expected, 4.0 * sigma)
        << "AS " << as << " mass " << gravity_mass(t.graph, as);
  }
}

TEST(Elasticity, NoImprovementAttractsNothing) {
  const DemandElasticity e;
  EXPECT_DOUBLE_EQ(e.max_new_demand(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.max_new_demand(100.0, -0.5), 0.0);
}

TEST(Elasticity, MonotoneInImprovement) {
  const DemandElasticity e;
  double prev = 0.0;
  for (double h = 0.05; h <= 2.0; h += 0.05) {
    const double cur = e.max_new_demand(100.0, h);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Elasticity, SaturatesAtLatentDemand) {
  const DemandElasticity e({.max_new_fraction = 0.5, .half_point = 0.25});
  EXPECT_LT(e.max_new_demand(100.0, 100.0), 50.0);
  EXPECT_NEAR(e.max_new_demand(100.0, 100.0), 50.0, 1.0);
}

TEST(Elasticity, HalfPointAttractsHalfTheLatentDemand) {
  const DemandElasticity e({.max_new_fraction = 0.4, .half_point = 0.2});
  EXPECT_NEAR(e.max_new_demand(100.0, 0.2), 20.0, 1e-9);
}

TEST(Elasticity, ScalesLinearlyWithBaseDemand) {
  const DemandElasticity e;
  const double small = e.max_new_demand(10.0, 0.3);
  const double large = e.max_new_demand(100.0, 0.3);
  EXPECT_NEAR(large, 10.0 * small, 1e-9);
}

TEST(Elasticity, RejectsBadParams) {
  EXPECT_THROW(DemandElasticity({.max_new_fraction = -0.1, .half_point = 0.2}),
               util::PreconditionError);
  EXPECT_THROW(DemandElasticity({.max_new_fraction = 0.5, .half_point = 0.0}),
               util::PreconditionError);
}

}  // namespace
}  // namespace panagree::traffic
