// panagree-gen: generate a synthetic Internet-like AS topology and export
// it in the CAIDA as-rel2 format.
//
//   panagree-gen [num_ases] [seed] [output-file]
//
// Defaults: 12000 ASes, seed 424242, stdout. The exported file round-trips
// through topology::caida::parse (geolocation and capacities are derived
// attributes and not part of the as-rel2 format).
//
// With PANAGREE_CAIDA=<path> set (the shared bench/tool override from
// bench_common.hpp), the tool loads that as-rel2 file instead of
// generating: a parse -> re-serialize normalization pass that validates
// the dataset and renumbers ASNs into the dense ids every other panagree
// tool uses. num_ases/seed arguments are ignored in that mode.
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "bench_common.hpp"
#include "cli_common.hpp"
#include "panagree/topology/caida.hpp"
#include "panagree/topology/generator.hpp"

using namespace panagree;

int main(int argc, char** argv) {
  topology::GeneratorParams params;
  params.num_ases = 12000;
  params.tier1_count = 12;
  params.seed = 424242;
  std::string output;
  if (argc > 1 && std::string_view(argv[1]) == "--version") {
    cli::print_version("panagree-gen");
  }
  cli::init_tracing();
  try {
    if (argc > 1) {
      params.num_ases = std::stoul(argv[1]);
    }
    if (argc > 2) {
      params.seed = std::stoull(argv[2]);
    }
    if (argc > 3) {
      output = argv[3];
    }
  } catch (const std::exception&) {
    std::cerr << "usage: panagree-gen [num_ases] [seed] [output-file]\n";
    return 2;
  }

  try {
    topology::Graph graph;
    if (const char* path = benchcfg::caida_path()) {
      graph = topology::caida::parse_file(path).graph;
      std::cerr << "loaded CAIDA " << path << " (normalization pass; "
                << "num_ases/seed arguments ignored)\n";
    } else {
      const auto topo = topology::generate_internet(params);
      std::cerr << "generated " << topo.graph.num_ases() << " ASes with "
                << topo.ixps.size() << " IXPs, " << topo.hubs.size()
                << " open-peering hubs\n";
      graph = topo.graph;
    }
    std::size_t peerings = 0;
    for (const auto& link : graph.links()) {
      if (link.type == topology::LinkType::kPeering) {
        ++peerings;
      }
    }
    std::cerr << graph.num_ases() << " ASes, " << graph.num_links()
              << " links (" << peerings << " peering / "
              << graph.num_links() - peerings << " provider-customer)\n";
    if (output.empty()) {
      topology::caida::write(graph, std::cout);
    } else {
      std::ofstream out(output);
      if (!out) {
        std::cerr << "cannot open " << output << " for writing\n";
        return 1;
      }
      topology::caida::write(graph, out);
      std::cerr << "wrote " << output << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
