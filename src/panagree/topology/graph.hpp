// AS-level Internet topology: the mixed graph G = (A, L<->, L^) of §III-A.
//
// Nodes are autonomous systems; undirected edges are (settlement-free)
// peering links and directed edges are provider->customer links. Every AS X
// exposes its provider set pi(X), peer set eps(X), and customer set gamma(X).
// Geographic attributes (PoPs, centroid, per-link facilities) support the
// geodistance analysis of §VI-B.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "panagree/geo/coordinates.hpp"
#include "panagree/util/error.hpp"
#include "panagree/util/pair_index.hpp"

namespace panagree::topology {

/// Dense AS identifier (index into the graph's node table).
using AsId = std::uint32_t;
/// Dense link identifier (index into the graph's link table).
using LinkId = std::size_t;

inline constexpr AsId kInvalidAs = static_cast<AsId>(-1);

/// Business relationship carried by a link.
enum class LinkType : std::uint8_t {
  kProviderCustomer,  ///< directed: money flows customer -> provider
  kPeering,           ///< undirected, settlement-free (§III-A)
};

/// Role of a neighbor Y as seen from X.
enum class NeighborRole : std::uint8_t { kProvider, kPeer, kCustomer };

/// An inter-AS link. For kProviderCustomer links, `a` is the provider and
/// `b` the customer; for kPeering links the order carries no meaning.
struct Link {
  AsId a = kInvalidAs;
  AsId b = kInvalidAs;
  LinkType type = LinkType::kPeering;
  /// Candidate interconnection facilities (city ids in a geo::World);
  /// the geodistance of a path minimizes over these (§VI-B).
  std::vector<std::size_t> facilities;
  /// Link capacity (degree-gravity model, §VI-C); 0 until assigned.
  double capacity = 0.0;

  [[nodiscard]] AsId other(AsId self) const {
    PANAGREE_ASSERT(self == a || self == b);
    return self == a ? b : a;
  }
};

/// Per-AS metadata.
struct AsInfo {
  std::string name;
  /// 1 = Tier-1 core, 2 = regional transit, 3 = stub/edge; 0 = unspecified.
  int tier = 0;
  /// Region index in a geo::World (generator-assigned).
  std::size_t region = 0;
  /// Points of presence (city ids in a geo::World).
  std::vector<std::size_t> pops;
  /// Center of gravity of the AS (spherical centroid of its PoPs), the
  /// paper's prefix-averaging artifact.
  geo::LatLng centroid;
  bool has_geo = false;
};

/// The AS graph. Construction is append-only: ASes and links can be added
/// but not removed, which keeps all ids stable.
class Graph {
 public:
  /// Adds an AS and returns its id. Name defaults to "AS<id>".
  AsId add_as(std::string name = {});

  /// Rebuilds a graph from its node and link tables - the bulk-load path
  /// of the storage layer's snapshot reader. Equivalent to replaying
  /// add_as/add_peering/add_provider_customer in id order (so adjacency
  /// rows come out in link-id order, exactly like the original
  /// construction) and then restoring the stored per-AS and per-link
  /// metadata. Validates names (unique, non-empty), link endpoints
  /// (in-range, no self-loops), and pair uniqueness; throws
  /// util::PreconditionError on violation.
  [[nodiscard]] static Graph restore(std::vector<AsInfo> infos,
                                     std::vector<Link> links);

  /// Adds a provider->customer link; rejects self-loops and duplicate pairs.
  LinkId add_provider_customer(AsId provider, AsId customer);

  /// Adds a peering link; rejects self-loops and duplicate pairs.
  LinkId add_peering(AsId x, AsId y);

  [[nodiscard]] std::size_t num_ases() const { return infos_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] Link& link(LinkId id);
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  [[nodiscard]] const AsInfo& info(AsId as) const;
  [[nodiscard]] AsInfo& info(AsId as);

  /// pi(X): providers of `as`.
  [[nodiscard]] const std::vector<AsId>& providers(AsId as) const;
  /// eps(X): peers of `as`.
  [[nodiscard]] const std::vector<AsId>& peers(AsId as) const;
  /// gamma(X): customers of `as` (excluding the virtual end-host stub).
  [[nodiscard]] const std::vector<AsId>& customers(AsId as) const;

  /// All neighbors of `as` in the order providers, peers, customers.
  /// Allocates a fresh vector per call - do NOT use in hot loops; iterate
  /// with for_each_neighbor, or compile a CompiledTopology snapshot and
  /// use its zero-copy entry spans instead.
  [[nodiscard]] std::vector<AsId> neighbors(AsId as) const;

  /// Zero-allocation neighbor visitation in the order providers, peers,
  /// customers: invokes `fn(neighbor)` for every neighbor of `as`.
  template <typename Fn>
  void for_each_neighbor(AsId as, Fn&& fn) const {
    util::require(as < adjacency_.size(),
                  "Graph::for_each_neighbor: AS out of range");
    const Adjacency& adj = adjacency_[as];
    for (const AsId n : adj.providers) {
      fn(n);
    }
    for (const AsId n : adj.peers) {
      fn(n);
    }
    for (const AsId n : adj.customers) {
      fn(n);
    }
  }

  /// Total neighbor count (node degree; used by the degree-gravity model).
  [[nodiscard]] std::size_t degree(AsId as) const;

  /// Link between x and y if one exists.
  [[nodiscard]] std::optional<LinkId> link_between(AsId x, AsId y) const;

  /// Role of y from x's perspective, if they are connected.
  [[nodiscard]] std::optional<NeighborRole> role_of(AsId x, AsId y) const;

  [[nodiscard]] bool are_peers(AsId x, AsId y) const;
  [[nodiscard]] bool is_provider_of(AsId provider, AsId customer) const;
  [[nodiscard]] bool is_customer_of(AsId customer, AsId provider) const;

  /// True iff the provider->customer edges form a DAG (no provider cycles),
  /// as expected of a sane Internet hierarchy.
  [[nodiscard]] bool provider_hierarchy_is_acyclic() const;

  /// True iff the union graph (all links, undirected) is connected.
  [[nodiscard]] bool is_connected() const;

  /// Looks up an AS by name; kInvalidAs if absent.
  [[nodiscard]] AsId find_by_name(const std::string& name) const;

 private:
  struct Adjacency {
    std::vector<AsId> providers;
    std::vector<AsId> peers;
    std::vector<AsId> customers;
  };

  static std::uint64_t pair_key(AsId x, AsId y);
  void check_new_link(AsId x, AsId y) const;

  std::vector<AsInfo> infos_;
  std::vector<Adjacency> adjacency_;
  std::vector<Link> links_;
  /// Flat (lo, hi) pair -> link id index (see util/pair_index.hpp; the
  /// unordered_map it replaced dominated snapshot-restore time).
  util::PairIndex link_index_;
  std::unordered_map<std::string, AsId> name_index_;
};

/// Parses "provider", "peer", or "customer" (used by gadget/test builders).
[[nodiscard]] const char* to_string(NeighborRole role);
[[nodiscard]] const char* to_string(LinkType type);

/// The customer cone of `as`: itself plus everything reachable over
/// provider->customer edges (the ASes whose traffic `as` carries as a
/// transit). Sorted ascending.
[[nodiscard]] std::vector<AsId> customer_cone(const Graph& graph, AsId as);

}  // namespace panagree::topology
