// The Nash bargaining objective (Eq. 8): maximize u_X(a) * u_Y(a) subject
// to both utilities being non-negative. The Nash product is maximized only
// at Pareto-optimal, fair utility pairs, which is why the paper adopts it
// for structuring agreements.
#pragma once

namespace panagree::bargain {

/// The Nash product u_x * u_y. Meaningful as an objective only on the
/// feasible region u_x, u_y >= 0.
[[nodiscard]] double nash_product(double u_x, double u_y);

/// True iff the pair satisfies the feasibility constraints of Eq. (8).
[[nodiscard]] bool is_feasible(double u_x, double u_y, double epsilon = 0.0);

}  // namespace panagree::bargain
