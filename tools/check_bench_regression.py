#!/usr/bin/env python3
"""Compare emitted BENCH_*.json results against committed baselines.

Usage:
  tools/check_bench_regression.py --baseline bench/baselines \
      --current bench-out [--threshold 0.30] [--calibrate] [--min-ms 0.01]

Understands both result schemas used in this repo:
  * google-benchmark JSON: {"benchmarks": [{"name", "real_time",
    "time_unit", ...}]} (bench_perf_micro)
  * the flat bench_json.hpp schema: {"results": [{"name", "wall_ms",
    ...}]} (plain-main benches)

Baselines are committed from a developer machine, so absolute wall times
are not comparable across hosts. With --calibrate, the per-benchmark
ratios current/baseline are first normalized by their median across the
whole suite - a uniform machine-speed difference cancels out, and a
benchmark fails only when it regressed by more than --threshold relative
to the rest of the suite. Without --calibrate the comparison is raw.

Exit status: 0 when no benchmark regresses and every baseline name is
covered by the current run; 1 otherwise.
"""

import argparse
import json
import pathlib
import statistics
import sys

TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def load_results(path):
    """Returns {benchmark name: wall ms} for either schema."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    results = {}
    if "benchmarks" in data:  # google-benchmark reporter
        for entry in data["benchmarks"]:
            # Skip aggregate rows (mean/median/stddev of repetitions).
            if entry.get("run_type", "iteration") != "iteration":
                continue
            scale = TIME_UNIT_TO_MS.get(entry.get("time_unit", "ns"))
            if scale is None:
                raise ValueError(
                    f"{path}: unknown time_unit in {entry['name']}")
            results[entry["name"]] = float(entry["real_time"]) * scale
    elif "results" in data:  # bench_json.hpp writer
        for entry in data["results"]:
            results[entry["name"]] = float(entry["wall_ms"])
    else:
        raise ValueError(f"{path}: neither google-benchmark nor "
                         "bench_json.hpp schema")
    return results


def collect(directory):
    """Returns {"file stem/benchmark name": wall ms} over BENCH_*.json."""
    collected = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        for name, wall_ms in load_results(path).items():
            collected[f"{path.stem}/{name}"] = wall_ms
    return collected


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory with committed BENCH_*.json")
    parser.add_argument("--current", required=True,
                        help="directory with freshly emitted BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated relative wall-time "
                             "regression (default 0.30 = 30%%)")
    parser.add_argument("--calibrate", action="store_true",
                        help="normalize by the median current/baseline "
                             "ratio to cancel machine-speed differences")
    parser.add_argument("--min-ms", type=float, default=0.01,
                        help="ignore benchmarks whose baseline is below "
                             "this wall time (noise floor, default 0.01)")
    args = parser.parse_args()

    baseline = collect(args.baseline)
    current = collect(args.current)
    if not baseline:
        print(f"error: no BENCH_*.json baselines under {args.baseline}",
              file=sys.stderr)
        return 1

    missing = sorted(name for name in baseline if name not in current)
    new = sorted(name for name in current if name not in baseline)
    common = sorted(name for name in baseline
                    if name in current and baseline[name] >= args.min_ms)
    skipped = sorted(name for name in baseline
                     if name in current and baseline[name] < args.min_ms)

    factor = 1.0
    if args.calibrate and common:
        factor = statistics.median(current[name] / baseline[name]
                                   for name in common)
        print(f"calibration: median current/baseline ratio = {factor:.3f} "
              f"(machine-speed normalization)")

    failures = []
    width = max((len(name) for name in common), default=20)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'current':>10}  "
          f"{'ratio':>7}  verdict")
    for name in common:
        base_ms = baseline[name] * factor
        cur_ms = current[name]
        ratio = cur_ms / base_ms
        verdict = "ok"
        if ratio > 1.0 + args.threshold:
            verdict = f"REGRESSION (> +{args.threshold:.0%})"
            failures.append(name)
        elif ratio < 1.0 - args.threshold:
            verdict = "improved (consider refreshing the baseline)"
        print(f"{name:<{width}}  {base_ms:>10.3f}  {cur_ms:>10.3f}  "
              f"{ratio:>7.2f}  {verdict}")

    for name in skipped:
        print(f"note: {name} below the {args.min_ms} ms noise floor, "
              "not compared")
    for name in new:
        print(f"note: {name} has no committed baseline - run "
              "tools/bench_suite.sh and commit it under bench/baselines/")
    if missing:
        for name in missing:
            print(f"error: baseline {name} missing from the current run "
                  "(suite coverage shrank)", file=sys.stderr)
    if failures:
        print(f"error: {len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(failures)}",
              file=sys.stderr)
    return 1 if failures or missing else 0


if __name__ == "__main__":
    sys.exit(main())
