#include "panagree/bgp/policy.hpp"

#include <algorithm>
#include <functional>

namespace panagree::bgp {

namespace {

enum class Phase { kClimbing, kDescending };

/// Relationship class used for GRC ranking: routes learned from customers
/// beat peer routes beat provider routes.
int route_class(const Graph& graph, const Path& path) {
  if (path.size() < 2) {
    return 0;
  }
  switch (*graph.role_of(path[0], path[1])) {
    case NeighborRole::kCustomer:
      return 0;
    case NeighborRole::kPeer:
      return 1;
    case NeighborRole::kProvider:
      return 2;
  }
  return 3;
}

struct StepRule {
  /// Returns true if the DFS may extend `path` (ending at `cur`, in `phase`)
  /// with the step cur -> next, and yields the next phase.
  std::function<bool(AsId cur, AsId next, Phase phase, Phase& next_phase)>
      allowed;
};

/// Enumerates simple paths src -> dst whose steps satisfy `rule`, up to
/// `max_len` ASes.
std::vector<Path> enumerate_paths(const Graph& graph, AsId src, AsId dst,
                                  std::size_t max_len, const StepRule& rule) {
  std::vector<Path> out;
  if (src == dst) {
    out.push_back({src});
    return out;
  }
  std::vector<bool> on_path(graph.num_ases(), false);
  Path path{src};
  on_path[src] = true;

  const std::function<void(AsId, Phase)> dfs = [&](AsId cur, Phase phase) {
    if (path.size() >= max_len) {
      return;
    }
    for (const AsId next : graph.neighbors(cur)) {
      if (on_path[next]) {
        continue;
      }
      Phase next_phase = phase;
      if (!rule.allowed(cur, next, phase, next_phase)) {
        continue;
      }
      path.push_back(next);
      if (next == dst) {
        out.push_back(path);
      } else {
        on_path[next] = true;
        dfs(next, next_phase);
        on_path[next] = false;
      }
      path.pop_back();
    }
  };
  dfs(src, Phase::kClimbing);
  return out;
}

/// The valley-free step rule: climb via providers, cross at most one peering
/// link, then only descend via customers.
bool valley_free_step(const Graph& graph, AsId cur, AsId next, Phase phase,
                      Phase& next_phase) {
  const auto role = graph.role_of(cur, next);
  PANAGREE_ASSERT(role.has_value());
  switch (*role) {
    case NeighborRole::kProvider:  // climbing
      if (phase != Phase::kClimbing) {
        return false;
      }
      next_phase = Phase::kClimbing;
      return true;
    case NeighborRole::kPeer:  // the single allowed plateau step
      if (phase != Phase::kClimbing) {
        return false;
      }
      next_phase = Phase::kDescending;
      return true;
    case NeighborRole::kCustomer:  // descending
      next_phase = Phase::kDescending;
      return true;
  }
  return false;
}

void rank_paths(const Graph& graph, std::vector<Path>& paths,
                bool shorter_is_better) {
  std::sort(paths.begin(), paths.end(), [&](const Path& a, const Path& b) {
    const int ca = route_class(graph, a);
    const int cb = route_class(graph, b);
    if (ca != cb) {
      return ca < cb;
    }
    if (shorter_is_better && a.size() != b.size()) {
      return a.size() < b.size();
    }
    return a < b;
  });
}

}  // namespace

bool is_valley_free(const Graph& graph, const std::vector<AsId>& path) {
  if (path.size() <= 1) {
    return true;
  }
  Phase phase = Phase::kClimbing;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!graph.role_of(path[i], path[i + 1]).has_value()) {
      return false;  // not even a link
    }
    Phase next_phase = phase;
    if (!valley_free_step(graph, path[i], path[i + 1], phase, next_phase)) {
      return false;
    }
    phase = next_phase;
  }
  return true;
}

bool grc_forwarding_allowed(const Graph& graph,
                            const std::vector<AsId>& path) {
  if (path.size() <= 2) {
    return true;  // no transit AS involved
  }
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    const bool prev_is_customer =
        graph.role_of(path[i], path[i - 1]) == NeighborRole::kCustomer;
    const bool next_is_customer =
        graph.role_of(path[i], path[i + 1]) == NeighborRole::kCustomer;
    if (!prev_is_customer && !next_is_customer) {
      return false;
    }
  }
  return true;
}

SppInstance make_gao_rexford_spp(const Graph& graph, AsId destination,
                                 const GaoRexfordOptions& options) {
  util::require(destination < graph.num_ases(),
                "make_gao_rexford_spp: destination out of range");
  SppInstance instance(graph.num_ases(), destination);
  const StepRule rule{[&graph](AsId cur, AsId next, Phase phase,
                               Phase& next_phase) {
    return valley_free_step(graph, cur, next, phase, next_phase);
  }};
  for (AsId node = 0; node < graph.num_ases(); ++node) {
    if (node == destination) {
      continue;
    }
    auto paths = enumerate_paths(graph, node, destination,
                                 options.max_path_length, rule);
    rank_paths(graph, paths, options.shorter_is_better);
    instance.set_permitted(node, std::move(paths));
  }
  return instance;
}

SppInstance make_mutual_transit_spp(
    const Graph& graph, AsId destination,
    const std::vector<std::pair<AsId, AsId>>& mutual_transit,
    const GaoRexfordOptions& options) {
  util::require(destination < graph.num_ases(),
                "make_mutual_transit_spp: destination out of range");
  const auto is_mutual = [&mutual_transit](AsId x, AsId y) {
    for (const auto& [a, b] : mutual_transit) {
      if ((a == x && b == y) || (a == y && b == x)) {
        return true;
      }
    }
    return false;
  };
  // The mutual-transit agreement lets a party re-climb to its providers
  // right after crossing the agreement peering link: the partner's traffic
  // is forwarded into the party's providers (GRC violation of §II).
  const StepRule rule{[&graph, &is_mutual](AsId cur, AsId next, Phase phase,
                                           Phase& next_phase) {
    const auto role = graph.role_of(cur, next);
    PANAGREE_ASSERT(role.has_value());
    if (*role == NeighborRole::kPeer && phase == Phase::kClimbing &&
        is_mutual(cur, next)) {
      // Crossing the agreement link keeps the "climbing" right: the partner
      // may hand the traffic to its own provider next (a strict superset of
      // the plain valley-free peer step, which would force a descent).
      next_phase = Phase::kClimbing;
      return true;
    }
    return valley_free_step(graph, cur, next, phase, next_phase);
  }};
  SppInstance instance(graph.num_ases(), destination);
  for (AsId node = 0; node < graph.num_ases(); ++node) {
    if (node == destination) {
      continue;
    }
    auto paths = enumerate_paths(graph, node, destination,
                                 options.max_path_length, rule);
    rank_paths(graph, paths, options.shorter_is_better);
    instance.set_permitted(node, std::move(paths));
  }
  return instance;
}

}  // namespace panagree::bgp
