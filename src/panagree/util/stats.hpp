// Descriptive statistics and empirical CDFs.
//
// The paper's evaluation reports distributions (Figures 2-6) as CDFs over
// per-AS or per-AS-pair metrics; Cdf and summary helpers here are the shared
// vocabulary of the bench harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace panagree::util {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes mean of a sample (0 for empty samples).
[[nodiscard]] double mean(std::span<const double> values);

/// Computes the population standard deviation (0 for fewer than 2 values).
[[nodiscard]] double stddev(std::span<const double> values);

/// Linear-interpolation percentile; q in [0, 1]. Sample must be non-empty.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Computes all summary statistics in one pass (plus a sort for the median).
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Empirical cumulative distribution function of a sample.
///
/// Stores the sorted sample; value_at_fraction() inverts the CDF and
/// fraction_below() evaluates it, matching how the paper reads its figures
/// ("20% of ASes have more than 45,000 paths").
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> values);

  [[nodiscard]] bool empty() const { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Fraction of the sample that is <= x.
  [[nodiscard]] double fraction_at_or_below(double x) const;

  /// Fraction of the sample that is strictly greater than x.
  [[nodiscard]] double fraction_above(double x) const;

  /// Inverse CDF: smallest sample value v such that F(v) >= q, q in (0, 1].
  [[nodiscard]] double value_at_fraction(double q) const;

  /// Sorted underlying sample.
  [[nodiscard]] const std::vector<double>& sorted_values() const {
    return sorted_;
  }

  /// Evaluates the CDF at each of the given x positions (for plotting rows).
  [[nodiscard]] std::vector<double> evaluate_at(
      std::span<const double> xs) const;

 private:
  std::vector<double> sorted_;
};

/// Builds n log-spaced positions between lo and hi inclusive (lo, hi > 0).
[[nodiscard]] std::vector<double> log_space(double lo, double hi,
                                            std::size_t n);

/// Builds n linearly spaced positions between lo and hi inclusive.
[[nodiscard]] std::vector<double> lin_space(double lo, double hi,
                                            std::size_t n);

}  // namespace panagree::util
