// Tests for failure what-ifs: link-down deltas through the overlay and
// the incremental sweep (remove-then-re-add identity, byte-identity at
// every thread count), the k-link failure universe (exhaustive order,
// deterministic sampling), and the surviving-diversity headline metric
// against a brute-force recompile of every failed graph.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "panagree/diversity/length3.hpp"
#include "panagree/scenario/failure.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/program.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/error.hpp"

namespace panagree::scenario {
namespace {

using topology::CompiledTopology;
using topology::Graph;
using topology::LinkType;

/// Applies a Delta the expensive way: rebuild the Graph from scratch with
/// removed links dropped and added links appended.
Graph mutate(const Graph& base, const Delta& delta) {
  Graph out;
  for (AsId as = 0; as < base.num_ases(); ++as) {
    const AsId id = out.add_as();
    out.info(id) = base.info(as);
  }
  const auto removed = [&](AsId x, AsId y) {
    for (const auto& [a, b] : delta.remove) {
      if ((a == x && b == y) || (a == y && b == x)) {
        return true;
      }
    }
    return false;
  };
  for (const auto& link : base.links()) {
    if (removed(link.a, link.b)) {
      continue;
    }
    if (link.type == LinkType::kProviderCustomer) {
      out.add_provider_customer(link.a, link.b);
    } else {
      out.add_peering(link.a, link.b);
    }
  }
  for (const LinkChange& change : delta.add) {
    if (change.type == LinkType::kProviderCustomer) {
      out.add_provider_customer(change.a, change.b);
    } else {
      out.add_peering(change.a, change.b);
    }
  }
  return out;
}

Graph star_graph() {
  // 0 provides to 1, 2, 3; 4 peers with 1.
  Graph g;
  for (int i = 0; i < 5; ++i) {
    g.add_as();
  }
  g.add_provider_customer(0, 1);
  g.add_provider_customer(0, 2);
  g.add_provider_customer(0, 3);
  g.add_peering(1, 4);
  return g;
}

topology::GeneratedTopology generated(std::size_t num_ases,
                                      std::uint64_t seed) {
  return topology::generate_internet([&] {
    topology::GeneratorParams params;
    params.num_ases = num_ases;
    params.tier1_count = 4;
    params.seed = seed;
    return params;
  }());
}

std::vector<AsId> every_source(const Graph& g) {
  std::vector<AsId> sources(g.num_ases());
  for (AsId as = 0; as < g.num_ases(); ++as) {
    sources[as] = as;
  }
  return sources;
}

TEST(FailureSets, ExhaustiveSingleLinkUniverseInLinkIdOrder) {
  const Graph g = star_graph();
  const CompiledTopology c(g);
  const FailureSets sets = failure_sets(c, 1, 0, 1);
  EXPECT_FALSE(sets.sampled);
  EXPECT_EQ(sets.universe, g.num_links());
  ASSERT_EQ(sets.sets.size(), g.num_links());
  for (std::size_t i = 0; i < sets.sets.size(); ++i) {
    const Delta& delta = sets.sets[i];
    EXPECT_TRUE(delta.add.empty());
    ASSERT_EQ(delta.remove.size(), 1u);
    EXPECT_EQ(delta.remove[0],
              std::make_pair(g.links()[i].a, g.links()[i].b));
  }
}

TEST(FailureSets, ExhaustiveK2CountsTheBinomial) {
  const Graph g = star_graph();
  const CompiledTopology c(g);
  const FailureSets sets = failure_sets(c, 2, 0, 1);
  EXPECT_FALSE(sets.sampled);
  EXPECT_EQ(sets.universe, 6u);  // C(4, 2)
  ASSERT_EQ(sets.sets.size(), 6u);
  // Every set removes two distinct links; all sets are distinct.
  std::set<std::vector<std::pair<AsId, AsId>>> unique;
  for (const Delta& delta : sets.sets) {
    ASSERT_EQ(delta.remove.size(), 2u);
    EXPECT_NE(delta.remove[0], delta.remove[1]);
    EXPECT_TRUE(unique.insert(delta.remove).second);
  }
}

TEST(FailureSets, SamplingIsDeterministicAndDistinct) {
  const auto topo = generated(120, 7);
  const CompiledTopology c(topo.graph);
  const std::size_t budget = 10;
  const FailureSets a = failure_sets(c, 2, budget, 99);
  const FailureSets b = failure_sets(c, 2, budget, 99);
  ASSERT_EQ(a.sets.size(), budget);
  EXPECT_TRUE(a.sampled);
  ASSERT_EQ(b.sets.size(), budget);
  std::set<std::vector<std::pair<AsId, AsId>>> unique;
  for (std::size_t i = 0; i < budget; ++i) {
    EXPECT_EQ(a.sets[i].remove, b.sets[i].remove) << "set " << i;
    EXPECT_TRUE(unique.insert(a.sets[i].remove).second) << "set " << i;
  }
}

TEST(FailureSets, DegenerateUniversesAreEmpty) {
  const Graph g = star_graph();
  const CompiledTopology c(g);
  EXPECT_TRUE(failure_sets(c, 0, 0, 1).sets.empty());
  const FailureSets too_many = failure_sets(c, 5, 0, 1);  // > num_links
  EXPECT_EQ(too_many.universe, 0u);
  EXPECT_TRUE(too_many.sets.empty());
}

TEST(AsFailure, DeltaDarkensEveryIncidentLink) {
  const Graph g = star_graph();
  const CompiledTopology c(g);
  const Delta delta = as_failure_delta(c, 0);
  ASSERT_EQ(delta.remove.size(), 3u);
  EXPECT_TRUE(delta.add.empty());
  // Applying it leaves 0 an island: the overlay rows match the pruned
  // recompiled graph.
  Overlay overlay(c);
  overlay.apply(delta);
  const Graph pruned_graph = mutate(g, delta);
  const CompiledTopology pruned(pruned_graph);
  for (AsId as = 0; as < c.num_ases(); ++as) {
    std::vector<std::pair<AsId, topology::NeighborRole>> overlaid;
    overlay.for_each_entry(as, [&](const Overlay::Entry& e) {
      overlaid.emplace_back(e.neighbor, e.role);
    });
    std::vector<std::pair<AsId, topology::NeighborRole>> expected;
    for (const auto& e : pruned.entries(as)) {
      expected.emplace_back(e.neighbor, e.role);
    }
    EXPECT_EQ(overlaid, expected) << "AS " << as;
  }
}

TEST(FailureSweep, RemoveThenReAddIsTheSweepIdentity) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  const std::vector<AsId> sources = every_source(topo.graph);
  const auto enumerate = [](const Overlay& overlay, AsId src) {
    return enumerate_length3(overlay, src);
  };

  const auto& links = topo.graph.links();
  const auto it = std::find_if(links.begin(), links.end(), [](const auto& l) {
    return l.type == LinkType::kPeering;
  });
  ASSERT_NE(it, links.end());
  Delta rewire;
  rewire.remove.emplace_back(it->a, it->b);
  rewire.add.push_back({it->a, it->b, LinkType::kPeering});

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepConfig config;
    config.threads = threads;
    config.dirty_radius = kLength3DirtyRadius;
    SweepRunner<SourcePathSet> runner(c, sources, config);
    runner.prime(enumerate);
    const std::vector<const SourcePathSet*> results =
        runner.evaluate_refs(rewire, enumerate);
    ASSERT_EQ(results.size(), sources.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(*results[i], runner.baseline()[i])
          << "source " << sources[i] << " at " << threads << " threads";
    }
  }
}

TEST(CountDiversity, MatchesASetBasedRecount) {
  const auto topo = generated(120, 7);
  const CompiledTopology c(topo.graph);
  const std::vector<AsId> sources = every_source(topo.graph);
  SweepRunner<SourcePathSet> runner(c, sources, SweepConfig{});
  runner.prime([](const Overlay& overlay, AsId src) {
    return enumerate_length3(overlay, src);
  });

  std::vector<const SourcePathSet*> refs;
  for (const SourcePathSet& sets : runner.baseline()) {
    refs.push_back(&sets);
  }
  const DiversityCounts counts = count_diversity(refs);

  std::size_t grc_paths = 0;
  std::size_t ma_paths = 0;
  std::set<std::pair<AsId, AsId>> grc_pairs;
  std::set<std::pair<AsId, AsId>> ma_pairs;
  for (const SourcePathSet* result : refs) {
    grc_paths += result->grc().size();
    ma_paths += result->ma().size();
    for (const auto& path : result->grc()) {
      grc_pairs.emplace(path.src, path.dst);
    }
    for (const auto& path : result->ma()) {
      ma_pairs.emplace(path.src, path.dst);
    }
  }
  std::size_t ma_extra = 0;
  for (const auto& pair : ma_pairs) {
    if (!grc_pairs.contains(pair)) {
      ++ma_extra;
    }
  }
  EXPECT_EQ(counts.grc_paths, grc_paths);
  EXPECT_EQ(counts.ma_paths, ma_paths);
  EXPECT_EQ(counts.grc_pairs, grc_pairs.size());
  EXPECT_EQ(counts.ma_extra_pairs, ma_extra);
  EXPECT_EQ(counts.total_paths(), grc_paths + ma_paths);
  EXPECT_EQ(counts.reachable_pairs(), grc_pairs.size() + ma_extra);
  EXPECT_GT(counts.total_paths(), 0u);
}

TEST(FailureDiversity, RequiresAPrimedRunner) {
  const Graph g = star_graph();
  const CompiledTopology c(g);
  SweepRunner<SourcePathSet> runner(c, {0, 1}, SweepConfig{});
  const FailureSets sets = failure_sets(c, 1, 0, 1);
  EXPECT_THROW((void)failure_diversity(runner, Delta{}, sets.sets),
               util::PreconditionError);
}

TEST(FailureDiversity, EqualsBruteForceRecompileOfEveryFailedGraph) {
  const auto topo = generated(80, 21);
  const CompiledTopology c(topo.graph);
  const std::vector<AsId> sources = every_source(topo.graph);
  SweepConfig config;
  config.threads = 2;
  config.dirty_radius = kLength3DirtyRadius;
  SweepRunner<SourcePathSet> runner(c, sources, config);
  runner.prime([](const Overlay& overlay, AsId src) {
    return enumerate_length3(overlay, src);
  });
  const FailureSets failures = failure_sets(c, 1, 8, 5);
  ASSERT_FALSE(failures.sets.empty());

  const auto candidates = candidate_peering_deltas(c, 2, 5);
  ASSERT_FALSE(candidates.empty());
  std::vector<Delta> deployments;
  deployments.push_back(Delta{});  // the do-nothing baseline
  deployments.push_back(candidates.front());

  for (const Delta& deployment : deployments) {
    const FailureDiversity fast =
        failure_diversity(runner, deployment, failures.sets);

    // Brute force: recompile each failed graph from scratch and enumerate
    // every source on it.
    FailureDiversity slow;
    slow.sets = failures.sets.size();
    double paths_sum = 0.0;
    double pairs_sum = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < failures.sets.size(); ++i) {
      const Delta delta = deployment.empty()
                              ? failures.sets[i]
                              : compose(deployment, failures.sets[i]);
      const Graph failed_graph = mutate(topo.graph, delta);
      const CompiledTopology failed(failed_graph);
      const Overlay view(failed);
      std::vector<SourcePathSet> results;
      results.reserve(sources.size());
      for (const AsId src : sources) {
        results.push_back(enumerate_length3(view, src));
      }
      std::vector<const SourcePathSet*> refs;
      for (const SourcePathSet& sets : results) {
        refs.push_back(&sets);
      }
      const DiversityCounts counts = count_diversity(refs);
      paths_sum += static_cast<double>(counts.total_paths());
      pairs_sum += static_cast<double>(counts.reachable_pairs());
      if (first || counts.total_paths() < slow.min.total_paths()) {
        slow.min = counts;
        slow.worst_set = i;
        first = false;
      }
    }
    slow.mean_paths = paths_sum / static_cast<double>(failures.sets.size());
    slow.mean_pairs = pairs_sum / static_cast<double>(failures.sets.size());

    EXPECT_EQ(fast.sets, slow.sets);
    EXPECT_EQ(fast.min, slow.min);
    EXPECT_EQ(fast.worst_set, slow.worst_set);
    EXPECT_DOUBLE_EQ(fast.mean_paths, slow.mean_paths);
    EXPECT_DOUBLE_EQ(fast.mean_pairs, slow.mean_pairs);
  }
}

TEST(FailureDiversity, ByteIdenticalAtEveryThreadCount) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  const std::vector<AsId> sources = every_source(topo.graph);
  const FailureSets failures = failure_sets(c, 1, 6, 5);
  const auto candidates = candidate_peering_deltas(c, 1, 5);
  ASSERT_FALSE(candidates.empty());

  std::vector<FailureDiversity> per_thread;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SweepConfig config;
    config.threads = threads;
    config.dirty_radius = kLength3DirtyRadius;
    SweepRunner<SourcePathSet> runner(c, sources, config);
    runner.prime([](const Overlay& overlay, AsId src) {
      return enumerate_length3(overlay, src);
    });
    per_thread.push_back(
        failure_diversity(runner, candidates.front(), failures.sets));
  }
  for (std::size_t i = 1; i < per_thread.size(); ++i) {
    EXPECT_EQ(per_thread[i].min, per_thread[0].min);
    EXPECT_EQ(per_thread[i].worst_set, per_thread[0].worst_set);
    EXPECT_EQ(per_thread[i].mean_paths, per_thread[0].mean_paths);
    EXPECT_EQ(per_thread[i].mean_pairs, per_thread[0].mean_pairs);
  }
}

}  // namespace
}  // namespace panagree::scenario
