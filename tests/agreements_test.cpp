#include <gtest/gtest.h>

#include <algorithm>

#include "panagree/core/agreements/agreement.hpp"
#include "panagree/core/agreements/enumeration.hpp"
#include "panagree/core/agreements/extension.hpp"
#include "panagree/core/agreements/mutuality.hpp"
#include "panagree/core/agreements/peering.hpp"
#include "panagree/core/agreements/utility.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::agreements {
namespace {

using topology::make_fig1;

/// The paper's agreement a = [D(^{A}); E(^{B}, ->{F})] (Eq. 6).
Agreement make_paper_agreement(const topology::Fig1& t) {
  Agreement a;
  a.grant_x.grantor = t.D;
  a.grant_x.providers = {t.A};
  a.grant_y.grantor = t.E;
  a.grant_y.providers = {t.B};
  a.grant_y.peers = {t.F};
  return a;
}

TEST(Agreement, PaperAgreementValidatesAndViolatesGrc) {
  const auto t = make_fig1();
  const Agreement a = make_paper_agreement(t);
  EXPECT_NO_THROW(a.validate(t.graph));
  EXPECT_TRUE(a.violates_grc());
}

TEST(Agreement, ClassicPeeringDoesNotViolateGrc) {
  const auto t = make_fig1();
  const Agreement ap = make_classic_peering(t.graph, t.D, t.E);
  EXPECT_NO_THROW(ap.validate(t.graph));
  EXPECT_FALSE(ap.violates_grc());
  // ap = [D(v{H}); E(v{I})] from §III-B1.
  EXPECT_EQ(ap.grant_x.customers, std::vector<topology::AsId>{t.H});
  EXPECT_EQ(ap.grant_y.customers, std::vector<topology::AsId>{t.I});
}

TEST(Agreement, ValidationCatchesForeignNeighbors) {
  const auto t = make_fig1();
  Agreement a;
  a.grant_x.grantor = t.D;
  a.grant_x.providers = {t.B};  // B is not D's provider
  a.grant_y.grantor = t.E;
  EXPECT_THROW(a.validate(t.graph), util::PreconditionError);
}

TEST(Agreement, ValidationCatchesGrantingThePartner) {
  const auto t = make_fig1();
  Agreement a;
  a.grant_x.grantor = t.D;
  a.grant_x.peers = {t.E};  // cannot grant the partner itself
  a.grant_y.grantor = t.E;
  EXPECT_THROW(a.validate(t.graph), util::PreconditionError);
}

TEST(Agreement, AllMergesAndDeduplicates) {
  AccessGrant g;
  g.grantor = 0;
  g.providers = {3, 1};
  g.peers = {2, 3};
  g.customers = {4};
  EXPECT_EQ(g.all(), (std::vector<topology::AsId>{1, 2, 3, 4}));
}

TEST(Agreement, ToStringShowsTheEq6Form) {
  const auto t = make_fig1();
  const std::string s = make_paper_agreement(t).to_string(t.graph);
  EXPECT_EQ(s, "[D(^{A}); E(^{B}, ->{F})]");
}

TEST(Agreement, NewSegmentsForEachParty) {
  const auto t = make_fig1();
  const Agreement a = make_paper_agreement(t);
  // D gains D-E-B and D-E-F (§III-B3); E gains E-D-A.
  const auto d_segments = new_segments_for(a, t.D);
  ASSERT_EQ(d_segments.size(), 2u);
  EXPECT_NE(std::find(d_segments.begin(), d_segments.end(),
                      std::vector<topology::AsId>({t.D, t.E, t.B})),
            d_segments.end());
  EXPECT_NE(std::find(d_segments.begin(), d_segments.end(),
                      std::vector<topology::AsId>({t.D, t.E, t.F})),
            d_segments.end());
  const auto e_segments = new_segments_for(a, t.E);
  ASSERT_EQ(e_segments.size(), 1u);
  EXPECT_EQ(e_segments[0], (std::vector<topology::AsId>{t.E, t.D, t.A}));
}

TEST(Agreement, CrossingsScopeSourcesToTheCustomerCone) {
  const auto t = make_fig1();
  const Agreement a = make_paper_agreement(t);
  const auto crossings = to_crossings(a, t.graph);
  // Find the crossing at E from D to B.
  const auto it = std::find_if(
      crossings.begin(), crossings.end(), [&](const pan::Crossing& c) {
        return c.at == t.E && c.from == t.D && c.to == t.B;
      });
  ASSERT_NE(it, crossings.end());
  // D's customer cone is {D, H}: H may use the extended path, A may not.
  EXPECT_TRUE(it->allowed_sources.contains(t.D));
  EXPECT_TRUE(it->allowed_sources.contains(t.H));
  EXPECT_FALSE(it->allowed_sources.contains(t.A));
}

// -------------------------------------------------------------- mutuality

TEST(Mutuality, Fig1DEGrantsAllProvidersAndPeers) {
  const auto t = make_fig1();
  const Agreement ma = make_mutuality_agreement(t.graph, t.D, t.E);
  // §VI rule: D grants providers {A} and peers {C} (E excluded as partner);
  // E grants providers {B} and peers {F}.
  EXPECT_EQ(ma.grant_x.providers, std::vector<topology::AsId>{t.A});
  EXPECT_EQ(ma.grant_x.peers, std::vector<topology::AsId>{t.C});
  EXPECT_EQ(ma.grant_y.providers, std::vector<topology::AsId>{t.B});
  EXPECT_EQ(ma.grant_y.peers, std::vector<topology::AsId>{t.F});
  EXPECT_TRUE(ma.violates_grc());
  EXPECT_NO_THROW(ma.validate(t.graph));
}

TEST(Mutuality, ExcludesBeneficiaryCustomers) {
  // Build: x peers y; y's provider p is also a customer of x -> excluded.
  topology::Graph g;
  const auto x = g.add_as("x");
  const auto y = g.add_as("y");
  const auto p = g.add_as("p");
  g.add_peering(x, y);
  g.add_provider_customer(p, y);  // p provides y
  g.add_provider_customer(x, p);  // p is x's customer
  const Agreement ma = make_mutuality_agreement(g, x, y);
  EXPECT_TRUE(ma.grant_y.providers.empty());
}

TEST(Mutuality, RequiresPeers) {
  const auto t = make_fig1();
  EXPECT_THROW((void)make_mutuality_agreement(t.graph, t.A, t.D),
               util::PreconditionError);
}

TEST(Mutuality, GainMatchesGrantSize) {
  const auto t = make_fig1();
  const Agreement ma = make_mutuality_agreement(t.graph, t.D, t.E);
  EXPECT_EQ(ma_gain_for(t.graph, t.D, t.E), ma.grant_y.all().size());
  EXPECT_EQ(ma_gain_for(t.graph, t.E, t.D), ma.grant_x.all().size());
}

// ------------------------------------------------------------ enumeration

TEST(Enumeration, OneMaPerPeeringLink) {
  const auto t = make_fig1();
  const auto mas = enumerate_all_mas(t.graph);
  // Peerings: A-B, C-D, D-E, E-F, F-G. The Tier-1 pair A-B has nothing to
  // grant (no providers, no other peers), so its MA is empty and skipped.
  EXPECT_EQ(mas.size(), 4u);
  for (const Agreement& a : mas) {
    EXPECT_NO_THROW(a.validate(t.graph));
  }
}

TEST(Enumeration, RankedMasAreSortedByGain) {
  topology::GeneratorParams params;
  params.num_ases = 400;
  params.tier1_count = 4;
  params.seed = 11;
  const auto topo = topology::generate_internet(params);
  for (topology::AsId as = 0; as < 50; ++as) {
    const auto ranked = rank_mas_for(topo.graph, as);
    for (std::size_t i = 0; i + 1 < ranked.size(); ++i) {
      EXPECT_GE(ranked[i].new_destinations, ranked[i + 1].new_destinations);
    }
    EXPECT_EQ(ranked.size(), topo.graph.peers(as).size());
  }
}

// ---------------------------------------------------------------- utility

TEST(Utility, RerouteSavesProviderCostForD) {
  // §III-B2 intuition: rerouting D's traffic to B over E (agreement path
  // DEB) avoids D's provider A, cutting provider charges.
  const auto t = make_fig1();
  econ::Economy economy(t.graph);
  economy.set_link_pricing(t.A, t.D, econ::PricingFunction::per_unit(2.0));
  economy.set_link_pricing(t.B, t.E, econ::PricingFunction::per_unit(2.0));

  econ::TrafficAllocation base;
  base.add_path_flow(std::vector<topology::AsId>{t.D, t.A, t.B}, 10.0);

  TrafficShift shift;
  shift.reroutes.push_back(Reroute{{t.D, t.A, t.B}, {t.D, t.E, t.B}, 10.0});

  const AgreementEvaluator evaluator(economy, base);
  // D stops paying A for 10 units at 2.0/unit.
  EXPECT_DOUBLE_EQ(evaluator.utility_change(t.D, shift), 20.0);
  // E newly carries D's traffic to its provider B and pays for it.
  EXPECT_DOUBLE_EQ(evaluator.utility_change(t.E, shift), -20.0);
  EXPECT_DOUBLE_EQ(evaluator.joint_utility_change(t.D, t.E, shift), 0.0);
}

TEST(Utility, InternalCostMakesPartnerTrafficExpensive) {
  const auto t = make_fig1();
  econ::Economy economy(t.graph);
  economy.set_internal_cost(t.E, econ::InternalCostFunction::linear(0.5));
  econ::TrafficAllocation base;
  base.add_path_flow(std::vector<topology::AsId>{t.D, t.A, t.B}, 4.0);

  TrafficShift shift;
  shift.reroutes.push_back(Reroute{{t.D, t.A, t.B}, {t.D, t.E, t.B}, 4.0});
  const AgreementEvaluator evaluator(economy, base);
  // E gains 4 units of through-traffic at 0.5 internal cost.
  EXPECT_DOUBLE_EQ(evaluator.utility_change(t.E, shift), -2.0);
}

TEST(Utility, NewDemandEarnsStubRevenue) {
  const auto t = make_fig1();
  econ::Economy economy(t.graph);
  economy.set_stub_pricing(t.D, econ::PricingFunction::per_unit(3.0));
  econ::TrafficAllocation base;

  TrafficShift shift;
  shift.new_demands.push_back(NewDemand{{t.D, t.E, t.B}, 2.0});
  const AgreementEvaluator evaluator(economy, base);
  EXPECT_DOUBLE_EQ(evaluator.utility_change(t.D, shift), 6.0);
}

TEST(Utility, RejectsEndpointChangingReroutes) {
  TrafficShift shift;
  shift.reroutes.push_back(Reroute{{0, 1, 2}, {0, 1, 3}, 1.0});
  EXPECT_THROW((void)shift.as_delta(), util::PreconditionError);
}

TEST(Utility, UtilityAfterEqualsBasePlusChange) {
  const auto t = make_fig1();
  const econ::Economy economy = econ::make_default_economy(t.graph);
  econ::TrafficAllocation base;
  base.add_path_flow(std::vector<topology::AsId>{t.H, t.D, t.A}, 5.0);
  TrafficShift shift;
  shift.new_demands.push_back(NewDemand{{t.H, t.D, t.E}, 1.0});
  const AgreementEvaluator evaluator(economy, base);
  EXPECT_NEAR(evaluator.utility_after(t.D, shift),
              economy.utility(t.D, base) + evaluator.utility_change(t.D, shift),
              1e-9);
}

// --------------------------------------------------------------- extension

TEST(Extension, RegisterAndConsumeAllowance) {
  const auto t = make_fig1();
  const Agreement a = make_paper_agreement(t);
  AgreementRegistry registry;
  const AgreementId id = registry.register_agreement(
      a, {FlowAllowance{{t.E, t.D, t.A}, 10.0, 0.0}});
  EXPECT_EQ(registry.remaining(id, {t.E, t.D, t.A}), 10.0);

  // §III-B3: agreement a' between E and F extends EDA to F.
  Extension ext;
  ext.parent = id;
  ext.party = t.E;
  ext.beneficiary = t.F;
  ext.extended_segment = {t.F, t.E, t.D, t.A};
  ext.volume = 4.0;
  EXPECT_TRUE(registry.try_register_extension(t.graph, ext));
  EXPECT_EQ(registry.remaining(id, {t.E, t.D, t.A}), 6.0);
  EXPECT_EQ(registry.extensions().size(), 1u);
}

TEST(Extension, RefusesOverconsumption) {
  const auto t = make_fig1();
  const Agreement a = make_paper_agreement(t);
  AgreementRegistry registry;
  const AgreementId id = registry.register_agreement(
      a, {FlowAllowance{{t.E, t.D, t.A}, 5.0, 0.0}});
  Extension ext;
  ext.parent = id;
  ext.party = t.E;
  ext.beneficiary = t.F;
  ext.extended_segment = {t.F, t.E, t.D, t.A};
  ext.volume = 6.0;
  EXPECT_FALSE(registry.try_register_extension(t.graph, ext));
  EXPECT_EQ(registry.remaining(id, {t.E, t.D, t.A}), 5.0);
}

TEST(Extension, RefusesNonNeighborBeneficiary) {
  const auto t = make_fig1();
  const Agreement a = make_paper_agreement(t);
  AgreementRegistry registry;
  const AgreementId id = registry.register_agreement(
      a, {FlowAllowance{{t.E, t.D, t.A}, 5.0, 0.0}});
  Extension ext;
  ext.parent = id;
  ext.party = t.E;
  ext.beneficiary = t.H;  // H does not neighbor E
  ext.extended_segment = {t.H, t.E, t.D, t.A};
  ext.volume = 1.0;
  EXPECT_FALSE(registry.try_register_extension(t.graph, ext));
}

TEST(Extension, RefusesUnknownSegment) {
  const auto t = make_fig1();
  const Agreement a = make_paper_agreement(t);
  AgreementRegistry registry;
  const AgreementId id = registry.register_agreement(
      a, {FlowAllowance{{t.E, t.D, t.A}, 5.0, 0.0}});
  Extension ext;
  ext.parent = id;
  ext.party = t.E;
  ext.beneficiary = t.F;
  ext.extended_segment = {t.F, t.E, t.D, t.C};  // not an allowance segment
  ext.volume = 1.0;
  EXPECT_FALSE(registry.try_register_extension(t.graph, ext));
}

TEST(Extension, RegistryValidatesInputs) {
  const auto t = make_fig1();
  const Agreement a = make_paper_agreement(t);
  AgreementRegistry registry;
  EXPECT_THROW(registry.register_agreement(
                   a, {FlowAllowance{{t.E, t.D, t.A}, -1.0, 0.0}}),
               util::PreconditionError);
  EXPECT_THROW((void)registry.agreement(5), util::PreconditionError);
}

}  // namespace
}  // namespace panagree::agreements
