#include "panagree/bgp/async.hpp"

#include <map>
#include <set>

namespace panagree::bgp {

namespace {

/// Router state of the asynchronous protocol.
class AsyncState {
 public:
  AsyncState(const SppInstance& instance, const AsyncSpvpParams& params)
      : instance_(&instance),
        params_(params),
        rng_(params.seed),
        current_(instance.num_nodes()) {
    // listeners_[u] = nodes whose permitted paths use u as next hop.
    listeners_.resize(instance.num_nodes());
    for (AsId node = 0; node < instance.num_nodes(); ++node) {
      for (const AsId hop : instance.next_hops(node)) {
        listeners_[hop].push_back(node);
      }
    }
    current_[instance.origin()] = Path{instance.origin()};
  }

  AsyncSpvpResult run() {
    pending_.assign(instance_->num_nodes(), false);
    announce(instance_->origin());
    engine_.run();
    AsyncSpvpResult result;
    result.assignment = current_;
    result.messages = delivered_;
    result.sim_time_s = engine_.now();
    result.converged = delivered_ < params_.max_messages &&
                       is_stable(*instance_, current_);
    return result;
  }

 private:
  /// Rate-limited announcement (MRAI): schedules one batched announcement
  /// per node; interim changes are folded into the pending one.
  void schedule_announce(AsId from) {
    if (pending_[from]) {
      return;  // an announcement is already pending; it will pick up the
               // latest state when it fires
    }
    pending_[from] = true;
    const double jitter =
        rng_.uniform(params_.mrai_min_s, params_.mrai_max_s);
    engine_.schedule(jitter, [this, from] {
      pending_[from] = false;
      announce(from);
    });
  }

  /// Sends `from`'s current path to everyone who may route through it.
  /// Deliveries on one (from, listener) channel are FIFO, as over a BGP
  /// session's TCP connection - reordered updates would let a stale
  /// announcement overwrite a newer one.
  void announce(AsId from) {
    for (const AsId listener : listeners_[from]) {
      if (delivered_ + in_flight_ >= params_.max_messages) {
        return;  // budget exhausted: divergence cut-off
      }
      ++in_flight_;
      const Path payload = current_[from];
      const double delay =
          rng_.uniform(params_.min_delay_s, params_.max_delay_s);
      const std::uint64_t channel =
          (static_cast<std::uint64_t>(from) << 32) | listener;
      double when = engine_.now() + delay;
      const auto it = channel_clock_.find(channel);
      if (it != channel_clock_.end() && when <= it->second) {
        when = it->second + 1e-9;
      }
      channel_clock_[channel] = when;
      engine_.schedule_at(when, [this, listener, from, payload] {
        --in_flight_;
        ++delivered_;
        receive(listener, from, payload);
      });
    }
  }

  /// UPDATE handler: store the neighbor's path, re-select, re-announce on
  /// change.
  void receive(AsId node, AsId from, const Path& path) {
    rib_in_[node][from] = path;
    if (node == instance_->origin()) {
      return;
    }
    // Best permitted path consistent with rib-in knowledge.
    Path best;
    for (const paths::PathView candidate : instance_->permitted(node)) {
      if (candidate.size() < 2) {
        continue;
      }
      const auto it = rib_in_[node].find(candidate[1]);
      if (it == rib_in_[node].end()) {
        continue;
      }
      const Path& neighbor_path = it->second;
      if (neighbor_path.size() + 1 == candidate.size() &&
          std::equal(neighbor_path.begin(), neighbor_path.end(),
                     candidate.begin() + 1)) {
        best = candidate.to_path();
        break;  // permitted paths are ranked best-first
      }
    }
    if (best != current_[node]) {
      current_[node] = std::move(best);
      schedule_announce(node);
    }
  }

  const SppInstance* instance_;
  AsyncSpvpParams params_;
  util::Rng rng_;
  sim::Engine engine_;
  Assignment current_;
  std::vector<std::vector<AsId>> listeners_;
  std::vector<bool> pending_;
  std::map<std::uint64_t, double> channel_clock_;
  std::map<AsId, std::map<AsId, Path>> rib_in_;
  std::size_t delivered_ = 0;
  std::size_t in_flight_ = 0;
};

}  // namespace

AsyncSpvpResult run_async(const SppInstance& instance,
                          const AsyncSpvpParams& params) {
  util::require(params.min_delay_s > 0.0 &&
                    params.max_delay_s >= params.min_delay_s,
                "run_async: need 0 < min_delay <= max_delay");
  util::require(params.mrai_min_s > 0.0 &&
                    params.mrai_max_s >= params.mrai_min_s,
                "run_async: need 0 < mrai_min <= mrai_max");
  util::require(params.max_messages > 0, "run_async: message budget empty");
  AsyncState state(instance, params);
  return state.run();
}

AsyncSafetyReport check_async_safety(const SppInstance& instance,
                                     std::size_t trials, std::uint64_t seed,
                                     const AsyncSpvpParams& params) {
  AsyncSafetyReport report;
  report.trials = trials;
  std::set<Assignment> outcomes;
  double messages = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    AsyncSpvpParams p = params;
    p.seed = seed + t;
    const AsyncSpvpResult result = run_async(instance, p);
    if (!result.converged) {
      report.always_converged = false;
    } else {
      outcomes.insert(result.assignment);
    }
    messages += static_cast<double>(result.messages);
  }
  report.distinct_outcomes = outcomes.size();
  report.mean_messages = messages / static_cast<double>(trials);
  return report;
}

}  // namespace panagree::bgp
