// Greedy / beam-search deployment optimization over SweepRunner.
//
// panagree-sweep's original mode answers "which single deployment scores
// best" by exhaustively ranking candidates. Operators deploy *programs*:
// an ordered build-out where each agreement is chosen given everything
// already deployed - the iterative economic optimization framing of
// Nash-Peering, and the regime where value concentrates in multi-hub
// combinations. Optimizer searches that combinatorial space:
//
//   * each round, every surviving candidate delta is scored by the
//     operator utility of extending the current program with it;
//   * the best extension (beam_width of them, for beam search) is
//     committed: the runner rebases its per-source cache onto the grown
//     program prefix (recomputing only the step's invalidation ball), so
//     the next round evaluates candidates incrementally against the new
//     cumulative state;
//   * candidate evaluations are *shared across rounds*: a candidate's
//     recomputed dirty-source slice stays valid as long as the committed
//     step's invalidation ball does not overlap the candidate's - only
//     overlapping candidates pay a re-enumeration. The overlap test is
//     conservative (the contamination ball is grown over the union of the
//     new state, every candidate's added links, and the step's removed
//     links), so sharing never changes results - property-tested against
//     full recompiles in scenario_program_test.
//
// Scoring never re-aggregates path sets it has already seen: per-source
// results fold into additive SourceContribution slices, so re-scoring a
// cached candidate after the program grew elsewhere is O(sources)
// additions, not an enumeration.
#pragma once

#include <cstddef>
#include <vector>

#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/program.hpp"
#include "panagree/scenario/sweep.hpp"

namespace panagree::scenario {

struct OptimizerConfig {
  /// Maximum program length (search rounds).
  std::size_t max_steps = 4;
  /// Surviving partial programs per round; 1 = pure greedy.
  std::size_t beam_width = 1;
  /// Threads + invalidation radius of the underlying sweeps. Pass
  /// kLength3DirtyRadius for the canonical length-3 analysis.
  SweepConfig sweep;
  UtilityWeights weights;
  /// Share dirty-source recomputes across rounds between candidates whose
  /// invalidation balls stay clear of the committed step's contamination
  /// ball. Disabling re-enumerates every surviving candidate each round -
  /// results are identical (the ablation BM_Optimizer benches measure).
  bool share_recomputes = true;
  /// A round's best marginal utility must exceed this to commit; the
  /// search stops early otherwise.
  double min_marginal_utility = 0.0;
};

/// One committed step of the emitted deployment program.
struct PlannedStep {
  /// Index into the candidate list passed to run().
  std::size_t candidate = 0;
  Delta delta;
  /// Metrics delta and utility of this step vs the state just before it.
  MetricsDelta marginal;
  double marginal_utility = 0.0;
  /// Utility of the program prefix ending here vs the round-0 baseline.
  double cumulative_utility = 0.0;
};

/// Work accounting of one run() - the cache-sharing story in numbers.
struct OptimizerStats {
  std::size_t primed_sources = 0;     ///< baseline enumerations (once)
  std::size_t scored_candidates = 0;  ///< candidate scorings, all rounds
  /// Scorings served from a prior round's cached dirty-source slice.
  std::size_t reused_evaluations = 0;
  /// Per-source enumerations paid after priming (candidate evaluations
  /// plus the per-round rebase).
  std::size_t recomputed_sources = 0;
};

struct OptimizerResult {
  Program program;
  std::vector<PlannedStep> steps;  ///< one per program step, in order
  /// Aggregate of the unmodified base state over the analyzed sources.
  ScenarioMetrics baseline;
  /// Aggregate of the full committed program.
  ScenarioMetrics final_metrics;
  OptimizerStats stats;
};

class Optimizer {
 public:
  /// `base` and `aggregator` must outlive the optimizer; `sources` is the
  /// analyzed sample (results and utilities are over exactly this set).
  Optimizer(const CompiledTopology& base, std::vector<AsId> sources,
            const MetricsAggregator& aggregator, OptimizerConfig config = {});

  /// Searches over `candidates` (each one candidate agreement delta) and
  /// returns the best deployment program found. Candidates that stop
  /// composing onto the grown program (duplicate pair, conflict) drop out
  /// of the pool; a candidate may be committed at most once. The result
  /// is deterministic: identical at every thread count, and identical
  /// with sharing on or off.
  [[nodiscard]] OptimizerResult run(
      const std::vector<Delta>& candidates) const;

 private:
  const CompiledTopology* base_;
  std::vector<AsId> sources_;
  const MetricsAggregator* aggregator_;
  OptimizerConfig config_;
};

}  // namespace panagree::scenario
