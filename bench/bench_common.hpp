// Shared configuration of the §VI reproduction benches: all figures run on
// the same synthetic Internet topology and the same 500-AS sample, mirroring
// the paper's single CAIDA snapshot + single AS sample.
//
// Environment overrides:
//   PANAGREE_ASES=<n>      topology size (synthetic only)
//   PANAGREE_SOURCES=<n>   analyzed-source sample size
//   PANAGREE_THREADS=<n>   worker threads (0 = hardware concurrency)
//   PANAGREE_CAIDA=<path>  run on a real CAIDA as-rel2 relationship file
//                          instead of the generator; the graph is embedded
//                          in a synthetic world (tiers, PoPs, facilities)
//                          so the geodistance/econ analyses still apply.
#pragma once

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "panagree/topology/caida.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::benchcfg {

/// Parses a non-negative integer environment override. Malformed values
/// terminate with a clear message instead of an unhandled std::stoul
/// exception (PANAGREE_ASES=12k should not print "terminate called...").
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  std::size_t value = 0;
  const char* end = env + std::strlen(env);
  const auto [ptr, ec] = std::from_chars(env, end, value);
  if (ec != std::errc() || ptr != end) {
    std::cerr << "[bench] invalid " << name << "='" << env
              << "': expected a non-negative integer\n";
    std::exit(2);
  }
  return value;
}

/// Topology size; override with PANAGREE_ASES for quick runs.
inline std::size_t num_ases() { return env_size("PANAGREE_ASES", 12000); }

/// Analyzed-source sample size (the paper samples 500 ASes); override with
/// PANAGREE_SOURCES.
inline std::size_t num_sources() {
  return env_size("PANAGREE_SOURCES", 500);
}

/// Worker threads for per-source fan-outs (0 = one per hardware core);
/// override with PANAGREE_THREADS. Results are thread-count independent.
inline std::size_t num_threads() { return env_size("PANAGREE_THREADS", 0); }

/// Path to a CAIDA as-rel2 file, or nullptr for the synthetic generator.
inline const char* caida_path() {
  const char* env = std::getenv("PANAGREE_CAIDA");
  return (env != nullptr && *env != '\0') ? env : nullptr;
}

inline constexpr std::uint64_t kTopologySeed = 424242;
inline constexpr std::uint64_t kSampleSeed = 7;

inline topology::GeneratorParams internet_params() {
  topology::GeneratorParams params;
  params.num_ases = num_ases();
  params.tier1_count = 12;
  params.seed = kTopologySeed;
  return params;
}

/// Generates (or, under PANAGREE_CAIDA, loads) the shared topology with
/// degree-gravity capacities assigned. `synthetic_cap` bounds the synthetic
/// size for the heavier benches; a loaded CAIDA graph is used as-is.
inline topology::GeneratedTopology make_internet(
    std::size_t synthetic_cap = 0) {
  topology::GeneratedTopology topo;
  if (const char* path = caida_path()) {
    auto dataset = topology::caida::parse_file(path);
    topo = topology::embed_relationship_graph(std::move(dataset.graph),
                                              kTopologySeed);
    std::cerr << "[bench] topology: CAIDA " << path << ": "
              << topo.graph.num_ases() << " ASes, "
              << topo.graph.num_links() << " links\n";
  } else {
    topology::GeneratorParams params = internet_params();
    if (synthetic_cap > 0 && params.num_ases > synthetic_cap) {
      params.num_ases = synthetic_cap;
    }
    topo = topology::generate_internet(params);
    std::cerr << "[bench] topology: " << topo.graph.num_ases() << " ASes, "
              << topo.graph.num_links() << " links (seed " << kTopologySeed
              << ")\n";
  }
  topology::assign_degree_gravity_capacities(topo.graph);
  return topo;
}

}  // namespace panagree::benchcfg
