#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <unordered_map>

#include "panagree/util/error.hpp"
#include "panagree/util/pair_index.hpp"
#include "panagree/util/rng.hpp"
#include "panagree/util/stats.hpp"
#include "panagree/util/table.hpp"

namespace panagree::util {
namespace {

// ------------------------------------------------------------ PairIndex

TEST(PairIndex, EmplaceFindContains) {
  PairIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_FALSE(index.contains(42));
  EXPECT_EQ(index.find(42), std::nullopt);
  EXPECT_TRUE(index.emplace(42, 7));
  EXPECT_FALSE(index.emplace(42, 8));  // duplicate key rejected
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.contains(42));
  EXPECT_EQ(index.find(42), std::optional<std::uint64_t>(7));
}

TEST(PairIndex, ZeroKeyIsAbsentNotEmptySlot) {
  PairIndex index;
  index.emplace(1, 1);
  // Key 0 is the empty sentinel (a (0, 0) self-loop pair, which Graph
  // rejects); lookups must report it absent, never match an empty slot.
  EXPECT_FALSE(index.contains(0));
  EXPECT_EQ(index.find(0), std::nullopt);
}

TEST(PairIndex, SurvivesGrowthAndMatchesReference) {
  PairIndex index;
  std::unordered_map<std::uint64_t, std::uint64_t> reference;
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const auto key =
        static_cast<std::uint64_t>(rng.next() % 30000) + 1;  // collisions
    const auto value = static_cast<std::uint64_t>(i);
    EXPECT_EQ(index.emplace(key, value),
              reference.emplace(key, value).second)
        << "key " << key;
  }
  EXPECT_EQ(index.size(), reference.size());
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(index.find(key), std::optional<std::uint64_t>(value));
  }
  EXPECT_FALSE(index.contains(30001));
}

TEST(PairIndex, ReserveDoesNotDisturbContents) {
  PairIndex index;
  index.emplace(5, 50);
  index.reserve(100000);
  EXPECT_EQ(index.find(5), std::optional<std::uint64_t>(50));
  index.emplace(6, 60);
  EXPECT_EQ(index.size(), 2u);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DiffersAcrossSeeds) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) {
    any_diff |= a.next() != b.next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.0);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniform_index(7));
  }
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(3);
  EXPECT_THROW((void)rng.uniform_index(0), PreconditionError);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 1.5);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  const auto sample = rng.sample_without_replacement(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : sample) {
    EXPECT_LT(i, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(31);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOverdraw) {
  Rng rng(31);
  EXPECT_THROW((void)rng.sample_without_replacement(3, 4), PreconditionError);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(37);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(37);
  EXPECT_THROW((void)rng.weighted_index({0.0, 0.0}), PreconditionError);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(41);
  Rng b = a.split();
  bool differs = false;
  for (int i = 0; i < 8; ++i) {
    differs |= a.next() != b.next();
  }
  EXPECT_TRUE(differs);
}

// ----------------------------------------------------------------- stats

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanAndStddevBasics) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
}

TEST(Stats, PercentileRejectsEmpty) {
  EXPECT_THROW((void)percentile({}, 0.5), PreconditionError);
}

TEST(Stats, SummarizeReportsAllFields) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Cdf, FractionAtOrBelow) {
  const Cdf cdf({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
}

TEST(Cdf, FractionAboveComplements) {
  const Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_above(2.0), 0.5);
}

TEST(Cdf, ValueAtFractionInvertsCdf) {
  const Cdf cdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.value_at_fraction(1.0), 40.0);
}

TEST(Cdf, EvaluateAtMultiplePositions) {
  const Cdf cdf({1.0, 2.0, 3.0});
  const std::vector<double> xs{0.0, 1.5, 5.0};
  const auto ys = cdf.evaluate_at(xs);
  ASSERT_EQ(ys.size(), 3u);
  EXPECT_DOUBLE_EQ(ys[0], 0.0);
  EXPECT_NEAR(ys[1], 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(ys[2], 1.0);
}

TEST(Stats, LogSpaceEndpointsAndMonotonicity) {
  const auto xs = log_space(1.0, 1000.0, 4);
  ASSERT_EQ(xs.size(), 4u);
  EXPECT_NEAR(xs.front(), 1.0, 1e-9);
  EXPECT_NEAR(xs.back(), 1000.0, 1e-6);
  EXPECT_NEAR(xs[1], 10.0, 1e-6);
  EXPECT_TRUE(std::is_sorted(xs.begin(), xs.end()));
}

TEST(Stats, LinSpaceEndpoints) {
  const auto xs = lin_space(0.0, 1.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs[0], 0.0);
  EXPECT_DOUBLE_EQ(xs[2], 0.5);
  EXPECT_DOUBLE_EQ(xs[4], 1.0);
}

// ----------------------------------------------------------------- table

TEST(Table, RendersAlignedRows) {
  Table t({"a", "long-header"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("1"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), PreconditionError);
}

TEST(Table, CsvOutputIsTagged) {
  Table t({"x", "y"});
  t.add_row({1.5, 2.0});
  std::ostringstream os;
  t.print_csv(os, "fig");
  EXPECT_NE(os.str().find("csv,fig,x,y"), std::string::npos);
  EXPECT_NE(os.str().find("csv,fig,1.5,2"), std::string::npos);
}

TEST(Table, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(1.5000, 4), "1.5");
  EXPECT_EQ(format_double(2.0, 4), "2");
  EXPECT_EQ(format_double(-0.00001, 2), "0");
}

// ----------------------------------------------------------------- error

TEST(Error, RequireThrowsWithMessage) {
  try {
    require(false, "broken precondition");
    FAIL() << "expected throw";
  } catch (const PreconditionError& e) {
    EXPECT_STREQ(e.what(), "broken precondition");
  }
}

TEST(Error, AssertMacroThrowsLogicError) {
  EXPECT_THROW(PANAGREE_ASSERT(1 == 2), std::logic_error);
}

// Parameterized sweep: percentile must be monotone in q for any sample.
class PercentileSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PercentileSweep, MonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> sample;
  for (int i = 0; i < 50; ++i) {
    sample.push_back(rng.uniform(-10.0, 10.0));
  }
  double prev = percentile(sample, 0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = percentile(sample, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace panagree::util
