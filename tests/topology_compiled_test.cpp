#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "panagree/topology/compiled.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::topology {
namespace {

std::set<AsId> ids(std::span<const CompiledTopology::Entry> entries) {
  std::set<AsId> out;
  for (const auto& e : entries) {
    out.insert(e.neighbor);
  }
  return out;
}

std::set<AsId> ids(const std::vector<AsId>& v) {
  return {v.begin(), v.end()};
}

TEST(CompiledTopology, Fig1RowsMatchHandStructure) {
  const auto t = make_fig1();
  const CompiledTopology c(t.graph);
  ASSERT_EQ(c.num_ases(), t.graph.num_ases());
  EXPECT_EQ(c.num_links(), t.graph.num_links());
  // D: provider A, peers C and E, customer H.
  EXPECT_EQ(ids(c.providers(t.D)), (std::set<AsId>{t.A}));
  EXPECT_EQ(ids(c.peers(t.D)), (std::set<AsId>{t.C, t.E}));
  EXPECT_EQ(ids(c.customers(t.D)), (std::set<AsId>{t.H}));
  EXPECT_EQ(c.degree(t.D), 4u);
  EXPECT_EQ(c.entries(t.D).size(), 4u);
}

TEST(CompiledTopology, RoleAndLinkLookupsMatchFig1) {
  const auto t = make_fig1();
  const CompiledTopology c(t.graph);
  EXPECT_EQ(c.role_of(t.H, t.D), NeighborRole::kProvider);
  EXPECT_EQ(c.role_of(t.D, t.H), NeighborRole::kCustomer);
  EXPECT_EQ(c.role_of(t.D, t.E), NeighborRole::kPeer);
  EXPECT_FALSE(c.role_of(t.H, t.I).has_value());
  EXPECT_TRUE(c.are_peers(t.A, t.B));
  EXPECT_TRUE(c.is_provider_of(t.A, t.D));
  EXPECT_TRUE(c.is_customer_of(t.D, t.A));
  EXPECT_EQ(c.link_between(t.H, t.D), t.graph.link_between(t.H, t.D));
  EXPECT_FALSE(c.link_between(t.H, t.H).has_value());
}

// Property test: on generator-produced random topologies, every adjacency,
// role, and link answer of the snapshot equals the Graph's.
class CompiledEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledEquivalence, MatchesGraphOnRandomTopology) {
  GeneratorParams params;
  params.num_ases = 400;
  params.tier1_count = 5;
  params.seed = GetParam();
  const auto topo = generate_internet(params);
  const Graph& g = topo.graph;
  const CompiledTopology c(g);

  ASSERT_EQ(c.num_ases(), g.num_ases());
  ASSERT_EQ(c.num_links(), g.num_links());

  for (AsId as = 0; as < g.num_ases(); ++as) {
    EXPECT_EQ(c.degree(as), g.degree(as));
    EXPECT_EQ(ids(c.providers(as)), ids(g.providers(as)));
    EXPECT_EQ(ids(c.peers(as)), ids(g.peers(as)));
    EXPECT_EQ(ids(c.customers(as)), ids(g.customers(as)));
    // Role groups are internally sorted and every entry is self-consistent.
    for (const auto group : {c.providers(as), c.peers(as), c.customers(as)}) {
      EXPECT_TRUE(std::is_sorted(
          group.begin(), group.end(),
          [](const auto& x, const auto& y) { return x.neighbor < y.neighbor; }));
    }
    for (const auto& e : c.entries(as)) {
      EXPECT_EQ(e.role, g.role_of(as, e.neighbor));
      EXPECT_EQ(static_cast<LinkId>(e.link), g.link_between(as, e.neighbor));
    }
  }

  // Every link answers identically from both endpoints.
  for (LinkId id = 0; id < g.num_links(); ++id) {
    const Link& l = g.link(id);
    EXPECT_EQ(c.link_between(l.a, l.b), id);
    EXPECT_EQ(c.link_between(l.b, l.a), id);
    EXPECT_EQ(c.role_of(l.a, l.b), g.role_of(l.a, l.b));
    EXPECT_EQ(c.role_of(l.b, l.a), g.role_of(l.b, l.a));
  }

  // Random pairs (mostly unlinked) agree as well.
  util::Rng rng(GetParam() * 7 + 1);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto x = static_cast<AsId>(rng.uniform_index(g.num_ases()));
    const auto y = static_cast<AsId>(rng.uniform_index(g.num_ases()));
    EXPECT_EQ(c.role_of(x, y), g.role_of(x, y));
    EXPECT_EQ(c.link_between(x, y), g.link_between(x, y));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledEquivalence,
                         ::testing::Values(1, 7, 42));

TEST(CompiledTopology, EntriesFollowProviderPeerCustomerOrder) {
  GeneratorParams params;
  params.num_ases = 200;
  params.tier1_count = 4;
  params.seed = 3;
  const auto topo = generate_internet(params);
  const CompiledTopology c(topo.graph);
  for (AsId as = 0; as < c.num_ases(); ++as) {
    const auto all = c.entries(as);
    const std::size_t np = c.providers(as).size();
    const std::size_t ne = c.peers(as).size();
    ASSERT_EQ(all.size(), np + ne + c.customers(as).size());
    for (std::size_t i = 0; i < all.size(); ++i) {
      const NeighborRole expected =
          i < np ? NeighborRole::kProvider
                 : (i < np + ne ? NeighborRole::kPeer
                                : NeighborRole::kCustomer);
      EXPECT_EQ(all[i].role, expected);
    }
  }
}

TEST(CompiledTopology, RejectsOutOfRangeAs) {
  Graph g;
  g.add_as();
  const CompiledTopology c(g);
  EXPECT_THROW((void)c.entries(1), util::PreconditionError);
  EXPECT_THROW((void)c.find(1, 0), util::PreconditionError);
  // The kInvalidAs sentinel must hit the range guard, not wrap around it
  // (as + 1 in 32-bit would overflow to 0).
  EXPECT_THROW((void)c.entries(kInvalidAs), util::PreconditionError);
  EXPECT_THROW((void)c.degree(kInvalidAs), util::PreconditionError);
  // role_of/link_between stay total like Graph's: garbage ids answer
  // "not connected" instead of throwing.
  EXPECT_FALSE(c.role_of(0, kInvalidAs).has_value());
  EXPECT_FALSE(c.role_of(kInvalidAs, 0).has_value());
  EXPECT_FALSE(c.link_between(kInvalidAs, kInvalidAs).has_value());
  EXPECT_FALSE(c.are_peers(0, 17));
}

}  // namespace
}  // namespace panagree::topology
