// Figure 4: distribution (CDF) of ASes with respect to the number of
// destinations reachable over length-3 paths, under increasing degrees of
// MA conclusion (same series as Figure 3).
//
// Paper reference points: 40% of ASes reach >5,000 destinations over GRC
// length-3 paths; 57% do once all MAs are concluded; very few MAs per AS
// already realize most of the gain. In-text §VI-A statistics: average 2,181
// additional destinations (max 7,144) on the CAIDA graph.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/util/stats.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;

}  // namespace

int main() {
  std::cout << "== Figure 4: destinations reachable over length-3 paths ==\n";
  const auto net = benchcfg::load_internet();
  diversity::DiversityParams params;
  params.sample_sources = benchcfg::num_sources();
  params.seed = benchcfg::kSampleSeed;
  params.threads = benchcfg::num_threads();
  const auto report = diversity::analyze_path_diversity(net.graph(), params);
  std::cout << "analyzed sources: " << report.sources.size() << "\n\n";

  std::vector<double> grc, top1, top5, top50, star, all;
  for (const auto& row : report.dest_rows) {
    grc.push_back(row.grc);
    top1.push_back(row.ma_top[0]);
    top5.push_back(row.ma_top[1]);
    top50.push_back(row.ma_top[2]);
    star.push_back(row.ma_star);
    all.push_back(row.ma_all);
  }
  const double max_value = *std::max_element(all.begin(), all.end());
  const util::Cdf cdf_grc(grc), cdf_1(top1), cdf_5(top5), cdf_50(top50),
      cdf_star(star), cdf_all(all);

  util::Table table({"x", "CDF GRC", "CDF Top1", "CDF Top5", "CDF Top50",
                     "CDF MA*", "CDF MA"});
  for (const double x : util::lin_space(0.0, std::max(2.0, max_value), 14)) {
    table.add_row({x, cdf_grc.fraction_at_or_below(x),
                   cdf_1.fraction_at_or_below(x),
                   cdf_5.fraction_at_or_below(x),
                   cdf_50.fraction_at_or_below(x),
                   cdf_star.fraction_at_or_below(x),
                   cdf_all.fraction_at_or_below(x)},
                  3);
  }
  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout, "fig4");

  // The paper's headline readout: share of ASes reaching more than a
  // threshold number of destinations, GRC vs full MA. On the CAIDA graph
  // the threshold is 5,000 of ~70k ASes; we scale it to graph size.
  const double threshold =
      5000.0 * static_cast<double>(net.graph().num_ases()) / 70000.0;
  util::Table readout({"metric", "GRC", "MA", "paper GRC", "paper MA"});
  readout.add_row(
      {"share of ASes with > " + util::format_double(threshold, 0) +
           " nearby destinations",
       util::format_double(cdf_grc.fraction_above(threshold), 3),
       util::format_double(cdf_all.fraction_above(threshold), 3), "0.40",
       "0.57"});
  std::cout << '\n';
  readout.print(std::cout);
  readout.print_csv(std::cout, "fig4_readout");

  std::cout << "\n-- §VI-A in-text statistics (additional destinations per "
               "AS) --\n";
  util::Table stats({"metric", "measured", "paper (70k-AS CAIDA)"});
  stats.add_row({"average additional destinations",
                 util::format_double(report.additional_dests.mean, 1),
                 "2181"});
  stats.add_row({"maximum additional destinations",
                 util::format_double(report.additional_dests.max, 1), "7144"});
  stats.print(std::cout);
  stats.print_csv(std::cout, "fig4_stats");
  return 0;
}
