// Lightweight span tracing to Chrome-tracing / Perfetto JSON.
//
// Off by default: TraceSpan's constructor is one relaxed atomic load
// when no trace file is configured (no clock read, no allocation).
// Enable by calling trace_init(path) - the tools do this from the
// PANAGREE_TRACE environment variable via trace_init_from_env() - and
// every span records (name, start, duration, thread) into an in-memory
// buffer flushed to `path` as a single JSON document at trace_flush()
// or process exit.
//
// Spans form a *tree*: every recorded span carries a process-unique id
// and the id of its parent (0 = root). RAII spans parent explicitly via
// the two-argument constructor; spans whose lifetime does not follow
// scope nesting (a request's queue wait, the socket send after the
// handler returned) are recorded retroactively with trace_record_span
// and explicit [start, end) timestamps from trace_now_ns()'s clock.
// The serving daemon uses exactly this to emit one root span per
// request (name "serve.request", carrying the wire id) with one child
// span per stage.
//
// Span names must be string literals (or otherwise outlive the
// recorder): the recorder stores the pointer, not a copy, so that a
// span's cost stays off the traced code's profile.
//
// The emitted document is the Chrome trace-event format consumed by
// chrome://tracing and ui.perfetto.dev:
//
//   {"traceEvents":[
//     {"name":"sweep.prime","ph":"X","ts":12.5,"dur":104.0,
//      "pid":1,"tid":2,"args":{"id":3,"parent":0}}, ...]}
//
// ts/dur are microseconds (doubles, Chrome's unit); tid is a small
// per-process thread ordinal, stable per thread; pid is fixed at 1
// (single-process traces diff cleanly). args.id / args.parent encode
// the span tree; request root spans additionally carry args.wire_id.
//
// Under PANAGREE_OBS_OFF the span type is a header-only no-op in a
// distinct inline namespace (same ODR story as metrics.hpp) and the
// init/flush entry points remain callable but record nothing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace panagree::obs {

/// Explicit identity of a retroactively recorded span (see
/// trace_record_span). Plain data, macro-independent: instrumented code
/// builds one unconditionally and the obs_off stub ignores it.
struct SpanArgs {
  /// This span's id (trace_next_span_id()), or 0 for an anonymous leaf.
  std::uint64_t id = 0;
  /// Parent span id; 0 marks a root.
  std::uint64_t parent = 0;
  /// Request wire id carried by serve request root spans; only emitted
  /// when has_wire_id is set (wire ids are allowed to be 0).
  std::uint64_t wire_id = 0;
  bool has_wire_id = false;
};

#if defined(PANAGREE_OBS_OFF)

inline namespace obs_off {

class TraceSpan {
 public:
  explicit TraceSpan(const char*) noexcept {}
  TraceSpan(const char*, const TraceSpan&) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return 0; }
};

[[nodiscard]] constexpr bool trace_enabled() noexcept { return false; }
inline void trace_init(std::string_view) {}
inline void trace_init_from_env() {}
inline void trace_flush() {}
[[nodiscard]] inline std::size_t trace_event_count() noexcept { return 0; }
[[nodiscard]] inline std::uint64_t trace_now_ns() noexcept { return 0; }
[[nodiscard]] inline std::uint64_t trace_next_span_id() noexcept {
  return 0;
}
inline void trace_record_span(const char*, std::uint64_t, std::uint64_t,
                              const SpanArgs& = {}) {}

}  // namespace obs_off

#else  // !PANAGREE_OBS_OFF

inline namespace obs_on {

/// True once trace_init succeeded; spans record only then.
[[nodiscard]] bool trace_enabled() noexcept;

/// Starts recording and arranges a flush to `path` at process exit.
/// Idempotent per process: the first call wins (later calls with a
/// different path are ignored - tracing is a process-level decision).
void trace_init(std::string_view path);

/// trace_init(getenv("PANAGREE_TRACE")) when the variable is set and
/// non-empty; no-op otherwise. Every tool calls this at startup.
void trace_init_from_env();

/// Writes the complete JSON document now, truncating the file; the
/// buffer is retained, so every flush produces a whole, valid document
/// (the process-exit flush simply rewrites the final one). Safe to
/// call when disabled.
void trace_flush();

/// Number of spans currently buffered (test hook).
[[nodiscard]] std::size_t trace_event_count() noexcept;

/// The recorder's clock (steady, nanoseconds): timestamps for
/// trace_record_span must come from here so retroactive spans line up
/// with RAII ones.
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Draws a fresh process-unique span id (never 0). Use for spans whose
/// children are recorded before the span itself (a request root closes
/// after its stages).
[[nodiscard]] std::uint64_t trace_next_span_id() noexcept;

/// Records an already-finished span with explicit [start_ns, end_ns)
/// trace_now_ns() timestamps and an explicit tree position. No-op when
/// tracing is disabled; end < start records a zero-duration span.
void trace_record_span(const char* name, std::uint64_t start_ns,
                       std::uint64_t end_ns, const SpanArgs& args = {});

/// RAII complete-event span: records [construction, destruction) of the
/// enclosing scope under `name`. The one-argument form is a root; the
/// two-argument form is a child of `parent` (which must still be alive,
/// i.e. the usual nested-scope shape).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  TraceSpan(const char* name, const TraceSpan& parent) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// This span's id (0 when tracing is disabled).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

 private:
  const char* name_;          // nullptr when tracing is disabled
  std::uint64_t start_ns_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
};

}  // namespace obs_on

#endif  // PANAGREE_OBS_OFF

}  // namespace panagree::obs
