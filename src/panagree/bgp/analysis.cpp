#include "panagree/bgp/analysis.hpp"

#include <functional>

#include "panagree/bgp/policy.hpp"
#include "panagree/bgp/simulator.hpp"

namespace panagree::bgp {

std::vector<Path> enumerate_valley_free_paths(const Graph& graph, AsId src,
                                              AsId dst, std::size_t max_len) {
  util::require(src < graph.num_ases() && dst < graph.num_ases(),
                "enumerate_valley_free_paths: AS out of range");
  std::vector<Path> out;
  if (src == dst) {
    out.push_back({src});
    return out;
  }
  std::vector<bool> on_path(graph.num_ases(), false);
  Path path{src};
  on_path[src] = true;
  const std::function<void(AsId)> dfs = [&](AsId cur) {
    if (path.size() >= max_len) {
      return;
    }
    for (const AsId next : graph.neighbors(cur)) {
      if (on_path[next]) {
        continue;
      }
      path.push_back(next);
      if (is_valley_free(graph, path)) {
        if (next == dst) {
          out.push_back(path);
        } else {
          on_path[next] = true;
          dfs(next);
          on_path[next] = false;
        }
      }
      path.pop_back();
    }
  };
  dfs(src);
  return out;
}

int route_relationship_class(const Graph& graph, const Path& path) {
  if (path.size() < 2) {
    return 0;
  }
  const auto role = graph.role_of(path[0], path[1]);
  util::require(role.has_value(),
                "route_relationship_class: first hop is not a link");
  switch (*role) {
    case topology::NeighborRole::kCustomer:
      return 0;
    case topology::NeighborRole::kPeer:
      return 1;
    case topology::NeighborRole::kProvider:
      return 2;
  }
  return 3;
}

StabilityProfile profile_stability(const SppInstance& instance) {
  StabilityProfile profile;
  profile.stable_solutions = find_stable_solutions(instance).size();
  profile.safe_under_synchronous =
      run_synchronous(instance).outcome == Outcome::kConverged;
  return profile;
}

}  // namespace panagree::bgp
