// Shared command-line parsing helpers of the panagree tools.
//
// Every tool accepts a handful of numeric options (--threads, --port,
// --sources, ...). Before this header each tool rolled its own std::stoul
// calls with tool-specific failure behavior (unhandled exceptions, bare
// usage dumps); these helpers give all of them one contract:
//
//   * malformed or missing option values print
//       "<tool>: invalid <flag> '<value>': expected a non-negative integer"
//       "<tool>: <flag> requires a value"
//     to stderr and exit with kUsageExit (2) - the same exit code every
//     tool already uses for usage errors, and the same message shape
//     bench_common uses for malformed PANAGREE_* environment overrides;
//   * --threads means the same thing everywhere: worker threads for
//     per-source fan-outs, 0 = one per hardware core, overriding the
//     PANAGREE_THREADS environment default.
#pragma once

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "panagree/obs/build_info.hpp"
#include "panagree/obs/trace.hpp"
#include "panagree/paths/role_filter.hpp"

namespace panagree::cli {

/// Exit status of malformed command lines, shared by every tool.
inline constexpr int kUsageExit = 2;

/// The value of the option currently at argv[i]; prints a consistent
/// error and exits kUsageExit when it is missing. Advances i past the
/// consumed value.
inline const char* require_value(const char* tool, std::string_view flag,
                                 int argc, char** argv, int& i) {
  if (i + 1 >= argc) {
    std::cerr << tool << ": " << flag << " requires a value\n";
    std::exit(kUsageExit);
  }
  return argv[++i];
}

/// Parses a non-negative integer option value; prints a consistent error
/// and exits kUsageExit on anything else.
inline std::size_t parse_size(const char* tool, std::string_view flag,
                              std::string_view value) {
  std::size_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (value.empty() || ec != std::errc() ||
      ptr != value.data() + value.size()) {
    std::cerr << tool << ": invalid " << flag << " '" << value
              << "': expected a non-negative integer\n";
    std::exit(kUsageExit);
  }
  return out;
}

/// The shared --threads option (call with argv[i] == "--threads"):
/// consumes the value and returns the worker count, 0 = one per core.
inline std::size_t parse_threads(const char* tool, int argc, char** argv,
                                 int& i) {
  return parse_size(tool, "--threads",
                    require_value(tool, "--threads", argc, argv, i));
}

/// The shared --version flag: one line of build provenance (git
/// describe, compiler, obs on/off, runtime SIMD dispatch) plus the
/// compile flags on a second line. Exit 0 - tools handle --version
/// before validating any other argument.
[[noreturn]] inline void print_version(const char* tool) {
  std::cout << tool << " " << obs::build_info_line()
            << " simd=" << paths::role_filter_dispatch() << "\n"
            << "flags: " << obs::build_info().flags << "\n";
  std::exit(0);
}

/// Arms the trace recorder from PANAGREE_TRACE=<file> (no-op when the
/// variable is unset or obs is compiled out). Call once at tool startup.
inline void init_tracing() { obs::trace_init_from_env(); }

/// Default of the --slow-ms option (slow-query capture threshold in
/// milliseconds; 0 = capture every request): the PANAGREE_SLOW_MS
/// environment override when set and well-formed, `fallback` otherwise.
/// Malformed values error out like any malformed option (kUsageExit).
inline std::size_t env_slow_ms(const char* tool, std::size_t fallback) {
  const char* env = std::getenv("PANAGREE_SLOW_MS");
  if (env == nullptr || env[0] == '\0') {
    return fallback;
  }
  return parse_size(tool, "PANAGREE_SLOW_MS", env);
}

/// Default of the shared --pin-threads flag: the PANAGREE_PIN_THREADS
/// environment toggle (unset, empty, or "0" = off; anything else = on).
/// --pin-threads pins fan-out workers to cpus, NUMA-blocked on
/// multi-node hosts (paths::ExecPolicy); results are identical either
/// way - pinning is pure placement.
inline bool env_pin_threads() {
  const char* env = std::getenv("PANAGREE_PIN_THREADS");
  return env != nullptr && env[0] != '\0' &&
         std::string_view(env) != std::string_view("0");
}

}  // namespace panagree::cli
