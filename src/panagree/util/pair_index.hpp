// Open-addressing hash index for AS-pair keys -> link ids.
//
// Graph keeps one entry per link, keyed by the packed (lo << 32 | hi)
// endpoint pair. std::unordered_map pays a node allocation plus several
// dependent cache misses per insert - measurable at CAIDA scale, where
// restoring a snapshot inserts hundreds of thousands of links back to
// back (the dominant cost of Graph::restore before this index). This is
// the minimal flat replacement: linear probing over a power-of-two slot
// array, 16 bytes per slot, no tombstones (the graph is append-only).
//
// Key 0 is the empty sentinel. That is safe for pair keys: key 0 would
// mean lo == hi == 0, i.e. a self-loop, which Graph rejects.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "panagree/util/error.hpp"

namespace panagree::util {

class PairIndex {
 public:
  using Key = std::uint64_t;
  using Value = std::uint64_t;

  PairIndex() = default;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Pre-sizes the table for `count` keys (bulk loads).
  void reserve(std::size_t count) {
    std::size_t needed = 16;
    // Grow to keep the load factor under ~0.7.
    while (needed * 7 < count * 10) {
      needed *= 2;
    }
    if (needed > slots_.size()) {
      rehash(needed);
    }
  }

  /// Inserts `key` -> `value`; returns false (and leaves the table
  /// unchanged) if the key is already present. Key 0 is reserved.
  bool emplace(Key key, Value value) {
    PANAGREE_ASSERT(key != kEmpty);
    if ((size_ + 1) * 10 > slots_.size() * 7) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    Slot& slot = probe(key);
    if (slot.key == key) {
      return false;
    }
    slot.key = key;
    slot.value = value;
    ++size_;
    return true;
  }

  [[nodiscard]] bool contains(Key key) const {
    return key != kEmpty && !slots_.empty() && probe_const(key).key == key;
  }

  [[nodiscard]] std::optional<Value> find(Key key) const {
    if (key == kEmpty || slots_.empty()) {
      return std::nullopt;
    }
    const Slot& slot = probe_const(key);
    if (slot.key != key) {
      return std::nullopt;
    }
    return slot.value;
  }

 private:
  static constexpr Key kEmpty = 0;

  struct Slot {
    Key key = kEmpty;
    Value value = 0;
  };

  /// 64-bit mix (splitmix64 finalizer): pair keys are highly regular
  /// (small ids in both halves), so identity hashing would cluster.
  [[nodiscard]] static std::uint64_t mix(Key key) {
    std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// First slot that either holds `key` or is empty.
  [[nodiscard]] Slot& probe(Key key) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix(key) & mask;
    while (slots_[i].key != kEmpty && slots_[i].key != key) {
      i = (i + 1) & mask;
    }
    return slots_[i];
  }
  [[nodiscard]] const Slot& probe_const(Key key) const {
    return const_cast<PairIndex*>(this)->probe(key);
  }

  void rehash(std::size_t new_count) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_count, Slot{});
    for (const Slot& slot : old) {
      if (slot.key != kEmpty) {
        probe(slot.key) = slot;
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace panagree::util
