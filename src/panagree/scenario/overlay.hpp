// A what-if link delta over an immutable CSR topology snapshot.
//
// The scenario engine evaluates batches of candidate agreement deployments
// (new peering/interconnection links, depeerings, provider changes). Each
// candidate differs from the base Internet by a handful of links, so
// recompiling a CompiledTopology per scenario - O(A + L log L) - would
// dominate every sweep. Overlay instead applies a Delta (links added and
// links removed) *on top of* an existing snapshot in O(delta log delta):
// the base snapshot is shared, untouched, and never recompiled.
//
// Overlay implements the topology-view protocol of the path engine
// (num_ases / for_each_entry / role_of), so paths::BasicPathEnumerator and
// the step policies run on it unchanged. The crucial guarantee is *order
// equivalence*: for_each_entry yields exactly the adjacency row that
// recompiling the mutated graph would produce - role groups in provider /
// peer / customer order, each sorted ascending by neighbor id, with
// removed links filtered out and added links merged into sorted position.
// Path enumeration over an Overlay is therefore byte-identical to
// enumeration over a recompiled mutated topology (paths carry AS ids only;
// link ids of added links are synthetic, see added_link()).
//
// ASes untouched by the delta hit a fast path: one binary search over the
// (tiny) touched-AS list, then the base row is iterated directly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "panagree/topology/compiled.hpp"

namespace panagree::scenario {

using topology::AsId;
using topology::CompiledTopology;
using topology::LinkType;
using topology::NeighborRole;

/// One link to add. For kProviderCustomer links `a` is the provider and
/// `b` the customer (Graph's convention); for kPeering the order carries
/// no meaning.
struct LinkChange {
  AsId a = topology::kInvalidAs;
  AsId b = topology::kInvalidAs;
  LinkType type = LinkType::kPeering;

  friend bool operator==(const LinkChange&, const LinkChange&) = default;
};

/// One scenario: the links deployed and the links retired relative to the
/// base snapshot. Removing and re-adding the same pair rewires its
/// relationship (e.g. peering -> provider).
struct Delta {
  std::vector<LinkChange> add;
  std::vector<std::pair<AsId, AsId>> remove;

  [[nodiscard]] bool empty() const { return add.empty() && remove.empty(); }
};

class Overlay {
 public:
  using Entry = CompiledTopology::Entry;

  /// An empty overlay over `base` (which must outlive it). Until apply(),
  /// the view is exactly the base snapshot.
  explicit Overlay(const CompiledTopology& base)
      : base_(&base),
        first_added_link_(
            static_cast<std::uint32_t>(base.graph().links().size())) {}

  /// Replaces the current delta. Validates against the base snapshot:
  /// removed pairs must be base links, added pairs must connect distinct
  /// in-range ASes not already linked (unless the pair is also removed),
  /// and neither list may repeat a pair. Throws util::PreconditionError
  /// and leaves the overlay empty on violation.
  void apply(const Delta& delta);

  /// Back to the empty (= base) view.
  void clear();

  [[nodiscard]] const CompiledTopology& base() const { return *base_; }
  [[nodiscard]] std::size_t num_ases() const { return base_->num_ases(); }
  [[nodiscard]] bool empty() const { return touched_.empty(); }

  /// ASes incident to any added or removed link, sorted ascending. Every
  /// adjacency row of an AS *not* in this list is bit-identical to the
  /// base row - the seed set of the sweep engine's dirty-ball
  /// invalidation.
  [[nodiscard]] const std::vector<AsId>& touched() const { return touched_; }

  [[nodiscard]] bool is_touched(AsId as) const {
    return std::binary_search(touched_.begin(), touched_.end(), as);
  }

  /// Entry::link values >= this denote links added by the overlay; resolve
  /// them with added_link(). Smaller values index base().graph().links().
  [[nodiscard]] std::uint32_t first_added_link_id() const {
    return first_added_link_;
  }

  /// The added link behind a synthetic link id.
  [[nodiscard]] const LinkChange& added_link(std::uint32_t link_id) const;

  /// Overlaid adjacency row of `as`: the protocol of
  /// CompiledTopology::for_each_entry, with removed links dropped and
  /// added links merged in role-group order.
  template <typename Fn>
  void for_each_entry(AsId as, Fn&& fn) const {
    if (!is_touched(as)) {
      base_->for_each_entry(as, fn);
      return;
    }
    // Merge per role group: the base group span and this AS's added
    // entries of the same group, both sorted by neighbor id.
    const std::span<const Entry> groups[3] = {
        base_->providers(as), base_->peers(as), base_->customers(as)};
    const auto [added_begin, added_end] = added_range(as);
    std::size_t a = added_begin;
    for (std::size_t g = 0; g < 3; ++g) {
      std::size_t b = 0;
      const std::span<const Entry> row = groups[g];
      while (a < added_end && group_of(added_[a].entry.role) == g) {
        const AsId next_added = added_[a].entry.neighbor;
        while (b < row.size() && row[b].neighbor < next_added) {
          if (!is_removed(as, row[b].neighbor)) {
            fn(row[b]);
          }
          ++b;
        }
        fn(added_[a].entry);
        ++a;
      }
      for (; b < row.size(); ++b) {
        if (!is_removed(as, row[b].neighbor)) {
          fn(row[b]);
        }
      }
    }
  }

  /// Role of y from x's perspective under the overlay; nullopt if the
  /// overlaid topology has no x-y link. Total on out-of-range ids like the
  /// base lookup.
  [[nodiscard]] std::optional<NeighborRole> role_of(AsId x, AsId y) const {
    // A changed pair has both endpoints touched, so an untouched endpoint
    // means the base relationship stands.
    if (x >= num_ases() || !is_touched(x)) {
      return base_->role_of(x, y);
    }
    const auto [begin, end] = added_range(x);
    for (std::size_t i = begin; i < end; ++i) {
      if (added_[i].entry.neighbor == y) {
        return added_[i].entry.role;
      }
    }
    if (is_removed(x, y)) {
      return std::nullopt;
    }
    return base_->role_of(x, y);
  }

  /// Overlay link id of the x-y link, if the overlaid topology has one.
  /// Ids below first_added_link_id() index base().graph().links(); the
  /// rest resolve through added_link().
  [[nodiscard]] std::optional<std::uint32_t> link_between(AsId x,
                                                          AsId y) const {
    if (x >= num_ases() || !is_touched(x)) {
      const std::optional<topology::LinkId> base = base_->link_between(x, y);
      return base.has_value()
                 ? std::optional<std::uint32_t>(
                       static_cast<std::uint32_t>(*base))
                 : std::nullopt;
    }
    const auto [begin, end] = added_range(x);
    for (std::size_t i = begin; i < end; ++i) {
      if (added_[i].entry.neighbor == y) {
        return added_[i].entry.link;
      }
    }
    if (is_removed(x, y)) {
      return std::nullopt;
    }
    const std::optional<topology::LinkId> base = base_->link_between(x, y);
    return base.has_value() ? std::optional<std::uint32_t>(
                                  static_cast<std::uint32_t>(*base))
                            : std::nullopt;
  }

  [[nodiscard]] bool are_peers(AsId x, AsId y) const {
    return role_of(x, y) == NeighborRole::kPeer;
  }

 private:
  /// One added adjacency slot, owned by the row of `as`.
  struct AddedEntry {
    AsId as = topology::kInvalidAs;
    Entry entry;
  };

  /// CSR row group of a role (provider rows first, then peers, customers).
  [[nodiscard]] static std::size_t group_of(NeighborRole role) {
    switch (role) {
      case NeighborRole::kProvider:
        return 0;
      case NeighborRole::kPeer:
        return 1;
      case NeighborRole::kCustomer:
        break;
    }
    return 2;
  }

  [[nodiscard]] static std::uint64_t pair_key(AsId x, AsId y) {
    const AsId lo = std::min(x, y);
    const AsId hi = std::max(x, y);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  [[nodiscard]] bool is_removed(AsId x, AsId y) const {
    return std::binary_search(removed_.begin(), removed_.end(),
                              pair_key(x, y));
  }

  /// [begin, end) indices into added_ belonging to `as`'s row.
  [[nodiscard]] std::pair<std::size_t, std::size_t> added_range(
      AsId as) const {
    const auto it = std::lower_bound(
        added_.begin(), added_.end(), as,
        [](const AddedEntry& e, AsId id) { return e.as < id; });
    std::size_t begin = static_cast<std::size_t>(it - added_.begin());
    std::size_t end = begin;
    while (end < added_.size() && added_[end].as == as) {
      ++end;
    }
    return {begin, end};
  }

  const CompiledTopology* base_;
  /// Added adjacency slots sorted by (as, role group, neighbor) - i.e. in
  /// the exact order a recompiled row would hold them.
  std::vector<AddedEntry> added_;
  /// The Delta::add list, indexed by (Entry::link - first_added_link_).
  std::vector<LinkChange> added_links_;
  std::uint32_t first_added_link_ = 0;
  /// Canonical pair keys of removed links, sorted.
  std::vector<std::uint64_t> removed_;
  std::vector<AsId> touched_;
};

}  // namespace panagree::scenario
