#include "panagree/core/bosco/choice_set.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "panagree/util/error.hpp"

namespace panagree::bosco {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

ChoiceSet::ChoiceSet(std::vector<double> values) : values_(std::move(values)) {
  if (values_.empty() || values_.front() != kNegInf) {
    values_.push_back(kNegInf);
  }
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
  util::require(values_.size() >= 2,
                "ChoiceSet: need at least one finite choice");
  util::require(values_.front() == kNegInf,
                "ChoiceSet: -infinity must be the lowest choice");
  util::require(std::isfinite(values_.back()),
                "ChoiceSet: +infinity is not a valid choice");
}

ChoiceSet ChoiceSet::random(const UtilityDistribution& dist,
                            std::size_t cardinality, util::Rng& rng) {
  util::require(cardinality >= 2, "ChoiceSet::random: cardinality >= 2");
  std::vector<double> values{kNegInf};
  std::size_t guard = 0;
  while (values.size() < cardinality) {
    const double v = dist.sample(rng);
    if (std::find(values.begin(), values.end(), v) == values.end()) {
      values.push_back(v);
    }
    util::require(++guard < cardinality * 1000,
                  "ChoiceSet::random: could not draw distinct choices");
  }
  return ChoiceSet(std::move(values));
}

ChoiceSet ChoiceSet::quantile_grid(const UtilityDistribution& dist,
                                   std::size_t cardinality) {
  util::require(cardinality >= 2, "ChoiceSet::quantile_grid: cardinality >= 2");
  std::vector<double> values{kNegInf};
  const std::size_t finite = cardinality - 1;
  const double lo = dist.support_lo();
  const double hi = dist.support_hi();
  for (std::size_t i = 0; i < finite; ++i) {
    const double q =
        (static_cast<double>(i) + 0.5) / static_cast<double>(finite);
    // Invert the cdf by bisection over the support.
    double a = lo;
    double b = hi;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (a + b);
      (dist.cdf(mid) < q ? a : b) = mid;
    }
    values.push_back(0.5 * (a + b));
  }
  return ChoiceSet(std::move(values));
}

double ChoiceSet::value(std::size_t i) const {
  util::require(i < values_.size(), "ChoiceSet::value: index out of range");
  return values_[i];
}

}  // namespace panagree::bosco
