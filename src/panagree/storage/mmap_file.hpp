// Read-only memory-mapped file, the zero-copy substrate of MappedSnapshot.
#pragma once

#include <cstddef>
#include <string>

namespace panagree::storage {

/// RAII wrapper around a read-only, private mmap of a whole file. Movable,
/// not copyable. An empty file maps to {nullptr, 0}.
class MmapFile {
 public:
  MmapFile() = default;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  ~MmapFile();

  /// Maps `path` read-only; throws SnapshotError on any I/O failure.
  [[nodiscard]] static MmapFile open(const std::string& path);

  /// Access-pattern advice for a byte range of the mapping (offsets are
  /// rounded out to page boundaries internally). kWillNeed asks the
  /// kernel to prefetch; kHugePage requests transparent huge pages for
  /// the range (kernels without file-backed THP refuse it). Returns
  /// whether the kernel accepted the advice - callers report, they do
  /// not depend on it.
  enum class Advice { kWillNeed, kHugePage };
  bool advise(std::size_t offset, std::size_t length, Advice advice) const;

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace panagree::storage
