#include "panagree/core/bosco/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "panagree/util/error.hpp"

namespace panagree::bosco {

double UtilityDistribution::mass_in(double lo, double hi) const {
  if (hi <= lo) {
    return 0.0;
  }
  return std::max(0.0, cdf(hi) - cdf(lo));
}

// ---------------------------------------------------------------- uniform

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  util::require(lo < hi, "UniformDistribution: need lo < hi");
}

double UniformDistribution::pdf(double u) const {
  return (u >= lo_ && u <= hi_) ? 1.0 / (hi_ - lo_) : 0.0;
}

double UniformDistribution::cdf(double u) const {
  if (u <= lo_) {
    return 0.0;
  }
  if (u >= hi_) {
    return 1.0;
  }
  return (u - lo_) / (hi_ - lo_);
}

double UniformDistribution::first_moment_in(double lo, double hi) const {
  const double a = std::max(lo, lo_);
  const double b = std::min(hi, hi_);
  if (b <= a) {
    return 0.0;
  }
  return (b * b - a * a) / (2.0 * (hi_ - lo_));
}

double UniformDistribution::sample(util::Rng& rng) const {
  return rng.uniform(lo_, hi_);
}

std::unique_ptr<UtilityDistribution> UniformDistribution::clone() const {
  return std::make_unique<UniformDistribution>(*this);
}

// -------------------------------------------------------------- triangular

TriangularDistribution::TriangularDistribution(double lo, double mode,
                                               double hi)
    : lo_(lo), mode_(mode), hi_(hi) {
  util::require(lo < hi, "TriangularDistribution: need lo < hi");
  util::require(mode >= lo && mode <= hi,
                "TriangularDistribution: mode must lie in [lo, hi]");
}

double TriangularDistribution::pdf(double u) const {
  if (u < lo_ || u > hi_) {
    return 0.0;
  }
  const double width = hi_ - lo_;
  if (u <= mode_) {
    return mode_ == lo_ ? 2.0 / width
                        : 2.0 * (u - lo_) / (width * (mode_ - lo_));
  }
  return mode_ == hi_ ? 2.0 / width
                      : 2.0 * (hi_ - u) / (width * (hi_ - mode_));
}

double TriangularDistribution::cdf(double u) const {
  if (u <= lo_) {
    return 0.0;
  }
  if (u >= hi_) {
    return 1.0;
  }
  const double width = hi_ - lo_;
  if (u <= mode_) {
    if (mode_ == lo_) {
      return (u - lo_) * 2.0 / width -
             (u - lo_) * (u - lo_) / (width * width);  // degenerate left edge
    }
    return (u - lo_) * (u - lo_) / (width * (mode_ - lo_));
  }
  if (mode_ == hi_) {
    return 1.0 - (hi_ - u) * 2.0 / width +
           (hi_ - u) * (hi_ - u) / (width * width);
  }
  return 1.0 - (hi_ - u) * (hi_ - u) / (width * (hi_ - mode_));
}

double TriangularDistribution::first_moment_in(double lo, double hi) const {
  // Piecewise-polynomial exact integration of u * pdf(u).
  const auto left_part = [&](double a, double b) {
    // pdf = 2 (u - lo_) / (W (mode_-lo_)); int u*pdf = 2/(W m) (u^3/3 - lo_ u^2/2)
    const double scale = 2.0 / ((hi_ - lo_) * (mode_ - lo_));
    const auto prim = [&](double u) {
      return scale * (u * u * u / 3.0 - lo_ * u * u / 2.0);
    };
    return prim(b) - prim(a);
  };
  const auto right_part = [&](double a, double b) {
    const double scale = 2.0 / ((hi_ - lo_) * (hi_ - mode_));
    const auto prim = [&](double u) {
      return scale * (hi_ * u * u / 2.0 - u * u * u / 3.0);
    };
    return prim(b) - prim(a);
  };
  double total = 0.0;
  if (mode_ > lo_) {
    const double a = std::clamp(lo, lo_, mode_);
    const double b = std::clamp(hi, lo_, mode_);
    if (b > a) {
      total += left_part(a, b);
    }
  }
  if (hi_ > mode_) {
    const double a = std::clamp(lo, mode_, hi_);
    const double b = std::clamp(hi, mode_, hi_);
    if (b > a) {
      total += right_part(a, b);
    }
  }
  return total;
}

double TriangularDistribution::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  const double fc = (mode_ - lo_) / (hi_ - lo_);
  if (u < fc) {
    return lo_ + std::sqrt(u * (hi_ - lo_) * (mode_ - lo_));
  }
  return hi_ - std::sqrt((1.0 - u) * (hi_ - lo_) * (hi_ - mode_));
}

std::unique_ptr<UtilityDistribution> TriangularDistribution::clone() const {
  return std::make_unique<TriangularDistribution>(*this);
}

// -------------------------------------------------------- truncated normal

TruncatedNormalDistribution::TruncatedNormalDistribution(double mean,
                                                         double sigma,
                                                         double lo, double hi)
    : mean_(mean), sigma_(sigma), lo_(lo), hi_(hi) {
  util::require(sigma > 0.0, "TruncatedNormalDistribution: sigma > 0");
  util::require(lo < hi, "TruncatedNormalDistribution: need lo < hi");
  z_ = big_phi((hi_ - mean_) / sigma_) - big_phi((lo_ - mean_) / sigma_);
  util::require(z_ > 0.0,
                "TruncatedNormalDistribution: empty truncation window");
}

double TruncatedNormalDistribution::phi(double u) const {
  return std::exp(-0.5 * u * u) / std::sqrt(2.0 * std::numbers::pi);
}

double TruncatedNormalDistribution::big_phi(double u) const {
  return 0.5 * std::erfc(-u / std::numbers::sqrt2);
}

double TruncatedNormalDistribution::pdf(double u) const {
  if (u < lo_ || u > hi_) {
    return 0.0;
  }
  return phi((u - mean_) / sigma_) / (sigma_ * z_);
}

double TruncatedNormalDistribution::cdf(double u) const {
  if (u <= lo_) {
    return 0.0;
  }
  if (u >= hi_) {
    return 1.0;
  }
  return (big_phi((u - mean_) / sigma_) - big_phi((lo_ - mean_) / sigma_)) /
         z_;
}

double TruncatedNormalDistribution::first_moment_in(double lo,
                                                    double hi) const {
  const double a = std::max(lo, lo_);
  const double b = std::min(hi, hi_);
  if (b <= a) {
    return 0.0;
  }
  const double alpha = (a - mean_) / sigma_;
  const double beta = (b - mean_) / sigma_;
  // int_a^b u pdf = [ mean (Phi(beta)-Phi(alpha)) - sigma (phi(beta)-phi(alpha)) ] / Z
  return (mean_ * (big_phi(beta) - big_phi(alpha)) -
          sigma_ * (phi(beta) - phi(alpha))) /
         z_;
}

double TruncatedNormalDistribution::sample(util::Rng& rng) const {
  // Rejection from the parent normal; acceptance >= z_, and the windows we
  // use keep z_ large. Falls back to inverse-cdf bisection if unlucky.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double draw = rng.normal(mean_, sigma_);
    if (draw >= lo_ && draw <= hi_) {
      return draw;
    }
  }
  double target = rng.uniform();
  double a = lo_;
  double b = hi_;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (a + b);
    (cdf(mid) < target ? a : b) = mid;
  }
  return 0.5 * (a + b);
}

std::unique_ptr<UtilityDistribution> TruncatedNormalDistribution::clone()
    const {
  return std::make_unique<TruncatedNormalDistribution>(*this);
}

}  // namespace panagree::bosco
