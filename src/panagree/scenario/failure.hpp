// Failure what-ifs: link-down deltas through the incremental sweep.
//
// A link failure is the mirror image of the agreement deployments the
// scenario engine was built for: a remove-only Delta over the same base
// snapshot, applied through the same Overlay (synthetic removed-link
// masking keeps adjacency rows row-order-identical to recompiling the
// pruned graph) and evaluated through the same SweepRunner
// invalidation-ball machinery - byte-identical to a full recompute at any
// thread count, with only the sources near the failed link recomputed.
//
// failure_sets() enumerates the k-link failure universe (every C(L, k)
// combination in lexicographic link-id order) and degrades to a
// deterministic seeded sample above a budget; failure_diversity() folds
// the §VI GRC/MA counts surviving each set into the min/mean headline
// metric (scenario::FailureDiversity) for a deployment candidate - "rank
// programs by the diversity they keep when links go down", the
// panagree-sweep --failures mode.
#pragma once

#include <span>

#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/sweep.hpp"

namespace panagree::scenario {

/// The k-link failure universe of a snapshot, as remove-only deltas.
struct FailureSets {
  std::vector<Delta> sets;
  /// True when the universe exceeded the budget and `sets` is a sample.
  bool sampled = false;
  /// C(num_links, k), saturated at SIZE_MAX on overflow.
  std::size_t universe = 0;
};

/// Enumerates every k-link failure set of `base` when C(L, k) fits
/// `max_sets`, in lexicographic link-id order; otherwise returns a
/// deterministic seeded sample of `max_sets` distinct sets. max_sets == 0
/// means unlimited (always exhaustive). k == 0 or an empty graph yields
/// no sets.
[[nodiscard]] FailureSets failure_sets(const CompiledTopology& base,
                                       std::size_t k, std::size_t max_sets,
                                       std::uint64_t seed);

/// Every base link incident to `as` as one remove-only delta - the
/// AS-failure scenario (the AS keeps existing; all its adjacencies go
/// dark, which is what the length-3 analyses and the convergence engine
/// observe).
[[nodiscard]] Delta as_failure_delta(const CompiledTopology& base, AsId as);

/// Evaluates `deployment` under every failure set: each set is composed
/// onto the deployment (deployment links stay up; the failed base links
/// go down) and run through the runner's incremental evaluate, then the
/// surviving §VI diversity counts fold into the min/mean headline.
/// `runner` must be primed; `deployment` must not remove links that
/// appear in a failure set (deployments add links). Results are a pure
/// function of (runner state, deployment, failures) - thread counts only
/// change wall-clock time.
[[nodiscard]] FailureDiversity failure_diversity(
    SweepRunner<SourcePathSet>& runner, const Delta& deployment,
    std::span<const Delta> failures);

}  // namespace panagree::scenario
