// Per-source sharded parallel driver for path enumeration.
//
// Every large-scale analysis in this repo fans out over independent source
// ASes (SPP compilation per node, diversity counts per sampled AS). The
// driver runs a per-source function over a std::thread pool and collects
// results *in source order*: workers claim source indices from an atomic
// cursor (dynamic load balancing - per-source costs are heavy-tailed), and
// each result lands in its source's preallocated slot. The merged output is
// therefore byte-identical for every thread count, including 1; parallelism
// never changes results, only wall-clock time.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "panagree/topology/graph.hpp"

namespace panagree::paths {

/// Resolves a requested worker count: 0 means "use the hardware", anything
/// else is taken literally. Always >= 1.
[[nodiscard]] std::size_t resolve_thread_count(std::size_t requested);

/// Below this many sources the driver runs serially regardless of the
/// requested worker count: thread spawn/join overhead dwarfs tiny
/// workloads, and results are identical either way.
inline constexpr std::size_t kMinParallelSources = 32;

/// Runs `fn(sources[i])` for every i and returns the results in source
/// order. `fn` must be callable concurrently from multiple threads; its
/// result type must be default-constructible and movable. The first
/// exception thrown by any invocation is rethrown on the calling thread
/// after all workers have drained.
template <typename Fn>
[[nodiscard]] auto map_sources(const std::vector<topology::AsId>& sources,
                               std::size_t threads, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, topology::AsId>> {
  using Result = std::invoke_result_t<Fn&, topology::AsId>;
  // std::vector<bool> packs bits: concurrent writes to distinct indices
  // would race on shared bytes. Return char/int instead.
  static_assert(!std::is_same_v<Result, bool>,
                "map_sources: bool results are not thread-safe "
                "(vector<bool> packs bits)");
  std::vector<Result> results(sources.size());
  const std::size_t workers =
      std::min(resolve_thread_count(threads), sources.size());
  if (workers <= 1 || sources.size() < kMinParallelSources) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      results[i] = fn(sources[i]);
    }
    return results;
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;
  const auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= sources.size()) {
        return;
      }
      try {
        results[i] = fn(sources[i]);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) {
          error = std::current_exception();
        }
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  try {
    for (std::size_t t = 0; t < workers; ++t) {
      pool.emplace_back(worker);
    }
  } catch (...) {
    // Thread creation failed (resource pressure): drain the workers that
    // did start, then let the error propagate - never terminate().
    failed.store(true, std::memory_order_relaxed);
    for (std::thread& t : pool) {
      t.join();
    }
    throw;
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (error) {
    std::rethrow_exception(error);
  }
  return results;
}

}  // namespace panagree::paths
