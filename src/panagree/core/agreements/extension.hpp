// Agreement-path extension (§III-B3).
//
// New path segments created by an agreement can themselves become the
// matter of further agreements (the paper's a' between E and F extending
// E's segment EDA). Extensions are interdependent with their parent: the
// parent's flow-volume allowances must still be respected. The registry
// tracks concluded agreements, their per-segment allowances, and the
// consumption charged by extensions.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "panagree/core/agreements/agreement.hpp"

namespace panagree::agreements {

using AgreementId = std::size_t;

/// A flow-volume allowance on one agreement path segment (the f^(a)_P of
/// Eq. 9, fixed at conclusion).
struct FlowAllowance {
  std::vector<AsId> segment;
  double total = 0.0;
  double used = 0.0;

  [[nodiscard]] double remaining() const { return total - used; }
};

/// An extension: `beneficiary` (a neighbor of `party`) gains access to the
/// parent segment, extended by its own hop.
struct Extension {
  AgreementId parent = 0;
  AsId party = topology::kInvalidAs;        ///< the parent-party granting it
  AsId beneficiary = topology::kInvalidAs;  ///< who gains the extended path
  std::vector<AsId> extended_segment;       ///< beneficiary + parent segment
  double volume = 0.0;
};

class AgreementRegistry {
 public:
  /// Registers a concluded agreement with its per-segment allowances.
  AgreementId register_agreement(Agreement agreement,
                                 std::vector<FlowAllowance> allowances);

  [[nodiscard]] const Agreement& agreement(AgreementId id) const;
  [[nodiscard]] const std::vector<FlowAllowance>& allowances(
      AgreementId id) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Remaining allowance on `segment` of agreement `id` (nullopt if the
  /// segment is not part of the agreement).
  [[nodiscard]] std::optional<double> remaining(
      AgreementId id, const std::vector<AsId>& segment) const;

  /// Tries to conclude an extension: checks that the extended segment is
  /// the beneficiary's hop prepended to a parent segment, that the
  /// beneficiary neighbors the party, and that the parent allowance covers
  /// the volume. On success the allowance is consumed and true returned.
  bool try_register_extension(const Graph& graph, Extension extension);

  [[nodiscard]] const std::vector<Extension>& extensions() const {
    return extensions_;
  }

 private:
  struct Entry {
    Agreement agreement;
    std::vector<FlowAllowance> allowances;
  };
  std::vector<Entry> entries_;
  std::vector<Extension> extensions_;
};

}  // namespace panagree::agreements
