// Classic peering agreements (§III-B1): both parties grant access to all of
// their customers - the GRC-conforming baseline against which mutuality-
// based agreements are compared.
#pragma once

#include "panagree/core/agreements/agreement.hpp"

namespace panagree::agreements {

/// Builds ap = [X(v gamma(X)); Y(v gamma(Y))]. The parties need not be
/// peers yet (the agreement is what creates the peering link), but both
/// must exist in the graph.
[[nodiscard]] Agreement make_classic_peering(const Graph& graph, AsId x,
                                             AsId y);

}  // namespace panagree::agreements
