#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "panagree/core/bosco/best_response.hpp"
#include "panagree/core/bosco/choice_set.hpp"
#include "panagree/core/bosco/efficiency.hpp"
#include "panagree/core/bosco/equilibrium.hpp"
#include "panagree/core/bosco/service.hpp"

namespace panagree::bosco {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// -------------------------------------------------------------- choice set

TEST(ChoiceSet, AlwaysContainsCancellation) {
  const ChoiceSet cs({0.5, -0.5});
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs.value(0), kNegInf);
  EXPECT_DOUBLE_EQ(cs.value(1), -0.5);
  EXPECT_DOUBLE_EQ(cs.value(2), 0.5);
}

TEST(ChoiceSet, RandomDrawsFromTheDistribution) {
  const UniformDistribution dist(-1.0, 1.0);
  util::Rng rng(5);
  const ChoiceSet cs = ChoiceSet::random(dist, 20, rng);
  EXPECT_EQ(cs.size(), 20u);
  EXPECT_EQ(cs.value(0), kNegInf);
  for (std::size_t i = 1; i < cs.size(); ++i) {
    EXPECT_GE(cs.value(i), -1.0);
    EXPECT_LE(cs.value(i), 1.0);
    if (i > 1) {
      EXPECT_GT(cs.value(i), cs.value(i - 1));  // sorted, distinct
    }
  }
}

TEST(ChoiceSet, QuantileGridCoversSupportEvenly) {
  const UniformDistribution dist(0.0, 1.0);
  const ChoiceSet cs = ChoiceSet::quantile_grid(dist, 5);
  ASSERT_EQ(cs.size(), 5u);
  EXPECT_NEAR(cs.value(1), 0.125, 1e-6);
  EXPECT_NEAR(cs.value(2), 0.375, 1e-6);
  EXPECT_NEAR(cs.value(3), 0.625, 1e-6);
  EXPECT_NEAR(cs.value(4), 0.875, 1e-6);
}

TEST(ChoiceSet, RejectsDegenerateCardinality) {
  const UniformDistribution dist(0.0, 1.0);
  util::Rng rng(1);
  EXPECT_THROW((void)ChoiceSet::random(dist, 1, rng), util::PreconditionError);
}

// --------------------------------------------------------------- strategy

TEST(Strategy, QuantizerPlaysFloorChoice) {
  const ChoiceSet cs({-0.5, 0.0, 0.5});
  const Strategy s = Strategy::quantizer(cs);
  EXPECT_EQ(s.choice_for(-0.9), 0u);  // below all finite choices: cancel
  EXPECT_EQ(s.choice_for(-0.3), 1u);
  EXPECT_EQ(s.choice_for(0.2), 2u);
  EXPECT_EQ(s.choice_for(3.0), 3u);
  EXPECT_EQ(s.active_choices(), 4u);
}

TEST(Strategy, RejectsMalformedThresholds) {
  EXPECT_THROW(Strategy({0.0, 1.0}), util::PreconditionError);  // no -inf
  EXPECT_THROW(
      Strategy({kNegInf, 1.0, 0.0, std::numeric_limits<double>::infinity()}),
      util::PreconditionError);  // decreasing
}

TEST(Strategy, ApproxEqualToleratesTinyShifts) {
  const double inf = std::numeric_limits<double>::infinity();
  const Strategy a({kNegInf, 0.5, inf});
  const Strategy b({kNegInf, 0.5 + 1e-13, inf});
  const Strategy c({kNegInf, 0.7, inf});
  EXPECT_TRUE(a.approx_equal(b, 1e-9));
  EXPECT_FALSE(a.approx_equal(c, 1e-9));
}

TEST(ClaimProbabilities, MatchDistributionMasses) {
  const UniformDistribution dist(0.0, 1.0);
  const double inf = std::numeric_limits<double>::infinity();
  // Choice 0 (cancel) on (-inf, 0.25), choice 1 on [0.25, 0.75), choice 2 on
  // [0.75, inf).
  const Strategy s({kNegInf, 0.25, 0.75, inf});
  const auto probs = claim_probabilities(s, dist);
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_NEAR(probs[0], 0.25, 1e-12);
  EXPECT_NEAR(probs[1], 0.5, 1e-12);
  EXPECT_NEAR(probs[2], 0.25, 1e-12);
}

// ---------------------------------------------------------- best response

TEST(UtilityLines, HandComputedSmallCase) {
  const ChoiceSet own({0.0, 0.5});
  const ChoiceSet opp({-0.2, 0.4});
  const std::vector<double> probs{0.1, 0.3, 0.6};
  const auto lines = expected_utility_lines(own, opp, probs);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_DOUBLE_EQ(lines[0].m, 0.0);
  EXPECT_DOUBLE_EQ(lines[0].q, 0.0);
  // v = 0.0: qualifying opponent claims w >= 0: only w = 0.4 (p = 0.6).
  // m = 0.6, q = 0.6 * (0.4 - 0.0)/2 = 0.12.
  EXPECT_NEAR(lines[1].m, 0.6, 1e-12);
  EXPECT_NEAR(lines[1].q, 0.12, 1e-12);
  // v = 0.5: w >= -0.5: both -0.2 (p=0.3) and 0.4 (p=0.6) qualify.
  // m = 0.9, q = 0.3*(-0.2-0.5)/2 + 0.6*(0.4-0.5)/2 = -0.105 - 0.03.
  EXPECT_NEAR(lines[2].m, 0.9, 1e-12);
  EXPECT_NEAR(lines[2].q, -0.135, 1e-12);
}

TEST(BestResponse, PicksUpperEnvelope) {
  // Lines: cancel (0,0); A: 0.5u + 0.1; B: 1.0u - 0.2.
  const std::vector<UtilityLine> lines{{0.0, 0.0}, {0.5, 0.1}, {1.0, -0.2}};
  const Strategy s = best_response(lines);
  // Crossings: cancel/A at u = -0.2; A/B at u = 0.6.
  EXPECT_EQ(s.choice_for(-1.0), 0u);
  EXPECT_EQ(s.choice_for(0.0), 1u);
  EXPECT_EQ(s.choice_for(1.0), 2u);
  EXPECT_EQ(s.active_choices(), 3u);
}

TEST(BestResponse, DropsDominatedLines) {
  // Line 1 dominated by line 2 (same slope, lower intercept).
  const std::vector<UtilityLine> lines{
      {0.0, 0.0}, {0.5, -1.0}, {0.5, 0.2}, {1.0, -0.5}};
  const Strategy s = best_response(lines);
  // Choice 1 must never be played.
  for (double u = -3.0; u <= 3.0; u += 0.05) {
    EXPECT_NE(s.choice_for(u), 1u);
  }
}

// Property: for random opponent strategies, the computed threshold strategy
// must achieve the maximal line value at every true utility.
class BestResponseSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BestResponseSweep, AchievesMaxExpectedUtilityEverywhere) {
  util::Rng rng(GetParam());
  const UniformDistribution dist(-1.0, 1.0);
  const ChoiceSet own = ChoiceSet::random(dist, 12, rng);
  const ChoiceSet opp = ChoiceSet::random(dist, 12, rng);
  // Random opponent strategy: the quantizer of its own choices.
  const Strategy opp_strategy = Strategy::quantizer(opp);
  const auto probs = claim_probabilities(opp_strategy, dist);
  const auto lines = expected_utility_lines(own, opp, probs);
  const Strategy response = best_response(lines);
  for (double u = -1.0; u <= 1.0; u += 0.01) {
    const std::size_t picked = response.choice_for(u);
    const double picked_value = lines[picked].m * u + lines[picked].q;
    double best = 0.0;  // cancel baseline
    for (const auto& line : lines) {
      best = std::max(best, line.m * u + line.q);
    }
    EXPECT_NEAR(picked_value, best, 1e-9) << "u = " << u;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BestResponseSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// -------------------------------------------------------------- equilibria

TEST(Equilibrium, ConvergesAndVerifies) {
  const UniformDistribution dx(-1.0, 1.0);
  const UniformDistribution dy(-1.0, 1.0);
  util::Rng rng(11);
  const ChoiceSet vx = ChoiceSet::random(dx, 20, rng);
  const ChoiceSet vy = ChoiceSet::random(dy, 20, rng);
  const EquilibriumResult eq = find_equilibrium(vx, vy, dx, dy);
  ASSERT_TRUE(eq.converged);
  EXPECT_TRUE(is_nash_equilibrium(vx, vy, eq.x, eq.y, dx, dy));
}

class EquilibriumSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquilibriumSweep, BestResponseDynamicsConverge) {
  const UniformDistribution dx(-0.5, 1.0);
  const UniformDistribution dy(-1.0, 1.0);
  util::Rng rng(GetParam());
  const ChoiceSet vx = ChoiceSet::random(dx, 15, rng);
  const ChoiceSet vy = ChoiceSet::random(dy, 15, rng);
  const EquilibriumResult eq = find_equilibrium(vx, vy, dx, dy);
  EXPECT_TRUE(eq.converged) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquilibriumSweep,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28, 29,
                                           30, 31, 32));

// ------------------------------------------------------------- efficiency

TEST(Efficiency, TruthfulReferenceMatchesClosedFormU1) {
  // U(1) = Unif[-1,1]^2: E[N | truthful] = 1/12.
  const UniformDistribution d(-1.0, 1.0);
  EXPECT_NEAR(expected_truthful_nash_product(d, d, 800), 1.0 / 12.0, 5e-4);
}

TEST(Efficiency, TruthfulReferenceMatchesClosedFormU2) {
  // U(2) = Unif[-1/2,1]^2: E[N | truthful] = 0.1469907...
  const UniformDistribution d(-0.5, 1.0);
  EXPECT_NEAR(expected_truthful_nash_product(d, d, 800), 0.14699, 5e-4);
}

TEST(Efficiency, ExactIntegrationMatchesMonteCarlo) {
  const UniformDistribution dx(-1.0, 1.0);
  const UniformDistribution dy(-1.0, 1.0);
  util::Rng rng(77);
  const ChoiceSet vx = ChoiceSet::random(dx, 16, rng);
  const ChoiceSet vy = ChoiceSet::random(dy, 16, rng);
  const EquilibriumResult eq = find_equilibrium(vx, vy, dx, dy);
  ASSERT_TRUE(eq.converged);
  const double exact = expected_nash_product(vx, vy, eq.x, eq.y, dx, dy);

  util::Rng mc(123);
  double acc = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double ux = dx.sample(mc);
    const double uy = dy.sample(mc);
    const double cx = vx.value(eq.x.choice_for(ux));
    const double cy = vy.value(eq.y.choice_for(uy));
    if (std::isinf(cx) || std::isinf(cy) || cx + cy < 0.0) {
      continue;
    }
    const double pi = (cx - cy) / 2.0;
    acc += (ux - pi) * (uy + pi);
  }
  EXPECT_NEAR(exact, acc / n, 5e-3);
}

TEST(Efficiency, PodRejectsZeroTruthful) {
  EXPECT_THROW((void)price_of_dishonesty(0.1, 0.0), util::PreconditionError);
}

// ---------------------------------------------- BOSCO theorems (§V-D)

class BoscoTheorems : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  BoscoTheorems()
      : service_(std::make_unique<UniformDistribution>(-1.0, 1.0),
                 std::make_unique<UniformDistribution>(-1.0, 1.0),
                 BoscoServiceOptions{.trials = 8,
                                     .seed = GetParam(),
                                     .equilibrium = {},
                                     .truthful_grid = 200}) {}
  BoscoService service_;
};

TEST_P(BoscoTheorems, StrongIndividualRationalityAndSoundness) {
  const MechanismInfoSet info = service_.configure(15);
  EXPECT_TRUE(info.converged);
  util::Rng rng(GetParam() * 7 + 1);
  for (int i = 0; i < 2000; ++i) {
    const double ux = service_.dist_x().sample(rng);
    const double uy = service_.dist_y().sample(rng);
    const NegotiationOutcome out = BoscoService::execute(info, ux, uy);
    if (out.concluded) {
      // Theorem 1: strong individual rationality.
      EXPECT_GE(out.u_x_after, -1e-9);
      EXPECT_GE(out.u_y_after, -1e-9);
      // Theorem 2: soundness - concluded agreements are viable.
      EXPECT_GE(ux + uy, -1e-9);
      // Budget balance: transfers cancel.
      EXPECT_NEAR(out.u_x_after + out.u_y_after, ux + uy, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(out.u_x_after, 0.0);
      EXPECT_DOUBLE_EQ(out.u_y_after, 0.0);
    }
  }
}

TEST_P(BoscoTheorems, PodLiesInUnitInterval) {
  const auto stats = service_.trial_statistics(12);
  EXPECT_GT(stats.converged_trials, 0u);
  EXPECT_GE(stats.min_pod, -1e-9);   // Theorem 3
  EXPECT_LE(stats.mean_pod, 1.0 + 1e-9);
  EXPECT_LE(stats.min_pod, stats.mean_pod + 1e-12);
}

TEST_P(BoscoTheorems, PrivacyNoSingletonIntervals) {
  // Theorem 4: every played interval has positive length, so exact utility
  // reconstruction from a claim is impossible.
  const MechanismInfoSet info = service_.configure(15);
  for (const Strategy* s : {&info.strategy_x, &info.strategy_y}) {
    const auto& starts = s->starts();
    for (std::size_t i = 0; i + 1 < starts.size(); ++i) {
      if (starts[i] < starts[i + 1]) {
        EXPECT_GT(starts[i + 1] - starts[i], 0.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoscoTheorems, ::testing::Values(1, 2, 3, 4));

TEST(Strategy, ShortestActiveIntervalExcludesUnboundedEnds) {
  const double inf = std::numeric_limits<double>::infinity();
  // Intervals: (-inf, 0.1), [0.1, 0.4), [0.4, 0.45), [0.45, inf).
  const Strategy s({kNegInf, 0.1, 0.4, 0.45, inf});
  EXPECT_NEAR(s.shortest_active_interval(), 0.05, 1e-12);
  // Only unbounded intervals: +infinity.
  const Strategy open({kNegInf, 0.0, inf});
  EXPECT_TRUE(std::isinf(open.shortest_active_interval()));
}

TEST(BoscoService, PrivacyConstraintFiltersConfigurations) {
  // §V-D: the service can require a minimum claim-interval length. The
  // returned configuration must satisfy it, at a (weakly) higher PoD than
  // the unconstrained pick.
  const auto make_service = [](double min_privacy) {
    return BoscoService(std::make_unique<UniformDistribution>(-1.0, 1.0),
                        std::make_unique<UniformDistribution>(-1.0, 1.0),
                        BoscoServiceOptions{.trials = 40,
                                            .seed = 5,
                                            .equilibrium = {},
                                            .truthful_grid = 200,
                                            .min_privacy_interval = min_privacy});
  };
  const auto unconstrained = make_service(0.0).configure(20);
  EXPECT_GT(unconstrained.privacy, 0.0);
  const auto constrained = make_service(0.3).configure(20);
  EXPECT_GE(constrained.privacy, 0.3);
  EXPECT_GE(constrained.pod, unconstrained.pod - 1e-12);
}

TEST(BoscoService, ExtremePrivacyRequirementIsHonoredOrRefused) {
  // A huge threshold is only satisfiable by equilibria whose active
  // intervals are all unbounded (claims then reveal one-sided bounds only,
  // i.e. privacy is infinite). configure() must either return such a
  // configuration or refuse.
  BoscoService service(std::make_unique<UniformDistribution>(-1.0, 1.0),
                       std::make_unique<UniformDistribution>(-1.0, 1.0),
                       BoscoServiceOptions{.trials = 5,
                                           .seed = 6,
                                           .equilibrium = {},
                                           .truthful_grid = 200,
                                           .min_privacy_interval = 1e6});
  try {
    const auto info = service.configure(20);
    EXPECT_GE(info.privacy, 1e6);
  } catch (const util::PreconditionError&) {
    SUCCEED();  // no qualifying equilibrium among the trials
  }
}

TEST(BoscoService, MoreChoicesReduceMeanPod) {
  // The Fig. 2 trend: PoD at W=40 is clearly below PoD at W=6.
  BoscoService service(std::make_unique<UniformDistribution>(-1.0, 1.0),
                       std::make_unique<UniformDistribution>(-1.0, 1.0),
                       BoscoServiceOptions{.trials = 24,
                                           .seed = 9,
                                           .equilibrium = {},
                                           .truthful_grid = 200});
  const auto coarse = service.trial_statistics(6);
  const auto fine = service.trial_statistics(40);
  ASSERT_GT(coarse.converged_trials, 0u);
  ASSERT_GT(fine.converged_trials, 0u);
  EXPECT_LT(fine.mean_pod, coarse.mean_pod);
  EXPECT_LT(fine.min_pod, coarse.min_pod + 1e-12);
}

TEST(BoscoService, ExecuteAdjudicatesByClaims) {
  const double inf = std::numeric_limits<double>::infinity();
  MechanismInfoSet info{
      ChoiceSet({-0.4, 0.3}), ChoiceSet({-0.2, 0.5}),
      Strategy({kNegInf, -0.4, 0.3, inf}), Strategy({kNegInf, -0.2, 0.5, inf}),
      0.0, 1.0, 0.0, true};
  // ux = 0.35 -> claim 0.3; uy = 0.1 -> claim -0.2; surplus 0.1 >= 0.
  const NegotiationOutcome out = BoscoService::execute(info, 0.35, 0.1);
  EXPECT_TRUE(out.concluded);
  EXPECT_DOUBLE_EQ(out.claim_x, 0.3);
  EXPECT_DOUBLE_EQ(out.claim_y, -0.2);
  EXPECT_DOUBLE_EQ(out.transfer_x_to_y, 0.25);
  EXPECT_NEAR(out.u_x_after, 0.1, 1e-12);
  EXPECT_NEAR(out.u_y_after, 0.35, 1e-12);
  // Cancellation when one party claims -inf.
  const NegotiationOutcome cancelled = BoscoService::execute(info, -2.0, 0.1);
  EXPECT_FALSE(cancelled.concluded);
}

}  // namespace
}  // namespace panagree::bosco
