// Geographic primitives: lat/long coordinates, great-circle distance, and
// spherical centroids.
//
// The paper (§VI-B) geolocates each AS at the "center of gravity" of its
// prefixes and measures path geodistance as the sum of great-circle legs
// AS-center -> link -> link -> AS-center. These helpers implement exactly
// that arithmetic.
#pragma once

#include <span>

namespace panagree::geo {

/// Mean Earth radius in kilometres (IUGG).
inline constexpr double kEarthRadiusKm = 6371.0088;

/// A point on the sphere, in degrees.
struct LatLng {
  double lat_deg = 0.0;
  double lng_deg = 0.0;

  friend bool operator==(const LatLng&, const LatLng&) = default;
};

/// Great-circle (haversine) distance between two points, in kilometres.
[[nodiscard]] double great_circle_km(const LatLng& a, const LatLng& b);

/// Spherical center of gravity of a set of points (3D mean, re-projected).
/// This is the "averaging the resulting coordinates" step the paper applies
/// to AS prefixes; returns {0, 0} for an empty span.
[[nodiscard]] LatLng spherical_centroid(std::span<const LatLng> points);

/// Validates that a coordinate is a physical lat/long pair.
[[nodiscard]] bool is_valid(const LatLng& p);

}  // namespace panagree::geo
