#include "panagree/sim/network.hpp"

#include <algorithm>

#include "panagree/geo/coordinates.hpp"

namespace panagree::sim {

namespace {
constexpr double kSpeedOfLightKmPerS = 299792.458;
}

Network::Network(const Graph& graph, const pan::KeyStore& keys,
                 const geo::World* world, NetworkParams params)
    : graph_(&graph),
      keys_(&keys),
      validator_(graph, keys),
      params_(params) {
  util::require(params_.propagation_fraction_of_c > 0.0,
                "Network: propagation fraction must be positive");
  util::require(params_.bits_per_capacity_unit > 0.0,
                "Network: bits_per_capacity_unit must be positive");
  // Precompute per-link propagation latency.
  for (const topology::Link& link : graph.links()) {
    double latency = params_.default_link_latency_s;
    const auto& ia = graph.info(link.a);
    const auto& ib = graph.info(link.b);
    if (world != nullptr && ia.has_geo && ib.has_geo) {
      double km;
      if (!link.facilities.empty()) {
        const geo::LatLng fac = world->city(link.facilities.front()).location;
        km = geo::great_circle_km(ia.centroid, fac) +
             geo::great_circle_km(fac, ib.centroid);
      } else {
        km = geo::great_circle_km(ia.centroid, ib.centroid);
      }
      latency = km / (kSpeedOfLightKmPerS * params_.propagation_fraction_of_c);
    }
    latency_cache_[directed_key(link.a, link.b)] = latency;
    latency_cache_[directed_key(link.b, link.a)] = latency;
  }
}

std::uint64_t Network::directed_key(AsId from, AsId to) const {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

double Network::link_latency_s(AsId x, AsId y, double size_bits) const {
  const auto it = latency_cache_.find(directed_key(x, y));
  util::require(it != latency_cache_.end(),
                "Network::link_latency_s: no such link");
  const auto link_id = validator_.compiled().link_between(x, y);
  const double capacity_units =
      std::max(1e-9, graph_->link(*link_id).capacity > 0.0
                         ? graph_->link(*link_id).capacity
                         : 1.0);
  const double serialization =
      size_bits / (capacity_units * params_.bits_per_capacity_unit);
  return it->second + serialization + params_.per_hop_overhead_s;
}

std::size_t Network::send_packet(const pan::ForwardingPath& path,
                                 double size_bits) {
  util::require(size_bits > 0.0, "Network::send_packet: empty packet");
  const std::size_t record = records_.size();
  records_.push_back(DeliveryRecord{});
  records_[record].sent_at = engine_.now();

  // Full-path validation (per-hop MAC chain + adjacency), as the on-path
  // ASes would perform collectively; invalid packets are dropped at once.
  const pan::ForwardResult check = validator_.forward(path);
  if (!check.delivered) {
    records_[record].drop_reason = check.reason;
    records_[record].trace = check.trace;
    return record;
  }
  hop(record, path, 0, size_bits);
  return record;
}

void Network::hop(std::size_t record, const pan::ForwardingPath& path,
                  std::size_t index, double size_bits) {
  DeliveryRecord& rec = records_[record];
  rec.trace.push_back(path.hops[index].as);
  if (index + 1 == path.hops.size()) {
    rec.delivered = true;
    rec.delivered_at = engine_.now();
    return;
  }
  const AsId from = path.hops[index].as;
  const AsId to = path.hops[index + 1].as;
  const auto key = directed_key(from, to);
  const auto link_id = validator_.compiled().link_between(from, to);
  PANAGREE_ASSERT(link_id.has_value());
  const double capacity_units =
      std::max(1e-9, graph_->link(*link_id).capacity > 0.0
                         ? graph_->link(*link_id).capacity
                         : 1.0);
  const double serialization =
      size_bits / (capacity_units * params_.bits_per_capacity_unit);
  const double propagation = latency_cache_.at(key);

  DirectedLinkState& state = link_state_[key];
  const SimTime departure = std::max(engine_.now(), state.busy_until);
  state.busy_until = departure + serialization;
  const SimTime arrival =
      departure + serialization + propagation + params_.per_hop_overhead_s;
  // Copy the path into the continuation; paths are short (<= ~10 hops).
  engine_.schedule_at(arrival, [this, record, path, index, size_bits] {
    hop(record, path, index + 1, size_bits);
  });
}

}  // namespace panagree::sim
