// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// topology generation, beaconing, diversity counting, PAN forwarding, and
// the BOSCO mechanism pipeline.
#include <benchmark/benchmark.h>

#include <memory>

#include "panagree/bgp/analysis.hpp"
#include "panagree/core/bosco/efficiency.hpp"
#include "panagree/core/bosco/equilibrium.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/pan/beaconing.hpp"
#include "panagree/pan/forwarding.hpp"
#include "panagree/sim/engine.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace {

using namespace panagree;

const topology::GeneratedTopology& cached_topology() {
  static const topology::GeneratedTopology topo = [] {
    topology::GeneratorParams params;
    params.num_ases = 3000;
    params.tier1_count = 8;
    params.seed = 99;
    return topology::generate_internet(params);
  }();
  return topo;
}

void BM_GenerateInternet(benchmark::State& state) {
  topology::GeneratorParams params;
  params.num_ases = static_cast<std::size_t>(state.range(0));
  params.tier1_count = 6;
  params.seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::generate_internet(params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GenerateInternet)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_Beaconing(benchmark::State& state) {
  const auto& topo = cached_topology();
  for (auto _ : state) {
    pan::BeaconService beacons(topo.graph);
    beacons.run();
    benchmark::DoNotOptimize(beacons.up_segments(topo.tier3.front()));
  }
}
BENCHMARK(BM_Beaconing)->Unit(benchmark::kMillisecond);

void BM_Length3Count(benchmark::State& state) {
  const auto& topo = cached_topology();
  const diversity::Length3Analyzer analyzer(topo.graph);
  topology::AsId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.count(src, {1, 5, 50}));
    src = (src + 17) % static_cast<topology::AsId>(topo.graph.num_ases());
  }
}
BENCHMARK(BM_Length3Count);

void BM_SipHash(benchmark::State& state) {
  const pan::MacKey key{1, 2};
  std::uint64_t word = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pan::siphash24_words(key, {word, word + 1, 3}));
    ++word;
  }
}
BENCHMARK(BM_SipHash);

void BM_IssueAndForward(benchmark::State& state) {
  const auto t = topology::make_fig1();
  const pan::KeyStore keys(1, t.graph.num_ases());
  const pan::ForwardingEngine engine(t.graph, keys);
  const std::vector<topology::AsId> path{t.H, t.D, t.A, t.B, t.E, t.I};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.forward(pan::issue_path(keys, path)));
  }
}
BENCHMARK(BM_IssueAndForward);

void BM_EventEngine(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule(static_cast<double>((i * 7919) % 1000),
                      [&counter] { ++counter; });
    }
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventEngine)->Unit(benchmark::kMillisecond);

void BM_ValleyFreeEnumeration(benchmark::State& state) {
  const auto t = topology::make_fig1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bgp::enumerate_valley_free_paths(t.graph, t.H, t.I, 6));
  }
}
BENCHMARK(BM_ValleyFreeEnumeration);

void BM_BoscoBestResponse(benchmark::State& state) {
  const bosco::UniformDistribution dist(-1.0, 1.0);
  util::Rng rng(1);
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto vx = bosco::ChoiceSet::random(dist, w, rng);
  const auto vy = bosco::ChoiceSet::random(dist, w, rng);
  const auto sy = bosco::Strategy::quantizer(vy);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bosco::best_response_to(vx, vy, sy, dist));
  }
}
BENCHMARK(BM_BoscoBestResponse)->Arg(20)->Arg(60);

void BM_BoscoEquilibrium(benchmark::State& state) {
  const bosco::UniformDistribution dist(-1.0, 1.0);
  util::Rng rng(2);
  const auto w = static_cast<std::size_t>(state.range(0));
  const auto vx = bosco::ChoiceSet::random(dist, w, rng);
  const auto vy = bosco::ChoiceSet::random(dist, w, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bosco::find_equilibrium(vx, vy, dist, dist));
  }
}
BENCHMARK(BM_BoscoEquilibrium)->Arg(20)->Arg(60);

void BM_BoscoExpectedNash(benchmark::State& state) {
  const bosco::UniformDistribution dist(-1.0, 1.0);
  util::Rng rng(3);
  const auto vx = bosco::ChoiceSet::random(dist, 40, rng);
  const auto vy = bosco::ChoiceSet::random(dist, 40, rng);
  const auto eq = bosco::find_equilibrium(vx, vy, dist, dist);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bosco::expected_nash_product(vx, vy, eq.x, eq.y, dist, dist));
  }
}
BENCHMARK(BM_BoscoExpectedNash);

}  // namespace
