#include "panagree/diversity/length3.hpp"

#include <algorithm>

namespace panagree::diversity {

namespace {

std::uint64_t pair_key(AsId mid, AsId dst) {
  return (static_cast<std::uint64_t>(mid) << 32) | dst;
}

}  // namespace

Length3Analyzer::Length3Analyzer(const Graph& graph) : graph_(&graph) {}

bool Length3Analyzer::is_grc(AsId s, AsId m, AsId d) const {
  if (s == m || m == d || s == d) {
    return false;
  }
  const auto sm = graph_->role_of(m, s);
  const auto md = graph_->role_of(m, d);
  if (!sm || !md) {
    return false;
  }
  // M forwards iff one side is its customer.
  return sm == topology::NeighborRole::kCustomer ||
         md == topology::NeighborRole::kCustomer;
}

std::vector<Length3Path> Length3Analyzer::grc_paths(AsId src) const {
  util::require(src < graph_->num_ases(), "grc_paths: AS out of range");
  std::vector<Length3Path> out;
  // Via a provider M, every neighbor of M is reachable; via a peer or
  // customer M, only M's customers are.
  for (const AsId m : graph_->providers(src)) {
    for (const AsId d : graph_->neighbors(m)) {
      if (d != src) {
        out.push_back({src, m, d});
      }
    }
  }
  for (const AsId m : graph_->peers(src)) {
    for (const AsId d : graph_->customers(m)) {
      if (d != src) {
        out.push_back({src, m, d});
      }
    }
  }
  for (const AsId m : graph_->customers(src)) {
    for (const AsId d : graph_->customers(m)) {
      if (d != src) {
        out.push_back({src, m, d});
      }
    }
  }
  return out;
}

void Length3Analyzer::direct_dests(AsId beneficiary, AsId mid,
                                   std::vector<AsId>& out) const {
  // MA rule: providers and peers of `mid` that are not the beneficiary and
  // not customers of the beneficiary.
  const auto excluded = [&](AsId z) {
    return z == beneficiary ||
           graph_->role_of(beneficiary, z) == topology::NeighborRole::kCustomer;
  };
  for (const AsId z : graph_->providers(mid)) {
    if (!excluded(z)) {
      out.push_back(z);
    }
  }
  for (const AsId z : graph_->peers(mid)) {
    if (!excluded(z)) {
      out.push_back(z);
    }
  }
}

std::vector<Length3Path> Length3Analyzer::ma_direct_paths(AsId src) const {
  util::require(src < graph_->num_ases(), "ma_direct_paths: AS out of range");
  std::vector<Length3Path> out;
  std::vector<AsId> dests;
  for (const AsId p : graph_->peers(src)) {
    dests.clear();
    direct_dests(src, p, dests);
    for (const AsId z : dests) {
      out.push_back({src, p, z});
    }
  }
  return out;
}

std::vector<Length3Path> Length3Analyzer::ma_paths(AsId src) const {
  util::require(src < graph_->num_ases(), "ma_paths: AS out of range");
  std::vector<Length3Path> out = ma_direct_paths(src);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(out.size() * 2);
  for (const Length3Path& p : out) {
    seen.insert(pair_key(p.mid, p.dst));
  }
  // Indirect: MAs between P and Q (peers) grant Q access to src whenever
  // src is a provider or peer of P and not a customer of Q; the resulting
  // path Q-P-src has src as an endpoint. P is then a customer or peer of
  // src.
  const auto add_indirect = [&](AsId p) {
    for (const AsId q : graph_->peers(p)) {
      if (q == src) {
        continue;
      }
      // src must not be a customer of Q (else the MA rule excludes it).
      if (graph_->role_of(q, src) == topology::NeighborRole::kCustomer) {
        continue;
      }
      if (seen.insert(pair_key(p, q)).second) {
        out.push_back({src, p, q});
      }
    }
  };
  for (const AsId p : graph_->customers(src)) {
    add_indirect(p);
  }
  for (const AsId p : graph_->peers(src)) {
    add_indirect(p);
  }
  return out;
}

SourceCounts Length3Analyzer::count(
    AsId src, const std::vector<std::size_t>& top_ns) const {
  util::require(src < graph_->num_ases(), "count: AS out of range");
  SourceCounts counts;
  const std::size_t n_as = graph_->num_ases();

  // --- GRC ---
  std::vector<bool> grc_dest(n_as, false);
  {
    const auto paths = grc_paths(src);
    counts.grc_paths = paths.size();
    for (const Length3Path& p : paths) {
      if (!grc_dest[p.dst]) {
        grc_dest[p.dst] = true;
        ++counts.grc_dests;
      }
    }
  }

  // --- Direct MAs, ranked by gain for the Top-n scenarios ---
  struct PeerGain {
    AsId peer;
    std::vector<AsId> dests;
  };
  std::vector<PeerGain> gains;
  gains.reserve(graph_->peers(src).size());
  for (const AsId p : graph_->peers(src)) {
    PeerGain g{p, {}};
    direct_dests(src, p, g.dests);
    gains.push_back(std::move(g));
  }
  std::sort(gains.begin(), gains.end(),
            [](const PeerGain& a, const PeerGain& b) {
              if (a.dests.size() != b.dests.size()) {
                return a.dests.size() > b.dests.size();
              }
              return a.peer < b.peer;
            });

  // Walk peers in rank order once, recording cumulative paths and new (not
  // GRC-reachable) destinations, then read off the Top-n prefix sums.
  std::vector<bool> ma_dest(n_as, false);
  std::vector<std::size_t> cum_paths(gains.size() + 1, 0);
  std::vector<std::size_t> cum_dests(gains.size() + 1, 0);
  std::size_t new_dests = 0;
  for (std::size_t i = 0; i < gains.size(); ++i) {
    cum_paths[i + 1] = cum_paths[i] + gains[i].dests.size();
    for (const AsId z : gains[i].dests) {
      if (!ma_dest[z] && !grc_dest[z]) {
        ma_dest[z] = true;
        ++new_dests;
      }
    }
    cum_dests[i + 1] = new_dests;
  }
  counts.ma_direct_paths = cum_paths[gains.size()];
  counts.ma_direct_dests = cum_dests[gains.size()];
  for (const std::size_t n : top_ns) {
    const std::size_t idx = std::min(n, gains.size());
    counts.ma_top_paths.push_back(cum_paths[idx]);
    counts.ma_top_dests.push_back(cum_dests[idx]);
  }

  // --- All MA paths (direct + indirect) ---
  {
    const auto paths = ma_paths(src);
    counts.ma_all_paths = paths.size();
    std::size_t dests = counts.ma_direct_dests;
    for (const Length3Path& p : paths) {
      if (!ma_dest[p.dst] && !grc_dest[p.dst]) {
        ma_dest[p.dst] = true;
        ++dests;
      }
    }
    counts.ma_all_dests = dests;
  }
  return counts;
}

}  // namespace panagree::diversity
