// Agreement-optimization table, wired through the deployment optimizer:
//
//  (a) Flow-volume targets vs. cash compensation (§IV-C) under increasingly
//      dissimilar cost structures: cash concludes exactly while the joint
//      utility is non-negative, whereas the volume program degrades to
//      all-zero targets once no qualified volume split helps both parties.
//  (b) BOSCO choice-set construction (§V-E): random sampling vs. an
//      equal-quantile grid, at fixed cardinality.
//  (c) Network-wide agreement optimization (§VIII outlook): exhaustive
//      single-round ranking of candidate deployments vs. a greedy
//      multi-step program found by scenario::Optimizer on the shared
//      bench topology - the headline table, plus the wall-clock of both
//      (emitted to BENCH_tab_agreement_optimization.json for the perf
//      trajectory).
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "exhaustive_rank.hpp"
#include "panagree/core/agreements/utility.hpp"
#include "panagree/core/bargain/cash.hpp"
#include "panagree/core/bargain/flow_volume.hpp"
#include "panagree/core/bosco/service.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/scenario/optimizer.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;

struct Scenario {
  topology::Fig1 t = topology::make_fig1();
  econ::Economy economy{t.graph};
  econ::TrafficAllocation base;
  bargain::FlowVolumeProblem problem;

  explicit Scenario(double e_internal_cost) {
    economy.set_link_pricing(t.A, t.D, econ::PricingFunction::per_unit(2.0));
    economy.set_link_pricing(t.B, t.E, econ::PricingFunction::per_unit(2.0));
    economy.set_link_pricing(t.D, t.H, econ::PricingFunction::per_unit(2.6));
    economy.set_link_pricing(t.E, t.I, econ::PricingFunction::per_unit(2.6));
    economy.set_internal_cost(t.D, econ::InternalCostFunction::linear(0.05));
    economy.set_internal_cost(
        t.E, econ::InternalCostFunction::linear(e_internal_cost));
    base.add_path_flow(std::vector<topology::AsId>{t.H, t.D, t.A, t.B}, 4.0);
    base.add_path_flow(std::vector<topology::AsId>{t.I, t.E, t.B, t.A}, 4.0);

    problem.party_x = t.D;
    problem.party_y = t.E;
    problem.x_segments.push_back(bargain::SegmentOption{
        {t.H, t.D, t.E, t.B}, {t.H, t.D, t.A, t.B}, 4.0, 6.0});
    problem.y_segments.push_back(bargain::SegmentOption{
        {t.I, t.E, t.D, t.A}, {t.I, t.E, t.B, t.A}, 4.0, 6.0});
  }
};

}  // namespace

int main() {
  std::cout << "== Ablation (a): flow-volume targets vs. cash compensation "
               "(§IV-C) ==\n"
            << "Asymmetry knob: E's internal forwarding cost per unit "
               "(D stays at 0.05). Cash utilities are estimated at full "
               "expected usage of the new segments.\n\n";

  util::Table table({"E internal cost", "u_D(full)", "u_E(full)", "joint",
                     "cash concludes", "cash transfer D->E",
                     "volume concludes", "vol u_D", "vol u_E",
                     "vol allowance D", "vol allowance E"});
  for (const double k : {0.05, 0.3, 0.6, 0.9, 1.2, 1.6, 2.0, 2.6}) {
    Scenario s(k);
    const agreements::AgreementEvaluator evaluator(s.economy, s.base);

    // Cash route: utilities at full expected usage (§IV-B: "estimated based
    // on the expected volume of the newly enabled flows").
    const std::size_t n = 2 * (s.problem.x_segments.size() +
                               s.problem.y_segments.size());
    std::vector<double> full(n);
    full[0] = s.problem.x_segments[0].reroutable;
    full[1] = s.problem.x_segments[0].max_new_demand;
    full[2] = s.problem.y_segments[0].reroutable;
    full[3] = s.problem.y_segments[0].max_new_demand;
    const auto full_shift = bargain::shift_for_variables(s.problem, full);
    const double u_d = evaluator.utility_change(s.t.D, full_shift);
    const double u_e = evaluator.utility_change(s.t.E, full_shift);
    const auto cash = bargain::negotiate_cash(u_d, u_e);

    // Flow-volume route: qualified volumes via the Eq. 9 program.
    const auto volume = bargain::solve_flow_volume(s.problem, evaluator);

    table.add_row(
        {util::format_double(k, 2), util::format_double(u_d, 2),
         util::format_double(u_e, 2), util::format_double(u_d + u_e, 2),
         cash ? "yes" : "no",
         cash ? util::format_double(cash->transfer_x_to_y, 2) : "-",
         volume.concluded ? "yes" : "no", util::format_double(volume.u_x, 2),
         util::format_double(volume.u_y, 2),
         util::format_double(volume.x_targets[0].allowance, 2),
         util::format_double(volume.y_targets[0].allowance, 2)});
  }
  table.print(std::cout);
  table.print_csv(std::cout, "tab_opt_a");

  // The §IV-C separation case: a one-sided agreement (only D gains paths;
  // E's side has nothing to offer its customers). No flow-volume split can
  // give E non-negative utility, so the Eq. 9 program returns all-zero
  // targets - yet the joint utility at full usage is positive, so the cash
  // structure concludes by compensating E.
  std::cout << "\n-- one-sided agreement: cash concludes, volume cannot --\n";
  util::Table one_sided({"E internal cost", "u_D(full)", "u_E(full)", "joint",
                         "cash concludes", "cash transfer D->E",
                         "volume concludes"});
  for (const double k : {0.1, 0.2, 0.3}) {
    Scenario s(k);
    s.problem.y_segments.clear();
    const agreements::AgreementEvaluator evaluator(s.economy, s.base);
    std::vector<double> full{s.problem.x_segments[0].reroutable,
                             s.problem.x_segments[0].max_new_demand};
    const auto full_shift = bargain::shift_for_variables(s.problem, full);
    const double u_d = evaluator.utility_change(s.t.D, full_shift);
    const double u_e = evaluator.utility_change(s.t.E, full_shift);
    const auto cash = bargain::negotiate_cash(u_d, u_e);
    const auto volume = bargain::solve_flow_volume(s.problem, evaluator);
    one_sided.add_row(
        {util::format_double(k, 2), util::format_double(u_d, 2),
         util::format_double(u_e, 2), util::format_double(u_d + u_e, 2),
         cash ? "yes" : "no",
         cash ? util::format_double(cash->transfer_x_to_y, 2) : "-",
         volume.concluded ? "yes" : "no"});
  }
  one_sided.print(std::cout);
  one_sided.print_csv(std::cout, "tab_opt_a2");

  std::cout << "\n== Ablation (b): BOSCO choice-set construction (§V-E) ==\n"
            << "Random sampling (100 trials) vs. equal-quantile grid at "
               "W=30.\n\n";
  util::Table bosco_table(
      {"distribution", "random min PoD", "random mean PoD", "quantile PoD"});
  struct Dist {
    const char* name;
    double lo, hi;
  };
  for (const Dist d : {Dist{"U(1)=Unif[-1,1]^2", -1.0, 1.0},
                       Dist{"U(2)=Unif[-1/2,1]^2", -0.5, 1.0}}) {
    bosco::BoscoService service(
        std::make_unique<bosco::UniformDistribution>(d.lo, d.hi),
        std::make_unique<bosco::UniformDistribution>(d.lo, d.hi),
        bosco::BoscoServiceOptions{
            .trials = 100, .seed = 5, .equilibrium = {}, .truthful_grid = 600});
    const auto stats = service.trial_statistics(30);

    const bosco::UniformDistribution dist(d.lo, d.hi);
    const auto grid = bosco::ChoiceSet::quantile_grid(dist, 30);
    const auto eq = bosco::find_equilibrium(grid, grid, dist, dist);
    double grid_pod = 1.0;
    if (eq.converged) {
      const double truthful =
          bosco::expected_truthful_nash_product(dist, dist, 600);
      grid_pod = bosco::price_of_dishonesty(
          bosco::expected_nash_product(grid, grid, eq.x, eq.y, dist, dist),
          truthful);
    }
    bosco_table.add_row({d.name, util::format_double(stats.min_pod, 4),
                         util::format_double(stats.mean_pod, 4),
                         eq.converged ? util::format_double(grid_pod, 4)
                                      : "no equilibrium"});
  }
  bosco_table.print(std::cout);
  bosco_table.print_csv(std::cout, "tab_opt_b");

  std::cout << "\nReading (a): once E's costs dominate, the joint utility "
               "turns negative and *both* structures refuse the agreement; "
               "in the intermediate regime cash still concludes via "
               "compensation where volume targets shrink toward zero.\n"
            << "Reading (b): random generation with enough trials matches "
               "or beats a deterministic quantile grid (§V-E).\n";

  // --- (c) network-wide agreement optimization through the optimizer ---
  std::cout << "\n== Ablation (c): exhaustive single-round ranking vs. "
               "greedy deployment program ==\n";
  try {
    const auto net = benchcfg::load_internet(/*synthetic_cap=*/1500);
    const topology::CompiledTopology& compiled = net.compiled();
    const econ::Economy economy = econ::make_default_economy(net.graph());
    const scenario::MetricsAggregator aggregator(compiled, &net.world(),
                                                 &economy);
    const std::vector<topology::AsId> sources = diversity::sample_sources(
        net.graph(), benchcfg::num_sources(), benchcfg::kSampleSeed);
    const std::size_t threads = benchcfg::num_threads();
    const auto candidates = scenario::candidate_peering_deltas(
        compiled, benchcfg::env_size("PANAGREE_SCENARIOS", 48), 4242);
    benchjson::ResultWriter writer("tab_agreement_optimization", net.graph());
    writer.add("topology_load", 0.0,
               {{"load_ms", net.load_ms()},
                {"peak_rss_kb", static_cast<double>(benchcfg::peak_rss_kb())},
                {"from_snapshot", net.from_snapshot() ? 1.0 : 0.0}});

    // Exhaustive: one round, every candidate pays a full per-source
    // enumeration (the shared pre-optimizer reference ranking).
    benchjson::Stopwatch exhaustive_watch;
    const benchcfg::ExhaustiveRank ranked = benchcfg::exhaustive_rank(
        compiled, sources, candidates, aggregator, threads);
    const double exhaustive_ms = exhaustive_watch.elapsed_ms();
    const double best_single = ranked.best_utility;
    const std::size_t best_candidate = ranked.best_candidate;

    // Greedy: a 4-step program through the shared dirty-set cache.
    benchjson::Stopwatch greedy_watch;
    scenario::OptimizerConfig config;
    config.max_steps = 4;
    config.sweep.threads = threads;
    config.sweep.dirty_radius = scenario::kLength3DirtyRadius;
    const scenario::Optimizer optimizer(compiled, sources, aggregator,
                                        config);
    const scenario::OptimizerResult result = optimizer.run(candidates);
    const double greedy_ms = greedy_watch.elapsed_ms();

    util::Table program({"strategy", "steps", "utility", "wall ms"});
    program.add_row({"exhaustive top-1",
                     best_candidate < candidates.size() ? "1" : "0",
                     util::format_double(best_single, 2),
                     util::format_double(exhaustive_ms, 1)});
    program.add_row({"greedy program",
                     std::to_string(result.steps.size()),
                     util::format_double(
                         result.steps.empty()
                             ? 0.0
                             : result.steps.back().cumulative_utility,
                         2),
                     util::format_double(greedy_ms, 1)});
    program.print(std::cout);
    program.print_csv(std::cout, "tab_opt_c");
    std::cout << "Reading (c): the greedy program compounds deployments the "
                 "one-shot ranking cannot see, while the shared dirty-set "
                 "cache keeps its cost below one exhaustive round ("
              << result.stats.recomputed_sources
              << " per-source recomputes vs "
              << candidates.size() * sources.size() << ").\n";

    writer.add("exhaustive_rank", exhaustive_ms,
               {{"candidates", static_cast<double>(candidates.size())},
                {"sources", static_cast<double>(sources.size())},
                {"utility", best_single}});
    writer.add(
        "greedy_program", greedy_ms,
        {{"candidates", static_cast<double>(candidates.size())},
         {"sources", static_cast<double>(sources.size())},
         {"steps", static_cast<double>(result.steps.size())},
         {"utility", result.steps.empty()
                         ? 0.0
                         : result.steps.back().cumulative_utility},
         {"recomputed_sources",
          static_cast<double>(result.stats.recomputed_sources)},
         {"reused_evaluations",
          static_cast<double>(result.stats.reused_evaluations)}});
    writer.write();
  } catch (const std::exception& e) {
    std::cerr << "error in ablation (c): " << e.what() << "\n";
    return 1;
  }
  return 0;
}
