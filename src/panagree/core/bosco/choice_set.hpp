// Choice sets V_Z (§V-C2): finite, ordered claim menus for each party,
// always containing the cancellation option -infinity.
//
// §V-E found that *random* generation - sampling choices from the party's
// utility distribution - works well in practice; an equal-quantile grid is
// provided as the ablation alternative.
#pragma once

#include <cstddef>
#include <vector>

#include "panagree/core/bosco/distribution.hpp"

namespace panagree::bosco {

class ChoiceSet {
 public:
  /// Builds from explicit values; -infinity is prepended if missing, the
  /// rest is sorted and deduplicated.
  explicit ChoiceSet(std::vector<double> values);

  /// Random generation (§V-E): -infinity plus (cardinality - 1) samples
  /// from `dist`. Resamples duplicates.
  [[nodiscard]] static ChoiceSet random(const UtilityDistribution& dist,
                                        std::size_t cardinality,
                                        util::Rng& rng);

  /// Equal-quantile grid over the distribution's support (ablation).
  [[nodiscard]] static ChoiceSet quantile_grid(const UtilityDistribution& dist,
                                               std::size_t cardinality);

  /// Ascending values; values()[0] is always -infinity.
  [[nodiscard]] const std::vector<double>& values() const { return values_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] double value(std::size_t i) const;

 private:
  std::vector<double> values_;
};

}  // namespace panagree::bosco
