#include <gtest/gtest.h>

#include <vector>

#include "panagree/pan/forwarding.hpp"
#include "panagree/sim/engine.hpp"
#include "panagree/sim/flow_assignment.hpp"
#include "panagree/sim/network.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/examples.hpp"

namespace panagree::sim {
namespace {

using topology::make_fig1;

// ----------------------------------------------------------------- engine

TEST(Engine, ExecutesInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(3.0, [&] { order.push_back(3); });
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 3.0);
}

TEST(Engine, FifoTieBreakAtEqualTimes) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(1.0, [&] { order.push_back(1); });
  engine.schedule(1.0, [&] { order.push_back(2); });
  engine.schedule(1.0, [&] { order.push_back(3); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NestedSchedulingWorks) {
  Engine engine;
  std::vector<double> times;
  engine.schedule(1.0, [&] {
    times.push_back(engine.now());
    engine.schedule(0.5, [&] { times.push_back(engine.now()); });
  });
  engine.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine engine;
  int fired = 0;
  engine.schedule(1.0, [&] { ++fired; });
  engine.schedule(5.0, [&] { ++fired; });
  engine.run(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.schedule(1.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(0.5, [] {}), util::PreconditionError);
  EXPECT_THROW(engine.schedule(-1.0, [] {}), util::PreconditionError);
}

TEST(Engine, StepExecutesSingleEvent) {
  Engine engine;
  int fired = 0;
  engine.schedule(1.0, [&] { ++fired; });
  engine.schedule(2.0, [&] { ++fired; });
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

// ---------------------------------------------------------------- network

TEST(Network, DeliversPacketAlongPath) {
  auto t = make_fig1();
  topology::assign_degree_gravity_capacities(t.graph);
  const pan::KeyStore keys(1, t.graph.num_ases());
  Network net(t.graph, keys);
  const auto fp = pan::issue_path(keys, {t.H, t.D, t.E, t.I});
  const std::size_t id = net.send_packet(fp, 12000.0);
  net.engine().run();
  const DeliveryRecord& rec = net.deliveries().at(id);
  EXPECT_TRUE(rec.delivered);
  EXPECT_EQ(rec.trace, (std::vector<topology::AsId>{t.H, t.D, t.E, t.I}));
  EXPECT_GT(rec.latency(), 0.0);
}

TEST(Network, InvalidPacketIsDroppedImmediately) {
  auto t = make_fig1();
  const pan::KeyStore keys(2, t.graph.num_ases());
  Network net(t.graph, keys);
  auto fp = pan::issue_path(keys, {t.H, t.D, t.A});
  fp.hops[1].mac ^= 0xff;
  const std::size_t id = net.send_packet(fp, 8000.0);
  net.engine().run();
  EXPECT_FALSE(net.deliveries().at(id).delivered);
  EXPECT_EQ(net.deliveries().at(id).drop_reason, pan::DropReason::kInvalidMac);
}

TEST(Network, LongerPathsTakeLonger) {
  auto t = make_fig1();
  topology::assign_degree_gravity_capacities(t.graph);
  const pan::KeyStore keys(3, t.graph.num_ases());
  Network net(t.graph, keys);
  const auto short_path = pan::issue_path(keys, {t.H, t.D, t.E, t.I});
  const auto long_path =
      pan::issue_path(keys, {t.H, t.D, t.A, t.B, t.E, t.I});
  const auto id1 = net.send_packet(short_path, 8000.0);
  const auto id2 = net.send_packet(long_path, 8000.0);
  net.engine().run();
  EXPECT_LT(net.deliveries().at(id1).latency(),
            net.deliveries().at(id2).latency());
}

TEST(Network, SerializationDelayGrowsWithPacketSize) {
  auto t = make_fig1();
  topology::assign_degree_gravity_capacities(t.graph);
  const pan::KeyStore keys(4, t.graph.num_ases());
  Network net(t.graph, keys);
  const auto fp = pan::issue_path(keys, {t.H, t.D, t.A});
  const auto small = net.send_packet(fp, 1000.0);
  net.engine().run();
  Network net2(t.graph, keys);
  const auto big = net2.send_packet(pan::issue_path(keys, {t.H, t.D, t.A}),
                                    10000000.0);
  net2.engine().run();
  EXPECT_LT(net.deliveries().at(small).latency(),
            net2.deliveries().at(big).latency());
}

TEST(Network, QueueingDelaysBackToBackPackets) {
  auto t = make_fig1();
  // Tiny capacity so serialization dominates.
  for (topology::LinkId id = 0; id < t.graph.num_links(); ++id) {
    t.graph.link(id).capacity = 1e-3;  // 1 Mbit/s at 1e9 bits per unit
  }
  const pan::KeyStore keys(5, t.graph.num_ases());
  Network net(t.graph, keys);
  const auto fp1 = pan::issue_path(keys, {t.H, t.D, t.A});
  const auto fp2 = pan::issue_path(keys, {t.H, t.D, t.A});
  const auto id1 = net.send_packet(fp1, 1e6);
  const auto id2 = net.send_packet(fp2, 1e6);
  net.engine().run();
  // Second packet waits for the first one's serialization on H->D.
  EXPECT_GT(net.deliveries().at(id2).delivered_at,
            net.deliveries().at(id1).delivered_at);
}

// --------------------------------------------------------- flow assignment

TEST(FlowAssignment, AccountsVolumesOnLinks) {
  auto t = make_fig1();
  topology::assign_degree_gravity_capacities(t.graph);
  const std::vector<PathDemand> demands{
      {{t.H, t.D, t.A}, 5.0},
      {{t.H, t.D, t.E}, 3.0},
  };
  const FlowAssignmentResult r = assign_flows(t.graph, demands);
  EXPECT_DOUBLE_EQ(r.allocation.link_flow(t.H, t.D), 8.0);
  EXPECT_DOUBLE_EQ(r.allocation.link_flow(t.D, t.A), 5.0);
  EXPECT_DOUBLE_EQ(r.allocation.link_flow(t.D, t.E), 3.0);
  EXPECT_DOUBLE_EQ(r.allocation.through_flow(t.D), 8.0);
}

TEST(FlowAssignment, ReportsUtilizationAndOverloads) {
  auto t = make_fig1();
  for (topology::LinkId id = 0; id < t.graph.num_links(); ++id) {
    t.graph.link(id).capacity = 4.0;
  }
  const std::vector<PathDemand> demands{{{t.H, t.D, t.A}, 6.0}};
  const FlowAssignmentResult r = assign_flows(t.graph, demands);
  EXPECT_EQ(r.overloaded_links, 2u);
  EXPECT_DOUBLE_EQ(r.max_utilization, 1.5);
}

TEST(FlowAssignment, RejectsBrokenPaths) {
  auto t = make_fig1();
  const std::vector<PathDemand> demands{{{t.H, t.I}, 1.0}};
  EXPECT_THROW((void)assign_flows(t.graph, demands), util::PreconditionError);
}

TEST(FlowAssignment, RejectsNegativeVolume) {
  auto t = make_fig1();
  const std::vector<PathDemand> demands{{{t.H, t.D}, -1.0}};
  EXPECT_THROW((void)assign_flows(t.graph, demands), util::PreconditionError);
}

TEST(FlowAssignment, EmptyDemandsYieldZeroUtilization) {
  auto t = make_fig1();
  const FlowAssignmentResult r = assign_flows(t.graph, {});
  EXPECT_DOUBLE_EQ(r.max_utilization, 0.0);
  EXPECT_EQ(r.links.size(), t.graph.num_links());
}

}  // namespace
}  // namespace panagree::sim
