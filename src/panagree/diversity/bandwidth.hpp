// Bandwidth analysis (§VI-C, Fig. 6): path bandwidth is the minimum
// degree-gravity link capacity along the path; MA paths are compared
// against the GRC max/median/min per AS pair.
#pragma once

#include <vector>

#include "panagree/diversity/length3.hpp"

namespace panagree::diversity {

struct BandwidthPairResult {
  std::size_t ma_paths_above_grc_max = 0;
  std::size_t ma_paths_above_grc_median = 0;
  std::size_t ma_paths_above_grc_min = 0;
  /// Relative increase of the maximum bandwidth (0 if not improved).
  double relative_increase = 0.0;
};

struct BandwidthReport {
  /// One entry per analyzed AS pair connected by >= 1 GRC length-3 path.
  std::vector<BandwidthPairResult> pairs;
};

/// Bandwidth of the length-3 path s-m-d: min of the two link capacities.
[[nodiscard]] double length3_bandwidth(const Graph& graph, AsId s, AsId m,
                                       AsId d);

/// Runs the §VI-C comparison; requires capacities to be assigned.
[[nodiscard]] BandwidthReport analyze_bandwidth(
    const Graph& graph, const std::vector<AsId>& sources);

}  // namespace panagree::diversity
