#include "panagree/diversity/length3.hpp"

#include <algorithm>

#include "panagree/paths/enumerator.hpp"

namespace panagree::diversity {

namespace {

/// Collects the exactly-length-3 paths of a bounded engine walk.
template <typename Policy>
std::vector<Length3Path> collect_length3(
    const topology::CompiledTopology& topo, AsId src, const Policy& policy) {
  const paths::PathEnumerator enumerator(topo);
  std::vector<Length3Path> out;
  enumerator.visit_paths(src, 3, policy, [&](const paths::Path& path) {
    if (path.size() == 3) {
      out.push_back({path[0], path[1], path[2]});
    }
    return true;
  });
  return out;
}

}  // namespace

Length3Analyzer::Length3Analyzer(const Graph& graph) : compiled_(graph) {}

bool Length3Analyzer::is_grc(AsId s, AsId m, AsId d) const {
  if (s == m || m == d || s == d) {
    return false;
  }
  const auto sm = compiled_.role_of(m, s);
  const auto md = compiled_.role_of(m, d);
  if (!sm || !md) {
    return false;
  }
  // M forwards iff one side is its customer.
  return sm == topology::NeighborRole::kCustomer ||
         md == topology::NeighborRole::kCustomer;
}

std::vector<Length3Path> Length3Analyzer::grc_paths(AsId src) const {
  util::require(src < compiled_.num_ases(), "grc_paths: AS out of range");
  // A length-3 path is GRC-forwardable iff it is valley-free, so the GRC
  // set is the valley-free walk truncated to 3 ASes.
  return collect_length3(compiled_, src, paths::ValleyFreeStep{});
}

void Length3Analyzer::direct_dests(AsId beneficiary, AsId mid,
                                   std::vector<AsId>& out) const {
  // MA rule: providers and peers of `mid` that are not the beneficiary and
  // not customers of the beneficiary.
  const auto excluded = [&](AsId z) {
    return z == beneficiary ||
           compiled_.role_of(beneficiary, z) ==
               topology::NeighborRole::kCustomer;
  };
  for (const auto& entry : compiled_.providers(mid)) {
    if (!excluded(entry.neighbor)) {
      out.push_back(entry.neighbor);
    }
  }
  for (const auto& entry : compiled_.peers(mid)) {
    if (!excluded(entry.neighbor)) {
      out.push_back(entry.neighbor);
    }
  }
}

std::vector<Length3Path> Length3Analyzer::ma_direct_paths(AsId src) const {
  util::require(src < compiled_.num_ases(),
                "ma_direct_paths: AS out of range");
  return collect_length3(compiled_, src,
                         paths::MaLength3Step(compiled_, false));
}

std::vector<Length3Path> Length3Analyzer::ma_paths(AsId src) const {
  util::require(src < compiled_.num_ases(), "ma_paths: AS out of range");
  // The engine visits each (mid, dst) pair at most once, so the direct /
  // indirect overlap is deduplicated by construction.
  return collect_length3(compiled_, src,
                         paths::MaLength3Step(compiled_, true));
}

SourceCounts Length3Analyzer::count(
    AsId src, const std::vector<std::size_t>& top_ns) const {
  util::require(src < compiled_.num_ases(), "count: AS out of range");
  SourceCounts counts;
  const std::size_t n_as = compiled_.num_ases();

  // --- GRC ---
  std::vector<bool> grc_dest(n_as, false);
  {
    const auto paths = grc_paths(src);
    counts.grc_paths = paths.size();
    for (const Length3Path& p : paths) {
      if (!grc_dest[p.dst]) {
        grc_dest[p.dst] = true;
        ++counts.grc_dests;
      }
    }
  }

  // --- Direct MAs, ranked by gain for the Top-n scenarios ---
  struct PeerGain {
    AsId peer;
    std::vector<AsId> dests;
  };
  std::vector<PeerGain> gains;
  gains.reserve(compiled_.peers(src).size());
  for (const auto& entry : compiled_.peers(src)) {
    PeerGain g{entry.neighbor, {}};
    direct_dests(src, entry.neighbor, g.dests);
    gains.push_back(std::move(g));
  }
  std::sort(gains.begin(), gains.end(),
            [](const PeerGain& a, const PeerGain& b) {
              if (a.dests.size() != b.dests.size()) {
                return a.dests.size() > b.dests.size();
              }
              return a.peer < b.peer;
            });

  // Walk peers in rank order once, recording cumulative paths and new (not
  // GRC-reachable) destinations, then read off the Top-n prefix sums.
  std::vector<bool> ma_dest(n_as, false);
  std::vector<std::size_t> cum_paths(gains.size() + 1, 0);
  std::vector<std::size_t> cum_dests(gains.size() + 1, 0);
  std::size_t new_dests = 0;
  for (std::size_t i = 0; i < gains.size(); ++i) {
    cum_paths[i + 1] = cum_paths[i] + gains[i].dests.size();
    for (const AsId z : gains[i].dests) {
      if (!ma_dest[z] && !grc_dest[z]) {
        ma_dest[z] = true;
        ++new_dests;
      }
    }
    cum_dests[i + 1] = new_dests;
  }
  counts.ma_direct_paths = cum_paths[gains.size()];
  counts.ma_direct_dests = cum_dests[gains.size()];
  for (const std::size_t n : top_ns) {
    const std::size_t idx = std::min(n, gains.size());
    counts.ma_top_paths.push_back(cum_paths[idx]);
    counts.ma_top_dests.push_back(cum_dests[idx]);
  }

  // --- All MA paths (direct + indirect) ---
  {
    const auto paths = ma_paths(src);
    counts.ma_all_paths = paths.size();
    std::size_t dests = counts.ma_direct_dests;
    for (const Length3Path& p : paths) {
      if (!ma_dest[p.dst] && !grc_dest[p.dst]) {
        ma_dest[p.dst] = true;
        ++dests;
      }
    }
    counts.ma_all_dests = dests;
  }
  return counts;
}

}  // namespace panagree::diversity
