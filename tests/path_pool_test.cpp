// Tests of the interned path storage (paths::PathPool and friends) and of
// bgp::SppInstance's migration onto it.
#include <gtest/gtest.h>

#include <vector>

#include "panagree/bgp/policy.hpp"
#include "panagree/bgp/simulator.hpp"
#include "panagree/bgp/spp.hpp"
#include "panagree/paths/path_pool.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::paths {
namespace {

using topology::AsId;

TEST(PathPool, InternAndViewRoundTrip) {
  PathPool pool;
  const std::vector<AsId> a{1, 2, 3};
  const std::vector<AsId> b{7};
  const PathPool::Slice sa = pool.intern(a);
  const PathPool::Slice sb = pool.intern(b);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(PathView(pool.view(sa)), a);
  EXPECT_EQ(PathView(pool.view(sb)), b);
  EXPECT_EQ(sa.offset, 0u);
  EXPECT_EQ(sb.offset, 3u);
}

TEST(PathPool, SlicesSurviveArenaGrowth) {
  PathPool pool;
  const std::vector<AsId> first{42, 43};
  const PathPool::Slice slice = pool.intern(first);
  // Force reallocation: offsets (not pointers) must stay valid.
  for (AsId i = 0; i < 100000; ++i) {
    pool.push_back(i);
  }
  EXPECT_EQ(PathView(pool.view(slice)), first);
}

TEST(PathPool, IncrementalBuildViaSliceOf) {
  PathPool pool;
  const std::size_t begin = pool.size();
  pool.push_back(5);
  pool.push_back(6);
  const PathPool::Slice slice = pool.slice_of(begin);
  EXPECT_EQ(PathView(pool.view(slice)), (std::vector<AsId>{5, 6}));
}

TEST(PathView, ComparesAgainstVectorsAndViews) {
  const std::vector<AsId> path{1, 2, 3};
  const std::vector<AsId> other{1, 2, 4};
  const PathView view(path);
  EXPECT_EQ(view, path);
  EXPECT_TRUE(view == path);
  EXPECT_FALSE(view == other);
  EXPECT_EQ(view.to_path(), path);
  EXPECT_EQ(view.front(), 1u);
  EXPECT_EQ(view.back(), 3u);
  EXPECT_TRUE(PathView().empty());
}

TEST(PathListView, ElementwiseEquality) {
  PathPool pool;
  std::vector<PathPool::Slice> slices;
  slices.push_back(pool.intern(std::vector<AsId>{1, 2}));
  slices.push_back(pool.intern(std::vector<AsId>{3}));
  const PathListView list(pool, slices);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], (std::vector<AsId>{1, 2}));
  EXPECT_EQ(list[1], (std::vector<AsId>{3}));
  const auto materialized = list.materialize();
  EXPECT_EQ(materialized,
            (std::vector<std::vector<AsId>>{{1, 2}, {3}}));
  EXPECT_EQ(list, list);
  const PathListView shorter(
      pool, std::span<const PathPool::Slice>(slices.data(), 1));
  EXPECT_FALSE(list == shorter);
}

}  // namespace
}  // namespace panagree::paths

namespace panagree::bgp {
namespace {

using topology::AsId;

TEST(SppPooledStorage, PermittedMatchesMaterializedAdapter) {
  SppInstance spp(4, 0);
  spp.set_permitted(1, {{1, 2, 0}, {1, 0}});
  spp.set_permitted(2, {{2, 0}});
  EXPECT_EQ(spp.permitted_paths(1),
            (std::vector<Path>{{1, 2, 0}, {1, 0}}));
  EXPECT_EQ(spp.permitted_paths(2), (std::vector<Path>{{2, 0}}));
  EXPECT_TRUE(spp.permitted(3).empty());
  EXPECT_EQ(spp.permitted(1).size(), 2u);
  EXPECT_EQ(spp.permitted(1)[1], Path({1, 0}));
}

TEST(SppPooledStorage, ResettingANodeReplacesItsList) {
  SppInstance spp(3, 0);
  spp.set_permitted(1, {{1, 2, 0}, {1, 0}});
  spp.set_permitted(1, {{1, 0}});
  EXPECT_EQ(spp.permitted_paths(1), (std::vector<Path>{{1, 0}}));
  EXPECT_EQ(spp.rank_of(1, {1, 2, 0}), -1);
  EXPECT_EQ(spp.rank_of(1, {1, 0}), 0);
  spp.validate();
}

TEST(SppPooledStorage, ValidateStillCatchesDuplicates) {
  SppInstance spp(3, 0);
  spp.set_permitted(1, {{1, 0}, {1, 2, 0}});
  spp.validate();
  // Duplicates are rejected at validate() time, as before the migration.
  SppInstance dup(3, 0);
  dup.set_permitted(1, {{1, 0}, {1, 0}});
  EXPECT_THROW(dup.validate(), util::PreconditionError);
}

TEST(SppPooledStorage, PolicyCompiledInstanceBehavesAsBefore) {
  const auto t = topology::make_fig1();
  const SppInstance spp = make_gao_rexford_spp(t.graph, t.I);
  spp.validate();
  // The pooled instance must drive the simulator exactly like the old
  // vector-of-vector one: Gao-Rexford policies converge.
  const SpvpResult result = run_synchronous(spp);
  EXPECT_EQ(result.outcome, Outcome::kConverged);
  for (AsId node = 0; node < spp.num_nodes(); ++node) {
    // permitted() and the materializing adapter agree path-for-path.
    const paths::PathListView view = spp.permitted(node);
    const std::vector<Path> paths = spp.permitted_paths(node);
    ASSERT_EQ(view.size(), paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      EXPECT_EQ(view[i], paths[i]);
    }
  }
}

TEST(SppPooledStorage, LargeInstanceHoldsOneArena) {
  // A policy compile over a generated topology: thousands of paths, all
  // interned; spot-check ranks and next hops against the materialized
  // adapter.
  topology::GeneratorParams params;
  params.num_ases = 200;
  params.tier1_count = 4;
  params.seed = 12;
  const auto topo = topology::generate_internet(params);
  const SppInstance spp = make_gao_rexford_spp(topo.graph, 0);
  for (AsId node = 1; node < spp.num_nodes(); node += 17) {
    const std::vector<Path> paths = spp.permitted_paths(node);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      EXPECT_EQ(spp.rank_of(node, paths[i]), static_cast<int>(i));
    }
    for (const AsId hop : spp.next_hops(node)) {
      EXPECT_LT(hop, spp.num_nodes());
    }
  }
}

}  // namespace
}  // namespace panagree::bgp
