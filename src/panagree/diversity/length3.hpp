// Length-3 path enumeration (§VI): paths with 3 AS hops and 2 inter-AS
// links, the unit of the paper's path-diversity analysis.
//
// GRC rule: a path S-M-D is available in today's Internet iff the middle AS
// forwards it, i.e. S or D is a customer of M (equivalently: the path is
// valley-free).
//
// MA rule (§VI): every peer pair (A, B) concludes an MA granting each the
// other's providers and peers that are not its own customers. An AS gains
// paths *directly* (from MAs it concludes: S-P-Z for peers P) and
// *indirectly* (from MAs between P and Q where the AS is among P's granted
// providers/peers: S-P-Q). Direct and indirect sets overlap and are
// deduplicated by (mid, dst).
//
// The analyzer compiles the graph to a CSR snapshot once and runs both
// rules as step policies on the shared paths::PathEnumerator engine
// (paths::ValleyFreeStep and paths::MaLength3Step respectively).
#pragma once

#include <cstdint>
#include <vector>

#include "panagree/topology/compiled.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::diversity {

using topology::AsId;
using topology::Graph;

struct Length3Path {
  AsId src = topology::kInvalidAs;
  AsId mid = topology::kInvalidAs;
  AsId dst = topology::kInvalidAs;

  friend bool operator==(const Length3Path&, const Length3Path&) = default;
};

/// Per-source diversity counters for one MA-conclusion scenario set.
struct SourceCounts {
  std::size_t grc_paths = 0;
  std::size_t grc_dests = 0;
  /// Additional MA paths when only the top-n MAs (by direct gain) are
  /// concluded, for each requested n (same order as the query).
  std::vector<std::size_t> ma_top_paths;
  std::vector<std::size_t> ma_top_dests;  ///< additional destinations
  std::size_t ma_direct_paths = 0;        ///< MA* (all own MAs)
  std::size_t ma_direct_dests = 0;
  std::size_t ma_all_paths = 0;  ///< MA (direct and indirect, deduplicated)
  std::size_t ma_all_dests = 0;
};

class Length3Analyzer {
 public:
  /// Compiles a CSR snapshot of `graph` (which must outlive the analyzer).
  explicit Length3Analyzer(const Graph& graph);

  /// All GRC length-3 paths starting at src.
  [[nodiscard]] std::vector<Length3Path> grc_paths(AsId src) const;

  /// All MA-created length-3 paths with src as an endpoint (direct and
  /// indirect, deduplicated). None of them is GRC-valid.
  [[nodiscard]] std::vector<Length3Path> ma_paths(AsId src) const;

  /// Only the directly gained MA paths of src (the MA* series).
  [[nodiscard]] std::vector<Length3Path> ma_direct_paths(AsId src) const;

  /// Full per-source counters; `top_ns` requests the "Top n" scenarios.
  [[nodiscard]] SourceCounts count(AsId src,
                                   const std::vector<std::size_t>& top_ns) const;

  /// True iff S-M-D is a GRC-valid length-3 path.
  [[nodiscard]] bool is_grc(AsId s, AsId m, AsId d) const;

  [[nodiscard]] const Graph& graph() const { return compiled_.graph(); }

  /// The shared CSR snapshot (reusable by callers needing fast lookups).
  [[nodiscard]] const topology::CompiledTopology& compiled() const {
    return compiled_;
  }

 private:
  /// Destinations granted to `beneficiary` by an MA with its peer `mid`.
  void direct_dests(AsId beneficiary, AsId mid,
                    std::vector<AsId>& out) const;

  topology::CompiledTopology compiled_;
};

}  // namespace panagree::diversity
