#include "panagree/topology/capacity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace panagree::topology {

void assign_degree_gravity_capacities(Graph& graph,
                                      const DegreeGravityParams& params) {
  util::require(params.scale > 0.0,
                "assign_degree_gravity_capacities: scale must be positive");
  util::require(params.exponent > 0.0,
                "assign_degree_gravity_capacities: exponent must be positive");
  for (LinkId id = 0; id < graph.num_links(); ++id) {
    Link& link = graph.link(id);
    const double product = static_cast<double>(graph.degree(link.a)) *
                           static_cast<double>(graph.degree(link.b));
    link.capacity = params.scale * std::pow(product, params.exponent);
  }
}

double path_bandwidth(const Graph& graph, const std::vector<AsId>& path) {
  util::require(path.size() >= 2, "path_bandwidth: need at least two hops");
  double bandwidth = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link_id = graph.link_between(path[i], path[i + 1]);
    util::require(link_id.has_value(),
                  "path_bandwidth: consecutive hops must be linked");
    bandwidth = std::min(bandwidth, graph.link(*link_id).capacity);
  }
  return bandwidth;
}

}  // namespace panagree::topology
