#include "panagree/scenario/failure.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "panagree/scenario/program.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::scenario {

namespace {

/// C(n, k) saturated at SIZE_MAX (the exhaustive-vs-sample decision only
/// needs "does the universe fit the budget").
[[nodiscard]] std::size_t binomial_saturated(std::size_t n, std::size_t k) {
  if (k > n) {
    return 0;
  }
  unsigned __int128 value = 1;
  constexpr unsigned __int128 kCap =
      static_cast<unsigned __int128>(std::numeric_limits<std::size_t>::max());
  for (std::size_t i = 0; i < k; ++i) {
    // Exact at every step: C(n, i + 1) = C(n, i) * (n - i) / (i + 1).
    value = value * (n - i) / (i + 1);
    if (value > kCap) {
      return std::numeric_limits<std::size_t>::max();
    }
  }
  return static_cast<std::size_t>(value);
}

[[nodiscard]] Delta links_down(const topology::Graph& graph,
                               std::span<const std::uint32_t> link_ids) {
  Delta delta;
  delta.remove.reserve(link_ids.size());
  for (const std::uint32_t id : link_ids) {
    const topology::Link& link = graph.link(id);
    delta.remove.emplace_back(link.a, link.b);
  }
  return delta;
}

}  // namespace

FailureSets failure_sets(const CompiledTopology& base, std::size_t k,
                         std::size_t max_sets, std::uint64_t seed) {
  const topology::Graph& graph = base.graph();
  const std::size_t num_links = graph.num_links();
  FailureSets out;
  out.universe = k == 0 ? 0 : binomial_saturated(num_links, k);
  if (out.universe == 0) {
    return out;
  }
  if (max_sets == 0 || out.universe <= max_sets) {
    // Exhaustive: lexicographic k-combinations of link ids.
    std::vector<std::uint32_t> combo(k);
    for (std::size_t i = 0; i < k; ++i) {
      combo[i] = static_cast<std::uint32_t>(i);
    }
    out.sets.reserve(out.universe);
    for (;;) {
      out.sets.push_back(links_down(graph, combo));
      // Advance the rightmost index that still has room.
      std::size_t pos = k;
      while (pos > 0 &&
             combo[pos - 1] + (k - pos) + 1 >= num_links) {
        --pos;
      }
      if (pos == 0) {
        break;
      }
      ++combo[pos - 1];
      for (std::size_t i = pos; i < k; ++i) {
        combo[i] = combo[i - 1] + 1;
      }
    }
    return out;
  }
  // Sampled: deterministic distinct k-subsets. The attempt bound turns a
  // near-exhausted universe into a short result instead of a hang.
  out.sampled = true;
  util::Rng rng(seed);
  std::set<std::vector<std::uint32_t>> used;
  for (std::size_t attempts = 0;
       out.sets.size() < max_sets && attempts < 100 * max_sets + 1000;
       ++attempts) {
    std::vector<std::uint32_t> combo;
    combo.reserve(k);
    while (combo.size() < k) {
      const auto id = static_cast<std::uint32_t>(rng.uniform_index(num_links));
      if (std::find(combo.begin(), combo.end(), id) == combo.end()) {
        combo.push_back(id);
      }
    }
    std::sort(combo.begin(), combo.end());
    if (!used.insert(combo).second) {
      continue;
    }
    out.sets.push_back(links_down(graph, combo));
  }
  return out;
}

Delta as_failure_delta(const CompiledTopology& base, AsId as) {
  Delta delta;
  for (const CompiledTopology::Entry& entry : base.entries(as)) {
    delta.remove.emplace_back(as, entry.neighbor);
  }
  return delta;
}

FailureDiversity failure_diversity(SweepRunner<SourcePathSet>& runner,
                                   const Delta& deployment,
                                   std::span<const Delta> failures) {
  util::require(runner.primed(), "failure_diversity: prime the runner first");
  const auto enumerate = [](const Overlay& overlay, AsId src) {
    return enumerate_length3(overlay, src);
  };
  FailureDiversity out;
  out.sets = failures.size();
  double paths_sum = 0.0;
  double pairs_sum = 0.0;
  bool first = true;
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const Delta delta = deployment.empty()
                            ? failures[i]
                            : compose(deployment, failures[i]);
    const std::vector<const SourcePathSet*> results =
        runner.evaluate_refs(delta, enumerate);
    const DiversityCounts counts = count_diversity(results);
    paths_sum += static_cast<double>(counts.total_paths());
    pairs_sum += static_cast<double>(counts.reachable_pairs());
    if (first || counts.total_paths() < out.min.total_paths()) {
      out.min = counts;
      out.worst_set = i;
      first = false;
    }
  }
  if (!failures.empty()) {
    out.mean_paths = paths_sum / static_cast<double>(failures.size());
    out.mean_pairs = pairs_sum / static_cast<double>(failures.size());
  }
  return out;
}

}  // namespace panagree::scenario
