// PANAGREE_OBS_OFF compile-out smoke: this translation unit defines the
// macro before including the obs headers, so it sees the header-only
// obs_off stubs - while linking against a library built with obs ON.
// That mix is exactly what the inline-namespace design must keep
// ODR-clean: the stub types live in obs::obs_off, the library's real
// symbols in obs::obs_on, and the two never collide.
//
// The test asserts the stubs' contract: enabled() is a compile-time
// false, every record call is accepted and observably does nothing, and
// the registry hands out (shared) dummy instances.
#define PANAGREE_OBS_OFF 1

#include <gtest/gtest.h>

#include "panagree/obs/metrics.hpp"
#include "panagree/obs/slowlog.hpp"
#include "panagree/obs/trace.hpp"

namespace panagree::obs {
namespace {

static_assert(!enabled(), "obs must report disabled under PANAGREE_OBS_OFF");
static_assert(!trace_enabled(), "tracing must be off under PANAGREE_OBS_OFF");

TEST(ObsOff, RecordsAreNoOps) {
  Counter counter;
  counter.add(41);
  counter.increment();
  EXPECT_EQ(counter.value(), 0U);

  Gauge gauge;
  gauge.set(7);
  gauge.add(3);
  gauge.update_max(100);
  EXPECT_EQ(gauge.value(), 0);

  Histogram histogram;
  histogram.record(12345);
  EXPECT_EQ(histogram.count(), 0U);
  EXPECT_EQ(histogram.sum(), 0U);
  EXPECT_EQ(histogram.bucket_count(histogram_bucket(12345)), 0U);
}

TEST(ObsOff, RegistryHandsOutDummies) {
  Registry& registry = Registry::global();
  Counter& counter = registry.counter("obs_off_test.counter");
  counter.add(5);
  EXPECT_EQ(counter.value(), 0U);
  // No interning happens; the registry stays empty no matter how many
  // names are requested.
  (void)registry.gauge("obs_off_test.gauge");
  (void)registry.histogram("obs_off_test.hist");
  EXPECT_EQ(registry.size(), 0U);
}

TEST(ObsOff, SpansAndInitAreInert) {
  // The stub span compiles with the same shape instrumented code uses -
  // including the parented form and retroactive recording.
  {
    const TraceSpan span("obs_off_test.span");
    EXPECT_EQ(span.id(), 0U);
    const TraceSpan child("obs_off_test.child", span);
    EXPECT_EQ(child.id(), 0U);
  }
  trace_record_span("obs_off_test.recorded", 0, 0, SpanArgs{});
  EXPECT_EQ(trace_next_span_id(), 0U);
  trace_init("/nonexistent/never-written.json");
  trace_init_from_env();
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(trace_event_count(), 0U);
  trace_flush();
}

TEST(ObsOff, SlowQueryLogIsInert) {
  SlowQueryLog log(8);
  log.set_threshold_ns(0);
  EXPECT_EQ(log.threshold_ns(), 0U);
  EXPECT_EQ(log.capacity(), 0U);
  SlowQueryRecord rec;
  rec.wall_ns = 1;
  log.record(rec);
  EXPECT_TRUE(log.snapshot().empty());
  log.clear();
  SlowQueryLog::global().record(rec);
  EXPECT_TRUE(SlowQueryLog::global().snapshot().empty());
  // The record struct and its sort order stay available (the wire layer
  // uses them regardless of the macro).
  SlowQueryRecord slower;
  slower.wall_ns = 2;
  EXPECT_TRUE(slow_record_before(slower, rec));
}

// The bucket helpers are macro-independent and must agree with the
// instrumented build (the wire format depends on them).
static_assert(histogram_bucket(0) == 0);
static_assert(histogram_bucket(1) == 1);
static_assert(histogram_bucket_bound(1) == 1);

}  // namespace
}  // namespace panagree::obs
