#include "panagree/obs/metrics.hpp"

#if !defined(PANAGREE_OBS_OFF)

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <variant>

namespace panagree::obs {

inline namespace obs_on {

// Metric storage: the deques own the instances (stable addresses across
// growth - Counter/Histogram are not movable by design), the map interns
// the names and points into them. All mutation is under `mutex`; handed
// out references outlive the lock because nothing is ever erased.
struct Registry::Impl {
  using Slot = std::variant<Counter*, Gauge*, Histogram*>;

  mutable std::mutex mutex;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Slot, std::less<>> by_name;
};

Registry::Registry() : impl_(new Impl) {}

// The global registry is never destroyed before process exit; the
// destructor exists only so local registries in tests clean up.
Registry::~Registry() { delete impl_; }

Registry& Registry::global() {
  // Leaked intentionally: instrumented code may record during static
  // destruction (atexit-ordered trace flush, detached helpers), so the
  // registry must outlive every other static.
  static Registry* instance = new Registry;
  return *instance;
}

namespace {

template <typename T>
[[nodiscard]] T& intern(Registry::Impl& impl, std::string_view name,
                        std::deque<T>& storage, const char* kind) {
  const std::scoped_lock lock(impl.mutex);
  const auto it = impl.by_name.find(name);
  if (it != impl.by_name.end()) {
    T* const* slot = std::get_if<T*>(&it->second);
    util::require(slot != nullptr,
                  "obs: metric \"" + std::string(name) +
                      "\" already registered as a different kind than " +
                      kind);
    return **slot;
  }
  T& metric = storage.emplace_back();
  impl.by_name.emplace(std::string(name), &metric);
  return metric;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  return intern(*impl_, name, impl_->counters, "counter");
}

Gauge& Registry::gauge(std::string_view name) {
  return intern(*impl_, name, impl_->gauges, "gauge");
}

Histogram& Registry::histogram(std::string_view name) {
  return intern(*impl_, name, impl_->histograms, "histogram");
}

std::size_t Registry::size() const noexcept {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->by_name.size();
}

void Registry::for_each_counter(void (*fn)(std::string_view,
                                           const Counter&, void*),
                                void* ctx) const {
  const std::scoped_lock lock(impl_->mutex);
  for (const auto& [name, slot] : impl_->by_name) {
    if (Counter* const* counter = std::get_if<Counter*>(&slot)) {
      fn(name, **counter, ctx);
    }
  }
}

void Registry::for_each_gauge(void (*fn)(std::string_view, const Gauge&,
                                         void*),
                              void* ctx) const {
  const std::scoped_lock lock(impl_->mutex);
  for (const auto& [name, slot] : impl_->by_name) {
    if (Gauge* const* gauge = std::get_if<Gauge*>(&slot)) {
      fn(name, **gauge, ctx);
    }
  }
}

void Registry::for_each_histogram(void (*fn)(std::string_view,
                                             const Histogram&, void*),
                                  void* ctx) const {
  const std::scoped_lock lock(impl_->mutex);
  for (const auto& [name, slot] : impl_->by_name) {
    if (Histogram* const* histogram = std::get_if<Histogram*>(&slot)) {
      fn(name, **histogram, ctx);
    }
  }
}

}  // namespace obs_on

}  // namespace panagree::obs

#endif  // !PANAGREE_OBS_OFF
