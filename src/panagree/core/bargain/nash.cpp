#include "panagree/core/bargain/nash.hpp"

namespace panagree::bargain {

double nash_product(double u_x, double u_y) { return u_x * u_y; }

bool is_feasible(double u_x, double u_y, double epsilon) {
  return u_x >= -epsilon && u_y >= -epsilon;
}

}  // namespace panagree::bargain
