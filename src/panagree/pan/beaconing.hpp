// Beacon propagation: PAN path discovery (§II: "paths in PAN architectures
// are discovered similarly as in BGP, namely by communicating path
// information to neighboring ASes").
//
// Core ASes originate beacons; every AS extends the beacons it received
// from its providers and forwards them to its customers. Because
// provider->customer edges form a DAG, one topological sweep computes the
// full beacon set. Each AS retains its best `beacons_per_as` segments
// (shortest first) - the SCION beacon-selection knob.
#pragma once

#include <vector>

#include "panagree/pan/segment.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::pan {

using topology::Graph;

struct BeaconingParams {
  /// Max up-segments retained per AS.
  std::size_t beacons_per_as = 8;
  /// Max segment length in ASes (propagation depth bound).
  std::size_t max_segment_length = 8;
};

class BeaconService {
 public:
  /// Core ASes are those with no providers (in a generated topology, the
  /// Tier-1 clique). Throws if the provider hierarchy has a cycle.
  BeaconService(const Graph& graph, BeaconingParams params = {});

  /// Runs the beaconing sweep; idempotent.
  void run();

  /// Up-segments of `as` (core-first order), best (shortest) first.
  /// Empty until run() is called. The core ASes own their trivial segment.
  [[nodiscard]] const std::vector<PathSegment>& up_segments(AsId as) const;

  /// The core AS set.
  [[nodiscard]] const std::vector<AsId>& core_ases() const { return core_; }

  [[nodiscard]] bool has_run() const { return has_run_; }

 private:
  const Graph* graph_;
  BeaconingParams params_;
  std::vector<AsId> core_;
  std::vector<std::vector<PathSegment>> segments_;
  bool has_run_ = false;
};

}  // namespace panagree::pan
