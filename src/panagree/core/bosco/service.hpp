// The BOSCO service (§V-C): constructs choice sets, finds an associated
// equilibrium with low Price of Dishonesty, publishes the mechanism-
// information set, and adjudicates the one-shot bargaining game.
#pragma once

#include <memory>
#include <optional>

#include "panagree/core/bosco/choice_set.hpp"
#include "panagree/core/bosco/efficiency.hpp"
#include "panagree/core/bosco/equilibrium.hpp"

namespace panagree::bosco {

/// The (U_X, U_Y, V_X, V_Y, sigma*) tuple the service communicates to the
/// parties (§V-C6), plus the efficiency metrics it was selected by.
struct MechanismInfoSet {
  ChoiceSet choices_x;
  ChoiceSet choices_y;
  Strategy strategy_x;
  Strategy strategy_y;
  double expected_nash = 0.0;
  double expected_truthful = 0.0;
  double pod = 1.0;
  /// §V-D privacy metric: the shorter of the two strategies' shortest
  /// bounded claim intervals (larger = harder to reconstruct utilities).
  double privacy = 0.0;
  bool converged = false;
};

/// Outcome of executing the bargaining game with true utilities.
struct NegotiationOutcome {
  bool concluded = false;
  double claim_x = 0.0;
  double claim_y = 0.0;
  double transfer_x_to_y = 0.0;  ///< Pi = (v_X - v_Y)/2 when concluded
  double u_x_after = 0.0;
  double u_y_after = 0.0;
};

struct BoscoServiceOptions {
  /// Random choice-set generation trials per configure() call (§V-E uses
  /// 200 for the Fig. 2 statistics).
  std::size_t trials = 200;
  std::uint64_t seed = 1;
  EquilibriumOptions equilibrium;
  /// Grid for the truthful reference integral.
  std::size_t truthful_grid = 600;
  /// §V-D: configure() rejects equilibria whose shortest bounded claim
  /// interval is below this (0 = no privacy constraint). Trades bargaining
  /// efficiency for reconstruction resistance.
  double min_privacy_interval = 0.0;
};

class BoscoService {
 public:
  /// Takes ownership of the estimated utility distributions.
  BoscoService(std::unique_ptr<UtilityDistribution> dist_x,
               std::unique_ptr<UtilityDistribution> dist_y,
               BoscoServiceOptions options = {});

  /// Draws `options.trials` random choice-set pairs of the given
  /// cardinality, computes their equilibria, and returns the configuration
  /// with the lowest PoD. Non-converging trials are skipped.
  [[nodiscard]] MechanismInfoSet configure(std::size_t cardinality) const;

  /// Per-trial PoD statistics for a cardinality (Fig. 2 rows).
  struct TrialStatistics {
    double min_pod = 1.0;
    double mean_pod = 1.0;
    double mean_active_choices_x = 0.0;
    double mean_active_choices_y = 0.0;
    std::size_t converged_trials = 0;
    std::size_t trials = 0;
  };
  [[nodiscard]] TrialStatistics trial_statistics(std::size_t cardinality) const;

  /// Plays the one-shot game: both parties apply their assigned equilibrium
  /// strategy to their true utility and the service adjudicates (§V-C3).
  [[nodiscard]] static NegotiationOutcome execute(const MechanismInfoSet& info,
                                                  double true_u_x,
                                                  double true_u_y);

  [[nodiscard]] const UtilityDistribution& dist_x() const { return *dist_x_; }
  [[nodiscard]] const UtilityDistribution& dist_y() const { return *dist_y_; }

 private:
  struct Trial {
    MechanismInfoSet info;
    bool usable = false;
  };
  [[nodiscard]] Trial run_trial(std::size_t cardinality, util::Rng& rng,
                                double expected_truthful) const;

  std::unique_ptr<UtilityDistribution> dist_x_;
  std::unique_ptr<UtilityDistribution> dist_y_;
  BoscoServiceOptions options_;
};

}  // namespace panagree::bosco
