#include "panagree/serve/wire.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <variant>
#include <vector>

namespace panagree::serve {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw ProtocolError("protocol: " + what);
}

// ------------------------------------------------------------ JSON reader
//
// A deliberately small model: numbers keep both an integer and a double
// view (JSON does not distinguish, but ids and AS numbers must not round
// through doubles), objects are key-ordered maps (requests are tiny).

struct Value;
using Object = std::map<std::string, Value, std::less<>>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, std::uint64_t, double, std::string,
               std::unique_ptr<Array>, std::unique_ptr<Object>>
      data = nullptr;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] Value parse() {
    Value value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      reject("trailing bytes after JSON value");
    }
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 16;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) {
      reject("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      reject(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  [[nodiscard]] Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) {
      reject("nesting too deep");
    }
    skip_ws();
    const char c = peek();
    Value value;
    if (c == '{') {
      value.data = parse_object(depth);
    } else if (c == '[') {
      value.data = parse_array(depth);
    } else if (c == '"') {
      value.data = parse_string();
    } else if (c == 't') {
      if (!consume_literal("true")) {
        reject("bad literal");
      }
      value.data = true;
    } else if (c == 'f') {
      if (!consume_literal("false")) {
        reject("bad literal");
      }
      value.data = false;
    } else if (c == 'n') {
      if (!consume_literal("null")) {
        reject("bad literal");
      }
      value.data = nullptr;
    } else {
      parse_number(value);
    }
    return value;
  }

  [[nodiscard]] std::unique_ptr<Object> parse_object(std::size_t depth) {
    expect('{');
    auto object = std::make_unique<Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!object->emplace(std::move(key), parse_value(depth + 1)).second) {
        reject("duplicate object key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  [[nodiscard]] std::unique_ptr<Array> parse_array(std::size_t depth) {
    expect('[');
    auto array = std::make_unique<Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array->push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        reject("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        reject("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        reject("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // Requests are ASCII-shaped; accept \uXXXX for the BMP's ASCII
          // range only - nothing in the protocol needs more.
          if (pos_ + 4 > text_.size()) {
            reject("truncated \\u escape");
          }
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4 ||
              code > 0x7f) {
            reject("unsupported \\u escape");
          }
          pos_ += 4;
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          reject("unknown escape");
      }
    }
  }

  void parse_number(Value& value) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) {
      reject("expected a value");
    }
    // Integer first (exact); fall back to double.
    if (token.find_first_of(".eE") == std::string_view::npos &&
        token.front() != '-') {
      std::uint64_t integer = 0;
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), integer);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        value.data = integer;
        return;
      }
    }
    double number = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), number);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      reject("malformed number");
    }
    value.data = number;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] const Object& as_object(const Value& value, const char* what) {
  const auto* object =
      std::get_if<std::unique_ptr<Object>>(&value.data);
  if (object == nullptr) {
    reject(std::string(what) + " must be an object");
  }
  return **object;
}

[[nodiscard]] const Array& as_array(const Value& value, const char* what) {
  const auto* array = std::get_if<std::unique_ptr<Array>>(&value.data);
  if (array == nullptr) {
    reject(std::string(what) + " must be an array");
  }
  return **array;
}

[[nodiscard]] const std::string& as_string(const Value& value,
                                           const char* what) {
  const auto* text = std::get_if<std::string>(&value.data);
  if (text == nullptr) {
    reject(std::string(what) + " must be a string");
  }
  return *text;
}

[[nodiscard]] std::uint64_t as_uint(const Value& value, const char* what) {
  const auto* integer = std::get_if<std::uint64_t>(&value.data);
  if (integer == nullptr) {
    reject(std::string(what) + " must be a non-negative integer");
  }
  return *integer;
}

[[nodiscard]] const Value* find(const Object& object, std::string_view key) {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

[[nodiscard]] const Value& require_field(const Object& object,
                                         const char* key) {
  const Value* value = find(object, key);
  if (value == nullptr) {
    reject(std::string("missing field \"") + key + "\"");
  }
  return *value;
}

[[nodiscard]] AsId as_as_id(const Value& value, const char* what) {
  const std::uint64_t raw = as_uint(value, what);
  if (raw >= topology::kInvalidAs) {
    reject(std::string(what) + " out of range");
  }
  return static_cast<AsId>(raw);
}

[[nodiscard]] scenario::Delta parse_delta(const Object& object) {
  scenario::Delta delta;
  if (const Value* add = find(object, "add")) {
    for (const Value& entry : as_array(*add, "\"add\"")) {
      const Object& link = as_object(entry, "\"add\" entry");
      scenario::LinkChange change;
      change.a = as_as_id(require_field(link, "a"), "\"a\"");
      change.b = as_as_id(require_field(link, "b"), "\"b\"");
      const std::string& type =
          as_string(require_field(link, "type"), "\"type\"");
      if (type == "peering") {
        change.type = topology::LinkType::kPeering;
      } else if (type == "transit") {
        change.type = topology::LinkType::kProviderCustomer;
      } else {
        reject("unknown link type \"" + type + "\"");
      }
      delta.add.push_back(change);
    }
  }
  if (const Value* remove = find(object, "remove")) {
    for (const Value& entry : as_array(*remove, "\"remove\"")) {
      const Array& pair = as_array(entry, "\"remove\" entry");
      if (pair.size() != 2) {
        reject("\"remove\" entries must be [a, b] pairs");
      }
      delta.remove.emplace_back(as_as_id(pair[0], "\"remove\" id"),
                                as_as_id(pair[1], "\"remove\" id"));
    }
  }
  return delta;
}

void append_uint(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;
  out.append(buffer, ptr);
}

void append_path_array(std::string& out,
                       std::span<const diversity::Length3Path> paths) {
  out.push_back('[');
  bool first = true;
  for (const diversity::Length3Path& path : paths) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.push_back('[');
    append_uint(out, path.src);
    out.push_back(',');
    append_uint(out, path.mid);
    out.push_back(',');
    append_uint(out, path.dst);
    out.push_back(']');
  }
  out.push_back(']');
}

void append_response_head(std::string& out, std::uint64_t id, bool ok) {
  out += "{\"v\":";
  append_uint(out, kProtocolVersion);
  out += ",\"id\":";
  append_uint(out, id);
  out += ok ? ",\"ok\":true" : ",\"ok\":false";
}

}  // namespace

Request parse_request(std::string_view line, std::uint64_t* id_out) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  Parser parser(line);
  const Value root = parser.parse();
  const Object& object = as_object(root, "request");
  Request request;
  request.id = as_uint(require_field(object, "id"), "\"id\"");
  if (id_out != nullptr) {
    *id_out = request.id;
  }
  const std::uint64_t version =
      as_uint(require_field(object, "v"), "\"v\"");
  if (version != kProtocolVersion) {
    reject("unsupported protocol version " + std::to_string(version) +
           " (server speaks " + std::to_string(kProtocolVersion) + ")");
  }
  const std::string& kind =
      as_string(require_field(object, "kind"), "\"kind\"");
  if (kind == "paths" || kind == "diversity") {
    request.kind = kind == "paths" ? RequestKind::kPaths
                                   : RequestKind::kDiversity;
    request.source =
        as_as_id(require_field(object, "source"), "\"source\"");
  } else if (kind == "whatif") {
    request.kind = RequestKind::kWhatIf;
    request.delta = parse_delta(object);
    if (request.delta.empty()) {
      reject("whatif request with an empty delta");
    }
  } else {
    reject("unknown kind \"" + kind + "\"");
  }
  return request;
}

void append_json_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; the engine never produces them, but the
    // writer must not emit unparsable bytes if a weight ever does.
    out += value > 0 ? "1e999" : (value < 0 ? "-1e999" : "0");
    return;
  }
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;
  out.append(buffer, ptr);
}

void append_json_string(std::string& out, std::string_view value) {
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_paths_response(std::string& out, std::uint64_t id, AsId source,
                           std::span<const diversity::Length3Path> grc,
                           std::span<const diversity::Length3Path> ma) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"paths\",\"source\":";
  append_uint(out, source);
  out += ",\"grc\":";
  append_path_array(out, grc);
  out += ",\"ma\":";
  append_path_array(out, ma);
  out += "}\n";
}

void append_diversity_response(std::string& out, std::uint64_t id,
                               AsId source, const DiversityResult& result) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"diversity\",\"source\":";
  append_uint(out, source);
  out += ",\"grc_paths\":";
  append_uint(out, result.grc_paths);
  out += ",\"ma_paths\":";
  append_uint(out, result.ma_paths);
  out += ",\"grc_pairs\":";
  append_uint(out, result.grc_pairs);
  out += ",\"ma_extra_pairs\":";
  append_uint(out, result.ma_extra_pairs);
  out += ",\"mean_best_geodistance_km\":";
  append_json_double(out, result.mean_best_geodistance_km);
  out += ",\"transit_fees\":";
  append_json_double(out, result.transit_fees);
  out += "}\n";
}

void append_whatif_response(std::string& out, std::uint64_t id,
                            const WhatIfResult& result) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"whatif\",\"paths\":";
  append_json_double(out, result.paths_delta);
  out += ",\"pairs\":";
  append_json_double(out, result.pairs_delta);
  out += ",\"mean_km\":";
  append_json_double(out, result.mean_km_delta);
  out += ",\"fees\":";
  append_json_double(out, result.fees_delta);
  out += ",\"utility\":";
  append_json_double(out, result.utility);
  out += ",\"recomputed_sources\":";
  append_uint(out, result.recomputed_sources);
  out += ",\"cached_sources\":";
  append_uint(out, result.cached_sources);
  out += ",\"ball_size\":";
  append_uint(out, result.ball_size);
  out += "}\n";
}

void append_error_response(std::string& out, std::uint64_t id,
                           std::string_view message) {
  append_response_head(out, id, false);
  out += ",\"error\":";
  append_json_string(out, message);
  out += "}\n";
}

}  // namespace panagree::serve
