#include "panagree/diversity/geodistance.hpp"

#include <algorithm>
#include <limits>
#include "panagree/geo/coordinates.hpp"

namespace panagree::diversity {

GeodistanceModel::GeodistanceModel(const Graph& graph, const geo::World& world)
    : graph_(&graph), world_(&world), num_cities_(world.cities().size()) {
  city_matrix_.assign(num_cities_ * num_cities_, 0.0);
  for (std::size_t a = 0; a < num_cities_; ++a) {
    for (std::size_t b = a + 1; b < num_cities_; ++b) {
      const double d = geo::great_circle_km(world.city(a).location,
                                            world.city(b).location);
      city_matrix_[a * num_cities_ + b] = d;
      city_matrix_[b * num_cities_ + a] = d;
    }
  }
}

double GeodistanceModel::city_to_city_km(std::size_t a, std::size_t b) const {
  PANAGREE_ASSERT(a < num_cities_ && b < num_cities_);
  return city_matrix_[a * num_cities_ + b];
}

double GeodistanceModel::as_to_city_km(AsId as, std::size_t city) const {
  // Deliberately uncached: one great-circle evaluation is cheaper than a
  // synchronized memo lookup, and keeping this pure lets parallel
  // aggregation fan-outs scale instead of serializing on a mutex.
  return geo::great_circle_km(graph_->info(as).centroid,
                              world_->city(city).location);
}

double GeodistanceModel::path_geodistance_km(AsId s, AsId m, AsId d) const {
  const auto l1 = graph_->link_between(s, m);
  const auto l2 = graph_->link_between(m, d);
  util::require(l1.has_value() && l2.has_value(),
                "path_geodistance_km: path hops must be linked");
  return path_geodistance_km(s, m, d, graph_->link(*l1).facilities,
                             graph_->link(*l2).facilities);
}

double GeodistanceModel::path_geodistance_km(
    AsId s, AsId /*m*/, AsId d, std::span<const std::size_t> facilities_sm,
    std::span<const std::size_t> facilities_md) const {
  util::require(graph_->info(s).has_geo && graph_->info(d).has_geo,
                "path_geodistance_km: endpoints need geodata");
  util::require(!facilities_sm.empty() && !facilities_md.empty(),
                "path_geodistance_km: links need facilities");
  // This is the innermost loop of scenario aggregation (one call per
  // enumerated path): hoist both great-circle legs out of the facility
  // product, so the trig cost is |sm| + |md| instead of |sm| * |md|.
  // Facility lists are tiny (max_facilities_per_link defaults to 3); the
  // stack buffer covers any realistic size, with a recompute fallback.
  constexpr std::size_t kMaxHoisted = 16;
  double tail_legs[kMaxHoisted];
  const bool hoist_tail = facilities_md.size() <= kMaxHoisted;
  if (hoist_tail) {
    for (std::size_t j = 0; j < facilities_md.size(); ++j) {
      tail_legs[j] = as_to_city_km(d, facilities_md[j]);
    }
  }
  double best = std::numeric_limits<double>::infinity();
  for (const std::size_t c1 : facilities_sm) {
    const double head = as_to_city_km(s, c1);
    for (std::size_t j = 0; j < facilities_md.size(); ++j) {
      const std::size_t c2 = facilities_md[j];
      const double tail =
          hoist_tail ? tail_legs[j] : as_to_city_km(d, c2);
      best = std::min(best, head + city_to_city_km(c1, c2) + tail);
    }
  }
  return best;
}

GeodistanceReport analyze_geodistance(const Graph& graph,
                                      const geo::World& world,
                                      const std::vector<AsId>& sources) {
  GeodistanceReport report;
  const GeodistanceModel model(graph, world);
  const Length3Analyzer analyzer(graph);

  struct PairAccumulator {
    std::vector<float> grc;
    std::vector<float> ma;
  };

  for (const AsId src : sources) {
    std::unordered_map<AsId, PairAccumulator> per_dst;
    for (const Length3Path& p : analyzer.grc_paths(src)) {
      per_dst[p.dst].grc.push_back(
          static_cast<float>(model.path_geodistance_km(p.src, p.mid, p.dst)));
    }
    for (const Length3Path& p : analyzer.ma_paths(src)) {
      const auto it = per_dst.find(p.dst);
      if (it == per_dst.end()) {
        continue;  // pair not GRC-connected at length 3: out of scope
      }
      it->second.ma.push_back(
          static_cast<float>(model.path_geodistance_km(p.src, p.mid, p.dst)));
    }
    for (auto& [dst, acc] : per_dst) {
      if (acc.grc.empty()) {
        continue;
      }
      std::sort(acc.grc.begin(), acc.grc.end());
      const float grc_min = acc.grc.front();
      const float grc_max = acc.grc.back();
      const float grc_median = acc.grc[acc.grc.size() / 2];
      GeoPairResult result;
      float ma_min = std::numeric_limits<float>::infinity();
      for (const float g : acc.ma) {
        if (g < grc_max) {
          ++result.ma_paths_below_grc_max;
        }
        if (g < grc_median) {
          ++result.ma_paths_below_grc_median;
        }
        if (g < grc_min) {
          ++result.ma_paths_below_grc_min;
        }
        ma_min = std::min(ma_min, g);
      }
      if (ma_min < grc_min) {
        result.relative_reduction =
            1.0 - static_cast<double>(ma_min) / static_cast<double>(grc_min);
      }
      report.pairs.push_back(result);
    }
  }
  return report;
}

}  // namespace panagree::diversity
