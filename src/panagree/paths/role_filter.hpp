// SIMD role filtering over CSR neighbor rows.
//
// A policy DFS spends most of its time scanning a row and rejecting
// neighbors whose *role* the current policy state cannot admit at all -
// e.g. the descending phase of a valley-free walk admits customers only,
// so scanning a hub's thousands of providers and peers through the
// policy's allowed() is pure waste. CompiledTopology keeps the roles of a
// row as a separate contiguous uint8_t lane exactly so this scan
// vectorizes: filter_roles() turns (role lane, admissible-role mask) into
// the ascending indices of the admitted entries, 16/32 roles per compare
// (SSE2/AVX2), and the DFS then walks only those.
//
// Dispatch is by runtime cpu check (AVX2 via __builtin_cpu_supports,
// SSE2 as the x86-64 baseline, scalar elsewhere), overridable with
// PANAGREE_NO_SIMD=1 which forces the scalar path - the golden reference
// every vector kernel is property-tested against. All kernels produce
// bit-identical output by contract; which one runs is a pure throughput
// choice.
#pragma once

#include <cstddef>
#include <cstdint>

#include "panagree/topology/graph.hpp"

namespace panagree::paths {

/// Bitmask over NeighborRole values: bit (1 << role) admits that role.
using RoleMask = std::uint8_t;

/// The bit admitting `role`.
[[nodiscard]] constexpr RoleMask role_bit(topology::NeighborRole role) {
  return static_cast<RoleMask>(std::uint8_t{1}
                               << static_cast<std::uint8_t>(role));
}

inline constexpr RoleMask kProviderBit =
    role_bit(topology::NeighborRole::kProvider);
inline constexpr RoleMask kPeerBit = role_bit(topology::NeighborRole::kPeer);
inline constexpr RoleMask kCustomerBit =
    role_bit(topology::NeighborRole::kCustomer);
inline constexpr RoleMask kAllRoles = kProviderBit | kPeerBit | kCustomerBit;
inline constexpr RoleMask kNoRoles = 0;

/// Writes the ascending indices i in [0, count) with roles[i] admitted by
/// `mask` into `out` (capacity >= count) and returns how many were
/// written. `roles` must hold NeighborRole values (< 8). Scalar golden
/// reference - the vector kernels are defined to match it bit for bit.
std::size_t filter_roles_scalar(const std::uint8_t* roles, std::size_t count,
                                RoleMask mask, std::uint32_t* out);

/// filter_roles_scalar through the fastest kernel the cpu supports (AVX2,
/// then SSE2, then scalar; PANAGREE_NO_SIMD=1 forces scalar). Identical
/// output on every path.
std::size_t filter_roles(const std::uint8_t* roles, std::size_t count,
                         RoleMask mask, std::uint32_t* out);

/// Name of the kernel filter_roles() dispatches to: "avx2", "sse2" or
/// "scalar". For readiness lines and tests.
[[nodiscard]] const char* role_filter_dispatch();

}  // namespace panagree::paths
