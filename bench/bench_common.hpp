// Shared configuration of the §VI reproduction benches: all figures run on
// the same synthetic Internet topology and the same 500-AS sample, mirroring
// the paper's single CAIDA snapshot + single AS sample.
//
// Environment overrides:
//   PANAGREE_ASES=<n>        topology size (synthetic only)
//   PANAGREE_SOURCES=<n>     analyzed-source sample size
//   PANAGREE_THREADS=<n>     worker threads (0 = hardware concurrency)
//   PANAGREE_CAIDA=<path>    run on a real CAIDA as-rel2 relationship file
//                            instead of the generator; the graph is embedded
//                            in a synthetic world (tiers, PoPs, facilities)
//                            so the geodistance/econ analyses still apply.
//   PANAGREE_SNAPSHOT=<path> mmap a compiled .pansnap topology snapshot
//                            (see panagree-compile) instead of generating,
//                            parsing, or embedding anything - the startup
//                            path for CAIDA-scale graphs. Wins over
//                            PANAGREE_CAIDA/PANAGREE_ASES.
#pragma once

#include <sys/resource.h>

#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <span>
#include <string>

#include "panagree/storage/snapshot.hpp"
#include "panagree/topology/caida.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::benchcfg {

/// Parses a non-negative integer environment override. Malformed values
/// terminate with a clear message instead of an unhandled std::stoul
/// exception (PANAGREE_ASES=12k should not print "terminate called...").
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') {
    return fallback;
  }
  std::size_t value = 0;
  const char* end = env + std::strlen(env);
  const auto [ptr, ec] = std::from_chars(env, end, value);
  if (ec != std::errc() || ptr != end) {
    std::cerr << "[bench] invalid " << name << "='" << env
              << "': expected a non-negative integer\n";
    std::exit(2);
  }
  return value;
}

/// Topology size; override with PANAGREE_ASES for quick runs.
inline std::size_t num_ases() { return env_size("PANAGREE_ASES", 12000); }

/// Analyzed-source sample size (the paper samples 500 ASes); override with
/// PANAGREE_SOURCES.
inline std::size_t num_sources() {
  return env_size("PANAGREE_SOURCES", 500);
}

/// Worker threads for per-source fan-outs (0 = one per hardware core);
/// override with PANAGREE_THREADS. Results are thread-count independent.
inline std::size_t num_threads() { return env_size("PANAGREE_THREADS", 0); }

/// Path to a CAIDA as-rel2 file, or nullptr for the synthetic generator.
inline const char* caida_path() {
  const char* env = std::getenv("PANAGREE_CAIDA");
  return (env != nullptr && *env != '\0') ? env : nullptr;
}

/// Path to a compiled .pansnap snapshot, or nullptr.
inline const char* snapshot_path() {
  const char* env = std::getenv("PANAGREE_SNAPSHOT");
  return (env != nullptr && *env != '\0') ? env : nullptr;
}

/// Peak resident set size of this process in kilobytes (0 if unknown).
inline std::size_t peak_rss_kb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<std::size_t>(usage.ru_maxrss);  // KB on Linux
}

inline constexpr std::uint64_t kTopologySeed = 424242;
inline constexpr std::uint64_t kSampleSeed = 7;

inline topology::GeneratorParams internet_params() {
  topology::GeneratorParams params;
  params.num_ases = num_ases();
  params.tier1_count = 12;
  params.seed = kTopologySeed;
  return params;
}

/// The shared bench topology, whichever way it was obtained: generated,
/// CAIDA-embedded, or mmap'd from a compiled snapshot. Snapshot-backed
/// instances keep the mapping alive and serve the CompiledTopology
/// zero-copy out of the file; the others compile it lazily on first use.
class Internet {
 public:
  [[nodiscard]] const topology::Graph& graph() const {
    return snapshot_ ? snapshot_->graph() : topo_.graph;
  }
  [[nodiscard]] const geo::World& world() const {
    return snapshot_ ? snapshot_->world() : topo_.world;
  }
  [[nodiscard]] const topology::CompiledTopology& compiled() const {
    if (snapshot_) {
      return snapshot_->topology();
    }
    if (!compiled_) {
      compiled_.emplace(topo_.graph);
    }
    return *compiled_;
  }
  [[nodiscard]] bool from_snapshot() const { return snapshot_.has_value(); }
  /// The backing mapped snapshot, or nullptr when generated / CAIDA-
  /// parsed (the sharded serving path reads the shard-plan and
  /// primed-baseline sections straight off it).
  [[nodiscard]] const storage::MappedSnapshot* snapshot() const {
    return snapshot_ ? &*snapshot_ : nullptr;
  }
  /// Wall time of the load (snapshot mmap or generate/parse + embed).
  [[nodiscard]] double load_ms() const { return load_ms_; }

 private:
  friend Internet load_internet(std::size_t, const char*);
  std::optional<storage::MappedSnapshot> snapshot_;
  topology::GeneratedTopology topo_;
  mutable std::optional<topology::CompiledTopology> compiled_;
  double load_ms_ = 0.0;
};

/// Loads the shared topology with degree-gravity capacities assigned.
/// Priority: `snapshot_override` (a tool's --snapshot flag), then
/// PANAGREE_SNAPSHOT, then PANAGREE_CAIDA, then the synthetic generator.
/// `synthetic_cap` bounds the synthetic size for the heavier benches; a
/// CAIDA graph or snapshot is used as-is. Snapshots carry capacities
/// (panagree-compile assigns them), so nothing is recomputed on that path.
inline Internet load_internet(std::size_t synthetic_cap = 0,
                              const char* snapshot_override = nullptr) {
  Internet net;
  const auto start = std::chrono::steady_clock::now();
  const char* snapshot =
      snapshot_override != nullptr ? snapshot_override : snapshot_path();
  if (snapshot != nullptr) {
    net.snapshot_.emplace(storage::MappedSnapshot::open(snapshot));
    net.load_ms_ = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    std::cerr << "[bench] topology: snapshot " << snapshot << ": "
              << net.graph().num_ases() << " ASes, "
              << net.graph().num_links() << " links ("
              << net.snapshot_->file_bytes() << " bytes mmap'd in "
              << net.load_ms_ << " ms)\n";
    return net;
  }
  if (const char* path = caida_path()) {
    auto dataset = topology::caida::parse_file(path);
    net.topo_ = topology::embed_relationship_graph(std::move(dataset.graph),
                                                   kTopologySeed);
    std::cerr << "[bench] topology: CAIDA " << path << ": "
              << net.topo_.graph.num_ases() << " ASes, "
              << net.topo_.graph.num_links() << " links\n";
  } else {
    topology::GeneratorParams params = internet_params();
    if (synthetic_cap > 0 && params.num_ases > synthetic_cap) {
      params.num_ases = synthetic_cap;
    }
    net.topo_ = topology::generate_internet(params);
    std::cerr << "[bench] topology: " << net.topo_.graph.num_ases()
              << " ASes, " << net.topo_.graph.num_links() << " links (seed "
              << kTopologySeed << ")\n";
  }
  topology::assign_degree_gravity_capacities(net.topo_.graph);
  net.load_ms_ = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  return net;
}

}  // namespace panagree::benchcfg
