// Whole-analysis drivers for the paper's §VI evaluation: sample ASes,
// compute per-source scenario counts (Figures 3-4) and the in-text
// statistics (average/maximum additional paths and destinations).
#pragma once

#include <vector>

#include "panagree/diversity/length3.hpp"
#include "panagree/util/rng.hpp"
#include "panagree/util/stats.hpp"

namespace panagree::diversity {

struct DiversityParams {
  std::size_t sample_sources = 500;
  std::uint64_t seed = 42;
  std::vector<std::size_t> top_ns = {1, 5, 50};
  /// Worker threads for the per-source fan-out; 0 = one per hardware core.
  /// Results are identical for every value (deterministic merge order).
  std::size_t threads = 0;
  /// Pin fan-out workers to cpus (paths::ExecPolicy). Results are
  /// identical either way.
  bool pin_threads = false;
};

/// Per-source row: absolute numbers of length-3 paths (or destinations)
/// visible under each MA-conclusion scenario. GRC paths remain available in
/// every scenario, so scenario values include the GRC baseline.
struct ScenarioRow {
  AsId as = topology::kInvalidAs;
  double grc = 0.0;
  std::vector<double> ma_top;  ///< GRC + top-n MA gains, per requested n
  double ma_star = 0.0;        ///< GRC + all directly gained MA paths
  double ma_all = 0.0;         ///< GRC + all MA paths (direct + indirect)
};

struct DiversityReport {
  std::vector<std::size_t> top_ns;
  std::vector<ScenarioRow> path_rows;  ///< Fig. 3 sample
  std::vector<ScenarioRow> dest_rows;  ///< Fig. 4 sample
  util::Summary additional_paths;      ///< §VI-A: MA-created paths per AS
  util::Summary additional_dests;      ///< §VI-A: new destinations per AS
  std::vector<AsId> sources;
};

/// Samples `params.sample_sources` ASes uniformly (or takes all if the
/// graph is smaller) and computes the Figures 3-4 rows.
[[nodiscard]] DiversityReport analyze_path_diversity(
    const Graph& graph, const DiversityParams& params);

/// Samples source ASes the same way without running the analysis (shared by
/// the geodistance/bandwidth benches so all figures use the same sample).
[[nodiscard]] std::vector<AsId> sample_sources(const Graph& graph,
                                               std::size_t count,
                                               std::uint64_t seed);

}  // namespace panagree::diversity
