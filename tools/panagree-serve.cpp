// panagree-serve: the long-running path/what-if query daemon.
//
//   panagree-serve [--snapshot FILE] [--port P] [--threads N]
//       [--max-batch B] [--sources N] [--shards N] [--max-queue Q]
//       [--pin-threads] [--stats-interval SEC] [--slow-ms MS] [--version]
//
// Opens the topology (a mmap'd .pansnap via --snapshot or
// PANAGREE_SNAPSHOT wins; PANAGREE_CAIDA / the synthetic generator
// otherwise), primes the per-source baseline once, and answers
// newline-delimited JSON requests (see serve/wire.hpp) on
// 127.0.0.1:--port until SIGTERM/SIGINT, which drains gracefully: every
// accepted request is answered before exit.
//
// --shards N partitions the source sample across N QueryEngine shards
// behind a serve::ShardRouter (responses stay byte-identical to
// --shards 1); the router also serves the admin `rebase` wire kind.
// When the snapshot carries a primed baseline for exactly this source
// sample (panagree-compile --shards), priming adopts it straight off
// the mapping - no path enumeration, cold start is one mmap - and the
// readiness line reports primed=snapshot (primed=computed otherwise).
//
// --port 0 binds an ephemeral port; the chosen port is in the
// "listening" line. That line goes to *stdout* (everything else to
// stderr) as the machine-readable readiness signal scripts wait for.
//
// --threads drives both the prime/rebase fan-out and the worker pool
// (0 = one per core); --max-batch bounds the per-epoch what-if memo
// (concurrent identical what-ifs share one enumeration); --sources is
// the cached sample size (the paper's 500 by default, PANAGREE_SOURCES
// honored). --pin-threads (or PANAGREE_PIN_THREADS=1) pins fan-out
// workers to cpus and NUMA-shards the snapshot pages; the readiness
// line reports the effective affinity either way.
//
// --stats-interval SEC (opt-in, 0 = off) prints a one-line metrics
// summary to stderr every SEC seconds while idle-waiting for shutdown;
// PANAGREE_TRACE=<file> arms span tracing (see obs/trace.hpp); the
// trace document is flushed after the SIGTERM drain, so a signal-
// terminated daemon keeps everything captured mid-run.
//
// --slow-ms MS (default: PANAGREE_SLOW_MS, else 10) sets the slow-query
// capture threshold: requests whose attributed wall time reaches MS
// milliseconds land in the slow-query ring served by the `slowlog` wire
// kind (panagree-query --slowlog, panagree-top). 0 captures every
// request - what the CI smoke uses to assert full stage breakdowns.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <iostream>
#include <string>
#include <string_view>

#include <poll.h>
#include <unistd.h>

#include "cli_common.hpp"
#include "panagree/obs/build_info.hpp"
#include "panagree/obs/export.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/paths/role_filter.hpp"
#include "panagree/serve/server.hpp"
#include "serve_common.hpp"

using namespace panagree;

namespace {

constexpr const char* kTool = "panagree-serve";

void usage() {
  std::cerr << "usage: panagree-serve [--snapshot FILE] [--port P]"
               " [--threads N]\n"
               "           [--max-batch B] [--sources N] [--shards N]"
               " [--max-queue Q]\n"
               "           [--pin-threads] [--stats-interval SEC]"
               " [--slow-ms MS] [--version]\n";
}

/// The opt-in periodic stats line: engine/server counters and the queue
/// high-water mark, one `name=value` pair per metric, greppable via the
/// "[serve] stats" prefix. Empty (prefix only) under PANAGREE_OBS_OFF.
void emit_stats_line(std::uint64_t epoch) {
  const obs::MetricsSnapshot snap = obs::snapshot_metrics();
  std::cerr << "[serve] stats epoch=" << epoch;
  for (const obs::CounterSample& counter : snap.counters) {
    const std::string_view name = counter.name;
    if (name.rfind("serve.requests.", 0) == 0 ||
        name.rfind("engine.", 0) == 0 || name.rfind("server.", 0) == 0) {
      std::cerr << ' ' << name << '=' << counter.value;
    }
  }
  for (const obs::GaugeSample& gauge : snap.gauges) {
    if (std::string_view(gauge.name).rfind("server.queue_depth", 0) == 0) {
      std::cerr << ' ' << gauge.name << '=' << gauge.value;
    }
  }
  std::cerr << std::endl;
}

/// Self-pipe the signal handlers write one byte into; main blocks on the
/// read end, so the drain runs on the main thread, not in handler
/// context.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_shutdown_signal(int) {
  const char byte = 1;
  // Best-effort: a full pipe just means a signal is already pending.
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot;
  std::size_t port = 7517;
  std::size_t threads = benchcfg::num_threads();
  std::size_t max_batch = 256;
  std::size_t sources_n = benchcfg::num_sources();
  std::size_t shards = 1;
  std::size_t max_queue = 1024;
  std::size_t stats_interval = 0;
  std::size_t slow_ms = cli::env_slow_ms(kTool, 10);
  bool pin_threads = cli::env_pin_threads();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      cli::print_version(kTool);
    } else if (arg == "--snapshot") {
      snapshot = cli::require_value(kTool, arg, argc, argv, i);
    } else if (arg == "--port") {
      port = cli::parse_size(kTool, arg,
                             cli::require_value(kTool, arg, argc, argv, i));
      if (port > 65535) {
        std::cerr << kTool << ": invalid --port " << port << "\n";
        return cli::kUsageExit;
      }
    } else if (arg == "--threads") {
      threads = cli::parse_threads(kTool, argc, argv, i);
    } else if (arg == "--max-batch") {
      max_batch = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--sources") {
      sources_n = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--shards") {
      shards = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
      if (shards == 0) {
        std::cerr << kTool << ": --shards must be at least 1\n";
        return cli::kUsageExit;
      }
    } else if (arg == "--max-queue") {
      max_queue = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--stats-interval") {
      stats_interval = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--slow-ms") {
      slow_ms = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--pin-threads") {
      pin_threads = true;
    } else {
      usage();
      return cli::kUsageExit;
    }
  }
  cli::init_tracing();
  obs::SlowQueryLog::global().set_threshold_ns(
      static_cast<std::uint64_t>(slow_ms) * 1'000'000);

  try {
    servecfg::ServeContext context(
        snapshot.empty() ? nullptr : snapshot.c_str(), sources_n, threads,
        max_batch, shards, pin_threads);
    if (pin_threads) {
      // NUMA-shard the CSR pages before the prime fan-out first-touches
      // them (no-op on single-node hosts; results identical regardless).
      (void)paths::bind_topology_to_nodes(paths::TopologyPlacement::system(),
                                          context.net.compiled());
    }
    const auto prime_start = std::chrono::steady_clock::now();
    const bool primed_from_snapshot = context.prime();
    const double prime_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() -
                                prime_start)
                                .count();
    std::cerr << "[serve] primed " << context.sources.size()
              << " sources across " << shards << " shard"
              << (shards == 1 ? "" : "s") << " in " << prime_ms << " ms ("
              << (primed_from_snapshot ? "snapshot baseline"
                                       : "fresh enumeration")
              << ", " << context.net.graph().num_ases() << " ASes)\n";

    serve::ServerConfig server_config;
    server_config.port = static_cast<std::uint16_t>(port);
    server_config.worker_threads = paths::resolve_thread_count(threads);
    server_config.max_queue = max_queue;
    serve::Server server(context.router, server_config);
    server.start();

    if (::pipe(g_signal_pipe) != 0) {
      std::cerr << kTool << ": cannot create signal pipe\n";
      return 1;
    }
    struct sigaction action{};
    action.sa_handler = on_shutdown_signal;
    ::sigaction(SIGTERM, &action, nullptr);
    ::sigaction(SIGINT, &action, nullptr);

    // The readiness line scripts and clients wait for - stdout, flushed.
    // The trailing fields report the *effective* placement: the process
    // affinity (narrowed when workers pinned under a restrictive
    // placement), the NUMA layout seen, and the role-filter kernel in
    // use - so scripts can verify --pin-threads / PANAGREE_NO_SIMD took
    // effect without attaching to the process.
    std::cout << "listening on 127.0.0.1:" << server.port()
              << " affinity=" << paths::affinity_summary()
              << " pinned=" << (pin_threads ? "on" : "off")
              << " shards=" << shards
              << " primed=" << (primed_from_snapshot ? "snapshot" : "computed")
              << " numa=\"" << paths::TopologyPlacement::system().describe()
              << "\" simd=" << paths::role_filter_dispatch()
              << " build=" << obs::build_info().git_describe << std::endl;

    // Idle-wait for the shutdown byte; with --stats-interval the wait
    // is chopped into poll timeouts that each emit one stats line.
    const int poll_timeout_ms =
        stats_interval == 0
            ? -1
            : static_cast<int>(
                  std::min<std::size_t>(stats_interval, 86400) * 1000);
    for (;;) {
      struct pollfd pfd{g_signal_pipe[0], POLLIN, 0};
      const int ready = ::poll(&pfd, 1, poll_timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) {
          continue;
        }
        std::cerr << kTool << ": poll failed\n";
        break;
      }
      if (ready == 0) {
        emit_stats_line(context.router.epoch());
        continue;
      }
      break;  // shutdown byte pending
    }
    std::cerr << "[serve] shutdown signal; draining\n";
    server.stop();
    std::cerr << "[serve] drained after " << server.handled_requests()
              << " requests\n";
    // Flush the trace document now that the drain has recorded the last
    // request's span tree - exit paths that bypass atexit (a second
    // signal, _exit in a wrapper) must not lose the trace.
    obs::trace_flush();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
