// Tests for the scenario engine: overlay semantics (a Delta over the CSR
// snapshot behaves exactly like recompiling the mutated graph) and the
// incremental sweep guarantees (byte-identical results at every thread
// count, cache accounting, validation).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "panagree/diversity/geodistance.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/geo/coordinates.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/overlay.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::scenario {
namespace {

using topology::CompiledTopology;
using topology::Graph;
using topology::LinkType;
using topology::NeighborRole;

/// Applies a Delta the expensive way: rebuild the Graph from scratch with
/// removed links dropped and added links appended.
Graph mutate(const Graph& base, const Delta& delta) {
  Graph out;
  for (AsId as = 0; as < base.num_ases(); ++as) {
    const AsId id = out.add_as();
    out.info(id) = base.info(as);
  }
  const auto removed = [&](AsId x, AsId y) {
    for (const auto& [a, b] : delta.remove) {
      if ((a == x && b == y) || (a == y && b == x)) {
        return true;
      }
    }
    return false;
  };
  for (const auto& link : base.links()) {
    if (removed(link.a, link.b)) {
      continue;
    }
    if (link.type == LinkType::kProviderCustomer) {
      out.add_provider_customer(link.a, link.b);
    } else {
      out.add_peering(link.a, link.b);
    }
  }
  for (const LinkChange& change : delta.add) {
    if (change.type == LinkType::kProviderCustomer) {
      out.add_provider_customer(change.a, change.b);
    } else {
      out.add_peering(change.a, change.b);
    }
  }
  return out;
}

/// The overlaid adjacency row of `as` (neighbor/role pairs, in order).
std::vector<std::pair<AsId, NeighborRole>> overlay_row(const Overlay& o,
                                                       AsId as) {
  std::vector<std::pair<AsId, NeighborRole>> row;
  o.for_each_entry(as, [&](const Overlay::Entry& e) {
    row.emplace_back(e.neighbor, e.role);
  });
  return row;
}

std::vector<std::pair<AsId, NeighborRole>> compiled_row(
    const CompiledTopology& c, AsId as) {
  std::vector<std::pair<AsId, NeighborRole>> row;
  for (const auto& e : c.entries(as)) {
    row.emplace_back(e.neighbor, e.role);
  }
  return row;
}

Graph star_graph() {
  // 0 provides to 1, 2, 3; 4 peers with 1.
  Graph g;
  for (int i = 0; i < 5; ++i) {
    g.add_as();
  }
  g.add_provider_customer(0, 1);
  g.add_provider_customer(0, 2);
  g.add_provider_customer(0, 3);
  g.add_peering(1, 4);
  return g;
}

TEST(Overlay, EmptyOverlayIsTheBase) {
  const Graph g = star_graph();
  const CompiledTopology c(g);
  const Overlay o(c);
  EXPECT_TRUE(o.empty());
  EXPECT_EQ(o.num_ases(), c.num_ases());
  for (AsId as = 0; as < c.num_ases(); ++as) {
    EXPECT_EQ(overlay_row(o, as), compiled_row(c, as));
  }
  EXPECT_EQ(o.role_of(1, 0), NeighborRole::kProvider);
  EXPECT_EQ(o.link_between(1, 4), c.link_between(1, 4));
  // Base link ids classify as base even before any apply() (regression:
  // a threshold of 0 made the metrics layer treat every baseline link as
  // overlay-added and silently fall back to centroid geodistances).
  EXPECT_EQ(o.first_added_link_id(), g.num_links());
  EXPECT_LT(*o.link_between(1, 4), o.first_added_link_id());
}

TEST(Overlay, AddRemoveAndRewireMatchRecompiledGraph) {
  const Graph g = star_graph();
  const CompiledTopology c(g);
  Delta delta;
  delta.add.push_back({2, 3, LinkType::kPeering});
  delta.add.push_back({4, 2, LinkType::kProviderCustomer});
  delta.remove.emplace_back(0, 3);
  // Rewire: peering 1-4 becomes provider 1 -> customer 4.
  delta.remove.emplace_back(1, 4);
  delta.add.push_back({1, 4, LinkType::kProviderCustomer});

  Overlay o(c);
  o.apply(delta);
  EXPECT_FALSE(o.empty());
  EXPECT_EQ(o.touched(), (std::vector<AsId>{0, 1, 2, 3, 4}));

  const Graph mutated = mutate(g, delta);
  const CompiledTopology expected(mutated);
  for (AsId as = 0; as < c.num_ases(); ++as) {
    EXPECT_EQ(overlay_row(o, as), compiled_row(expected, as)) << "as " << as;
    for (AsId other = 0; other < c.num_ases(); ++other) {
      EXPECT_EQ(o.role_of(as, other), expected.role_of(as, other))
          << as << " vs " << other;
    }
  }
  EXPECT_EQ(o.role_of(4, 1), NeighborRole::kProvider);
  EXPECT_FALSE(o.role_of(3, 0).has_value());

  // Added links resolve through synthetic ids.
  const auto id = o.link_between(2, 3);
  ASSERT_TRUE(id.has_value());
  ASSERT_GE(*id, o.first_added_link_id());
  EXPECT_EQ(o.added_link(*id), (LinkChange{2, 3, LinkType::kPeering}));

  o.clear();
  EXPECT_TRUE(o.empty());
  EXPECT_EQ(overlay_row(o, 3), compiled_row(c, 3));
}

TEST(Overlay, RejectsInvalidDeltas) {
  const Graph g = star_graph();
  const CompiledTopology c(g);
  Overlay o(c);
  Delta dup_add;
  dup_add.add.push_back({2, 3, LinkType::kPeering});
  dup_add.add.push_back({3, 2, LinkType::kPeering});
  EXPECT_THROW(o.apply(dup_add), util::PreconditionError);
  EXPECT_TRUE(o.empty());

  Delta existing;
  existing.add.push_back({0, 1, LinkType::kPeering});
  EXPECT_THROW(o.apply(existing), util::PreconditionError);

  Delta self_loop;
  self_loop.add.push_back({2, 2, LinkType::kPeering});
  EXPECT_THROW(o.apply(self_loop), util::PreconditionError);

  Delta not_a_link;
  not_a_link.remove.emplace_back(2, 3);
  EXPECT_THROW(o.apply(not_a_link), util::PreconditionError);

  Delta out_of_range;
  out_of_range.add.push_back({2, 99, LinkType::kPeering});
  EXPECT_THROW(o.apply(out_of_range), util::PreconditionError);
}

TEST(Overlay, EnumerationMatchesRecompiledAnalyzer) {
  const auto topo = topology::generate_internet([] {
    topology::GeneratorParams params;
    params.num_ases = 150;
    params.tier1_count = 4;
    params.seed = 11;
    return params;
  }());
  const CompiledTopology compiled(topo.graph);
  Delta delta;
  delta.add.push_back({20, 120, LinkType::kPeering});
  delta.remove.emplace_back(topo.graph.links().front().a,
                            topo.graph.links().front().b);
  Overlay overlay(compiled);
  overlay.apply(delta);

  const Graph mutated = mutate(topo.graph, delta);
  const diversity::Length3Analyzer analyzer(mutated);
  for (AsId src = 0; src < compiled.num_ases(); src += 7) {
    const SourcePathSet sets = enumerate_length3(overlay, src);
    EXPECT_TRUE(std::ranges::equal(sets.grc(), analyzer.grc_paths(src)))
        << "src " << src;
    EXPECT_TRUE(std::ranges::equal(sets.ma(), analyzer.ma_paths(src)))
        << "src " << src;
  }
}

/// Random single- and multi-link deltas over a generated topology.
std::vector<Delta> random_deltas(const Graph& g, std::size_t count,
                                 util::Rng& rng) {
  std::vector<Delta> deltas;
  while (deltas.size() < count) {
    Delta delta;
    const std::size_t adds = 1 + rng.uniform_index(3);
    for (std::size_t i = 0; i < adds; ++i) {
      const auto a = static_cast<AsId>(rng.uniform_index(g.num_ases()));
      const auto b = static_cast<AsId>(rng.uniform_index(g.num_ases()));
      if (a == b || g.link_between(a, b).has_value()) {
        continue;
      }
      const bool dup = std::any_of(
          delta.add.begin(), delta.add.end(), [&](const LinkChange& c) {
            return (c.a == a && c.b == b) || (c.a == b && c.b == a);
          });
      if (!dup) {
        delta.add.push_back({a, b, rng.bernoulli(0.7)
                                       ? LinkType::kPeering
                                       : LinkType::kProviderCustomer});
      }
    }
    if (rng.bernoulli(0.5)) {
      const auto& link = g.link(rng.uniform_index(g.num_links()));
      const bool dup = std::any_of(
          delta.add.begin(), delta.add.end(), [&](const LinkChange& c) {
            return (c.a == link.a && c.b == link.b) ||
                   (c.a == link.b && c.b == link.a);
          });
      if (!dup) {
        delta.remove.emplace_back(link.a, link.b);
      }
    }
    if (!delta.empty()) {
      deltas.push_back(std::move(delta));
    }
  }
  return deltas;
}

/// The tentpole property: for randomized delta batches, the incremental
/// sweep result of every scenario is byte-identical to a full
/// recompile-and-recompute of the mutated graph, at 1, 2, and 8 threads.
class SweepEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SweepEquivalence, IncrementalMatchesFullRecomputeAtAnyThreadCount) {
  const auto topo = topology::generate_internet([] {
    topology::GeneratorParams params;
    params.num_ases = 200;
    params.tier1_count = 4;
    params.seed = 77;
    return params;
  }());
  const Graph& g = topo.graph;
  const CompiledTopology compiled(g);
  util::Rng rng(GetParam());
  const auto deltas = random_deltas(g, 6, rng);

  std::vector<AsId> sources;
  for (AsId as = 0; as < g.num_ases(); as += 3) {
    sources.push_back(as);
  }

  const auto enumerate = [](const Overlay& overlay, AsId src) {
    return enumerate_length3(overlay, src);
  };
  // Both the proven-exact length-3 radius (1) and the generic bound (2)
  // must match the ground truth; the tighter radius must actually cache.
  std::vector<std::vector<std::vector<SourcePathSet>>> by_config;
  for (const auto& [threads, radius] :
       {std::pair<std::size_t, std::size_t>{1, kLength3DirtyRadius},
        {2, kLength3DirtyRadius},
        {8, kLength3DirtyRadius},
        {2, 2}}) {
    SweepConfig config;
    config.threads = threads;
    config.dirty_radius = radius;
    SweepRunner<SourcePathSet> runner(compiled, sources, config);
    runner.prime(enumerate);
    std::vector<std::vector<SourcePathSet>> per_delta;
    for (const Delta& delta : deltas) {
      SweepStats stats;
      per_delta.push_back(runner.evaluate(delta, enumerate, &stats));
      EXPECT_EQ(stats.recomputed_sources + stats.cached_sources,
                sources.size());
      EXPECT_GT(stats.recomputed_sources, 0u);
      if (radius == kLength3DirtyRadius) {
        EXPECT_GT(stats.cached_sources, 0u);
      }
    }
    by_config.push_back(std::move(per_delta));
  }

  // Thread-count (and radius) invariance: byte-identical across all
  // configurations.
  EXPECT_EQ(by_config[0], by_config[1]);
  EXPECT_EQ(by_config[0], by_config[2]);
  EXPECT_EQ(by_config[0], by_config[3]);

  // Ground truth: recompile the mutated graph and recompute everything.
  for (std::size_t d = 0; d < deltas.size(); ++d) {
    const Graph mutated = mutate(g, deltas[d]);
    const CompiledTopology recompiled(mutated);
    const Overlay none(recompiled);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(by_config[0][d][i], enumerate_length3(none, sources[i]))
          << "delta " << d << " source " << sources[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SweepEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(SweepRunner, EmptyDeltaServesEverythingFromCache) {
  const Graph g = star_graph();
  const CompiledTopology compiled(g);
  SweepRunner<SourcePathSet> runner(compiled, {0, 1, 2, 3, 4});
  runner.prime([](const Overlay& overlay, AsId src) {
    return enumerate_length3(overlay, src);
  });
  SweepStats stats;
  const auto results = runner.evaluate(
      Delta{},
      [](const Overlay& overlay, AsId src) {
        return enumerate_length3(overlay, src);
      },
      &stats);
  EXPECT_EQ(stats.recomputed_sources, 0u);
  EXPECT_EQ(stats.cached_sources, 5u);
  EXPECT_EQ(results, runner.baseline());
}

TEST(SweepRunner, RequiresPriming) {
  const Graph g = star_graph();
  const CompiledTopology compiled(g);
  SweepRunner<SourcePathSet> runner(compiled, {0, 1});
  EXPECT_THROW(static_cast<void>(runner.baseline()),
               util::PreconditionError);
  EXPECT_THROW(runner.evaluate(Delta{},
                               [](const Overlay& overlay, AsId src) {
                                 return enumerate_length3(overlay, src);
                               }),
               util::PreconditionError);
}

TEST(InvalidationBall, GrowsWithRadiusAndCoversEndpoints) {
  // Path graph 0-1-2-3-4 (all peering).
  Graph g;
  for (int i = 0; i < 5; ++i) {
    g.add_as();
  }
  for (AsId i = 0; i + 1 < 5; ++i) {
    g.add_peering(i, i + 1);
  }
  const CompiledTopology compiled(g);
  Overlay overlay(compiled);
  Delta delta;
  delta.remove.emplace_back(1, 2);
  overlay.apply(delta);

  EXPECT_EQ(invalidation_ball(overlay, 0), (std::vector<AsId>{1, 2}));
  // Radius 1 over the overlaid adjacency: 0-1 and 2-3 survive, 1-2 does
  // not (both its endpoints are already seeds).
  EXPECT_EQ(invalidation_ball(overlay, 1), (std::vector<AsId>{0, 1, 2, 3}));
  EXPECT_EQ(invalidation_ball(overlay, 2),
            (std::vector<AsId>{0, 1, 2, 3, 4}));
}

TEST(Metrics, AggregatesTinyTopologyDeterministically) {
  const Graph g = star_graph();
  const CompiledTopology compiled(g);
  const econ::Economy economy = econ::make_default_economy(g);
  const MetricsAggregator aggregator(compiled, /*world=*/nullptr, &economy);

  const std::vector<AsId> sources{1, 2};
  Overlay overlay(compiled);
  std::vector<SourcePathSet> results;
  for (const AsId src : sources) {
    results.push_back(enumerate_length3(overlay, src));
  }
  const ScenarioMetrics base = aggregator.aggregate(overlay, sources, results);

  // Peering 2-3 unlocks new paths; fees can only drop or hold (the new
  // link is settlement-free) and pairs can only grow.
  Delta delta;
  delta.add.push_back({2, 3, LinkType::kPeering});
  Overlay changed(compiled);
  changed.apply(delta);
  std::vector<SourcePathSet> changed_results;
  for (const AsId src : sources) {
    changed_results.push_back(enumerate_length3(changed, src));
  }
  const ScenarioMetrics after =
      aggregator.aggregate(changed, sources, changed_results);
  EXPECT_GE(after.grc_paths + after.ma_paths, base.grc_paths + base.ma_paths);
  EXPECT_GE(after.grc_pairs + after.ma_extra_pairs,
            base.grc_pairs + base.ma_extra_pairs);

  const MetricsDelta delta_metrics = subtract(after, base);
  // The MA 2-3-0 path makes AS0 newly reachable from AS2 at length 3; its
  // provider hop 3-0 bills one unit of mid-tier transit (AS0 has no
  // assigned tier and defaults to 1.4/unit).
  EXPECT_DOUBLE_EQ(delta_metrics.pairs, 1.0);
  EXPECT_NEAR(delta_metrics.transit_fees, 1.4, 1e-9);
  // At a pair reward outweighing the transit bill the deployment scores
  // positive; at the default weights it does not.
  EXPECT_LT(operator_utility(delta_metrics), 0.0);
  EXPECT_GT(operator_utility(delta_metrics, {.per_new_pair = 2.0}), 0.0);
}

TEST(Metrics, AddedLinksUseEstimatedFacilitiesNotCentroids) {
  // Regression (ROADMAP known gap): paths crossing an overlay-added link
  // used to fall back to endpoint-centroid great-circle legs. They must
  // instead minimize over facilities estimated from the endpoint PoP
  // sets - the same rule the generator assigns real links with - so a
  // what-if deployment prices like its recompiled version.
  const auto topo = topology::generate_internet([] {
    topology::GeneratorParams params;
    params.num_ases = 80;
    params.tier1_count = 4;
    params.seed = 5;
    return params;
  }());
  const Graph& g = topo.graph;
  const CompiledTopology compiled(g);
  const econ::Economy economy = econ::make_default_economy(g);
  const MetricsAggregator aggregator(compiled, &topo.world, &economy);

  const auto deltas = candidate_peering_deltas(compiled, 1, 11);
  ASSERT_EQ(deltas.size(), 1u);
  const LinkChange& added = deltas[0].add.front();
  Overlay overlay(compiled);
  overlay.apply(deltas[0]);

  // A length-3 path whose first hop is the added link and whose second is
  // a base link: added.a - added.b - d.
  AsId d = topology::kInvalidAs;
  for (const auto& entry : compiled.entries(added.b)) {
    if (entry.neighbor != added.a) {
      d = entry.neighbor;
      break;
    }
  }
  ASSERT_NE(d, topology::kInvalidAs);

  topology::Link hypothetical;
  hypothetical.a = added.a;
  hypothetical.b = added.b;
  hypothetical.type = added.type;
  const std::vector<std::size_t> estimated =
      topology::estimate_link_facilities(g, topo.world, hypothetical);
  ASSERT_FALSE(estimated.empty());
  const auto base_link = g.link_between(added.b, d);
  ASSERT_TRUE(base_link.has_value());

  const diversity::GeodistanceModel geodesy(g, topo.world);
  const double expected = geodesy.path_geodistance_km(
      added.a, added.b, d, estimated, g.link(*base_link).facilities);
  const double actual =
      aggregator.path_geodistance_km(overlay, added.a, added.b, d);
  EXPECT_DOUBLE_EQ(actual, expected);

  // The pre-fix behavior (centroid legs) must no longer be what we get.
  const double centroid_legs =
      geo::great_circle_km(g.info(added.a).centroid,
                           g.info(added.b).centroid) +
      geo::great_circle_km(g.info(added.b).centroid, g.info(d).centroid);
  EXPECT_NE(actual, centroid_legs);
}

}  // namespace
}  // namespace panagree::scenario
