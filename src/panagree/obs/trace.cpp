#include "panagree/obs/trace.hpp"

#if !defined(PANAGREE_OBS_OFF)

#include <atomic>
#include <chrono>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace panagree::obs {

inline namespace obs_on {

namespace {

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t duration_ns;
  std::uint32_t tid;
  std::uint64_t id;        // span id; 0 = anonymous leaf
  std::uint64_t parent;    // parent span id; 0 = root
  std::uint64_t wire_id;
  bool has_wire_id;
};

struct Recorder {
  std::mutex mutex;
  std::string path;
  std::vector<Event> events;
  std::uint64_t epoch_ns = 0;  // ts are relative to trace_init
};

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_span_id{1};

// Leaked: spans may close during static destruction, after which the
// atexit flush has already written the document.
Recorder& recorder() {
  static Recorder* instance = new Recorder;
  return *instance;
}

[[nodiscard]] std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

[[nodiscard]] std::uint32_t thread_ordinal() noexcept {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

void append_uint(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer),
                                       value);
  (void)ec;
  out.append(buffer, ptr);
}

/// Microseconds with fixed 3-digit (nanosecond) precision - enough for
/// Chrome's viewer and deterministic to format.
void append_us(std::string& out, std::uint64_t ns) {
  append_uint(out, ns / 1000);
  out.push_back('.');
  const std::uint64_t frac = ns % 1000;
  out.push_back(static_cast<char>('0' + frac / 100));
  out.push_back(static_cast<char>('0' + frac / 10 % 10));
  out.push_back(static_cast<char>('0' + frac % 10));
}

void push_event(const char* name, std::uint64_t start_ns,
                std::uint64_t end_ns, std::uint64_t id,
                std::uint64_t parent, std::uint64_t wire_id,
                bool has_wire_id) {
  Recorder& rec = recorder();
  const std::scoped_lock lock(rec.mutex);
  const std::uint64_t rel_start =
      start_ns > rec.epoch_ns ? start_ns - rec.epoch_ns : 0;
  const std::uint64_t duration = end_ns > start_ns ? end_ns - start_ns : 0;
  rec.events.push_back(Event{name, rel_start, duration, thread_ordinal(),
                             id, parent, wire_id, has_wire_id});
}

}  // namespace

bool trace_enabled() noexcept {
  return g_enabled.load(std::memory_order_relaxed);
}

void trace_init(std::string_view path) {
  if (path.empty()) {
    return;
  }
  Recorder& rec = recorder();
  {
    const std::scoped_lock lock(rec.mutex);
    if (!rec.path.empty()) {
      return;  // first init wins
    }
    rec.path = std::string(path);
    rec.epoch_ns = now_ns();
    rec.events.reserve(1024);
  }
  g_enabled.store(true, std::memory_order_release);
  std::atexit(trace_flush);
}

void trace_init_from_env() {
  const char* path = std::getenv("PANAGREE_TRACE");
  if (path != nullptr && *path != '\0') {
    trace_init(path);
  }
}

void trace_flush() {
  Recorder& rec = recorder();
  const std::scoped_lock lock(rec.mutex);
  if (rec.path.empty()) {
    return;
  }
  std::string out;
  out.reserve(64 + rec.events.size() * 128);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : rec.events) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"name\":\"";
    out += event.name;  // span names are literals, JSON-safe by contract
    out += "\",\"ph\":\"X\",\"ts\":";
    append_us(out, event.start_ns);
    out += ",\"dur\":";
    append_us(out, event.duration_ns);
    out += ",\"pid\":1,\"tid\":";
    append_uint(out, event.tid);
    out += ",\"args\":{\"id\":";
    append_uint(out, event.id);
    out += ",\"parent\":";
    append_uint(out, event.parent);
    if (event.has_wire_id) {
      out += ",\"wire_id\":";
      append_uint(out, event.wire_id);
    }
    out += "}}";
  }
  out += "]}\n";
  std::FILE* file = std::fopen(rec.path.c_str(), "w");
  if (file == nullptr) {
    return;  // tracing must never take the process down
  }
  std::fwrite(out.data(), 1, out.size(), file);
  std::fclose(file);
}

std::size_t trace_event_count() noexcept {
  Recorder& rec = recorder();
  const std::scoped_lock lock(rec.mutex);
  return rec.events.size();
}

std::uint64_t trace_now_ns() noexcept { return now_ns(); }

std::uint64_t trace_next_span_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

void trace_record_span(const char* name, std::uint64_t start_ns,
                       std::uint64_t end_ns, const SpanArgs& args) {
  if (!trace_enabled()) {
    return;
  }
  push_event(name, start_ns, end_ns, args.id, args.parent, args.wire_id,
             args.has_wire_id);
}

TraceSpan::TraceSpan(const char* name) noexcept
    : name_(trace_enabled() ? name : nullptr) {
  if (name_ != nullptr) {
    start_ns_ = now_ns();
    id_ = trace_next_span_id();
  }
}

TraceSpan::TraceSpan(const char* name, const TraceSpan& parent) noexcept
    : TraceSpan(name) {
  parent_ = parent.id_;
}

TraceSpan::~TraceSpan() {
  if (name_ == nullptr) {
    return;
  }
  push_event(name_, start_ns_, now_ns(), id_, parent_, 0, false);
}

}  // namespace obs_on

}  // namespace panagree::obs

#endif  // !PANAGREE_OBS_OFF
