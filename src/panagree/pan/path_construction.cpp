#include "panagree/pan/path_construction.hpp"

#include <algorithm>
#include <set>

namespace panagree::pan {

void CrossingRegistry::add(Crossing crossing) {
  util::require(crossing.at != topology::kInvalidAs &&
                    crossing.from != topology::kInvalidAs &&
                    crossing.to != topology::kInvalidAs,
                "CrossingRegistry::add: incomplete crossing");
  util::require(crossing.from != crossing.to,
                "CrossingRegistry::add: from and to must differ");
  crossings_.push_back(std::move(crossing));
}

bool CrossingRegistry::allows(AsId source, AsId at, AsId from, AsId to) const {
  for (const Crossing& c : crossings_) {
    if (c.at == at && c.from == from && c.to == to &&
        (c.allowed_sources.empty() || c.allowed_sources.contains(source))) {
      return true;
    }
  }
  return false;
}

bool is_simple_path(const std::vector<AsId>& path) {
  std::set<AsId> seen(path.begin(), path.end());
  return seen.size() == path.size();
}

PathConstructor::PathConstructor(const Graph& graph,
                                 const BeaconService& beacons,
                                 PathConstructionOptions options)
    : compiled_(graph), beacons_(&beacons), options_(options) {
  util::require(beacons.has_run(),
                "PathConstructor: beacon service must have run");
}

void PathConstructor::add_candidate(std::vector<std::vector<AsId>>& out,
                                    std::vector<AsId> path) const {
  if (path.size() < 2 || path.size() > options_.max_path_length ||
      !is_simple_path(path)) {
    return;
  }
  if (!paths::PathEnumerator(compiled_).links_exist(path)) {
    return;
  }
  out.push_back(std::move(path));
}

std::vector<std::vector<AsId>> PathConstructor::construct(
    AsId src, AsId dst, const CrossingRegistry* crossings) const {
  util::require(src < compiled_.num_ases() && dst < compiled_.num_ases(),
                "PathConstructor::construct: AS out of range");
  util::require(src != dst, "PathConstructor::construct: src == dst");

  std::vector<std::vector<AsId>> candidates;

  // src-side segments, re-oriented src-first (src ... core).
  std::vector<std::vector<AsId>> ups;
  for (const PathSegment& seg : beacons_->up_segments(src)) {
    std::vector<AsId> u(seg.ases.rbegin(), seg.ases.rend());
    ups.push_back(std::move(u));
  }
  // dst-side segments kept core-first (core ... dst).
  const auto& downs_raw = beacons_->up_segments(dst);

  for (const auto& u : ups) {
    for (const PathSegment& dseg : downs_raw) {
      const std::vector<AsId>& d = dseg.ases;

      // (a) shared-AS join (includes joining at a common core AS).
      for (std::size_t i = 0; i < u.size(); ++i) {
        for (std::size_t j = 0; j < d.size(); ++j) {
          if (u[i] != d[j]) {
            continue;
          }
          std::vector<AsId> path(u.begin(), u.begin() + i + 1);
          path.insert(path.end(), d.begin() + j + 1, d.end());
          add_candidate(candidates, std::move(path));
        }
      }

      // (b) join of two distinct core ASes over a core link.
      const AsId core_u = u.back();
      const AsId core_d = d.front();
      if (core_u != core_d && compiled_.find(core_u, core_d) != nullptr) {
        std::vector<AsId> path = u;
        path.insert(path.end(), d.begin(), d.end());
        add_candidate(candidates, std::move(path));
      }

      // (c) peering shortcut between the two segments.
      for (std::size_t i = 0; i < u.size(); ++i) {
        for (std::size_t j = 0; j < d.size(); ++j) {
          if (u[i] == d[j] || !compiled_.are_peers(u[i], d[j])) {
            continue;
          }
          std::vector<AsId> path(u.begin(), u.begin() + i + 1);
          path.insert(path.end(), d.begin() + j, d.end());
          add_candidate(candidates, std::move(path));
        }
      }

      // (d) agreement crossings: splice ... x, at, z ... where x lies on the
      // src side and z on the dst side.
      if (crossings != nullptr) {
        for (const Crossing& c : crossings->crossings()) {
          if (!c.allowed_sources.empty() &&
              !c.allowed_sources.contains(src)) {
            continue;
          }
          for (std::size_t i = 0; i < u.size(); ++i) {
            if (u[i] != c.from) {
              continue;
            }
            for (std::size_t j = 0; j < d.size(); ++j) {
              if (d[j] != c.to) {
                continue;
              }
              std::vector<AsId> path(u.begin(), u.begin() + i + 1);
              path.push_back(c.at);
              path.insert(path.end(), d.begin() + j, d.end());
              add_candidate(candidates, std::move(path));
            }
          }
        }
      }
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const std::vector<AsId>& a, const std::vector<AsId>& b) {
              if (a.size() != b.size()) {
                return a.size() < b.size();
              }
              return a < b;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  if (candidates.size() > options_.max_paths) {
    candidates.resize(options_.max_paths);
  }
  return candidates;
}

std::vector<std::vector<AsId>> PathConstructor::enumerate_authorized(
    AsId src, AsId dst, const CrossingRegistry* crossings,
    std::size_t max_len) const {
  util::require(src < compiled_.num_ases() && dst < compiled_.num_ases(),
                "PathConstructor::enumerate_authorized: AS out of range");
  util::require(src != dst,
                "PathConstructor::enumerate_authorized: src == dst");
  if (max_len == 0) {
    max_len = options_.max_path_length;
  }
  auto found = paths::PathEnumerator(compiled_).paths_between(
      src, dst, max_len, CrossingStep(crossings));
  std::sort(found.begin(), found.end(),
            [](const std::vector<AsId>& a, const std::vector<AsId>& b) {
              if (a.size() != b.size()) {
                return a.size() < b.size();
              }
              return a < b;
            });
  return found;
}

}  // namespace panagree::pan
