// Compiled, immutable snapshot of a Graph in CSR (compressed sparse row)
// form, the shared substrate of every large-scale path enumeration.
//
// Graph is optimized for incremental construction: per-AS adjacency is three
// std::vectors and pair lookups go through an unordered_map. That layout is
// hostile to the hot loops of the paper's §VI analyses (valley-free walks,
// MA enumeration, SPP compilation), which perform millions of
// neighbor-iteration and role-lookup operations: every Graph::neighbors()
// call allocates, and every role_of() hashes.
//
// CompiledTopology flattens the adjacency into one contiguous entry array
// with per-AS row offsets. Each row stores the neighbors grouped by role
// (providers, then peers, then customers), each group sorted ascending by
// AS id, and every entry carries the precomputed NeighborRole and LinkId.
// Neighbor iteration is a span over contiguous memory; role_of/link_between
// are branchless binary searches over a sorted row group (O(log degree), no
// hashing, no allocation).
//
// The snapshot holds a pointer to the source Graph (for link/AS metadata)
// and must not outlive it. Links or ASes added to the Graph after
// compilation are not visible in the snapshot - recompile to pick them up.
//
// The CSR arrays live either in snapshot-owned vectors (the compile()
// constructor) or in externally owned memory (borrow(), used by
// storage::MappedSnapshot to serve the arrays zero-copy out of a
// memory-mapped .pansnap file). Accessors read through spans, so both modes
// share every code path; the raw-array accessors expose the arrays to the
// storage writer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "panagree/topology/graph.hpp"

namespace panagree::topology {

class CompiledTopology {
 public:
  /// One adjacency slot: the neighbor, its role as seen from the row AS,
  /// and the connecting link.
  struct Entry {
    AsId neighbor = kInvalidAs;
    std::uint32_t link = 0;  ///< index into graph().links()
    NeighborRole role = NeighborRole::kPeer;

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Compiles a snapshot of `graph`. O(A + L log L) time, O(A + L) space.
  explicit CompiledTopology(const Graph& graph);

  /// A zero-copy view over externally owned CSR arrays that must be exactly
  /// what compiling `graph` would produce (storage::MappedSnapshot
  /// validates and serves them out of a mapped .pansnap file). The arrays
  /// and `graph` must outlive the snapshot; only structural sizes are
  /// checked here.
  [[nodiscard]] static CompiledTopology borrow(
      const Graph& graph, std::span<const std::uint32_t> row_start,
      std::span<const std::uint32_t> providers_end,
      std::span<const std::uint32_t> peers_end, std::span<const Entry> entries);

  // Spans must re-point at the destination's owned vectors on copy/move,
  // so the special members are spelled out.
  CompiledTopology(const CompiledTopology& other);
  CompiledTopology& operator=(const CompiledTopology& other);
  CompiledTopology(CompiledTopology&& other) noexcept;
  CompiledTopology& operator=(CompiledTopology&& other) noexcept;
  ~CompiledTopology() = default;

  [[nodiscard]] std::size_t num_ases() const { return num_ases_; }
  [[nodiscard]] std::size_t num_links() const { return num_entries_ / 2; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }

  /// All neighbors of `as`: providers, then peers, then customers (each
  /// group sorted ascending by id). Zero-copy.
  [[nodiscard]] std::span<const Entry> entries(AsId as) const {
    check(as);
    return {entries_ + row_start_[as], entries_ + row_start_[as + 1]};
  }

  /// Invokes `fn(entry)` for every adjacency entry of `as` in row order.
  /// The iteration protocol shared with scenario::Overlay, which merges
  /// link deltas into the same order - generic walkers (paths::
  /// BasicPathEnumerator) iterate through this instead of entries() so
  /// they run unchanged on either topology view.
  template <typename Fn>
  void for_each_entry(AsId as, Fn&& fn) const {
    for (const Entry& entry : entries(as)) {
      fn(entry);
    }
  }

  /// pi(X) as a span of entries.
  [[nodiscard]] std::span<const Entry> providers(AsId as) const {
    check(as);
    return {entries_ + row_start_[as], entries_ + providers_end_[as]};
  }

  /// eps(X) as a span of entries.
  [[nodiscard]] std::span<const Entry> peers(AsId as) const {
    check(as);
    return {entries_ + providers_end_[as], entries_ + peers_end_[as]};
  }

  /// gamma(X) as a span of entries.
  [[nodiscard]] std::span<const Entry> customers(AsId as) const {
    check(as);
    return {entries_ + peers_end_[as], entries_ + row_start_[as + 1]};
  }

  [[nodiscard]] std::size_t degree(AsId as) const {
    check(as);
    return row_start_[as + 1] - row_start_[as];
  }

  /// The roles of `as`'s row as a bare contiguous uint8_t lane, parallel
  /// to entries(as): role_lane(as)[i] == entries(as)[i].role. Derived
  /// from the entry array at construction (both compile and borrow modes
  /// - the .pansnap format is unchanged) so the admissible-role scan of
  /// the path engine can run vectorized (paths::filter_roles) instead of
  /// striding through 8-byte Entry records for one byte each.
  [[nodiscard]] const std::uint8_t* role_lane(AsId as) const {
    check(as);
    return roles_ + row_start_[as];
  }

  /// The whole role lane (num_entries() values), for benchmarks/tests.
  [[nodiscard]] std::span<const std::uint8_t> role_lane_array() const {
    return {roles_, num_entries_};
  }

  /// The adjacency entry for neighbor `y` in `x`'s row; nullptr if not
  /// connected. O(log degree(x)) with a linear fast path for short groups.
  [[nodiscard]] const Entry* find(AsId x, AsId y) const;

  /// Role of y from x's perspective, if they are connected. Total like
  /// Graph::role_of: out-of-range ids yield nullopt, not an error.
  /// Searches the lower-degree endpoint's row (inverting the role when
  /// searching from y's side), so lookups involving a hub AS cost
  /// O(log degree(stub)).
  [[nodiscard]] std::optional<NeighborRole> role_of(AsId x, AsId y) const {
    if (!in_range(x) || !in_range(y)) {
      return std::nullopt;
    }
    if (degree(x) <= degree(y)) {
      const Entry* e = find(x, y);
      return e == nullptr ? std::nullopt
                          : std::optional<NeighborRole>(e->role);
    }
    const Entry* e = find(y, x);
    return e == nullptr ? std::nullopt
                        : std::optional<NeighborRole>(invert(e->role));
  }

  /// Link between x and y if one exists (total and degree-aware like
  /// role_of).
  [[nodiscard]] std::optional<LinkId> link_between(AsId x, AsId y) const {
    if (!in_range(x) || !in_range(y)) {
      return std::nullopt;
    }
    const Entry* e = degree(x) <= degree(y) ? find(x, y) : find(y, x);
    return e == nullptr ? std::nullopt
                        : std::optional<LinkId>(static_cast<LinkId>(e->link));
  }

  [[nodiscard]] bool are_peers(AsId x, AsId y) const {
    return role_of(x, y) == NeighborRole::kPeer;
  }

  [[nodiscard]] bool is_provider_of(AsId provider, AsId customer) const {
    // Via role_of: total on garbage ids (like Graph's) and degree-aware.
    return role_of(customer, provider) == NeighborRole::kProvider;
  }

  [[nodiscard]] bool is_customer_of(AsId customer, AsId provider) const {
    return is_provider_of(provider, customer);
  }

  /// The raw CSR arrays (the storage layer serializes these verbatim).
  [[nodiscard]] std::span<const std::uint32_t> row_start_array() const {
    return {row_start_, num_ases_ + 1};
  }
  [[nodiscard]] std::span<const std::uint32_t> providers_end_array() const {
    return {providers_end_, num_ases_};
  }
  [[nodiscard]] std::span<const std::uint32_t> peers_end_array() const {
    return {peers_end_, num_ases_};
  }
  [[nodiscard]] std::span<const Entry> entry_array() const {
    return {entries_, num_entries_};
  }

  /// True when the CSR arrays live in snapshot-owned vectors (false for
  /// borrow()ed views, e.g. over a memory-mapped file).
  [[nodiscard]] bool owns_storage() const { return owns_; }

 private:
  CompiledTopology() = default;  // borrow() assembles the members itself

  /// Points the access pointers at the owned vectors.
  void point_at_owned() noexcept;
  /// Rebuilds owned_roles_ from the entry array and points roles_ at it.
  /// The lane is derived data and always owned, even when the CSR arrays
  /// themselves are borrowed from a mapped snapshot.
  void build_role_lane();
  /// Copy/move helper: re-point at own storage (owning) or copy the
  /// borrowed views.
  void adopt_views_from(const CompiledTopology& other);
  [[nodiscard]] bool in_range(AsId as) const {
    return static_cast<std::size_t>(as) < num_ases_;
  }

  void check(AsId as) const {
    // size_t comparison: as + 1 would wrap for the kInvalidAs sentinel.
    util::require(in_range(as), "CompiledTopology: AS out of range");
  }

  /// Role of x as seen from the other endpoint, given the role of the
  /// other endpoint as seen from x.
  [[nodiscard]] static NeighborRole invert(NeighborRole role) {
    switch (role) {
      case NeighborRole::kProvider:
        return NeighborRole::kCustomer;
      case NeighborRole::kCustomer:
        return NeighborRole::kProvider;
      case NeighborRole::kPeer:
        break;
    }
    return NeighborRole::kPeer;
  }

  /// Hot lookup state first (raw pointers into the owned vectors or into
  /// borrowed memory - one load per access, measured faster than spans on
  /// the role-lookup microbench). row_start_ holds row offsets into
  /// entries_, num_ases_ + 1 values; providers_end_/peers_end_ the
  /// absolute end offset of the provider (resp. peer) group per row.
  const std::uint32_t* row_start_ = nullptr;
  const std::uint32_t* providers_end_ = nullptr;
  const std::uint32_t* peers_end_ = nullptr;
  const Entry* entries_ = nullptr;
  /// Contiguous role-per-entry lane parallel to entries_ (always backed
  /// by owned_roles_; see build_role_lane).
  const std::uint8_t* roles_ = nullptr;
  std::size_t num_ases_ = 0;
  std::size_t num_entries_ = 0;
  const Graph* graph_ = nullptr;
  bool owns_ = true;
  /// Backing storage in owning mode; empty when borrowed.
  std::vector<std::uint32_t> owned_row_start_;
  std::vector<std::uint32_t> owned_providers_end_;
  std::vector<std::uint32_t> owned_peers_end_;
  std::vector<Entry> owned_entries_;
  /// The derived role lane, owned in both modes.
  std::vector<std::uint8_t> owned_roles_;
};

}  // namespace panagree::topology
