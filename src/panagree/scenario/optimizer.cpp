#include "panagree/scenario/optimizer.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "panagree/obs/trace.hpp"
#include "panagree/util/error.hpp"

namespace panagree::scenario {

namespace {

SourcePathSet enumerate(const Overlay& overlay, AsId src) {
  return enumerate_length3(overlay, src);
}

/// One candidate's cached evaluation against some program state. The
/// dirty-source slice (positions, path sets, contributions) survives
/// commits of steps whose contamination ball stays clear of it.
struct CandidateEval {
  bool feasible = true;
  bool valid = false;
  /// Endpoints of the candidate delta (sorted) - the overlap probe.
  std::vector<AsId> touched;
  /// Sorted source ids of the dirty positions - the other overlap probe.
  std::vector<AsId> dirty_sources;
  std::vector<std::size_t> dirty_positions;
  std::vector<SourcePathSet> fresh;
  std::vector<SourceContribution> fresh_contribs;

  void drop_cache() {
    valid = false;
    dirty_sources.clear();
    dirty_positions.clear();
    fresh.clear();
    fresh_contribs.clear();
  }
};

/// One partial program under search (greedy keeps exactly one).
struct SearchState {
  explicit SearchState(SweepRunner<SourcePathSet> r)
      : runner(std::move(r)) {}

  SweepRunner<SourcePathSet> runner;
  /// Per-source contribution of the current program state, runner order.
  std::vector<SourceContribution> contribs;
  ScenarioMetrics metrics;
  double cumulative_utility = 0.0;
  Program program;
  std::vector<PlannedStep> steps;
  std::vector<CandidateEval> evals;
};

struct Scored {
  bool feasible = false;
  SourceContribution total;
  ScenarioMetrics metrics;
  MetricsDelta marginal;
  double marginal_utility = 0.0;
};

[[nodiscard]] bool sorted_contains(const std::vector<AsId>& sorted, AsId x) {
  return std::binary_search(sorted.begin(), sorted.end(), x);
}

/// Sum of the state's per-source contributions with the candidate's
/// dirty-source slices spliced in - fixed (source-order) association, so
/// scores are bit-identical however the slices were obtained.
[[nodiscard]] SourceContribution fold_total(const SearchState& state,
                                            const CandidateEval& eval) {
  SourceContribution total;
  std::size_t next = 0;
  for (std::size_t i = 0; i < state.contribs.size(); ++i) {
    if (next < eval.dirty_positions.size() &&
        eval.dirty_positions[next] == i) {
      total += eval.fresh_contribs[next];
      ++next;
    } else {
      total += state.contribs[i];
    }
  }
  return total;
}

/// The committed step's contamination balls, BFS'd over the *union* of
/// the new program state, the step's removed links, and every
/// candidate's added links. Distances in any topology a cached candidate
/// evaluation compares (old or new state, with any candidate folded in)
/// are no shorter than in this union, so probes that miss the balls
/// leave the cached slice provably byte-identical - the soundness core
/// of cross-round sharing.
struct ContaminationBalls {
  /// Depth <= radius: a cached *dirty source* here may enumerate the
  /// step's changed links (its results can differ).
  std::vector<AsId> source_probe;
  /// Depth <= radius - 1: a candidate *endpoint* here may see its
  /// invalidation-ball membership change (a changed link can lie on a
  /// <= radius BFS path only if its endpoint is within radius - 1 of a
  /// seed). At the canonical radius 1 this is just the step's own
  /// endpoints, which is why hub-sharing candidates survive commits
  /// that land one hop away.
  std::vector<AsId> touched_probe;
};

[[nodiscard]] ContaminationBalls contamination_balls(
    const Overlay& state_overlay, const std::vector<Delta>& candidates,
    const Delta& step, std::size_t radius) {
  const std::size_t n = state_overlay.num_ases();
  std::unordered_map<AsId, std::vector<AsId>> extra;
  const auto add_edge = [&](AsId x, AsId y) {
    if (x < n && y < n) {
      extra[x].push_back(y);
      extra[y].push_back(x);
    }
  };
  for (const Delta& candidate : candidates) {
    for (const LinkChange& change : candidate.add) {
      add_edge(change.a, change.b);
    }
  }
  for (const auto& [x, y] : step.remove) {
    add_edge(x, y);
  }

  std::vector<AsId> ball = touched_ases(step);
  std::vector<char> seen(n, 0);
  for (const AsId as : ball) {
    seen[as] = 1;
  }
  ContaminationBalls out;
  bool touched_probe_set = false;
  std::vector<AsId> frontier = ball;
  std::vector<AsId> next;
  for (std::size_t depth = 0; depth < radius && !frontier.empty(); ++depth) {
    if (depth + 1 == radius) {
      out.touched_probe = ball;  // everything within radius - 1
      touched_probe_set = true;
    }
    next.clear();
    const auto visit = [&](AsId neighbor) {
      if (seen[neighbor] == 0) {
        seen[neighbor] = 1;
        next.push_back(neighbor);
      }
    };
    for (const AsId as : frontier) {
      state_overlay.for_each_entry(
          as, [&](const Overlay::Entry& entry) { visit(entry.neighbor); });
      const auto it = extra.find(as);
      if (it != extra.end()) {
        for (const AsId neighbor : it->second) {
          visit(neighbor);
        }
      }
    }
    ball.insert(ball.end(), next.begin(), next.end());
    frontier.swap(next);
  }
  if (!touched_probe_set) {
    // The loop never reached depth radius - 1: either radius is 0, or
    // the frontier ran dry first - in which case `ball` is the entire
    // closed reachable set and therefore a superset of every
    // radius - 1 ball. Use it verbatim (seeds only, for radius 0).
    out.touched_probe = ball;
  }
  std::sort(out.touched_probe.begin(), out.touched_probe.end());
  std::sort(ball.begin(), ball.end());
  out.source_probe = std::move(ball);
  return out;
}

/// Evaluates one candidate's dirty-source slice against the state's
/// cached results - the parallel-safe unit of a scoring round: reads only
/// the runner's (const) state and writes only its own eval. Candidates
/// that stop composing onto the grown program turn infeasible here;
/// precondition failures elsewhere (a malformed candidate aside, there
/// should be none) still propagate instead of being reclassified as
/// infeasibility.
SweepStats evaluate_candidate(const SearchState& state, const Delta& delta,
                              CandidateEval& eval,
                              const MetricsAggregator& aggregator) {
  SweepStats sweep_stats;
  eval.drop_cache();
  try {
    // Feasibility probe only: does the candidate still compose onto the
    // grown program and validate against the snapshot?
    Overlay probe(state.runner.base());
    probe.apply(compose(state.runner.state(), delta));
  } catch (const util::PreconditionError&) {
    // Duplicate pair, conflicting rewire, malformed endpoints: out of
    // the pool for good.
    eval.feasible = false;
    return sweep_stats;
  }
  MetricsAggregator::Scratch scratch;
  state.runner.evaluate_dirty_visit(
      delta, enumerate,
      [&](std::size_t position, const Overlay& overlay,
          SourcePathSet result) {
        eval.dirty_positions.push_back(position);
        eval.fresh_contribs.push_back(
            aggregator.contribution(overlay, result, scratch));
        eval.fresh.push_back(std::move(result));
      },
      &sweep_stats);
  eval.dirty_sources.reserve(eval.dirty_positions.size());
  for (const std::size_t position : eval.dirty_positions) {
    eval.dirty_sources.push_back(state.runner.sources()[position]);
  }
  std::sort(eval.dirty_sources.begin(), eval.dirty_sources.end());
  eval.valid = true;
  return sweep_stats;
}

/// Scores a candidate with a valid cached slice: a pure fold, no
/// enumeration.
[[nodiscard]] Scored score_candidate(const SearchState& state,
                                     const CandidateEval& eval,
                                     const UtilityWeights& weights) {
  Scored scored;
  scored.feasible = true;
  scored.total = fold_total(state, eval);
  scored.metrics = finalize(scored.total);
  scored.marginal = subtract(scored.metrics, state.metrics);
  scored.marginal_utility = operator_utility(scored.marginal, weights);
  return scored;
}

}  // namespace

Optimizer::Optimizer(const CompiledTopology& base, std::vector<AsId> sources,
                     const MetricsAggregator& aggregator,
                     OptimizerConfig config)
    : base_(&base),
      sources_(std::move(sources)),
      aggregator_(&aggregator),
      config_(config) {
  util::require(config_.beam_width >= 1,
                "Optimizer: beam_width must be at least 1");
}

OptimizerResult Optimizer::run(const std::vector<Delta>& candidates) const {
  OptimizerResult result;
  OptimizerStats stats;
  stats.primed_sources = sources_.size();

  SearchState root(
      SweepRunner<SourcePathSet>(*base_, sources_, config_.sweep));
  root.runner.prime(enumerate);
  const Overlay base_view(*base_);
  root.contribs.reserve(sources_.size());
  SourceContribution base_total;
  for (const SourcePathSet& sets : root.runner.baseline()) {
    root.contribs.push_back(aggregator_->contribution(base_view, sets));
    base_total += root.contribs.back();
  }
  root.metrics = finalize(base_total);
  root.evals.resize(candidates.size());
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    root.evals[c].touched = touched_ases(candidates[c]);
  }
  result.baseline = root.metrics;

  std::vector<SearchState> states;
  states.push_back(std::move(root));

  struct Proposal {
    std::size_t state = 0;
    std::size_t candidate = 0;
    Scored scored;
    double cumulative_utility = 0.0;
  };

  for (std::size_t round = 0; round < config_.max_steps; ++round) {
    const obs::TraceSpan round_span("optimizer.round");
    std::vector<Proposal> proposals;
    for (std::size_t s = 0; s < states.size(); ++s) {
      SearchState& state = states[s];
      // Evaluation phase: candidates without a valid cached slice, fanned
      // out in parallel - each worker pays only its own candidate's
      // invalidation ball against the shared read-only state cache.
      std::vector<std::size_t> pending;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (state.evals[c].feasible && !state.evals[c].valid) {
          pending.push_back(c);
        }
      }
      const std::vector<SweepStats> eval_stats = paths::map_indices(
          pending.size(), config_.sweep.threads,
          [&](std::size_t k) {
            const std::size_t c = pending[k];
            return evaluate_candidate(state, candidates[c], state.evals[c],
                                      *aggregator_);
          },
          /*min_parallel=*/2);
      for (const SweepStats& sweep_stats : eval_stats) {
        stats.recomputed_sources += sweep_stats.recomputed_sources;
      }

      // Scoring fold, serial and in candidate order (deterministic).
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const CandidateEval& eval = state.evals[c];
        if (!eval.feasible) {
          continue;
        }
        ++stats.scored_candidates;
        if (!std::binary_search(pending.begin(), pending.end(), c)) {
          ++stats.reused_evaluations;
        }
        Scored scored = score_candidate(state, eval, config_.weights);
        if (scored.marginal_utility <= config_.min_marginal_utility) {
          continue;
        }
        Proposal proposal;
        proposal.state = s;
        proposal.candidate = c;
        proposal.cumulative_utility = operator_utility(
            subtract(scored.metrics, result.baseline), config_.weights);
        proposal.scored = std::move(scored);
        proposals.push_back(std::move(proposal));
      }
    }
    if (proposals.empty()) {
      break;
    }
    std::sort(proposals.begin(), proposals.end(),
              [](const Proposal& a, const Proposal& b) {
                if (a.cumulative_utility != b.cumulative_utility) {
                  return a.cumulative_utility > b.cumulative_utility;
                }
                if (a.state != b.state) {
                  return a.state < b.state;
                }
                return a.candidate < b.candidate;
              });
    if (proposals.size() > config_.beam_width) {
      proposals.resize(config_.beam_width);
    }

    // Materialize the next beam. States are copied (the last take moves);
    // each child then commits its proposal's candidate.
    std::vector<SearchState> next_states;
    next_states.reserve(proposals.size());
    std::vector<std::size_t> remaining_uses(states.size(), 0);
    for (const Proposal& proposal : proposals) {
      ++remaining_uses[proposal.state];
    }
    for (const Proposal& proposal : proposals) {
      SearchState child = (--remaining_uses[proposal.state] == 0)
                              ? std::move(states[proposal.state])
                              : states[proposal.state];
      const Delta& delta = candidates[proposal.candidate];

      // The winner's just-scored slice is exactly what a rebase would
      // recompute (same seeds, radius, and composed overlay): commit by
      // adopting it - path sets into the runner's cache, contributions
      // into the state's - instead of enumerating the ball a second
      // time.
      CandidateEval& winner = child.evals[proposal.candidate];
      child.runner.rebase_adopted(delta, winner.dirty_positions,
                                  std::move(winner.fresh));
      child.program.push(delta);
      for (std::size_t k = 0; k < winner.dirty_positions.size(); ++k) {
        child.contribs[winner.dirty_positions[k]] = winner.fresh_contribs[k];
      }
      child.metrics = proposal.scored.metrics;
      child.cumulative_utility = proposal.cumulative_utility;

      PlannedStep step;
      step.candidate = proposal.candidate;
      step.delta = delta;
      step.marginal = proposal.scored.marginal;
      step.marginal_utility = proposal.scored.marginal_utility;
      step.cumulative_utility = proposal.cumulative_utility;
      child.steps.push_back(std::move(step));

      winner.feasible = false;
      winner.drop_cache();
      if (config_.share_recomputes) {
        Overlay state_overlay(*base_);
        state_overlay.apply(child.runner.state());
        const ContaminationBalls contaminated = contamination_balls(
            state_overlay, candidates, delta, config_.sweep.dirty_radius);
        for (CandidateEval& eval : child.evals) {
          if (!eval.valid) {
            continue;
          }
          const bool hit =
              std::any_of(eval.touched.begin(), eval.touched.end(),
                          [&](AsId as) {
                            return sorted_contains(
                                contaminated.touched_probe, as);
                          }) ||
              std::any_of(eval.dirty_sources.begin(),
                          eval.dirty_sources.end(), [&](AsId as) {
                            return sorted_contains(
                                contaminated.source_probe, as);
                          });
          if (hit) {
            eval.drop_cache();
          }
        }
      } else {
        for (CandidateEval& eval : child.evals) {
          eval.drop_cache();
        }
      }
      next_states.push_back(std::move(child));
    }
    states = std::move(next_states);
  }

  // Best surviving partial program; ties favor the earliest (greedy has
  // exactly one state throughout).
  std::size_t best = 0;
  for (std::size_t s = 1; s < states.size(); ++s) {
    if (states[s].cumulative_utility > states[best].cumulative_utility) {
      best = s;
    }
  }
  SearchState& chosen = states[best];
  result.program = std::move(chosen.program);
  result.steps = std::move(chosen.steps);
  result.final_metrics = chosen.metrics;
  result.stats = stats;
  return result;
}

}  // namespace panagree::scenario
