#include <gtest/gtest.h>

#include "panagree/bgp/async.hpp"
#include "panagree/bgp/gadgets.hpp"
#include "panagree/bgp/policy.hpp"
#include "panagree/bgp/simulator.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::bgp {
namespace {

TEST(AsyncSpvp, GoodGadgetConvergesToTheStableState) {
  const auto result = run_async(make_good_gadget());
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(is_stable(make_good_gadget(), result.assignment));
  EXPECT_GT(result.messages, 0u);
  EXPECT_GT(result.sim_time_s, 0.0);
}

TEST(AsyncSpvp, BadGadgetChurnsUntilTheBudget) {
  AsyncSpvpParams params;
  params.max_messages = 20000;
  const auto result = run_async(make_bad_gadget(), params);
  EXPECT_FALSE(result.converged);
  EXPECT_GE(result.messages, params.max_messages - 8);  // in-flight slack
}

TEST(AsyncSpvp, DisagreeLandsInEitherStateDependingOnTiming) {
  const auto report = check_async_safety(make_disagree(), 40, 11);
  EXPECT_TRUE(report.always_converged);
  EXPECT_EQ(report.distinct_outcomes, 2u);
}

TEST(AsyncSpvp, Fig1WedgieUnderMessageTiming) {
  const auto t = topology::make_fig1();
  const auto report = check_async_safety(make_fig1_disagree(t), 40, 21);
  EXPECT_TRUE(report.always_converged);
  EXPECT_EQ(report.distinct_outcomes, 2u);
}

TEST(AsyncSpvp, Fig1BadGadgetDiverges) {
  const auto t = topology::make_fig1();
  AsyncSpvpParams params;
  params.max_messages = 20000;
  const auto result = run_async(make_fig1_bad_gadget(t), params);
  EXPECT_FALSE(result.converged);
}

TEST(AsyncSpvp, RejectsBadParameters) {
  AsyncSpvpParams params;
  params.min_delay_s = 0.0;
  EXPECT_THROW((void)run_async(make_disagree(), params),
               util::PreconditionError);
  params.min_delay_s = 0.05;
  params.max_delay_s = 0.01;
  EXPECT_THROW((void)run_async(make_disagree(), params),
               util::PreconditionError);
}

TEST(AsyncSpvp, AgreesWithSynchronousOnSafeInstances) {
  const auto t = topology::make_fig1();
  for (const topology::AsId dest : {t.A, t.B, t.I, t.H}) {
    const SppInstance spp = make_gao_rexford_spp(t.graph, dest);
    const auto sync = run_synchronous(spp);
    const auto async = run_async(spp);
    ASSERT_EQ(sync.outcome, Outcome::kConverged);
    ASSERT_TRUE(async.converged) << "destination " << dest;
    // Gao-Rexford instances have a unique stable state: both protocols must
    // land on it.
    EXPECT_EQ(sync.assignment, async.assignment) << "destination " << dest;
  }
}

class AsyncGaoRexfordSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsyncGaoRexfordSweep, RandomTopologiesConvergeUnderMessageTiming) {
  topology::GeneratorParams params;
  params.num_ases = 25;
  params.tier1_count = 3;
  params.tier2_fraction = 0.3;
  params.seed = GetParam();
  const auto topo = topology::generate_internet(params);
  const topology::AsId dest =
      static_cast<topology::AsId>(GetParam() % topo.graph.num_ases());
  const SppInstance spp =
      make_gao_rexford_spp(topo.graph, dest, {.max_path_length = 5});
  AsyncSpvpParams async_params;
  async_params.seed = GetParam() * 3 + 1;
  const auto result = run_async(spp, async_params);
  EXPECT_TRUE(result.converged);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncGaoRexfordSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace panagree::bgp
