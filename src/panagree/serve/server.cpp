#include "panagree/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <utility>

#include "panagree/obs/metrics.hpp"

namespace panagree::serve {

namespace {

// Server-level metrics: connection/queue behavior (request-level
// accounting lives in QueryEngine::handle_line, shared with --direct).
struct ServerMetrics {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& accepts = reg.counter("server.accepts");
  obs::Counter& backpressure_waits = reg.counter("server.backpressure_waits");
  obs::Counter& send_drops = reg.counter("server.send_drops");
  obs::Counter& oversize_drops = reg.counter("server.oversize_drops");
  obs::Gauge& queue_depth = reg.gauge("server.queue_depth");
  obs::Gauge& queue_depth_hwm = reg.gauge("server.queue_depth_hwm");
};

[[nodiscard]] ServerMetrics& server_metrics() {
  static ServerMetrics metrics;
  return metrics;
}

/// A request line longer than this is rejected and its connection
/// dropped: the protocol's objects are small, so an unbounded line is a
/// broken or hostile client, not a big request.
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// Per-send() blocking bound (SO_SNDTIMEO): a client that stops reading
/// its responses costs a worker at most this long per write attempt
/// before the connection is dropped, so a wedged client can delay the
/// graceful drain but never hang it.
constexpr time_t kSendTimeoutSeconds = 30;

[[noreturn]] void fail(const char* what) {
  throw ServeError(std::string("serve: ") + what + ": " +
                   std::strerror(errno));
}

/// False when the peer is gone or stopped reading (send timeout): the
/// caller drops the connection and the drain continues for the others.
/// EINTR retries: panagree-serve's signal handlers run without
/// SA_RESTART, and a SIGTERM landing on a worker mid-send must not
/// truncate the in-flight response (the drain guarantee).
[[nodiscard]] bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the server.
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Connection {
  explicit Connection(int descriptor) : fd(descriptor) {}
  ~Connection() {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd = -1;
  /// Serializes response writes from concurrent workers.
  std::mutex write_mutex;
};

struct Server::ReaderSlot {
  std::shared_ptr<Connection> conn;
  std::thread thread;
  /// Set by the reader as its last action; the accept loop joins and
  /// erases done slots, so disconnected clients do not accumulate fds
  /// and unjoined threads for the daemon's lifetime.
  std::atomic<bool> done{false};
};

Server::Server(const QueryEngine& engine, ServerConfig config)
    : engine_(&engine), config_(config) {
  util::require(config_.worker_threads > 0,
                "Server: need at least one worker thread");
  util::require(config_.max_queue > 0, "Server: need a non-empty queue");
}

Server::~Server() { stop(); }

void Server::start() {
  util::require(!running_, "Server: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    fail("socket");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  stopping_ = false;
  draining_ = false;
  workers_.reserve(config_.worker_threads);
  try {
    for (std::size_t i = 0; i < config_.worker_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    // Spawned last: on a throw above there is no accept thread to stop.
    accept_thread_ = std::thread([this] { accept_loop(); });
  } catch (...) {
    // Thread spawn failed (resource pressure): release the workers that
    // did start and surface the error instead of terminating on a
    // joinable-thread destructor.
    {
      const std::lock_guard<std::mutex> lock(queue_mutex_);
      draining_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& worker : workers_) {
      worker.join();
    }
    workers_.clear();
    draining_ = false;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw;
  }
  running_ = true;
}

void Server::stop() {
  if (!running_) {
    return;
  }
  stopping_ = true;
  // Unblock accept(); the loop exits on the resulting error. After this
  // join no new reader slots can appear.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  // Shut only the read half: pending responses must still flush.
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const std::unique_ptr<ReaderSlot>& slot : slots_) {
      ::shutdown(slot->conn->fd, SHUT_RD);
    }
  }
  // Readers blocked on a full queue release on stopping_ (the queue may
  // overshoot its bound by at most one line per reader during the drain).
  space_cv_.notify_all();
  for (const std::unique_ptr<ReaderSlot>& slot : slots_) {
    slot->thread.join();
  }
  // Every request line is enqueued; let the workers drain the queue.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  slots_.clear();  // closes the remaining descriptors
  ::close(listen_fd_);
  listen_fd_ = -1;
  running_ = false;
}

void Server::reap_finished_readers() {
  std::vector<std::unique_ptr<ReaderSlot>> finished;
  {
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    const auto live = std::partition(
        slots_.begin(), slots_.end(),
        [](const std::unique_ptr<ReaderSlot>& slot) {
          return !slot->done.load(std::memory_order_acquire);
        });
    for (auto it = live; it != slots_.end(); ++it) {
      finished.push_back(std::move(*it));
    }
    slots_.erase(live, slots_.end());
  }
  for (const std::unique_ptr<ReaderSlot>& slot : finished) {
    slot->thread.join();  // done is the reader's last store: no wait
  }
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) {
        return;
      }
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      if (errno == EBADF || errno == EINVAL) {
        return;  // listening socket gone; drain what we have
      }
      // Everything else (EMFILE/ENFILE fd pressure, ENOBUFS/ENOMEM,
      // network errnos accept(2) says to retry) must not kill the
      // accept loop silently: say so, shed load briefly, keep going.
      std::cerr << "[serve] accept: " << std::strerror(errno)
                << "; retrying\n";
      reap_finished_readers();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (stopping_) {
      ::close(fd);
      return;
    }
    server_metrics().accepts.increment();
    // Bound how long a worker can block writing to a client that
    // stopped reading (see kSendTimeoutSeconds).
    const timeval timeout{.tv_sec = kSendTimeoutSeconds, .tv_usec = 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    reap_finished_readers();
    auto slot = std::make_unique<ReaderSlot>();
    slot->conn = std::make_shared<Connection>(fd);
    ReaderSlot* raw = slot.get();
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    slots_.push_back(std::move(slot));
    raw->thread = std::thread([this, raw] { reader_loop(raw); });
  }
}

void Server::reader_loop(ReaderSlot* slot) {
  std::shared_ptr<Connection> conn = slot->conn;
  std::string buffer;
  char chunk[4096];
  bool dropped = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;  // a signal mid-read is not a disconnect
    }
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t begin = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', begin);
      if (newline == std::string::npos) {
        break;
      }
      std::string line = buffer.substr(begin, newline - begin);
      begin = newline + 1;
      if (!line.empty() && line != "\r") {
        enqueue(WorkItem{conn, std::move(line), stage_now_ns()});
      }
    }
    buffer.erase(0, begin);
    if (buffer.size() > kMaxLineBytes) {
      server_metrics().oversize_drops.increment();
      std::string out;
      append_error_response(out, 0, "request line too long");
      const std::lock_guard<std::mutex> lock(conn->write_mutex);
      (void)send_all(conn->fd, out);
      ::shutdown(conn->fd, SHUT_RD);
      dropped = true;
      break;
    }
  }
  // NDJSON convenience: serve a trailing request the client forgot to
  // newline-terminate before closing its write half.
  if (!dropped && !buffer.empty() && buffer != "\r") {
    enqueue(WorkItem{std::move(conn), std::move(buffer), stage_now_ns()});
  }
  // Last store: the accept loop joins and frees done slots.
  slot->done.store(true, std::memory_order_release);
}

void Server::enqueue(WorkItem item) {
  ServerMetrics& metrics = server_metrics();
  std::unique_lock<std::mutex> lock(queue_mutex_);
  if (queue_.size() >= config_.max_queue &&
      !stopping_.load(std::memory_order_relaxed)) {
    // The queue bound is backpressure, not a drop: the reader (and with
    // it the client's TCP window) stalls until a worker makes room.
    metrics.backpressure_waits.increment();
  }
  space_cv_.wait(lock, [this] {
    return queue_.size() < config_.max_queue ||
           stopping_.load(std::memory_order_relaxed);
  });
  queue_.push_back(std::move(item));
  const auto depth = static_cast<std::int64_t>(queue_.size());
  lock.unlock();
  metrics.queue_depth.set(depth);
  metrics.queue_depth_hwm.update_max(depth);
  queue_cv_.notify_one();
}

void Server::worker_loop() {
  for (;;) {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait(lock, [this] { return !queue_.empty() || draining_; });
    if (queue_.empty()) {
      return;  // draining and nothing left
    }
    WorkItem item = std::move(queue_.front());
    queue_.pop_front();
    server_metrics().queue_depth.set(
        static_cast<std::int64_t>(queue_.size()));
    lock.unlock();
    space_cv_.notify_one();

    std::string out;
    RequestStages stages;
    stages.enqueue_ns = item.enqueue_ns;
    engine_->handle_line(item.line, out, &stages);
    {
      const std::lock_guard<std::mutex> write(item.conn->write_mutex);
      const std::uint64_t send_start_ns = stage_now_ns();
      if (!send_all(item.conn->fd, out)) {
        // Peer gone or not reading (send timeout): drop the connection
        // so its reader exits and later responses fail fast instead of
        // blocking more workers.
        server_metrics().send_drops.increment();
        ::shutdown(item.conn->fd, SHUT_RDWR);
      }
      stages.send_ns = stage_now_ns() - send_start_ns;
    }
    handled_.fetch_add(1, std::memory_order_relaxed);
    // Observation completes only after the response bytes are on the
    // socket: the send stage is real, and a slowlog request can never
    // observe itself.
    finish_request_observation(stages);
  }
}

}  // namespace panagree::serve
