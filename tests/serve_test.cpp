// Serving layer tests: wire protocol parsing/serialization, QueryEngine
// semantics (cache-served == freshly enumerated, whatif == full
// recompute, rebase == recompiled state), and the tentpole property -
// server responses byte-identical to direct library calls across request
// interleavings at 1, 2, and 8 worker threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "panagree/diversity/report.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/obs/build_info.hpp"
#include "panagree/obs/slowlog.hpp"
#include "panagree/obs/trace.hpp"
#include "panagree/serve/client.hpp"
#include "panagree/serve/server.hpp"
#include "panagree/serve/wire.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/json.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::serve {
namespace {

using topology::AsId;

// ------------------------------------------------------------------ wire

TEST(Wire, ParsesPathsRequest) {
  const Request request =
      parse_request(R"({"v":1,"id":7,"kind":"paths","source":42})");
  EXPECT_EQ(request.id, 7u);
  EXPECT_EQ(request.kind, RequestKind::kPaths);
  EXPECT_EQ(request.source, 42u);
}

TEST(Wire, ParsesWhatIfRequest) {
  const Request request = parse_request(
      R"({"v":1,"id":9,"kind":"whatif",)"
      R"("add":[{"a":1,"b":2,"type":"peering"},)"
      R"({"a":3,"b":4,"type":"transit"}],"remove":[[5,6]]})");
  EXPECT_EQ(request.kind, RequestKind::kWhatIf);
  ASSERT_EQ(request.delta.add.size(), 2u);
  EXPECT_EQ(request.delta.add[0].a, 1u);
  EXPECT_EQ(request.delta.add[0].type, topology::LinkType::kPeering);
  EXPECT_EQ(request.delta.add[1].type,
            topology::LinkType::kProviderCustomer);
  ASSERT_EQ(request.delta.remove.size(), 1u);
  EXPECT_EQ(request.delta.remove[0], (std::pair<AsId, AsId>{5, 6}));
}

TEST(Wire, TolerantOfWhitespaceAndTrailingNewline) {
  const Request request = parse_request(
      "  {\"v\": 1, \"id\": 3, \"kind\": \"diversity\", \"source\": 0}\r\n");
  EXPECT_EQ(request.kind, RequestKind::kDiversity);
}

TEST(Wire, RejectsMalformedRequests) {
  EXPECT_THROW(parse_request("not json"), ProtocolError);
  EXPECT_THROW(parse_request("{}"), ProtocolError);
  EXPECT_THROW(parse_request(R"({"v":2,"id":1,"kind":"paths","source":0})"),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"v":1,"id":1,"kind":"nope"})"),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"v":1,"id":1,"kind":"paths"})"),
               ProtocolError);
  EXPECT_THROW(parse_request(R"({"v":1,"id":1,"kind":"whatif"})"),
               ProtocolError);
  EXPECT_THROW(
      parse_request(R"({"v":1,"id":1,"kind":"paths","source":-3})"),
      ProtocolError);
}

TEST(Wire, ErrorIdRecoveredFromFailedRequests) {
  std::uint64_t id = 0;
  EXPECT_THROW(parse_request(R"({"v":1,"id":77,"kind":"nope"})", &id),
               ProtocolError);
  EXPECT_EQ(id, 77u);
}

TEST(Wire, ResponsesAreSingleTerminatedLines) {
  std::string out;
  append_error_response(out, 5, "bad \"quote\"\n");
  EXPECT_EQ(out,
            "{\"v\":1,\"id\":5,\"ok\":false,"
            "\"error\":\"bad \\\"quote\\\"\\n\"}\n");
}

TEST(Wire, ParsesStatsRequest) {
  const Request request =
      parse_request(R"({"v":1,"id":11,"kind":"stats"})");
  EXPECT_EQ(request.id, 11u);
  EXPECT_EQ(request.kind, RequestKind::kStats);
}

TEST(Wire, StatsResponseIsByteStableAndRoundTrips) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"a.counter", 3});
  snap.counters.push_back({"b.counter", 0});
  snap.gauges.push_back({"a.gauge", -12});
  obs::HistogramSample hist;
  hist.name = "a.hist";
  hist.count = 4;
  hist.sum = 90;
  hist.buckets = {{1, 1}, {5, 3}};
  snap.histograms.push_back(hist);

  std::string out;
  append_stats_response(out, 42, "v1.2-3-gabc", 7, snap);
  // The exposition is a byte-stable contract: fixed field order, names
  // sorted, integers via to_chars - scrapes diff cleanly across runs.
  EXPECT_EQ(out,
            "{\"v\":1,\"id\":42,\"ok\":true,\"kind\":\"stats\","
            "\"build\":\"v1.2-3-gabc\",\"epoch\":7,"
            "\"counters\":{\"a.counter\":3,\"b.counter\":0},"
            "\"gauges\":{\"a.gauge\":-12},"
            "\"histograms\":{\"a.hist\":{\"count\":4,\"sum\":90,"
            "\"buckets\":[[1,1],[5,3]]}}}\n");

  const StatsResult parsed = parse_stats_response(out);
  EXPECT_EQ(parsed.id, 42u);
  EXPECT_EQ(parsed.build, "v1.2-3-gabc");
  EXPECT_EQ(parsed.epoch, 7u);
  EXPECT_EQ(parsed.metrics, snap);

  // Round-trip byte-stability: re-serializing the parsed snapshot
  // reproduces the original line exactly.
  std::string again;
  append_stats_response(again, 42, parsed.build, parsed.epoch,
                        parsed.metrics);
  EXPECT_EQ(again, out);
}

TEST(Wire, ParsesSlowlogRequest) {
  const Request request =
      parse_request(R"({"v":1,"id":13,"kind":"slowlog"})");
  EXPECT_EQ(request.id, 13u);
  EXPECT_EQ(request.kind, RequestKind::kSlowLog);
}

TEST(Wire, SlowKindNamesRoundTrip) {
  for (const std::uint64_t code : {0u, 1u, 2u, 3u, 4u, 5u}) {
    EXPECT_EQ(slow_kind_code(slow_kind_name(code)), code);
  }
  EXPECT_EQ(slow_kind_name(static_cast<std::uint64_t>(RequestKind::kPaths)),
            "paths");
  EXPECT_EQ(slow_kind_name(kSlowKindError), "error");
  // Out-of-range codes clamp instead of reading past the name table.
  EXPECT_EQ(slow_kind_name(kSlowKindUnknown), "unknown");
  EXPECT_EQ(slow_kind_name(999), "unknown");
  EXPECT_THROW((void)slow_kind_code("nope"), ProtocolError);
}

TEST(Wire, SlowlogResponseIsByteStableAndRoundTrips) {
  obs::SlowQueryRecord first;
  first.wire_id = 9;
  first.kind = static_cast<std::uint64_t>(RequestKind::kWhatIf);
  first.source = 0;
  first.delta_links = 2;
  first.wall_ns = 500;
  first.queue_ns = 50;
  first.parse_ns = 100;
  first.engine_ns = 200;
  first.serialize_ns = 100;
  first.send_ns = 50;
  obs::SlowQueryRecord second;
  second.wire_id = 4;
  second.kind = static_cast<std::uint64_t>(RequestKind::kPaths);
  second.source = 17;
  second.wall_ns = 300;
  second.queue_ns = 0;
  second.parse_ns = 60;
  second.engine_ns = 180;
  second.serialize_ns = 40;
  second.send_ns = 20;
  const std::vector<obs::SlowQueryRecord> entries{first, second};

  std::string out;
  append_slowlog_response(out, 33, 250, entries);
  // Byte-stable contract: fixed field order, integers via to_chars.
  EXPECT_EQ(
      out,
      "{\"v\":1,\"id\":33,\"ok\":true,\"kind\":\"slowlog\","
      "\"threshold_ns\":250,\"entries\":["
      "{\"wire_id\":9,\"kind\":\"whatif\",\"source\":0,\"delta_links\":2,"
      "\"wall_ns\":500,\"queue_ns\":50,\"parse_ns\":100,\"engine_ns\":200,"
      "\"serialize_ns\":100,\"send_ns\":50},"
      "{\"wire_id\":4,\"kind\":\"paths\",\"source\":17,\"delta_links\":0,"
      "\"wall_ns\":300,\"queue_ns\":0,\"parse_ns\":60,\"engine_ns\":180,"
      "\"serialize_ns\":40,\"send_ns\":20}]}\n");

  const SlowLogResult parsed = parse_slowlog_response(out);
  EXPECT_EQ(parsed.id, 33u);
  EXPECT_EQ(parsed.threshold_ns, 250u);
  EXPECT_EQ(parsed.entries, entries);

  // Round-trip byte-stability: re-serializing the parsed entries
  // reproduces the original line exactly.
  std::string again;
  append_slowlog_response(again, parsed.id, parsed.threshold_ns,
                          parsed.entries);
  EXPECT_EQ(again, out);
}

TEST(Wire, SlowlogResponseParserRejectsGarbage) {
  EXPECT_THROW(parse_slowlog_response("not json"), ProtocolError);
  EXPECT_THROW(
      parse_slowlog_response(
          R"({"v":1,"id":1,"ok":true,"kind":"stats","entries":[]})"),
      ProtocolError);
  EXPECT_THROW(parse_slowlog_response(
                   R"({"v":1,"id":1,"ok":false,"error":"boom"})"),
               ProtocolError);
}

TEST(Wire, StatsResponseParserRejectsGarbage) {
  EXPECT_THROW(parse_stats_response("not json"), ProtocolError);
  EXPECT_THROW(
      parse_stats_response(
          R"({"v":1,"id":1,"ok":true,"kind":"paths","epoch":0})"),
      ProtocolError);
  EXPECT_THROW(parse_stats_response(
                   R"({"v":1,"id":1,"ok":false,"error":"boom"})"),
               ProtocolError);
}

// ----------------------------------------------------------- query engine

/// Shared fixture: a small synthetic Internet, its economy, and a primed
/// engine over a 40-source sample. Expensive, so built once.
class ServeFixture {
 public:
  ServeFixture() {
    topology::GeneratorParams params;
    params.num_ases = 250;
    params.tier1_count = 5;
    params.seed = 20260801;
    topo_ = topology::generate_internet(params);
    compiled_.emplace(topo_.graph);
    economy_.emplace(econ::make_default_economy(topo_.graph));
    sources_ = diversity::sample_sources(topo_.graph, 40, 7);
    aggregator_.emplace(*compiled_, &topo_.world, &*economy_);
  }

  [[nodiscard]] std::unique_ptr<QueryEngine> make_engine(
      EngineConfig config = {}) const {
    auto engine = std::make_unique<QueryEngine>(
        *compiled_, &topo_.world, &*economy_, sources_, config);
    engine->prime();
    return engine;
  }

  [[nodiscard]] std::vector<scenario::Delta> candidates(
      std::size_t count) const {
    return scenario::candidate_peering_deltas(*compiled_, count, 4242);
  }

  topology::GeneratedTopology topo_;
  std::optional<topology::CompiledTopology> compiled_;
  std::optional<econ::Economy> economy_;
  std::vector<AsId> sources_;
  std::optional<scenario::MetricsAggregator> aggregator_;
};

const ServeFixture& fixture() {
  static const ServeFixture fixture;
  return fixture;
}

scenario::SourcePathSet direct_enumeration(const ServeFixture& f, AsId src) {
  const scenario::Overlay base(*f.compiled_);
  return scenario::enumerate_length3(base, src);
}

TEST(QueryEngine, CachedAndColdPathsMatchDirectEnumeration) {
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  // One sampled (cache-served) and one unsampled (cold) source.
  std::vector<AsId> probes{f.sources_.front()};
  for (AsId as = 0; as < f.topo_.graph.num_ases(); ++as) {
    if (std::find(f.sources_.begin(), f.sources_.end(), as) ==
        f.sources_.end()) {
      probes.push_back(as);
      break;
    }
  }
  for (const AsId src : probes) {
    const scenario::SourcePathSet expected = direct_enumeration(f, src);
    bool visited = false;
    engine->paths(src, [&](std::span<const diversity::Length3Path> grc,
                           std::span<const diversity::Length3Path> ma) {
      visited = true;
      ASSERT_TRUE(std::ranges::equal(grc, expected.grc()));
      ASSERT_TRUE(std::ranges::equal(ma, expected.ma()));
    });
    EXPECT_TRUE(visited);
  }
  EXPECT_THROW(
      engine->paths(static_cast<AsId>(f.topo_.graph.num_ases()),
                    [](auto, auto) {}),
      util::PreconditionError);
}

TEST(QueryEngine, DiversityMatchesAggregatorContribution) {
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  const AsId src = f.sources_[3];
  const scenario::Overlay base(*f.compiled_);
  const scenario::SourceContribution expected =
      f.aggregator_->contribution(base, direct_enumeration(f, src));
  const DiversityResult result = engine->diversity(src);
  EXPECT_EQ(result.grc_paths, expected.grc_paths);
  EXPECT_EQ(result.ma_paths, expected.ma_paths);
  EXPECT_EQ(result.grc_pairs, expected.grc_pairs);
  EXPECT_EQ(result.ma_extra_pairs, expected.ma_extra_pairs);
  EXPECT_DOUBLE_EQ(
      result.mean_best_geodistance_km,
      expected.km_pairs > 0
          ? expected.km_sum / static_cast<double>(expected.km_pairs)
          : 0.0);
  EXPECT_DOUBLE_EQ(result.transit_fees, expected.transit_fees);
}

/// The whatif score recomputed the slow way: a fresh runner primed from
/// scratch, full evaluate over the delta, aggregate, subtract.
WhatIfResult full_recompute_whatif(const ServeFixture& f,
                                   const scenario::Delta& delta) {
  scenario::SweepConfig config;
  config.dirty_radius = scenario::kLength3DirtyRadius;
  scenario::SweepRunner<scenario::SourcePathSet> runner(*f.compiled_,
                                                        f.sources_, config);
  const auto enumerate = [](const scenario::Overlay& overlay, AsId src) {
    return scenario::enumerate_length3(overlay, src);
  };
  runner.prime(enumerate);
  const scenario::Overlay base(*f.compiled_);
  const scenario::ScenarioMetrics baseline =
      f.aggregator_->aggregate(base, f.sources_, runner.baseline());
  scenario::Overlay overlay(*f.compiled_);
  overlay.apply(delta);
  scenario::SweepStats stats;
  const std::vector<const scenario::SourcePathSet*> results =
      runner.evaluate_refs(delta, enumerate, &stats);
  const scenario::ScenarioMetrics metrics =
      f.aggregator_->aggregate(overlay, f.sources_, results);
  const scenario::MetricsDelta marginal =
      scenario::subtract(metrics, baseline);
  WhatIfResult expected;
  expected.paths_delta = marginal.paths;
  expected.pairs_delta = marginal.pairs;
  expected.mean_km_delta = marginal.mean_best_geodistance_km;
  expected.fees_delta = marginal.transit_fees;
  expected.utility = scenario::operator_utility(marginal);
  expected.recomputed_sources = stats.recomputed_sources;
  expected.cached_sources = stats.cached_sources;
  expected.ball_size = stats.ball_size;
  return expected;
}

TEST(QueryEngine, WhatIfMatchesFullRecompute) {
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  for (const scenario::Delta& delta : f.candidates(8)) {
    const WhatIfResult expected = full_recompute_whatif(f, delta);
    EXPECT_EQ(engine->whatif(delta), expected);
    // Memoized repeat must serve identical bytes.
    EXPECT_EQ(engine->whatif(delta), expected);
    engine->flush_whatif_memo();
    EXPECT_EQ(engine->whatif(delta), expected);
  }
}

TEST(QueryEngine, WhatIfRejectsInvalidDeltas) {
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  scenario::Delta bogus;
  bogus.remove.emplace_back(
      static_cast<AsId>(f.topo_.graph.num_ases() + 1),
      static_cast<AsId>(f.topo_.graph.num_ases() + 2));
  EXPECT_THROW((void)engine->whatif(bogus), util::PreconditionError);
  // And again through the memo (the stored exception is shared).
  EXPECT_THROW((void)engine->whatif(bogus), util::PreconditionError);
}

TEST(QueryEngine, RebaseFoldsStepAndBumpsEpoch) {
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  const std::vector<scenario::Delta> candidates = f.candidates(3);
  ASSERT_GE(candidates.size(), 2u);
  const scenario::Delta step = candidates[0];
  const scenario::Delta probe = candidates[1];

  // Expected post-rebase state: a fresh runner rebased the library way.
  scenario::SweepConfig config;
  config.dirty_radius = scenario::kLength3DirtyRadius;
  scenario::SweepRunner<scenario::SourcePathSet> runner(*f.compiled_,
                                                        f.sources_, config);
  const auto enumerate = [](const scenario::Overlay& overlay, AsId src) {
    return scenario::enumerate_length3(overlay, src);
  };
  runner.prime(enumerate);
  runner.rebase(step, enumerate);

  const std::uint64_t epoch_before = engine->epoch();
  engine->rebase(step);
  EXPECT_EQ(engine->epoch(), epoch_before + 1);

  // Cached paths now reflect the rebased state for every source.
  for (std::size_t i = 0; i < f.sources_.size(); ++i) {
    engine->paths(f.sources_[i],
                  [&](std::span<const diversity::Length3Path> grc,
                      std::span<const diversity::Length3Path> ma) {
                    ASSERT_TRUE(std::ranges::equal(
                        grc, runner.baseline()[i].grc()));
                    ASSERT_TRUE(
                        std::ranges::equal(ma, runner.baseline()[i].ma()));
                  });
  }

  // And whatif scores measure against the rebased state.
  scenario::Overlay state_overlay(*f.compiled_);
  state_overlay.apply(runner.state());
  const scenario::ScenarioMetrics state_metrics = f.aggregator_->aggregate(
      state_overlay, f.sources_, runner.baseline());
  scenario::SweepStats stats;
  scenario::Overlay probe_overlay(*f.compiled_);
  probe_overlay.apply(scenario::compose(runner.state(), probe));
  const std::vector<const scenario::SourcePathSet*> results =
      runner.evaluate_refs(probe, enumerate, &stats);
  const scenario::MetricsDelta marginal = scenario::subtract(
      f.aggregator_->aggregate(probe_overlay, f.sources_, results),
      state_metrics);
  const WhatIfResult served = engine->whatif(probe);
  EXPECT_DOUBLE_EQ(served.utility, scenario::operator_utility(marginal));
  EXPECT_EQ(served.recomputed_sources, stats.recomputed_sources);
}

TEST(QueryEngine, StatsRequestServesLiveRegistrySnapshot) {
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();

  // Stats responses carry process-wide counters, so they are excluded
  // from byte-identity sessions - but one response must parse, describe
  // this engine's epoch/build, and (self-counting) include the stats
  // request that produced it.
  std::string out;
  engine->handle_line(R"({"v":1,"id":21,"kind":"stats"})", out);
  const StatsResult first = parse_stats_response(out);
  EXPECT_EQ(first.id, 21u);
  EXPECT_EQ(first.epoch, engine->epoch());
  EXPECT_EQ(first.build, obs::build_info().git_describe);
  std::uint64_t stats_count = 0;
  for (const obs::CounterSample& counter : first.metrics.counters) {
    if (counter.name == "serve.requests.stats") {
      stats_count = counter.value;
    }
  }
  EXPECT_GE(stats_count, 1u);

  // A second scrape sees a strictly larger stats-request counter.
  out.clear();
  engine->handle_line(R"({"v":1,"id":22,"kind":"stats"})", out);
  const StatsResult second = parse_stats_response(out);
  std::uint64_t stats_count_again = 0;
  for (const obs::CounterSample& counter : second.metrics.counters) {
    if (counter.name == "serve.requests.stats") {
      stats_count_again = counter.value;
    }
  }
  EXPECT_EQ(stats_count_again, stats_count + 1);
}

// ------------------------------------------------- server byte-identity

/// A deterministic mixed request script: all three kinds, cold and
/// cached sources, plus malformed lines the server must answer as
/// errors without dropping the connection.
std::vector<std::string> request_script(const ServeFixture& f,
                                        std::size_t count) {
  const std::vector<scenario::Delta> deltas = f.candidates(6);
  util::Rng rng(99);
  std::vector<std::string> lines;
  lines.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string id = std::to_string(i + 1);
    switch (rng.uniform_index(5)) {
      case 0:
        lines.push_back(
            R"({"v":1,"id":)" + id + R"(,"kind":"paths","source":)" +
            std::to_string(
                f.sources_[rng.uniform_index(f.sources_.size())]) +
            "}");
        break;
      case 1:
        lines.push_back(
            R"({"v":1,"id":)" + id + R"(,"kind":"diversity","source":)" +
            std::to_string(rng.uniform_index(f.topo_.graph.num_ases())) +
            "}");
        break;
      case 2: {
        const scenario::LinkChange& link =
            deltas[rng.uniform_index(deltas.size())].add.front();
        lines.push_back(R"({"v":1,"id":)" + id +
                        R"(,"kind":"whatif","add":[{"a":)" +
                        std::to_string(link.a) + R"(,"b":)" +
                        std::to_string(link.b) +
                        R"(,"type":"peering"}]})");
        break;
      }
      case 3:
        // Out-of-range source: a well-formed request the engine rejects.
        lines.push_back(R"({"v":1,"id":)" + id +
                        R"(,"kind":"paths","source":999999})");
        break;
      default:
        lines.push_back(R"({"v":1,"id":)" + id + R"(,"kind":"garbage"})");
    }
  }
  return lines;
}

/// The tentpole acceptance property: responses collected over the wire
/// are byte-identical to direct QueryEngine::handle_line calls, for
/// every worker-thread count and whatever interleaving concurrent client
/// connections produce.
TEST(Server, ResponsesByteIdenticalToDirectCallsAcrossThreadCounts) {
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  const std::vector<std::string> script = request_script(f, 60);

  std::vector<std::string> expected;
  expected.reserve(script.size());
  for (const std::string& line : script) {
    std::string out;
    engine->handle_line(line, out);
    expected.push_back(out);
  }
  std::vector<std::string> expected_sorted = expected;
  std::sort(expected_sorted.begin(), expected_sorted.end());

  for (const std::size_t workers : {1u, 2u, 8u}) {
    ServerConfig config;
    config.worker_threads = workers;
    Server server(*engine, config);
    server.start();

    // Three concurrent closed-loop clients interleaving disjoint slices.
    constexpr std::size_t kClients = 3;
    std::vector<std::vector<std::string>> collected(kClients);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        serve::ClientConnection client(server.port());
        for (std::size_t i = c; i < script.size(); i += kClients) {
          client.send_line(script[i]);
          collected[c].push_back(client.read_line());
        }
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
    // Closed-loop responses match their requests positionally.
    for (std::size_t c = 0; c < kClients; ++c) {
      std::size_t slot = 0;
      for (std::size_t i = c; i < script.size(); i += kClients) {
        EXPECT_EQ(collected[c][slot], expected[i])
            << "workers=" << workers << " request=" << script[i];
        ++slot;
      }
    }

    // One pipelined client: fire everything, then read; responses may
    // reorder across workers, so compare as sorted multisets.
    {
      serve::ClientConnection client(server.port());
      for (const std::string& line : script) {
        client.send_line(line);
      }
      std::vector<std::string> responses;
      for (std::size_t i = 0; i < script.size(); ++i) {
        responses.push_back(client.read_line());
      }
      std::sort(responses.begin(), responses.end());
      EXPECT_EQ(responses, expected_sorted) << "workers=" << workers;
    }

    server.stop();
    EXPECT_FALSE(server.running());
  }
}

TEST(Server, StopDrainsOutstandingRequests) {
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  Server server(*engine, {});
  server.start();

  serve::ClientConnection client(server.port());
  constexpr std::size_t kOutstanding = 16;
  for (std::size_t i = 0; i < kOutstanding; ++i) {
    client.send_line(R"({"v":1,"id":)" + std::to_string(i + 1) +
                     R"(,"kind":"paths","source":)" +
                     std::to_string(f.sources_[i % f.sources_.size()]) +
                     "}");
  }
  // Wait until every request has reached the server (loopback delivery
  // is asynchronous), then stop: the drain must flush all responses.
  for (int spins = 0; spins < 5000; ++spins) {
    if (server.handled_requests() >= kOutstanding) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.stop();
  std::size_t answered = 0;
  for (std::size_t i = 0; i < kOutstanding; ++i) {
    const std::string response = client.read_line();
    if (response.empty()) {
      break;
    }
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
    ++answered;
  }
  EXPECT_EQ(answered, kOutstanding);
}

// ------------------------------------------------ stage clock & slowlog

TEST(QueryEngine, HandleLineFillsStageClock) {
  if (!obs::enabled()) {
    GTEST_SKIP() << "stage clock compiles out under PANAGREE_OBS_OFF";
  }
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  const AsId cached = f.sources_.front();
  AsId cold = 0;
  while (std::find(f.sources_.begin(), f.sources_.end(), cold) !=
         f.sources_.end()) {
    ++cold;
  }

  const auto run = [&](const std::string& line) {
    RequestStages stages;
    stages.enqueue_ns = stage_now_ns();
    std::string out;
    engine->handle_line(line, out, &stages);
    if (stages.slow_kind == kSlowKindError) {
      ADD_FAILURE() << "request failed: " << line << " -> " << out;
    }
    // The stage-sum identity: attributed wall time is exactly the sum of
    // the five stages (send is the server's to fill; 0 here).
    EXPECT_EQ(stages.wall_ns(), stages.queue_ns() + stages.parse_ns +
                                    stages.engine_ns + stages.serialize_ns +
                                    stages.send_ns)
        << line;
    EXPECT_GT(stages.parse_ns, 0u) << line;
    EXPECT_EQ(stages.send_ns, 0u) << line;
    return stages;
  };

  const RequestStages cached_stages =
      run(R"({"v":1,"id":1,"kind":"paths","source":)" +
          std::to_string(cached) + "}");
  EXPECT_EQ(cached_stages.wire_id, 1u);
  EXPECT_EQ(cached_stages.slow_kind,
            static_cast<std::uint64_t>(RequestKind::kPaths));
  EXPECT_EQ(cached_stages.work, EngineWork::kCache);
  EXPECT_GT(cached_stages.serialize_ns, 0u);

  const RequestStages cold_stages =
      run(R"({"v":1,"id":2,"kind":"paths","source":)" +
          std::to_string(cold) + "}");
  EXPECT_EQ(cold_stages.work, EngineWork::kSweep);
  EXPECT_GT(cold_stages.engine_ns, 0u);

  const scenario::LinkChange link = f.candidates(1).front().add.front();
  const RequestStages whatif_stages =
      run(R"({"v":1,"id":3,"kind":"whatif","add":[{"a":)" +
          std::to_string(link.a) + R"(,"b":)" + std::to_string(link.b) +
          R"(,"type":"peering"}],"remove":[]})");
  EXPECT_EQ(whatif_stages.work, EngineWork::kSweep);
  EXPECT_EQ(whatif_stages.delta_links, 1u);
  EXPECT_GT(whatif_stages.engine_ns, 0u);

  const RequestStages stats_stages =
      run(R"({"v":1,"id":4,"kind":"stats"})");
  EXPECT_EQ(stats_stages.slow_kind,
            static_cast<std::uint64_t>(RequestKind::kStats));
  EXPECT_EQ(stats_stages.work, EngineWork::kNone);
  EXPECT_GT(stats_stages.serialize_ns, 0u);

  RequestStages error_stages;
  error_stages.enqueue_ns = stage_now_ns();
  {
    std::string out;
    engine->handle_line(R"({"v":1,"id":5,"kind":"garbage"})", out,
                        &error_stages);
  }
  EXPECT_EQ(error_stages.wall_ns(),
            error_stages.queue_ns() + error_stages.parse_ns +
                error_stages.engine_ns + error_stages.serialize_ns +
                error_stages.send_ns);
  EXPECT_GT(error_stages.parse_ns, 0u);
  EXPECT_EQ(error_stages.wire_id, 5u);
  EXPECT_EQ(error_stages.slow_kind, kSlowKindError);
  EXPECT_EQ(error_stages.work, EngineWork::kNone);
  EXPECT_EQ(error_stages.engine_ns, 0u);
}

TEST(Server, SlowlogCapturesEveryRequestWithStageBreakdown) {
  if (!obs::enabled()) {
    GTEST_SKIP() << "slowlog compiles out under PANAGREE_OBS_OFF";
  }
  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  obs::SlowQueryLog& log = obs::SlowQueryLog::global();
  log.set_threshold_ns(0);  // capture everything
  log.clear();

  // A scripted session over the wire; stop() drains and joins the
  // workers, so every request's observation (recorded after its bytes
  // hit the socket) is complete before the ring is inspected.
  {
    Server server(*engine, {});
    server.start();
    serve::ClientConnection client(server.port());
    client.send_line(R"({"v":1,"id":1,"kind":"paths","source":)" +
                     std::to_string(f.sources_.front()) + "}");
    (void)client.read_line();
    client.send_line(R"({"v":1,"id":2,"kind":"diversity","source":)" +
                     std::to_string(f.sources_.back()) + "}");
    (void)client.read_line();
    client.send_line(R"({"v":1,"id":3,"kind":"garbage"})");
    (void)client.read_line();
    server.stop();
  }

  const std::vector<obs::SlowQueryRecord> snap = log.snapshot();
  std::set<std::uint64_t> captured;
  for (const obs::SlowQueryRecord& rec : snap) {
    captured.insert(rec.wire_id);
    // The serve-side invariant the wire comment promises: stage ns sum
    // exactly to the recorded wall time.
    EXPECT_EQ(rec.wall_ns, rec.queue_ns + rec.parse_ns + rec.engine_ns +
                               rec.serialize_ns + rec.send_ns);
    EXPECT_GT(rec.wall_ns, 0u);
    EXPECT_GT(rec.send_ns, 0u);  // server-side send stage populated
  }
  EXPECT_TRUE(captured.contains(1));
  EXPECT_TRUE(captured.contains(2));
  EXPECT_TRUE(captured.contains(3));

  // The ring is served over the wire by the slowlog kind - and since
  // recording happens after the response bytes are sent, a slowlog
  // response never lists its own request.
  {
    Server server(*engine, {});
    server.start();
    serve::ClientConnection client(server.port());
    client.send_line(R"({"v":1,"id":777,"kind":"slowlog"})");
    const SlowLogResult served = parse_slowlog_response(client.read_line());
    EXPECT_EQ(served.id, 777u);
    EXPECT_EQ(served.threshold_ns, 0u);
    std::set<std::uint64_t> wire_ids;
    for (const obs::SlowQueryRecord& rec : served.entries) {
      wire_ids.insert(rec.wire_id);
    }
    EXPECT_TRUE(wire_ids.contains(1));
    EXPECT_FALSE(wire_ids.contains(777));
    // Entries arrive slowest-first (the deterministic snapshot order).
    for (std::size_t i = 1; i < served.entries.size(); ++i) {
      EXPECT_FALSE(slow_record_before(served.entries[i],
                                      served.entries[i - 1]));
    }
    server.stop();
  }
  log.set_threshold_ns(obs::kDefaultSlowThresholdNs);
  log.clear();
}

TEST(Server, TraceSpansFormARequestRootedTree) {
  if (!obs::enabled()) {
    GTEST_SKIP() << "tracing compiles out under PANAGREE_OBS_OFF";
  }
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "panagree_serve_span_tree.json";
  std::filesystem::remove(path);
  obs::trace_init(path.native());
  ASSERT_TRUE(obs::trace_enabled());

  const ServeFixture& f = fixture();
  const auto engine = f.make_engine();
  {
    Server server(*engine, {});
    server.start();
    serve::ClientConnection client(server.port());
    for (std::uint64_t id = 1; id <= 3; ++id) {
      client.send_line(R"({"v":1,"id":)" + std::to_string(id) +
                       R"(,"kind":"paths","source":)" +
                       std::to_string(f.sources_[id]) + "}");
      (void)client.read_line();
    }
    server.stop();  // joins workers: every span tree is recorded
  }
  obs::trace_flush();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const util::json::Value doc = util::json::parse(buffer.str());
  const util::json::Object& root =
      *std::get<std::unique_ptr<util::json::Object>>(doc.data);
  const util::json::Array& events =
      *std::get<std::unique_ptr<util::json::Array>>(
          root.at("traceEvents").data);

  const auto num = [](const util::json::Value& v) {
    if (const auto* u = std::get_if<std::uint64_t>(&v.data)) {
      return static_cast<double>(*u);
    }
    return std::get<double>(v.data);
  };
  std::set<std::uint64_t> root_ids;
  std::set<std::uint64_t> wire_ids;
  std::vector<std::uint64_t> stage_parents;
  for (const util::json::Value& event : events) {
    const util::json::Object& fields =
        *std::get<std::unique_ptr<util::json::Object>>(event.data);
    const std::string& name = std::get<std::string>(fields.at("name").data);
    const util::json::Object& args =
        *std::get<std::unique_ptr<util::json::Object>>(
            fields.at("args").data);
    if (name == "serve.request") {
      root_ids.insert(static_cast<std::uint64_t>(num(args.at("id"))));
      EXPECT_EQ(num(args.at("parent")), 0.0);  // requests are roots
      ASSERT_NE(args.find("wire_id"), args.end());
      wire_ids.insert(static_cast<std::uint64_t>(num(args.at("wire_id"))));
    } else if (name.rfind("serve.stage.", 0) == 0) {
      stage_parents.push_back(
          static_cast<std::uint64_t>(num(args.at("parent"))));
    }
  }
  EXPECT_EQ(root_ids.size(), 3u);
  EXPECT_EQ(wire_ids, (std::set<std::uint64_t>{1, 2, 3}));
  EXPECT_FALSE(stage_parents.empty());
  // The tree property: every stage span hangs off one of the request
  // roots - no orphans, no cross-request parents.
  for (const std::uint64_t parent : stage_parents) {
    EXPECT_TRUE(root_ids.contains(parent)) << parent;
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace panagree::serve
