// Read-only memory-mapped file, the zero-copy substrate of MappedSnapshot.
#pragma once

#include <cstddef>
#include <string>

namespace panagree::storage {

/// RAII wrapper around a read-only, private mmap of a whole file. Movable,
/// not copyable. An empty file maps to {nullptr, 0}.
class MmapFile {
 public:
  MmapFile() = default;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;
  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  ~MmapFile();

  /// Maps `path` read-only; throws SnapshotError on any I/O failure.
  [[nodiscard]] static MmapFile open(const std::string& path);

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace panagree::storage
