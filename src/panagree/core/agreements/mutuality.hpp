// Mutuality-based agreements (MAs, §III-B2 and §VI).
//
// The paper's §VI generation rule: "For every pair (A, B) of peers, we
// generate an MA in which A gives B access to all its providers and peers
// which are not customers of B, and vice versa."
#pragma once

#include "panagree/core/agreements/agreement.hpp"

namespace panagree::agreements {

/// Builds the §VI mutuality-based agreement for a peer pair (x, y).
/// Throws if x and y are not peers.
[[nodiscard]] Agreement make_mutuality_agreement(const Graph& graph, AsId x,
                                                 AsId y);

/// Number of destinations x would gain from an MA with its peer y (the
/// providers+peers of y that are neither x itself nor customers of x).
/// Used to rank candidate MAs (the "Top n" analysis of Figures 3-4) without
/// materializing the agreement.
[[nodiscard]] std::size_t ma_gain_for(const Graph& graph, AsId x, AsId y);

}  // namespace panagree::agreements
