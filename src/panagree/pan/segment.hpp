// Path segments: the control-plane artifacts of a SCION-like PAN.
//
// Beacons propagate from core (Tier-1) ASes down provider->customer links;
// the recorded AS sequences become up-segments (leaf's view) that end-hosts
// combine into end-to-end paths. Segments are direction-agnostic data; the
// same sequence serves as a down-segment when read core-first.
#pragma once

#include <cstdint>
#include <vector>

#include "panagree/topology/graph.hpp"

namespace panagree::pan {

using topology::AsId;

enum class SegmentType : std::uint8_t {
  kUp,    ///< leaf AS towards a core AS
  kDown,  ///< core AS towards a leaf AS
  kCore,  ///< between core ASes
};

/// A discovered path segment. `ases` is ordered core-first (the beacon's
/// propagation order); leaf() is the last element.
struct PathSegment {
  SegmentType type = SegmentType::kUp;
  std::vector<AsId> ases;

  [[nodiscard]] AsId core_end() const {
    PANAGREE_ASSERT(!ases.empty());
    return ases.front();
  }
  [[nodiscard]] AsId leaf_end() const {
    PANAGREE_ASSERT(!ases.empty());
    return ases.back();
  }
  [[nodiscard]] std::size_t length() const { return ases.size(); }

  friend bool operator==(const PathSegment&, const PathSegment&) = default;
};

}  // namespace panagree::pan
