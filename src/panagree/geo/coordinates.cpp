#include "panagree/geo/coordinates.hpp"

#include <cmath>
#include <numbers>

namespace panagree::geo {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
constexpr double kRadToDeg = 180.0 / std::numbers::pi;
}  // namespace

double great_circle_km(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlng = (b.lng_deg - a.lng_deg) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlng = std::sin(dlng / 2.0);
  const double h = sin_dlat * sin_dlat +
                   std::cos(lat1) * std::cos(lat2) * sin_dlng * sin_dlng;
  const double clamped = std::min(1.0, std::sqrt(h));
  return 2.0 * kEarthRadiusKm * std::asin(clamped);
}

LatLng spherical_centroid(std::span<const LatLng> points) {
  if (points.empty()) {
    return {};
  }
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  for (const LatLng& p : points) {
    const double lat = p.lat_deg * kDegToRad;
    const double lng = p.lng_deg * kDegToRad;
    x += std::cos(lat) * std::cos(lng);
    y += std::cos(lat) * std::sin(lng);
    z += std::sin(lat);
  }
  const auto n = static_cast<double>(points.size());
  x /= n;
  y /= n;
  z /= n;
  const double hyp = std::sqrt(x * x + y * y);
  if (hyp == 0.0 && z == 0.0) {
    return {};  // antipodal degenerate case; pick the origin
  }
  return LatLng{std::atan2(z, hyp) * kRadToDeg, std::atan2(y, x) * kRadToDeg};
}

bool is_valid(const LatLng& p) {
  return p.lat_deg >= -90.0 && p.lat_deg <= 90.0 && p.lng_deg >= -180.0 &&
         p.lng_deg <= 180.0 && std::isfinite(p.lat_deg) &&
         std::isfinite(p.lng_deg);
}

}  // namespace panagree::geo
