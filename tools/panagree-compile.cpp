// panagree-compile: turn a topology into a memory-mappable .pansnap
// snapshot - the one-time startup cost every later tool and bench skips.
//
//   panagree-compile <out.pansnap> [--caida FILE | --synthetic N]
//       [--seed S]
//
// Input selection mirrors bench_common: an explicit --caida/--synthetic
// flag wins; otherwise PANAGREE_CAIDA (or the synthetic generator at
// PANAGREE_ASES) decides, so `panagree-compile out.pansnap` freezes
// exactly the topology the benches would build themselves. The graph is
// embedded in the synthetic world (tiers, PoPs, facilities), degree-gravity
// capacities are assigned, the CSR snapshot is compiled, and everything is
// written as one versioned binary file. Consumers mmap it back with
// --snapshot FILE or PANAGREE_SNAPSHOT=FILE.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "cli_common.hpp"
#include "panagree/storage/snapshot.hpp"

using namespace panagree;

namespace {

void usage() {
  std::cerr << "usage: panagree-compile <out.pansnap>"
               " [--caida FILE | --synthetic N] [--seed S]\n"
               "       panagree-compile --verify <file.pansnap>\n";
}

/// --verify: open an existing snapshot, validate it, and report what the
/// reader did - including the effective mmap access-pattern advice
/// (WILLNEED on the CSR sections; THP when PANAGREE_MMAP_THP=1).
int verify_snapshot(const std::string& path) {
  const auto snapshot = storage::MappedSnapshot::open(path);
  std::cout << "[verify] " << path << ": " << snapshot.graph().num_ases()
            << " ASes, " << snapshot.graph().num_links() << " links, "
            << snapshot.world().cities().size() << " cities, "
            << snapshot.file_bytes() << " bytes\n"
            << "[verify] madvise: " << snapshot.advice().describe() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string caida;
  std::string verify;
  std::size_t synthetic = 0;
  std::uint64_t seed = benchcfg::kTopologySeed;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--version") {
        cli::print_version("panagree-compile");
      } else if (arg == "--verify") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        verify = argv[++i];
      } else if (arg == "--caida") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        caida = argv[++i];
      } else if (arg == "--synthetic") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        synthetic = std::stoul(argv[++i]);
      } else if (arg == "--seed") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        seed = std::stoull(argv[++i]);
      } else if (output.empty() && !arg.starts_with("--")) {
        output = arg;
      } else {
        usage();
        return 2;
      }
    }
  } catch (const std::exception&) {
    usage();
    return 2;
  }
  if (!verify.empty()) {
    if (!output.empty() || !caida.empty() || synthetic > 0) {
      usage();
      return 2;
    }
    try {
      return verify_snapshot(verify);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (output.empty()) {
    usage();
    return 2;
  }
  cli::init_tracing();

  try {
    const auto start = std::chrono::steady_clock::now();
    topology::GeneratedTopology topo;
    if (!caida.empty()) {
      auto dataset = topology::caida::parse_file(caida);
      topo = topology::embed_relationship_graph(std::move(dataset.graph),
                                                seed);
      std::cerr << "[compile] CAIDA " << caida << ": "
                << topo.graph.num_ases() << " ASes, "
                << topo.graph.num_links() << " links\n";
    } else if (synthetic > 0) {
      topology::GeneratorParams params = benchcfg::internet_params();
      params.num_ases = synthetic;
      params.seed = seed;
      topo = topology::generate_internet(params);
      std::cerr << "[compile] synthetic: " << topo.graph.num_ases()
                << " ASes, " << topo.graph.num_links() << " links (seed "
                << seed << ")\n";
    } else if (const char* env = benchcfg::caida_path()) {
      auto dataset = topology::caida::parse_file(env);
      topo = topology::embed_relationship_graph(std::move(dataset.graph),
                                                seed);
      std::cerr << "[compile] CAIDA " << env << " (PANAGREE_CAIDA): "
                << topo.graph.num_ases() << " ASes, "
                << topo.graph.num_links() << " links\n";
    } else {
      topology::GeneratorParams params = benchcfg::internet_params();
      params.seed = seed;
      topo = topology::generate_internet(params);
      std::cerr << "[compile] synthetic: " << topo.graph.num_ases()
                << " ASes, " << topo.graph.num_links() << " links (seed "
                << seed << ")\n";
    }
    topology::assign_degree_gravity_capacities(topo.graph);
    const topology::CompiledTopology compiled(topo.graph);
    storage::write_snapshot(output, topo, compiled);
    const double total_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

    // Verify the round trip before declaring success: the mmap'd view
    // must be byte-identical to the in-process compile.
    const auto snapshot = storage::MappedSnapshot::open(output);
    const bool identical =
        std::ranges::equal(snapshot.topology().row_start_array(),
                           compiled.row_start_array()) &&
        std::ranges::equal(snapshot.topology().entry_array(),
                           compiled.entry_array());
    if (!identical) {
      std::cerr << "[compile] round-trip verification FAILED\n";
      return 1;
    }
    std::cerr << "[compile] wrote " << output << ": "
              << snapshot.file_bytes() << " bytes in " << total_ms
              << " ms (round-trip verified; madvise: "
              << snapshot.advice().describe() << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
