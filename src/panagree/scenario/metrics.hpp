// Per-scenario aggregation: what does one agreement deployment buy?
//
// The sweep's canonical per-source result is the pair of §VI length-3 path
// sets (GRC and MA) enumerated over the overlaid topology - the same
// policies diversity::Length3Analyzer runs on the base snapshot, consulted
// through the Overlay. MetricsAggregator folds a scenario's per-source
// results into operator-facing aggregates:
//
//   * path diversity - total GRC/MA path counts and reachable (src, dst)
//     pairs (diversity/ semantics);
//   * geodistance - the mean best length-3 geodistance over reachable
//     pairs (§VI-B). Hops over base links use the facility-minimizing
//     GeodistanceModel; hops over *added* links (which have no facilities
//     yet) fall back to the endpoint-centroid great-circle legs;
//   * transit fees - unit demand per reachable pair routed over its best
//     path, each provider-customer hop charged by econ::Economy. Per-unit
//     evaluation is exact for the linear default economy; added links the
//     economy does not know are settlement-free.
//
// Scenario ranking is the difference against the baseline aggregate
// (subtract()), turned into a scalar by operator_utility().
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "panagree/diversity/geodistance.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/scenario/overlay.hpp"

namespace panagree::scenario {

/// The per-source unit of the canonical sweep: every GRC length-3 path of
/// the source plus every MA-only path, in engine enumeration order (so
/// equality is byte-equality of a full recompute).
struct SourcePathSet {
  std::vector<diversity::Length3Path> grc;
  std::vector<diversity::Length3Path> ma;

  friend bool operator==(const SourcePathSet&,
                         const SourcePathSet&) = default;
};

/// Enumerates the §VI length-3 path sets of `src` over the overlaid
/// topology. On an empty overlay this reproduces
/// diversity::Length3Analyzer::{grc_paths, ma_paths} exactly.
[[nodiscard]] SourcePathSet enumerate_length3(const Overlay& overlay,
                                              AsId src);

/// The sweep invalidation radius that is *exact* for enumerate_length3:
/// a length-3 path S-M-D only uses links whose nearer endpoint is S
/// (distance 0) or M (distance 1), and the MA policy's off-path role
/// checks only ever involve the (S, D) pair - endpoint S, distance 0. So
/// a source farther than 1 hop from every changed-link endpoint keeps its
/// baseline result verbatim (scenario_test proves byte-identity at this
/// radius across randomized deltas). The generic bound for a max_len-AS
/// walk is max_len - 2 for on-path links, +1 if a policy consults role
/// pairs not anchored at the source.
inline constexpr std::size_t kLength3DirtyRadius = 1;

/// Aggregates of one scenario over the analyzed sources.
struct ScenarioMetrics {
  std::size_t grc_paths = 0;
  std::size_t ma_paths = 0;
  /// (src, dst) pairs with at least one GRC path.
  std::size_t grc_pairs = 0;
  /// Additional (src, dst) pairs reachable only via MA paths.
  std::size_t ma_extra_pairs = 0;
  /// Mean best-path geodistance over reachable pairs (0 without geodata).
  double mean_best_geodistance_km = 0.0;
  /// Aggregate transit fees of unit demand per reachable pair.
  double transit_fees = 0.0;
};

/// Elementwise scenario - baseline (size_t fields as signed deltas via
/// doubles would lose exactness; kept as a dedicated type instead).
struct MetricsDelta {
  double paths = 0.0;
  double pairs = 0.0;
  double mean_best_geodistance_km = 0.0;
  double transit_fees = 0.0;
};

[[nodiscard]] MetricsDelta subtract(const ScenarioMetrics& scenario,
                                    const ScenarioMetrics& baseline);

/// A scalar "is this deployment worth it" score: fees saved plus a reward
/// per newly reachable pair minus a penalty per km of mean-geodistance
/// regression. The weights are knobs, not doctrine.
struct UtilityWeights {
  double per_new_pair = 0.5;
  double per_km_regression = 0.02;
};

[[nodiscard]] double operator_utility(const MetricsDelta& delta,
                                      const UtilityWeights& weights = {});

class MetricsAggregator {
 public:
  /// `world` == nullptr disables the geodistance aggregate (and best paths
  /// fall back to first-enumerated). All referenced objects must outlive
  /// the aggregator.
  MetricsAggregator(const CompiledTopology& base, const geo::World* world,
                    const econ::Economy* economy);

  /// Folds the per-source results of one scenario (results[i] belongs to
  /// sources[i], the shape SweepRunner produces). Thread-safe per call.
  [[nodiscard]] ScenarioMetrics aggregate(
      const Overlay& overlay, const std::vector<AsId>& sources,
      const std::vector<SourcePathSet>& results) const;

  /// Pointer variant for zero-copy sweeps: SweepRunner::evaluate_visit
  /// hands out references into its cache, so a scenario can be aggregated
  /// without duplicating any cache-served path set.
  [[nodiscard]] ScenarioMetrics aggregate(
      const Overlay& overlay, const std::vector<AsId>& sources,
      const std::vector<const SourcePathSet*>& results) const;

  /// Geodistance of s-m-d over the overlay, with the added-link centroid
  /// fallback described above. Requires geodata (world != nullptr).
  [[nodiscard]] double path_geodistance_km(const Overlay& overlay, AsId s,
                                           AsId m, AsId d) const;

  /// Transit fees of routing `volume` over `path` (>= 2 linked ASes)
  /// under the overlay: every provider-customer hop is charged by the
  /// economy's pricing for that link, whichever direction the walk
  /// crosses it; peering and unknown (overlay-added) links are
  /// settlement-free. The single fee convention shared by aggregate()
  /// and the sweep benches.
  [[nodiscard]] double path_fee(const Overlay& overlay,
                                std::span<const AsId> path,
                                double volume) const;

 private:
  const CompiledTopology* base_;
  const geo::World* world_;
  const econ::Economy* economy_;
  std::optional<diversity::GeodistanceModel> geodesy_;
};

}  // namespace panagree::scenario
