// Lightweight span tracing to Chrome-tracing / Perfetto JSON.
//
// Off by default: TraceSpan's constructor is one relaxed atomic load
// when no trace file is configured (no clock read, no allocation).
// Enable by calling trace_init(path) - the tools do this from the
// PANAGREE_TRACE environment variable via trace_init_from_env() - and
// every span records (name, start, duration, thread) into an in-memory
// buffer flushed to `path` as a single JSON document at trace_flush()
// or process exit.
//
// Span names must be string literals (or otherwise outlive the
// recorder): the recorder stores the pointer, not a copy, so that a
// span's cost stays off the traced code's profile.
//
// The emitted document is the Chrome trace-event format consumed by
// chrome://tracing and ui.perfetto.dev:
//
//   {"traceEvents":[
//     {"name":"sweep.prime","ph":"X","ts":12.5,"dur":104.0,
//      "pid":1,"tid":2}, ...]}
//
// ts/dur are microseconds (doubles, Chrome's unit); tid is a small
// per-process thread ordinal, stable per thread; pid is fixed at 1
// (single-process traces diff cleanly).
//
// Under PANAGREE_OBS_OFF the span type is a header-only no-op in a
// distinct inline namespace (same ODR story as metrics.hpp) and the
// init/flush entry points remain callable but record nothing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace panagree::obs {

#if defined(PANAGREE_OBS_OFF)

inline namespace obs_off {

class TraceSpan {
 public:
  explicit TraceSpan(const char*) noexcept {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

[[nodiscard]] constexpr bool trace_enabled() noexcept { return false; }
inline void trace_init(std::string_view) {}
inline void trace_init_from_env() {}
inline void trace_flush() {}
[[nodiscard]] inline std::size_t trace_event_count() noexcept { return 0; }

}  // namespace obs_off

#else  // !PANAGREE_OBS_OFF

inline namespace obs_on {

/// True once trace_init succeeded; spans record only then.
[[nodiscard]] bool trace_enabled() noexcept;

/// Starts recording and arranges a flush to `path` at process exit.
/// Idempotent per process: the first call wins (later calls with a
/// different path are ignored - tracing is a process-level decision).
void trace_init(std::string_view path);

/// trace_init(getenv("PANAGREE_TRACE")) when the variable is set and
/// non-empty; no-op otherwise. Every tool calls this at startup.
void trace_init_from_env();

/// Writes the complete JSON document now, truncating the file; the
/// buffer is retained, so every flush produces a whole, valid document
/// (the process-exit flush simply rewrites the final one). Safe to
/// call when disabled.
void trace_flush();

/// Number of spans currently buffered (test hook).
[[nodiscard]] std::size_t trace_event_count() noexcept;

/// RAII complete-event span: records [construction, destruction) of the
/// enclosing scope under `name`.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) noexcept;
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;          // nullptr when tracing is disabled
  std::uint64_t start_ns_ = 0;
};

}  // namespace obs_on

#endif  // PANAGREE_OBS_OFF

}  // namespace panagree::obs
