// serve::Server - the network front end of the query engine.
//
// One accept loop on a loopback TCP socket, a FIXED pool of reader
// threads multiplexing all accepted connections through poll()
// readiness, and a pool of worker threads draining a bounded request
// queue. The accept loop deals connections round-robin to the reader
// shards; each reader owns its connections' read buffers and splits the
// byte streams into newline-delimited request lines. Serving thousands
// of idle clients therefore costs table entries, not a blocked thread
// stack per connection (the old thread-per-connection readers). When the
// queue is full a reader blocks (backpressure on the socket - stalling
// one reader stalls its shard of connections, never unbounded memory).
// Workers hand each line to the front end's handle_line (a bare
// QueryEngine or a ShardRouter) and write the response back under the
// connection's write lock - responses carry the request id, so clients
// that pipeline match them by id rather than by stream order.
//
// stop() is a graceful drain: stop accepting, shut the read half of
// every connection, finish every request already queued, flush the
// responses, then join. The panagree-serve tool wires SIGTERM/SIGINT to
// exactly this, so an orchestrator's TERM never drops an accepted
// request.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "panagree/serve/query_engine.hpp"

namespace panagree::serve {

class ShardRouter;

/// Socket-layer failure (bind, listen, accept loop setup).
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Worker threads draining the request queue.
  std::size_t worker_threads = 2;
  /// Bounded request queue; readers block when it is full.
  std::size_t max_queue = 1024;
  /// Pooled reader threads; connections are dealt round-robin across
  /// them. 2 keeps one shard making progress while the other blocks on
  /// queue backpressure.
  std::size_t reader_threads = 2;
};

class Server {
 public:
  /// `engine` must be primed and outlive the server.
  Server(const QueryEngine& engine, ServerConfig config = {});
  /// Sharded front end: requests dispatch through `router`, which must
  /// have primed shards (refresh_baseline() called) and outlive the
  /// server. This is the constructor that serves the `rebase` admin kind.
  Server(ShardRouter& router, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop + reader pool + workers.
  /// Throws ServeError if the socket cannot be set up.
  void start();

  /// The bound port (after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful drain (see the header comment). Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  /// Requests answered so far (including error responses).
  [[nodiscard]] std::size_t handled_requests() const {
    return handled_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  /// One pooled reader: a poll() loop over the connections the accept
  /// loop dealt to it, plus a wakeup pipe for handoffs and stop().
  struct ReaderShard;
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    std::string line;
    /// Reader-side enqueue timestamp (stage_now_ns clock): the queue
    /// stage of the request's stage clock starts here. 0 under
    /// PANAGREE_OBS_OFF.
    std::uint64_t enqueue_ns = 0;
  };

  void accept_loop();
  void reader_loop(ReaderShard& shard);
  void worker_loop();
  void enqueue(WorkItem item);

  /// The dispatch seam: QueryEngine::handle_line or
  /// ShardRouter::handle_line, bound at construction.
  std::function<void(std::string_view, std::string&, RequestStages*)>
      handler_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool running_ = false;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<ReaderShard>> reader_shards_;
  /// Round-robin dealing cursor; only the accept thread touches it.
  std::size_t next_shard_ = 0;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable space_cv_;
  std::deque<WorkItem> queue_;
  bool draining_ = false;

  std::atomic<std::size_t> handled_{0};
};

}  // namespace panagree::serve
