// Canonical SPP gadgets from the BGP-convergence literature, plus the
// paper's Fig. 1 instantiations of them (§II).
//
// DISAGREE converges but non-deterministically (two stable states); adding
// a third AS with the same GRC-violating agreement yields BAD GADGET, which
// has no stable state and oscillates forever. GOOD GADGET is a safe
// counterpart used as a control in tests.
#pragma once

#include "panagree/bgp/spp.hpp"
#include "panagree/topology/examples.hpp"

namespace panagree::bgp {

/// Classical DISAGREE: origin 0; nodes 1 and 2 each prefer the route through
/// the other over their direct route. Exactly two stable solutions.
[[nodiscard]] SppInstance make_disagree();

/// Classical BAD GADGET: origin 0; nodes 1, 2, 3 in a cyclic preference
/// (each prefers the route through its clockwise neighbor's direct route).
/// No stable solution; SPVP oscillates.
[[nodiscard]] SppInstance make_bad_gadget();

/// A safe gadget (shortest-path preferences): unique stable solution,
/// converges under any activation order.
[[nodiscard]] SppInstance make_good_gadget();

/// BGP-wedgie-style extended DISAGREE (RFC 4264 flavour): origin 0 behind
/// provider 1; nodes 2 and 3 each prefer the longer route via the other.
[[nodiscard]] SppInstance make_wedgie();

/// The paper's §II DISAGREE on the Fig. 1 topology: D and E exchange
/// provider routes (to A via D, to A via B via E) and prefer peer-learned
/// routes. Destination is AS A.
[[nodiscard]] SppInstance make_fig1_disagree(const topology::Fig1& fig1);

/// The paper's §II BAD GADGET on the Fig. 1 topology: AS C concludes the
/// same kind of agreement with both D and E (requires the C-E peering the
/// agreement would create), yielding cyclic preferences among C, D, E for
/// destination A. No stable solution.
[[nodiscard]] SppInstance make_fig1_bad_gadget(const topology::Fig1& fig1);

}  // namespace panagree::bgp
