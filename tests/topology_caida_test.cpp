#include <gtest/gtest.h>

#include <sstream>

#include "panagree/topology/caida.hpp"

namespace panagree::topology::caida {
namespace {

TEST(CaidaParse, ReadsProviderAndPeerLines) {
  std::istringstream in(
      "# comment\n"
      "1|2|-1\n"
      "2|3|0|bgp\n");
  const Dataset ds = parse(in);
  EXPECT_EQ(ds.graph.num_ases(), 3u);
  const AsId as1 = ds.asn_to_id.at(1);
  const AsId as2 = ds.asn_to_id.at(2);
  const AsId as3 = ds.asn_to_id.at(3);
  EXPECT_TRUE(ds.graph.is_provider_of(as1, as2));
  EXPECT_TRUE(ds.graph.are_peers(as2, as3));
}

TEST(CaidaParse, SkipsEmptyLines) {
  std::istringstream in("\n\n10|20|0\n\n");
  const Dataset ds = parse(in);
  EXPECT_EQ(ds.graph.num_links(), 1u);
}

TEST(CaidaParse, PreservesAsnNames) {
  std::istringstream in("64512|65001|-1\n");
  const Dataset ds = parse(in);
  const AsId provider = ds.asn_to_id.at(64512);
  EXPECT_EQ(ds.graph.info(provider).name, "64512");
  EXPECT_EQ(ds.asn_of(provider), 64512u);
}

TEST(CaidaParse, RejectsMalformedAsn) {
  std::istringstream in("abc|2|0\n");
  EXPECT_THROW((void)parse(in), util::ParseError);
}

TEST(CaidaParse, RejectsUnknownRelationship) {
  std::istringstream in("1|2|7\n");
  EXPECT_THROW((void)parse(in), util::ParseError);
}

TEST(CaidaParse, RejectsTooFewFields) {
  std::istringstream in("1|2\n");
  EXPECT_THROW((void)parse(in), util::ParseError);
}

TEST(CaidaParse, RejectsDuplicateRelationship) {
  std::istringstream in(
      "1|2|-1\n"
      "2|1|0\n");
  EXPECT_THROW((void)parse(in), util::ParseError);
}

TEST(CaidaParse, MissingFileThrows) {
  EXPECT_THROW((void)parse_file("/nonexistent/file.txt"), util::ParseError);
}

TEST(CaidaRoundTrip, WriteThenParseRecoversGraph) {
  std::istringstream in(
      "100|200|-1\n"
      "100|300|-1\n"
      "200|300|0\n");
  const Dataset ds = parse(in);
  std::ostringstream out;
  write(ds.graph, out);
  std::istringstream again(out.str());
  const Dataset ds2 = parse(again);
  EXPECT_EQ(ds2.graph.num_ases(), 3u);
  EXPECT_EQ(ds2.graph.num_links(), 3u);
  const AsId a100 = ds2.asn_to_id.at(100);
  const AsId a200 = ds2.asn_to_id.at(200);
  const AsId a300 = ds2.asn_to_id.at(300);
  EXPECT_TRUE(ds2.graph.is_provider_of(a100, a200));
  EXPECT_TRUE(ds2.graph.is_provider_of(a100, a300));
  EXPECT_TRUE(ds2.graph.are_peers(a200, a300));
}

TEST(CaidaParse, AsnOfUnknownIdThrows) {
  std::istringstream in("1|2|0\n");
  const Dataset ds = parse(in);
  EXPECT_THROW((void)ds.asn_of(99), util::PreconditionError);
}

}  // namespace
}  // namespace panagree::topology::caida
