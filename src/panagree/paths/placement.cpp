#include "panagree/paths/placement.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace panagree::paths {

namespace {

/// First line of a sysfs file, empty on any failure.
std::string read_sys_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) {
    return {};
  }
  return line;
}

std::size_t online_cpu_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

#if defined(__linux__)
bool set_affinity(const std::vector<int>& cpus) {
  if (cpus.empty()) {
    return false;
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
    }
  }
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}
#endif

}  // namespace

std::vector<int> parse_cpu_list(const std::string& list) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto parse_int = [&](int& out) {
    std::size_t digits = 0;
    long value = 0;
    while (i < list.size() && list[i] >= '0' && list[i] <= '9') {
      value = value * 10 + (list[i] - '0');
      ++i;
      ++digits;
      if (value > 1 << 20) {  // no machine has a million cpus
        return false;
      }
    }
    out = static_cast<int>(value);
    return digits > 0;
  };
  while (i < list.size()) {
    int lo = 0;
    if (!parse_int(lo)) {
      break;
    }
    int hi = lo;
    if (i < list.size() && list[i] == '-') {
      ++i;
      if (!parse_int(hi) || hi < lo) {
        break;
      }
    }
    for (int cpu = lo; cpu <= hi; ++cpu) {
      cpus.push_back(cpu);
    }
    if (i < list.size()) {
      if (list[i] != ',') {
        break;
      }
      ++i;
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

TopologyPlacement TopologyPlacement::single_node(std::size_t cpu_count) {
  TopologyPlacement placement;
  Node node;
  node.id = 0;
  node.cpus.reserve(std::max<std::size_t>(cpu_count, 1));
  for (std::size_t cpu = 0; cpu < std::max<std::size_t>(cpu_count, 1);
       ++cpu) {
    node.cpus.push_back(static_cast<int>(cpu));
  }
  placement.nodes_.push_back(std::move(node));
  return placement;
}

TopologyPlacement TopologyPlacement::detect() {
  const std::string online =
      read_sys_line("/sys/devices/system/node/online");
  const std::vector<int> node_ids = parse_cpu_list(online);
  TopologyPlacement placement;
  for (const int id : node_ids) {
    const std::string cpulist =
        read_sys_line("/sys/devices/system/node/node" + std::to_string(id) +
                      "/cpulist");
    Node node;
    node.id = id;
    node.cpus = parse_cpu_list(cpulist);
    // Memory-only nodes (CXL expanders, ...) carry no cpus; they cannot
    // host workers, so they are not placement targets.
    if (!node.cpus.empty()) {
      placement.nodes_.push_back(std::move(node));
    }
  }
  if (placement.nodes_.empty()) {
    return single_node(online_cpu_count());
  }
  return placement;
}

const TopologyPlacement& TopologyPlacement::system() {
  static const TopologyPlacement placement = detect();
  return placement;
}

std::size_t TopologyPlacement::num_cpus() const {
  std::size_t total = 0;
  for (const Node& node : nodes_) {
    total += node.cpus.size();
  }
  return total;
}

std::size_t TopologyPlacement::node_of_worker(std::size_t worker,
                                              std::size_t workers) const {
  if (nodes_.size() <= 1 || workers == 0) {
    return 0;
  }
  const std::size_t block =
      (workers + nodes_.size() - 1) / nodes_.size();  // ceil(W / N)
  return std::min(worker / block, nodes_.size() - 1);
}

bool TopologyPlacement::bind_worker(std::size_t worker,
                                    std::size_t workers) const {
#if defined(__linux__)
  const std::size_t node_index = node_of_worker(worker, workers);
  const Node& node = nodes_[node_index];
  if (node.cpus.empty()) {
    return false;
  }
  const std::size_t block =
      nodes_.size() <= 1
          ? workers
          : (workers + nodes_.size() - 1) / nodes_.size();
  const std::size_t slot = block == 0 ? 0 : worker % std::max(block, std::size_t{1});
  const int cpu = node.cpus[slot % node.cpus.size()];
  if (set_affinity({cpu})) {
    return true;
  }
  return bind_current_thread(node_index);
#else
  (void)worker;
  (void)workers;
  return false;
#endif
}

bool TopologyPlacement::bind_current_thread(std::size_t node_index) const {
#if defined(__linux__)
  if (node_index >= nodes_.size()) {
    return false;
  }
  return set_affinity(nodes_[node_index].cpus);
#else
  (void)node_index;
  return false;
#endif
}

bool TopologyPlacement::bind_memory(const void* addr, std::size_t length,
                                    std::size_t node_index) const {
#if defined(__linux__) && defined(SYS_mbind)
  if (node_index >= nodes_.size() || addr == nullptr || length == 0) {
    return false;
  }
  const int node_id = nodes_[node_index].id;
  if (node_id < 0 || node_id >= 64) {
    return false;  // single-word nodemask covers every real machine
  }
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) {
    return false;
  }
  const auto base = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t start = base & ~static_cast<std::uintptr_t>(page - 1);
  const std::uintptr_t stop = base + length;
  const unsigned long nodemask = 1UL << node_id;
  constexpr int kMpolBind = 2;  // MPOL_BIND, numaif.h not required
  // maxnode counts bits and the kernel wants one past the highest set bit.
  return syscall(SYS_mbind, reinterpret_cast<void*>(start), stop - start,
                 kMpolBind, &nodemask, 64UL + 1, 0UL) == 0;
#else
  (void)addr;
  (void)length;
  (void)node_index;
  return false;
#endif
}

std::string TopologyPlacement::describe() const {
  std::ostringstream out;
  out << nodes_.size() << (nodes_.size() == 1 ? " node, " : " nodes, ")
      << num_cpus() << " cpus";
  return out.str();
}

std::string affinity_summary() {
  const std::size_t online = online_cpu_count();
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int allowed = CPU_COUNT(&set);
    return "cpus=" + std::to_string(allowed) + "/" + std::to_string(online);
  }
#endif
  return "cpus=" + std::to_string(online) + "/" + std::to_string(online);
}

}  // namespace panagree::paths
