// Stability table (the executable form of §II): BGP-style route selection
// needs the GRC to stay stable, while PAN source-selected forwarding is
// loop-free for the very same GRC-violating arrangements.
//
// The paper presents this argument qualitatively around Fig. 1; this bench
// renders it as a stability matrix over the canonical SPP gadgets and their
// Fig. 1 instantiations, plus the PAN forwarding counterpart.
#include <iostream>

#include "panagree/bgp/async.hpp"
#include "panagree/bgp/gadgets.hpp"
#include "panagree/bgp/policy.hpp"
#include "panagree/bgp/simulator.hpp"
#include "panagree/pan/forwarding.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;

void add_instance(util::Table& table, const char* name,
                  const bgp::SppInstance& instance) {
  const auto solutions = bgp::find_stable_solutions(instance);
  const auto sync = bgp::run_synchronous(instance);
  const auto safety = bgp::check_safety(instance, 40, 2024);
  // Event-driven message-passing run with MRAI batching (ns-3-style view).
  bgp::AsyncSpvpParams async_params;
  async_params.max_messages = 30000;
  const auto async = bgp::check_async_safety(instance, 20, 99, async_params);
  table.add_row(
      {name, std::to_string(solutions.size()),
       sync.outcome == bgp::Outcome::kConverged ? "converges" : "oscillates",
       safety.always_converged ? "always" : "not always",
       std::to_string(safety.distinct_outcomes),
       async.always_converged ? "always" : "not always",
       std::to_string(async.distinct_outcomes),
       util::format_double(async.mean_messages, 0)});
}

}  // namespace

int main() {
  std::cout << "== Table: BGP stability vs. PAN forwarding (§II) ==\n\n";
  const auto t = topology::make_fig1();

  util::Table bgp_table({"instance", "stable solutions", "synchronous SPVP",
                         "random activations converge", "distinct outcomes",
                         "async (MRAI) converges", "async outcomes",
                         "mean msgs"});
  add_instance(bgp_table, "GOOD GADGET (control)", bgp::make_good_gadget());
  add_instance(bgp_table, "DISAGREE", bgp::make_disagree());
  add_instance(bgp_table, "BGP WEDGIE", bgp::make_wedgie());
  add_instance(bgp_table, "BAD GADGET", bgp::make_bad_gadget());
  add_instance(bgp_table, "Fig.1 D/E mutual providers (DISAGREE)",
               bgp::make_fig1_disagree(t));
  add_instance(bgp_table, "Fig.1 + AS C agreements (BAD GADGET)",
               bgp::make_fig1_bad_gadget(t));
  add_instance(bgp_table, "Fig.1 Gao-Rexford, dest A",
               bgp::make_gao_rexford_spp(t.graph, t.A));
  add_instance(bgp_table, "Fig.1 Gao-Rexford, dest I",
               bgp::make_gao_rexford_spp(t.graph, t.I));
  add_instance(
      bgp_table, "Fig.1 mutual-transit policy (dest B)",
      bgp::make_mutual_transit_spp(t.graph, t.B, {{t.D, t.E}}));
  bgp_table.print(std::cout);
  bgp_table.print_csv(std::cout, "tab_bgp");

  std::cout << "\n-- PAN data plane on the same GRC-violating paths --\n";
  const pan::KeyStore keys(1, t.graph.num_ases());
  const pan::ForwardingEngine engine(t.graph, keys);
  util::Table pan_table({"path", "GRC-valid", "delivered", "loop-free"});
  const std::vector<std::vector<topology::AsId>> paths{
      {t.D, t.E, t.B, t.A},        // §II: "path DEBA ... E would not send
                                   // these packets back to D"
      {t.E, t.D, t.A},             // agreement path EDA
      {t.H, t.D, t.E, t.B},        // extended agreement path HDEB
      {t.H, t.D, t.A},             // plain GRC path as control
  };
  for (const auto& path : paths) {
    const auto result = engine.forward(pan::issue_path(keys, path));
    std::string name;
    for (const auto as : path) {
      name += t.graph.info(as).name;
    }
    pan_table.add_row(
        {name, bgp::grc_forwarding_allowed(t.graph, path) ? "yes" : "no",
         result.delivered ? "yes" : "no",
         result.trace.size() == path.size() ? "yes" : "no"});
  }
  pan_table.print(std::cout);
  pan_table.print_csv(std::cout, "tab_pan");

  std::cout << "\nReading: every GRC-violating BGP arrangement is either "
               "non-deterministic (wedgie) or divergent (BAD GADGET), while "
               "the PAN forwards the same paths loop-free - the §II claim.\n";
  return 0;
}
