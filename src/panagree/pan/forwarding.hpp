// The PAN data plane: packet-carried forwarding paths with authenticated
// hop fields, and the forwarding engine that executes them.
//
// §II's stability argument rests on this mechanism: "PANs forward a packet
// along the path encoded in its header. Thus, there is no uncertainty about
// the traversed forwarding path ... and routing loops can be prevented."
// The engine makes that claim executable: the cursor over hop fields is
// strictly increasing, so the traversed trace equals the embedded (simple)
// path, and tampering with any hop is caught by its chained MAC.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "panagree/pan/mac.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::pan {

using topology::AsId;
using topology::Graph;

/// One authenticated hop of a forwarding path.
struct HopField {
  AsId as = topology::kInvalidAs;
  AsId ingress = topology::kInvalidAs;  ///< previous AS (invalid at source)
  AsId egress = topology::kInvalidAs;   ///< next AS (invalid at destination)
  std::uint64_t mac = 0;

  friend bool operator==(const HopField&, const HopField&) = default;
};

/// A packet-carried forwarding path (source hop first).
struct ForwardingPath {
  std::vector<HopField> hops;

  [[nodiscard]] std::vector<AsId> ases() const;
};

/// Per-AS forwarding keys, derived deterministically from a master seed
/// (each AS would hold its own secret; derivation here stands in for key
/// distribution).
class KeyStore {
 public:
  KeyStore(std::uint64_t master_seed, std::size_t num_ases);

  [[nodiscard]] const MacKey& key(AsId as) const;
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

 private:
  std::vector<MacKey> keys_;
};

/// Stamps hop fields with chained MACs for a simple AS path: each AS
/// authorizes (as, ingress, egress) bound to the previous hop's MAC, so a
/// hop cannot be spliced into a different path.
[[nodiscard]] ForwardingPath issue_path(const KeyStore& keys,
                                        std::span<const AsId> path);

/// Convenience overload for brace-enclosed hop lists.
[[nodiscard]] inline ForwardingPath issue_path(
    const KeyStore& keys, std::initializer_list<AsId> path) {
  return issue_path(keys, std::span<const AsId>(path.begin(), path.size()));
}

enum class DropReason : std::uint8_t {
  kNone,
  kMalformed,   ///< empty / non-simple path
  kInvalidMac,  ///< hop-field authentication failed
  kBrokenLink,  ///< consecutive hops are not adjacent in the topology
};

struct ForwardResult {
  bool delivered = false;
  DropReason reason = DropReason::kNone;
  /// ASes actually traversed, in order (equals the embedded path on
  /// success; a prefix of it on drop).
  std::vector<AsId> trace;
};

/// Validates and executes a forwarding path hop by hop. Adjacency checks
/// run on a CSR snapshot compiled at construction (the engine is built
/// once and forwards many packets).
class ForwardingEngine {
 public:
  ForwardingEngine(const Graph& graph, const KeyStore& keys);

  [[nodiscard]] ForwardResult forward(const ForwardingPath& path) const;

  /// The snapshot backing the per-hop adjacency checks (shared by the
  /// packet-level simulator).
  [[nodiscard]] const topology::CompiledTopology& compiled() const {
    return compiled_;
  }

 private:
  topology::CompiledTopology compiled_;
  const KeyStore* keys_;
};

}  // namespace panagree::pan
