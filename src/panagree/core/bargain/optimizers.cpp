#include "panagree/core/bargain/optimizers.hpp"

#include <algorithm>
#include <cmath>

#include "panagree/util/error.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::bargain {

void Box::project(std::vector<double>& x) const {
  util::require(x.size() == lower.size(), "Box::project: dimension mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}

namespace {

struct Vertex {
  std::vector<double> x;
  double value;
};

}  // namespace

OptimizationResult maximize_nelder_mead(const Objective& f, const Box& box,
                                        std::vector<double> start,
                                        const NelderMeadOptions& options) {
  const std::size_t n = box.dimensions();
  util::require(n >= 1, "maximize_nelder_mead: need at least one dimension");
  util::require(box.lower.size() == box.upper.size(),
                "maximize_nelder_mead: box bounds size mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    util::require(box.lower[i] <= box.upper[i],
                  "maximize_nelder_mead: inverted box bounds");
  }
  util::require(start.size() == n, "maximize_nelder_mead: start size");
  box.project(start);

  // Work in minimization form.
  const auto eval = [&f](const std::vector<double>& x) { return -f(x); };

  std::vector<Vertex> simplex;
  simplex.reserve(n + 1);
  simplex.push_back({start, eval(start)});
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> v = start;
    const double width = box.upper[i] - box.lower[i];
    double step = options.initial_step * (width > 0.0 ? width : 1.0);
    if (v[i] + step > box.upper[i]) {
      step = -step;
    }
    v[i] += step;
    box.project(v);
    simplex.push_back({v, eval(v)});
  }

  const auto by_value = [](const Vertex& a, const Vertex& b) {
    return a.value < b.value;
  };

  std::size_t iterations = 0;
  for (; iterations < options.max_iterations; ++iterations) {
    std::sort(simplex.begin(), simplex.end(), by_value);
    if (simplex.back().value - simplex.front().value < options.tolerance) {
      break;
    }
    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < n; ++i) {
        centroid[i] += simplex[v].x[i];
      }
    }
    for (double& c : centroid) {
      c /= static_cast<double>(n);
    }
    Vertex& worst = simplex.back();

    const auto make_point = [&](double coefficient) {
      std::vector<double> p(n);
      for (std::size_t i = 0; i < n; ++i) {
        p[i] = centroid[i] + coefficient * (centroid[i] - worst.x[i]);
      }
      box.project(p);
      return p;
    };

    const std::vector<double> reflected = make_point(1.0);
    const double fr = eval(reflected);
    if (fr < simplex.front().value) {
      const std::vector<double> expanded = make_point(2.0);
      const double fe = eval(expanded);
      worst = fe < fr ? Vertex{expanded, fe} : Vertex{reflected, fr};
      continue;
    }
    if (fr < simplex[n - 1].value) {
      worst = Vertex{reflected, fr};
      continue;
    }
    const std::vector<double> contracted = make_point(-0.5);
    const double fc = eval(contracted);
    if (fc < worst.value) {
      worst = Vertex{contracted, fc};
      continue;
    }
    // Shrink towards the best vertex.
    for (std::size_t v = 1; v <= n; ++v) {
      for (std::size_t i = 0; i < n; ++i) {
        simplex[v].x[i] =
            simplex[0].x[i] + 0.5 * (simplex[v].x[i] - simplex[0].x[i]);
      }
      box.project(simplex[v].x);
      simplex[v].value = eval(simplex[v].x);
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_value);
  return OptimizationResult{simplex.front().x, -simplex.front().value,
                            iterations};
}

OptimizationResult maximize_multistart(const Objective& f, const Box& box,
                                       std::size_t extra_random_starts,
                                       std::uint64_t seed,
                                       const NelderMeadOptions& options) {
  const std::size_t n = box.dimensions();
  std::vector<std::vector<double>> starts;
  // Center, lower corner, upper corner.
  std::vector<double> center(n);
  for (std::size_t i = 0; i < n; ++i) {
    center[i] = 0.5 * (box.lower[i] + box.upper[i]);
  }
  starts.push_back(center);
  starts.push_back(box.lower);
  starts.push_back(box.upper);
  util::Rng rng(seed);
  for (std::size_t s = 0; s < extra_random_starts; ++s) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = rng.uniform(box.lower[i], box.upper[i]);
    }
    starts.push_back(std::move(x));
  }
  OptimizationResult best;
  bool first = true;
  for (auto& start : starts) {
    OptimizationResult r = maximize_nelder_mead(f, box, start, options);
    if (first || r.value > best.value) {
      best = std::move(r);
      first = false;
    }
  }
  return best;
}

double golden_section_maximize(const std::function<double(double)>& f,
                               double lo, double hi, double tolerance) {
  util::require(lo <= hi, "golden_section_maximize: lo must not exceed hi");
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo;
  double b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c);
  double fd = f(d);
  while (b - a > tolerance) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace panagree::bargain
