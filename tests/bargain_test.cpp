#include <gtest/gtest.h>

#include <cmath>

#include "panagree/core/bargain/cash.hpp"
#include "panagree/core/bargain/flow_volume.hpp"
#include "panagree/core/bargain/nash.hpp"
#include "panagree/core/bargain/optimizers.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/topology/examples.hpp"

namespace panagree::bargain {
namespace {

using topology::make_fig1;

// ------------------------------------------------------------------- nash

TEST(Nash, ProductAndFeasibility) {
  EXPECT_DOUBLE_EQ(nash_product(3.0, 4.0), 12.0);
  EXPECT_TRUE(is_feasible(0.0, 0.0));
  EXPECT_FALSE(is_feasible(-0.1, 5.0));
  EXPECT_TRUE(is_feasible(-0.1, 5.0, 0.2));
}

// ------------------------------------------------------------------- cash

TEST(Cash, SplitsSurplusEqually) {
  const auto deal = negotiate_cash(10.0, 2.0);
  ASSERT_TRUE(deal.has_value());
  EXPECT_DOUBLE_EQ(deal->transfer_x_to_y, 4.0);  // Eq. 11
  EXPECT_DOUBLE_EQ(deal->u_x_after, 6.0);
  EXPECT_DOUBLE_EQ(deal->u_y_after, 6.0);
}

TEST(Cash, CompensatesALosingParty) {
  const auto deal = negotiate_cash(-3.0, 9.0);
  ASSERT_TRUE(deal.has_value());
  // Y pays X: transfer_x_to_y is negative.
  EXPECT_DOUBLE_EQ(deal->transfer_x_to_y, -6.0);
  EXPECT_DOUBLE_EQ(deal->u_x_after, 3.0);
  EXPECT_DOUBLE_EQ(deal->u_y_after, 3.0);
}

TEST(Cash, FailsIffSurplusNegative) {
  EXPECT_FALSE(negotiate_cash(-5.0, 4.0).has_value());
  EXPECT_TRUE(negotiate_cash(-5.0, 5.0).has_value());  // boundary: zero deal
  const auto boundary = negotiate_cash(-5.0, 5.0);
  EXPECT_DOUBLE_EQ(boundary->u_x_after, 0.0);
  EXPECT_DOUBLE_EQ(boundary->u_y_after, 0.0);
}

// Property sweep: the closed form must dominate any other transfer's Nash
// product and keep both parties whole (Pareto-optimal + fair, §IV-B).
struct CashCase {
  double u_x;
  double u_y;
};

class CashSweep : public ::testing::TestWithParam<CashCase> {};

TEST_P(CashSweep, ClosedFormMaximizesNashProduct) {
  const auto [u_x, u_y] = GetParam();
  const auto deal = negotiate_cash(u_x, u_y);
  if (u_x + u_y < 0.0) {
    EXPECT_FALSE(deal.has_value());
    return;
  }
  ASSERT_TRUE(deal.has_value());
  EXPECT_GE(deal->u_x_after, -1e-12);
  EXPECT_GE(deal->u_y_after, -1e-12);
  EXPECT_NEAR(deal->u_x_after, deal->u_y_after, 1e-12);  // fairness
  const double best = deal->u_x_after * deal->u_y_after;
  for (double pi = -20.0; pi <= 20.0; pi += 0.1) {
    EXPECT_LE((u_x - pi) * (u_y + pi), best + 1e-9);
  }
  // Budget balance: the transfer cancels out.
  EXPECT_NEAR(deal->u_x_after + deal->u_y_after, u_x + u_y, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    UtilityPairs, CashSweep,
    ::testing::Values(CashCase{1.0, 1.0}, CashCase{5.0, -2.0},
                      CashCase{-2.0, 5.0}, CashCase{0.0, 0.0},
                      CashCase{10.0, 0.5}, CashCase{-1.0, 0.5},
                      CashCase{-4.0, 3.0}, CashCase{7.5, 7.5}));

// ------------------------------------------------------------- optimizers

TEST(NelderMead, FindsQuadraticMaximum) {
  const Objective f = [](const std::vector<double>& x) {
    return -(x[0] - 2.0) * (x[0] - 2.0) - (x[1] + 1.0) * (x[1] + 1.0);
  };
  Box box{{-10.0, -10.0}, {10.0, 10.0}};
  const auto r = maximize_nelder_mead(f, box, {0.0, 0.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-4);
  EXPECT_NEAR(r.x[1], -1.0, 1e-4);
  EXPECT_NEAR(r.value, 0.0, 1e-6);
}

TEST(NelderMead, RespectsBoxConstraints) {
  const Objective f = [](const std::vector<double>& x) { return x[0]; };
  Box box{{0.0}, {3.0}};
  const auto r = maximize_nelder_mead(f, box, {1.0});
  EXPECT_NEAR(r.x[0], 3.0, 1e-6);
}

TEST(NelderMead, HandlesDegenerateZeroWidthBox) {
  const Objective f = [](const std::vector<double>& x) { return -x[0] * x[0]; };
  Box box{{2.0}, {2.0}};
  const auto r = maximize_nelder_mead(f, box, {2.0});
  EXPECT_DOUBLE_EQ(r.x[0], 2.0);
}

TEST(Multistart, EscapesLocalOptimum) {
  // Two humps; the global one sits near the upper bound.
  const Objective f = [](const std::vector<double>& x) {
    const double a = std::exp(-10.0 * (x[0] - 0.15) * (x[0] - 0.15));
    const double b = 2.0 * std::exp(-30.0 * (x[0] - 0.9) * (x[0] - 0.9));
    return a + b;
  };
  Box box{{0.0}, {1.0}};
  const auto r = maximize_multistart(f, box, 8, 3);
  EXPECT_NEAR(r.x[0], 0.9, 0.02);
}

TEST(GoldenSection, FindsUnimodalMaximum) {
  const auto x = golden_section_maximize(
      [](double v) { return -(v - 1.25) * (v - 1.25); }, -5.0, 5.0);
  EXPECT_NEAR(x, 1.25, 1e-6);
}

TEST(Box, ProjectClampsComponents) {
  Box box{{0.0, -1.0}, {1.0, 1.0}};
  std::vector<double> x{2.0, -5.0};
  box.project(x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
}

// ------------------------------------------------------------ flow volume

/// Fixture: the Fig. 1 agreement a = [D(^{A}); E(^{B})] restricted to one
/// segment per party, with a per-unit economy that is symmetric between the
/// parties, so the optimum is analytically transparent.
class FlowVolumeFixture : public ::testing::Test {
 protected:
  FlowVolumeFixture()
      : t_(make_fig1()), economy_(t_.graph) {
    economy_.set_link_pricing(t_.A, t_.D, econ::PricingFunction::per_unit(2.0));
    economy_.set_link_pricing(t_.B, t_.E, econ::PricingFunction::per_unit(2.0));
    economy_.set_internal_cost(t_.D, econ::InternalCostFunction::linear(0.1));
    economy_.set_internal_cost(t_.E, econ::InternalCostFunction::linear(0.1));
    economy_.set_stub_pricing(t_.D, econ::PricingFunction::per_unit(3.0));
    economy_.set_stub_pricing(t_.E, econ::PricingFunction::per_unit(3.0));
    // Existing traffic: D sends 10 units to B via provider A, E sends 10
    // units to A via provider B.
    base_.add_path_flow(std::vector<topology::AsId>{t_.D, t_.A, t_.B}, 10.0);
    base_.add_path_flow(std::vector<topology::AsId>{t_.E, t_.B, t_.A}, 10.0);

    problem_.party_x = t_.D;
    problem_.party_y = t_.E;
    problem_.x_segments.push_back(SegmentOption{
        {t_.D, t_.E, t_.B}, {t_.D, t_.A, t_.B}, 10.0, 5.0});
    problem_.y_segments.push_back(SegmentOption{
        {t_.E, t_.D, t_.A}, {t_.E, t_.B, t_.A}, 10.0, 5.0});
  }

  topology::Fig1 t_;
  econ::Economy economy_;
  econ::TrafficAllocation base_;
  FlowVolumeProblem problem_;
};

TEST_F(FlowVolumeFixture, SymmetricProblemConcludesWithEqualUtilities) {
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const FlowVolumeSolution sol = solve_flow_volume(problem_, evaluator);
  EXPECT_TRUE(sol.concluded);
  EXPECT_GT(sol.u_x, 0.0);
  EXPECT_GT(sol.u_y, 0.0);
  EXPECT_NEAR(sol.u_x, sol.u_y, 0.15 * std::max(sol.u_x, sol.u_y));
  EXPECT_NEAR(sol.nash, sol.u_x * sol.u_y, 1e-6);
}

TEST_F(FlowVolumeFixture, TargetsRespectConstraints) {
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const FlowVolumeSolution sol = solve_flow_volume(problem_, evaluator);
  ASSERT_EQ(sol.x_targets.size(), 1u);
  ASSERT_EQ(sol.y_targets.size(), 1u);
  for (const auto& targets : {sol.x_targets, sol.y_targets}) {
    const FlowVolumeTarget& target = targets[0];
    EXPECT_GE(target.rerouted, 0.0);
    EXPECT_LE(target.rerouted, 10.0 + 1e-9);  // constraint: reroutable
    EXPECT_GE(target.new_demand, 0.0);
    EXPECT_LE(target.new_demand, 5.0 + 1e-9);  // constraint III
    EXPECT_NEAR(target.allowance, target.rerouted + target.new_demand, 1e-9);
  }
}

TEST_F(FlowVolumeFixture, SolutionIsLocallyParetoOptimal) {
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const FlowVolumeSolution sol = solve_flow_volume(problem_, evaluator);
  ASSERT_TRUE(sol.concluded);
  const double best = sol.nash;
  // Perturbing any variable must not improve the Nash product (within
  // feasibility): the solution sits at a local maximum.
  const std::vector<double> at{sol.x_targets[0].rerouted,
                               sol.x_targets[0].new_demand,
                               sol.y_targets[0].rerouted,
                               sol.y_targets[0].new_demand};
  const std::vector<double> upper{10.0, 5.0, 10.0, 5.0};
  for (std::size_t i = 0; i < at.size(); ++i) {
    for (const double delta : {-0.05, 0.05}) {
      std::vector<double> probe = at;
      probe[i] = std::clamp(probe[i] + delta, 0.0, upper[i]);
      const auto shift = shift_for_variables(problem_, probe);
      const double ux = evaluator.utility_change(problem_.party_x, shift);
      const double uy = evaluator.utility_change(problem_.party_y, shift);
      if (ux >= 0.0 && uy >= 0.0) {
        EXPECT_LE(ux * uy, best + 1e-4);
      }
    }
  }
}

TEST_F(FlowVolumeFixture, HopelessEconomicsYieldZeroTargets) {
  // §IV-C: with very dissimilar cost structures the program can end up with
  // all-zero flow targets, i.e. no agreement. Make every rerouted or new
  // unit strictly loss-making for both parties.
  econ::Economy harsh(t_.graph);
  harsh.set_link_pricing(t_.A, t_.D, econ::PricingFunction::per_unit(0.01));
  harsh.set_link_pricing(t_.B, t_.E, econ::PricingFunction::per_unit(0.01));
  harsh.set_internal_cost(t_.D, econ::InternalCostFunction::linear(5.0));
  harsh.set_internal_cost(t_.E, econ::InternalCostFunction::linear(5.0));
  const agreements::AgreementEvaluator evaluator(harsh, base_);
  const FlowVolumeSolution sol = solve_flow_volume(problem_, evaluator);
  EXPECT_FALSE(sol.concluded);
  EXPECT_NEAR(sol.x_targets[0].allowance, 0.0, 1e-6);
  EXPECT_NEAR(sol.y_targets[0].allowance, 0.0, 1e-6);
}

TEST_F(FlowVolumeFixture, EmptyProblemDoesNotConclude) {
  FlowVolumeProblem empty;
  empty.party_x = t_.D;
  empty.party_y = t_.E;
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const FlowVolumeSolution sol = solve_flow_volume(empty, evaluator);
  EXPECT_FALSE(sol.concluded);
}

TEST_F(FlowVolumeFixture, CashAlwaysConcludesWhenVolumeDoesnt) {
  // §IV-C comparison: whenever the flow-volume program concludes, the cash
  // route (on the same realized utilities) must conclude as well.
  const agreements::AgreementEvaluator evaluator(economy_, base_);
  const FlowVolumeSolution sol = solve_flow_volume(problem_, evaluator);
  ASSERT_TRUE(sol.concluded);
  const auto deal = negotiate_cash(sol.u_x, sol.u_y);
  ASSERT_TRUE(deal.has_value());
  EXPECT_GE(deal->u_x_after, 0.0);
  EXPECT_GE(deal->u_y_after, 0.0);
}

TEST(FlowVolume, ValidatesProblemShape) {
  const auto t = make_fig1();
  const econ::Economy economy = econ::make_default_economy(t.graph);
  econ::TrafficAllocation base;
  const agreements::AgreementEvaluator evaluator(economy, base);
  FlowVolumeProblem bad;
  bad.party_x = t.D;
  bad.party_y = t.E;
  bad.x_segments.push_back(
      SegmentOption{{t.D, t.E, t.B}, {t.D, t.A}, 1.0, 1.0});  // endpoint break
  EXPECT_THROW((void)solve_flow_volume(bad, evaluator),
               util::PreconditionError);
}

}  // namespace
}  // namespace panagree::bargain
