// Cash-compensation agreements (§IV-B).
//
// Instead of limiting flow volumes, the parties agree on a cash transfer
// Pi_{X->Y} that maximizes (u_X - Pi)(u_Y + Pi) subject to both
// after-transfer utilities being non-negative (Eq. 10). The problem has a
// solution iff u_X + u_Y >= 0, in which case the Nash Bargaining Solution
// (Eq. 11) applies:
//
//     Pi_{X->Y} = u_X - (u_X + u_Y) / 2,
//
// i.e. both parties end up with half the joint surplus.
#pragma once

#include <optional>

namespace panagree::bargain {

struct CashDeal {
  /// Positive: X pays Y; negative: Y pays X.
  double transfer_x_to_y = 0.0;
  double u_x_after = 0.0;
  double u_y_after = 0.0;
};

/// Negotiates the optimal cash compensation for raw agreement utilities
/// (u_x, u_y). Returns nullopt iff the agreement is not viable
/// (u_x + u_y < 0), the case where no transfer can make both sides whole.
[[nodiscard]] std::optional<CashDeal> negotiate_cash(double u_x, double u_y);

}  // namespace panagree::bargain
