// Link-capacity assignment.
//
// §VI-C of the paper infers inter-AS link bandwidth with a degree-gravity
// model [47]: the capacity of a link is proportional to the product of the
// node degrees of its endpoints. Path bandwidth is the minimum link
// capacity along the path.
#pragma once

#include "panagree/topology/graph.hpp"

namespace panagree::topology {

struct DegreeGravityParams {
  /// Capacity of a link between two degree-1 nodes (arbitrary bandwidth
  /// units; only ratios matter for the analysis).
  double scale = 1.0;
  /// Exponent applied to the degree product (1 = the paper's model).
  double exponent = 1.0;
};

/// Assigns `capacity` to every link of the graph via the degree-gravity
/// model: capacity = scale * (deg(a) * deg(b))^exponent.
void assign_degree_gravity_capacities(Graph& graph,
                                      const DegreeGravityParams& params = {});

/// Bandwidth of a path given as a sequence of AS hops: the minimum capacity
/// over the traversed links. Throws if consecutive hops are not linked.
[[nodiscard]] double path_bandwidth(const Graph& graph,
                                    const std::vector<AsId>& path);

}  // namespace panagree::topology
