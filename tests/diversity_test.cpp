#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "panagree/bgp/policy.hpp"
#include "panagree/diversity/bandwidth.hpp"
#include "panagree/diversity/geodistance.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::diversity {
namespace {

using topology::make_fig1;

// --------------------------------------------------------- GRC enumeration

TEST(Grc, Fig1PathsFromHAreHandCountable) {
  const auto t = make_fig1();
  const Length3Analyzer analyzer(t.graph);
  const auto paths = analyzer.grc_paths(t.H);
  // H's only neighbor is its provider D; D's other neighbors: A, C, E.
  ASSERT_EQ(paths.size(), 3u);
  std::set<topology::AsId> dsts;
  for (const auto& p : paths) {
    EXPECT_EQ(p.src, t.H);
    EXPECT_EQ(p.mid, t.D);
    dsts.insert(p.dst);
  }
  EXPECT_EQ(dsts, (std::set<topology::AsId>{t.A, t.C, t.E}));
}

TEST(Grc, Fig1PathsFromDIncludeOnlyForwardableOnes) {
  const auto t = make_fig1();
  const Length3Analyzer analyzer(t.graph);
  const auto paths = analyzer.grc_paths(t.D);
  // Via provider A (everything A touches): A's neighbors B, C, D minus D
  //   -> D-A-B, D-A-C.
  // Via peer C: C's customers: none.
  // Via peer E: E's customers: I -> D-E-I.
  // Via customer H: H has no customers.
  std::set<std::pair<topology::AsId, topology::AsId>> got;
  for (const auto& p : paths) {
    got.insert({p.mid, p.dst});
  }
  const std::set<std::pair<topology::AsId, topology::AsId>> expected{
      {t.A, t.B}, {t.A, t.C}, {t.E, t.I}};
  EXPECT_EQ(got, expected);
}

TEST(Grc, MatchesValleyFreeForwardingRule) {
  topology::GeneratorParams params;
  params.num_ases = 300;
  params.tier1_count = 4;
  params.seed = 3;
  const auto topo = topology::generate_internet(params);
  const Length3Analyzer analyzer(topo.graph);
  for (topology::AsId src = 0; src < 40; ++src) {
    for (const auto& p : analyzer.grc_paths(src)) {
      EXPECT_TRUE(bgp::is_valley_free(topo.graph, {p.src, p.mid, p.dst}));
      EXPECT_TRUE(analyzer.is_grc(p.src, p.mid, p.dst));
    }
  }
}

// ---------------------------------------------------------- MA enumeration

TEST(Ma, Fig1DirectPathsOfD) {
  const auto t = make_fig1();
  const Length3Analyzer analyzer(t.graph);
  const auto paths = analyzer.ma_direct_paths(t.D);
  // Peers of D: C and E.
  //  Via C: providers {A}, peers {D excluded as beneficiary-self? no: D is
  //  the beneficiary} -> C grants A (D's own provider but not D's customer:
  //  still granted) -> path D-C-A.
  //  Via E: providers {B}, peers {F} -> D-E-B, D-E-F.
  std::set<std::pair<topology::AsId, topology::AsId>> got;
  for (const auto& p : paths) {
    got.insert({p.mid, p.dst});
  }
  const std::set<std::pair<topology::AsId, topology::AsId>> expected{
      {t.C, t.A}, {t.E, t.B}, {t.E, t.F}};
  EXPECT_EQ(got, expected);
}

TEST(Ma, NoMaPathIsGrcValid) {
  topology::GeneratorParams params;
  params.num_ases = 400;
  params.tier1_count = 4;
  params.seed = 9;
  const auto topo = topology::generate_internet(params);
  const Length3Analyzer analyzer(topo.graph);
  for (topology::AsId src = 0; src < 60; ++src) {
    for (const auto& p : analyzer.ma_paths(src)) {
      EXPECT_FALSE(analyzer.is_grc(p.src, p.mid, p.dst))
          << p.src << "-" << p.mid << "-" << p.dst;
    }
  }
}

TEST(Ma, IndirectPathsHaveSrcAsGrantedDestination) {
  const auto t = make_fig1();
  const Length3Analyzer analyzer(t.graph);
  // B is a provider of E; the MA between D and E grants D access to B,
  // which indirectly gives B the path B-E-D... from B's perspective the
  // MA-created paths with B as endpoint include B-E-D (mid E, dst D).
  const auto paths = analyzer.ma_paths(t.B);
  const bool found =
      std::any_of(paths.begin(), paths.end(), [&](const Length3Path& p) {
        return p.mid == t.E && p.dst == t.D;
      });
  EXPECT_TRUE(found);
}

TEST(Ma, DirectAndAllAreConsistent) {
  topology::GeneratorParams params;
  params.num_ases = 400;
  params.tier1_count = 4;
  params.seed = 10;
  const auto topo = topology::generate_internet(params);
  const Length3Analyzer analyzer(topo.graph);
  for (topology::AsId src = 0; src < 50; ++src) {
    const auto direct = analyzer.ma_direct_paths(src);
    const auto all = analyzer.ma_paths(src);
    EXPECT_GE(all.size(), direct.size());
    // All paths are unique by (mid, dst).
    std::set<std::pair<topology::AsId, topology::AsId>> unique;
    for (const auto& p : all) {
      EXPECT_TRUE(unique.insert({p.mid, p.dst}).second);
    }
  }
}

TEST(Ma, CountsMatchEnumerations) {
  topology::GeneratorParams params;
  params.num_ases = 400;
  params.tier1_count = 4;
  params.seed = 11;
  const auto topo = topology::generate_internet(params);
  const Length3Analyzer analyzer(topo.graph);
  for (topology::AsId src = 0; src < 40; ++src) {
    const SourceCounts c = analyzer.count(src, {1, 5, 50});
    EXPECT_EQ(c.grc_paths, analyzer.grc_paths(src).size());
    EXPECT_EQ(c.ma_direct_paths, analyzer.ma_direct_paths(src).size());
    EXPECT_EQ(c.ma_all_paths, analyzer.ma_paths(src).size());
    ASSERT_EQ(c.ma_top_paths.size(), 3u);
    // Top-n path gains are monotone in n and bounded by the full direct set.
    EXPECT_LE(c.ma_top_paths[0], c.ma_top_paths[1]);
    EXPECT_LE(c.ma_top_paths[1], c.ma_top_paths[2]);
    EXPECT_LE(c.ma_top_paths[2], c.ma_direct_paths);
    EXPECT_LE(c.ma_top_dests[0], c.ma_top_dests[1]);
    EXPECT_LE(c.ma_top_dests[2], c.ma_direct_dests);
    EXPECT_LE(c.ma_direct_paths, c.ma_all_paths);
  }
}

TEST(Ma, DestinationCountsAreNewOnly) {
  const auto t = make_fig1();
  const Length3Analyzer analyzer(t.graph);
  const SourceCounts c = analyzer.count(t.H, {1});
  // GRC dests of H: {A, C, E}. H has no peers, so no direct MA paths; but
  // indirect: H's provider D peers C and E... wait, mid must be a customer
  // or peer of H - H has neither, so no MA paths at all.
  EXPECT_EQ(c.grc_dests, 3u);
  EXPECT_EQ(c.ma_all_paths, 0u);
  EXPECT_EQ(c.ma_all_dests, 0u);
}

TEST(Ma, TopOneAlreadyGainsForPeeredAses) {
  const auto t = make_fig1();
  const Length3Analyzer analyzer(t.graph);
  const SourceCounts c = analyzer.count(t.D, {1});
  // D's best MA (with E) directly gains 2 paths (B and F).
  ASSERT_EQ(c.ma_top_paths.size(), 1u);
  EXPECT_EQ(c.ma_top_paths[0], 2u);
  EXPECT_EQ(c.ma_direct_paths, 3u);
}

// ------------------------------------------------------------- geodistance

TEST(Geodistance, HandComputedTriangle) {
  topology::Graph g;
  util::Rng rng(1);
  const auto world = geo::World::make_default(rng, 4);
  const auto a = g.add_as("a");
  const auto b = g.add_as("b");
  const auto c = g.add_as("c");
  // Give each AS one PoP city and each link one facility.
  for (const auto as : {a, b, c}) {
    auto& info = g.info(as);
    info.pops = {static_cast<std::size_t>(as)};
    info.centroid = world.city(as).location;
    info.has_geo = true;
  }
  const auto l1 = g.add_peering(a, b);
  const auto l2 = g.add_peering(b, c);
  g.link(l1).facilities = {0};  // at a's city
  g.link(l2).facilities = {2};  // at c's city
  const GeodistanceModel model(g, world);
  const double expected =
      geo::great_circle_km(world.city(0).location, world.city(0).location) +
      geo::great_circle_km(world.city(0).location, world.city(2).location) +
      geo::great_circle_km(world.city(2).location, world.city(2).location);
  EXPECT_NEAR(model.path_geodistance_km(a, b, c), expected, 1e-9);
}

TEST(Geodistance, MinimizesOverFacilities) {
  topology::Graph g;
  util::Rng rng(2);
  const auto world = geo::World::make_default(rng, 10);
  const auto a = g.add_as("a");
  const auto b = g.add_as("b");
  const auto c = g.add_as("c");
  for (const auto as : {a, b, c}) {
    auto& info = g.info(as);
    info.centroid = world.city(0).location;
    info.has_geo = true;
  }
  const auto l1 = g.add_peering(a, b);
  const auto l2 = g.add_peering(b, c);
  g.link(l1).facilities = {1, 2, 3};
  g.link(l2).facilities = {4, 5};
  const GeodistanceModel model(g, world);
  double best = 1e18;
  for (const std::size_t f1 : {1, 2, 3}) {
    for (const std::size_t f2 : {4, 5}) {
      const double d =
          geo::great_circle_km(world.city(0).location,
                               world.city(f1).location) +
          geo::great_circle_km(world.city(f1).location,
                               world.city(f2).location) +
          geo::great_circle_km(world.city(f2).location,
                               world.city(0).location);
      best = std::min(best, d);
    }
  }
  EXPECT_NEAR(model.path_geodistance_km(a, b, c), best, 1e-9);
}

TEST(Geodistance, ReportCountsAreInternallyConsistent) {
  topology::GeneratorParams params;
  params.num_ases = 500;
  params.tier1_count = 4;
  params.seed = 21;
  const auto topo = topology::generate_internet(params);
  const auto sources = sample_sources(topo.graph, 30, 5);
  const auto report = analyze_geodistance(topo.graph, topo.world, sources);
  EXPECT_FALSE(report.pairs.empty());
  for (const GeoPairResult& pair : report.pairs) {
    // below-min implies below-median implies below-max.
    EXPECT_LE(pair.ma_paths_below_grc_min, pair.ma_paths_below_grc_median);
    EXPECT_LE(pair.ma_paths_below_grc_median, pair.ma_paths_below_grc_max);
    EXPECT_GE(pair.relative_reduction, 0.0);
    // 1.0 is attainable when an MA path collapses to zero geodistance
    // (same-city endpoints and facility).
    EXPECT_LE(pair.relative_reduction, 1.0);
    if (pair.relative_reduction > 0.0) {
      EXPECT_GE(pair.ma_paths_below_grc_min, 1u);
    }
  }
}

// --------------------------------------------------------------- bandwidth

TEST(Bandwidth, Length3IsMinOfTwoLinks) {
  auto t = make_fig1();
  topology::assign_degree_gravity_capacities(t.graph);
  const auto l1 = *t.graph.link_between(t.H, t.D);
  const auto l2 = *t.graph.link_between(t.D, t.A);
  EXPECT_DOUBLE_EQ(
      length3_bandwidth(t.graph, t.H, t.D, t.A),
      std::min(t.graph.link(l1).capacity, t.graph.link(l2).capacity));
}

TEST(Bandwidth, ReportCountsAreInternallyConsistent) {
  topology::GeneratorParams params;
  params.num_ases = 500;
  params.tier1_count = 4;
  params.seed = 22;
  auto topo = topology::generate_internet(params);
  topology::assign_degree_gravity_capacities(topo.graph);
  const auto sources = sample_sources(topo.graph, 30, 6);
  const auto report = analyze_bandwidth(topo.graph, sources);
  EXPECT_FALSE(report.pairs.empty());
  for (const BandwidthPairResult& pair : report.pairs) {
    EXPECT_LE(pair.ma_paths_above_grc_max, pair.ma_paths_above_grc_median);
    EXPECT_LE(pair.ma_paths_above_grc_median, pair.ma_paths_above_grc_min);
    EXPECT_GE(pair.relative_increase, 0.0);
    if (pair.relative_increase > 0.0) {
      EXPECT_GE(pair.ma_paths_above_grc_max, 1u);
    }
  }
}

// ------------------------------------------------------------------ report

TEST(Report, SamplesRequestedSourceCount) {
  topology::GeneratorParams params;
  params.num_ases = 300;
  params.tier1_count = 4;
  params.seed = 30;
  const auto topo = topology::generate_internet(params);
  DiversityParams dp;
  dp.sample_sources = 40;
  dp.seed = 7;
  const auto report = analyze_path_diversity(topo.graph, dp);
  EXPECT_EQ(report.sources.size(), 40u);
  EXPECT_EQ(report.path_rows.size(), 40u);
  EXPECT_EQ(report.dest_rows.size(), 40u);
}

TEST(Report, ScenarioOrderingHoldsPerRow) {
  topology::GeneratorParams params;
  params.num_ases = 600;
  params.tier1_count = 5;
  params.seed = 31;
  const auto topo = topology::generate_internet(params);
  DiversityParams dp;
  dp.sample_sources = 80;
  const auto report = analyze_path_diversity(topo.graph, dp);
  for (const auto& rows : {report.path_rows, report.dest_rows}) {
    for (const ScenarioRow& row : rows) {
      ASSERT_EQ(row.ma_top.size(), 3u);
      EXPECT_LE(row.grc, row.ma_top[0]);
      EXPECT_LE(row.ma_top[0], row.ma_top[1]);
      EXPECT_LE(row.ma_top[1], row.ma_top[2]);
      EXPECT_LE(row.ma_top[2], row.ma_star + 1e-9);
      EXPECT_LE(row.ma_star, row.ma_all + 1e-9);
    }
  }
}

TEST(Report, MaSubstantiallyIncreasesDiversity) {
  // The qualitative Fig. 3 claim: full MA conclusion multiplies the number
  // of available length-3 paths for the average AS.
  topology::GeneratorParams params;
  params.num_ases = 1500;
  params.tier1_count = 8;
  params.seed = 32;
  const auto topo = topology::generate_internet(params);
  DiversityParams dp;
  dp.sample_sources = 150;
  const auto report = analyze_path_diversity(topo.graph, dp);
  double grc_total = 0.0;
  double ma_total = 0.0;
  for (const ScenarioRow& row : report.path_rows) {
    grc_total += row.grc;
    ma_total += row.ma_all;
  }
  // At full Internet scale the MA multiplier is far larger (the bench
  // reproduces Fig. 3); on this 1500-AS test graph a >1.25x aggregate gain
  // already confirms the qualitative effect.
  EXPECT_GT(ma_total, 1.25 * grc_total);
  EXPECT_GT(report.additional_paths.mean, 0.0);
  EXPECT_GT(report.additional_dests.mean, 0.0);
}

TEST(Report, SampleSourcesIsDeterministicAndComplete) {
  topology::GeneratorParams params;
  params.num_ases = 200;
  params.tier1_count = 4;
  params.seed = 33;
  const auto topo = topology::generate_internet(params);
  const auto a = sample_sources(topo.graph, 50, 9);
  const auto b = sample_sources(topo.graph, 50, 9);
  EXPECT_EQ(a, b);
  const auto all = sample_sources(topo.graph, 10000, 9);
  EXPECT_EQ(all.size(), topo.graph.num_ases());
}

}  // namespace
}  // namespace panagree::diversity
