#include "panagree/core/bosco/service.hpp"

#include <algorithm>
#include <cmath>

#include "panagree/util/error.hpp"

namespace panagree::bosco {

BoscoService::BoscoService(std::unique_ptr<UtilityDistribution> dist_x,
                           std::unique_ptr<UtilityDistribution> dist_y,
                           BoscoServiceOptions options)
    : dist_x_(std::move(dist_x)),
      dist_y_(std::move(dist_y)),
      options_(options) {
  util::require(dist_x_ != nullptr && dist_y_ != nullptr,
                "BoscoService: distributions must be non-null");
  util::require(options_.trials >= 1, "BoscoService: need at least one trial");
}

BoscoService::Trial BoscoService::run_trial(std::size_t cardinality,
                                            util::Rng& rng,
                                            double expected_truthful) const {
  const ChoiceSet vx = ChoiceSet::random(*dist_x_, cardinality, rng);
  const ChoiceSet vy = ChoiceSet::random(*dist_y_, cardinality, rng);
  EquilibriumResult eq =
      find_equilibrium(vx, vy, *dist_x_, *dist_y_, options_.equilibrium);
  Trial trial{MechanismInfoSet{vx, vy, eq.x, eq.y, 0.0, expected_truthful,
                               1.0, 0.0, eq.converged},
              false};
  if (!eq.converged) {
    return trial;
  }
  trial.info.expected_nash = expected_nash_product(
      vx, vy, trial.info.strategy_x, trial.info.strategy_y, *dist_x_,
      *dist_y_);
  trial.info.pod =
      price_of_dishonesty(trial.info.expected_nash, expected_truthful);
  trial.info.privacy = std::min(eq.x.shortest_active_interval(),
                                eq.y.shortest_active_interval());
  trial.usable = trial.info.privacy >= options_.min_privacy_interval;
  return trial;
}

MechanismInfoSet BoscoService::configure(std::size_t cardinality) const {
  util::Rng rng(options_.seed);
  const double truthful = expected_truthful_nash_product(
      *dist_x_, *dist_y_, options_.truthful_grid);
  util::require(truthful > 0.0,
                "BoscoService::configure: agreement unviable even under "
                "honesty (E[N | truthful] = 0)");
  std::optional<MechanismInfoSet> best;
  for (std::size_t t = 0; t < options_.trials; ++t) {
    Trial trial = run_trial(cardinality, rng, truthful);
    if (trial.usable && (!best || trial.info.pod < best->pod)) {
      best = std::move(trial.info);
    }
  }
  util::require(best.has_value(),
                "BoscoService::configure: no trial converged");
  return *best;
}

BoscoService::TrialStatistics BoscoService::trial_statistics(
    std::size_t cardinality) const {
  util::Rng rng(options_.seed);
  const double truthful = expected_truthful_nash_product(
      *dist_x_, *dist_y_, options_.truthful_grid);
  util::require(truthful > 0.0,
                "BoscoService::trial_statistics: truthful expectation zero");
  TrialStatistics stats;
  stats.trials = options_.trials;
  double pod_sum = 0.0;
  double active_x_sum = 0.0;
  double active_y_sum = 0.0;
  for (std::size_t t = 0; t < options_.trials; ++t) {
    const Trial trial = run_trial(cardinality, rng, truthful);
    if (!trial.usable) {
      continue;
    }
    ++stats.converged_trials;
    pod_sum += trial.info.pod;
    stats.min_pod = std::min(stats.min_pod, trial.info.pod);
    active_x_sum +=
        static_cast<double>(trial.info.strategy_x.active_choices());
    active_y_sum +=
        static_cast<double>(trial.info.strategy_y.active_choices());
  }
  if (stats.converged_trials > 0) {
    const auto n = static_cast<double>(stats.converged_trials);
    stats.mean_pod = pod_sum / n;
    stats.mean_active_choices_x = active_x_sum / n;
    stats.mean_active_choices_y = active_y_sum / n;
  }
  return stats;
}

NegotiationOutcome BoscoService::execute(const MechanismInfoSet& info,
                                         double true_u_x, double true_u_y) {
  NegotiationOutcome outcome;
  outcome.claim_x =
      info.choices_x.value(info.strategy_x.choice_for(true_u_x));
  outcome.claim_y =
      info.choices_y.value(info.strategy_y.choice_for(true_u_y));
  if (std::isinf(outcome.claim_x) || std::isinf(outcome.claim_y) ||
      outcome.claim_x + outcome.claim_y < 0.0) {
    return outcome;  // negotiation cancelled: both parties keep u = 0
  }
  outcome.concluded = true;
  outcome.transfer_x_to_y = (outcome.claim_x - outcome.claim_y) / 2.0;
  outcome.u_x_after = true_u_x - outcome.transfer_x_to_y;
  outcome.u_y_after = true_u_y + outcome.transfer_x_to_y;
  return outcome;
}

}  // namespace panagree::bosco
