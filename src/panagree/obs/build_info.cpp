#include "panagree/obs/build_info.hpp"

#include "panagree/obs/build_info_gen.hpp"

namespace panagree::obs {

namespace {

#define PANAGREE_STR_(x) #x
#define PANAGREE_STR(x) PANAGREE_STR_(x)

constexpr const char* kCompiler =
#if defined(__clang__)
    "clang-" PANAGREE_STR(__clang_major__) "." PANAGREE_STR(
        __clang_minor__) "." PANAGREE_STR(__clang_patchlevel__);
#elif defined(__GNUC__)
    "gcc-" PANAGREE_STR(__GNUC__) "." PANAGREE_STR(
        __GNUC_MINOR__) "." PANAGREE_STR(__GNUC_PATCHLEVEL__);
#else
    "unknown";
#endif

#undef PANAGREE_STR
#undef PANAGREE_STR_

constexpr const char* kObs =
#if defined(PANAGREE_OBS_OFF)
    "off";
#else
    "on";
#endif

}  // namespace

const BuildInfo& build_info() noexcept {
  static const BuildInfo info{
      PANAGREE_BUILD_GIT_DESCRIBE, kCompiler, PANAGREE_BUILD_TYPE,
      PANAGREE_BUILD_FLAGS,        kObs,
  };
  return info;
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  std::string line = "build=";
  line += info.git_describe;
  line += " compiler=";
  line += info.compiler;
  line += " type=";
  line += info.build_type.empty() ? std::string_view("default")
                                  : info.build_type;
  line += " obs=";
  line += info.obs;
  return line;
}

}  // namespace panagree::obs
