// panagree-top: a live terminal dashboard over a panagree-serve daemon.
//
//   panagree-top --port P [--interval SEC] [--limit N] [--once]
//       [--version]
//
// Polls the `stats` and `slowlog` wire kinds each frame and renders:
//
//   * throughput - QPS from the serve.requests.* counter deltas between
//     frames (lifetime average on the first frame, from uptime_s);
//   * per-kind latency p50/p95/p99 out of the serve.latency_ns.*
//     histograms (nearest-rank over the log2 buckets - upper bounds,
//     the same estimator as the Prometheus exposition);
//   * queue depth and its high-water mark, cache hit rates (paths
//     cache vs cold, whatif memo sharing), uptime and peak RSS;
//   * per-shard QPS and epoch columns when the daemon is sharded (the
//     serve.shards gauge and serve.shard.<i>.* metrics are present);
//     against a pre-shard daemon the section simply does not render and
//     the aggregate rows above stand alone;
//   * the slow-query table: the server's slow-query ring, slowest
//     first, with the per-stage nanosecond breakdown of each entry.
//
// --once renders a single plain-text frame (no ANSI control sequences)
// and exits - the scripting/CI mode. Live mode repaints every
// --interval seconds (default 2) until interrupted.
//
// The dashboard is a pure wire client: everything it shows comes out of
// the two introspection responses, so it works against any daemon
// build, including one it did not ship with.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cli_common.hpp"
#include "panagree/obs/export.hpp"
#include "panagree/serve/client.hpp"
#include "panagree/serve/wire.hpp"

using namespace panagree;

namespace {

constexpr const char* kTool = "panagree-top";

void usage() {
  std::cerr << "usage: panagree-top --port P [--interval SEC] [--limit N]"
               " [--once] [--version]\n";
}

volatile std::sig_atomic_t g_interrupted = 0;

extern "C" void on_interrupt(int) { g_interrupted = 1; }

[[nodiscard]] std::uint64_t find_counter(const obs::MetricsSnapshot& snap,
                                         std::string_view name) {
  for (const obs::CounterSample& counter : snap.counters) {
    if (counter.name == name) {
      return counter.value;
    }
  }
  return 0;
}

[[nodiscard]] std::int64_t find_gauge(const obs::MetricsSnapshot& snap,
                                      std::string_view name) {
  for (const obs::GaugeSample& gauge : snap.gauges) {
    if (gauge.name == name) {
      return gauge.value;
    }
  }
  return 0;
}

[[nodiscard]] const obs::HistogramSample* find_histogram(
    const obs::MetricsSnapshot& snap, std::string_view name) {
  for (const obs::HistogramSample& histogram : snap.histograms) {
    if (histogram.name == name) {
      return &histogram;
    }
  }
  return nullptr;
}

[[nodiscard]] double ns_to_ms(std::uint64_t ns) {
  return static_cast<double>(ns) / 1e6;
}

/// Sum of the serve.requests.* counters - the denominator of QPS.
[[nodiscard]] std::uint64_t total_requests(
    const obs::MetricsSnapshot& snap) {
  std::uint64_t total = 0;
  for (const obs::CounterSample& counter : snap.counters) {
    if (std::string_view(counter.name).rfind("serve.requests.", 0) == 0) {
      total += counter.value;
    }
  }
  return total;
}

[[nodiscard]] double percent(std::uint64_t part, std::uint64_t whole) {
  return whole == 0
             ? 0.0
             : 100.0 * static_cast<double>(part) /
                   static_cast<double>(whole);
}

struct Frame {
  serve::StatsResult stats;
  serve::SlowLogResult slowlog;
  std::chrono::steady_clock::time_point at;
};

[[nodiscard]] Frame poll_frame(serve::ClientConnection& conn) {
  Frame frame;
  conn.send_line("{\"v\":1,\"id\":1,\"kind\":\"stats\"}");
  std::string response = conn.read_line();
  if (response.empty()) {
    throw serve::ClientError("connection closed before stats response");
  }
  frame.stats = serve::parse_stats_response(response);
  conn.send_line("{\"v\":1,\"id\":2,\"kind\":\"slowlog\"}");
  response = conn.read_line();
  if (response.empty()) {
    throw serve::ClientError("connection closed before slowlog response");
  }
  frame.slowlog = serve::parse_slowlog_response(response);
  frame.at = std::chrono::steady_clock::now();
  return frame;
}

void render_frame(const Frame& frame, const Frame* previous,
                  std::size_t limit) {
  const obs::MetricsSnapshot& snap = frame.stats.metrics;
  const std::uint64_t total = total_requests(snap);

  // QPS: counter delta over the inter-frame interval; the first frame
  // falls back to the lifetime average so --once still shows a rate.
  double qps = 0.0;
  if (previous != nullptr) {
    const std::uint64_t prev_total = total_requests(previous->stats.metrics);
    const double dt =
        std::chrono::duration<double>(frame.at - previous->at).count();
    if (dt > 0 && total >= prev_total) {
      qps = static_cast<double>(total - prev_total) / dt;
    }
  } else {
    const std::int64_t uptime = find_gauge(snap, "process.uptime_s");
    if (uptime > 0) {
      qps = static_cast<double>(total) / static_cast<double>(uptime);
    }
  }

  std::printf("panagree-top  build %s  epoch %" PRIu64
              "  uptime %" PRId64 "s  peak rss %" PRId64 " MB\n",
              frame.stats.build.c_str(), frame.stats.epoch,
              find_gauge(snap, "process.uptime_s"),
              find_gauge(snap, "process.peak_rss_kb") / 1024);
  std::printf("qps %.1f  requests %" PRIu64 "  queue depth %" PRId64
              " (hwm %" PRId64 ")\n\n",
              qps, total, find_gauge(snap, "server.queue_depth"),
              find_gauge(snap, "server.queue_depth_hwm"));

  std::printf("%-10s %10s %10s %10s %10s\n", "kind", "count", "p50 ms",
              "p95 ms", "p99 ms");
  for (const char* kind : {"paths", "diversity", "whatif", "stats",
                           "slowlog", "rebase", "errors"}) {
    const std::string name = std::string("serve.latency_ns.") + kind;
    const obs::HistogramSample* histogram = find_histogram(snap, name);
    if (histogram == nullptr || histogram->count == 0) {
      continue;
    }
    std::printf("%-10s %10" PRIu64 " %10.3f %10.3f %10.3f\n", kind,
                histogram->count,
                ns_to_ms(obs::histogram_percentile(*histogram, 50.0)),
                ns_to_ms(obs::histogram_percentile(*histogram, 95.0)),
                ns_to_ms(obs::histogram_percentile(*histogram, 99.0)));
  }

  const std::uint64_t cache_hits =
      find_counter(snap, "engine.paths_cache_hits");
  const std::uint64_t cold = find_counter(snap, "engine.paths_cold");
  const std::uint64_t memo_hits =
      find_counter(snap, "engine.whatif_memo_hits");
  const std::uint64_t memo_shared =
      find_counter(snap, "engine.whatif_memo_shared");
  const std::uint64_t memo_unshared =
      find_counter(snap, "engine.whatif_unshared");
  std::printf(
      "\ncache: paths %.1f%% hit (%" PRIu64 "/%" PRIu64
      ")  whatif memo: %" PRIu64 " hits, %" PRIu64 " shared, %" PRIu64
      " unshared\n",
      percent(cache_hits, cache_hits + cold), cache_hits,
      cache_hits + cold, memo_hits, memo_shared, memo_unshared);

  // Sharded daemons publish serve.shards plus per-shard request
  // counters and epoch gauges; a pre-shard daemon has none of them, and
  // the section degrades to nothing (the aggregate rows above are the
  // whole story then).
  const std::int64_t num_shards = find_gauge(snap, "serve.shards");
  if (num_shards > 0) {
    std::printf("\n%-8s %12s %10s %8s\n", "shard", "requests", "qps",
                "epoch");
    for (std::int64_t shard = 0; shard < num_shards; ++shard) {
      const std::string prefix =
          "serve.shard." + std::to_string(shard) + ".";
      const std::uint64_t requests =
          find_counter(snap, prefix + "requests");
      double shard_qps = 0.0;
      if (previous != nullptr) {
        const std::uint64_t prev_requests =
            find_counter(previous->stats.metrics, prefix + "requests");
        const double dt =
            std::chrono::duration<double>(frame.at - previous->at).count();
        if (dt > 0 && requests >= prev_requests) {
          shard_qps = static_cast<double>(requests - prev_requests) / dt;
        }
      } else {
        const std::int64_t uptime = find_gauge(snap, "process.uptime_s");
        if (uptime > 0) {
          shard_qps =
              static_cast<double>(requests) / static_cast<double>(uptime);
        }
      }
      std::printf("%-8" PRId64 " %12" PRIu64 " %10.1f %8" PRId64 "\n",
                  shard, requests, shard_qps,
                  find_gauge(snap, prefix + "epoch"));
    }
  }

  std::printf("\nslow queries (threshold %.1f ms, %zu captured):\n",
              ns_to_ms(frame.slowlog.threshold_ns),
              frame.slowlog.entries.size());
  std::printf("%6s %-10s %8s %10s %9s %9s %9s %9s %9s\n", "id", "kind",
              "source", "wall ms", "queue", "parse", "engine", "serial",
              "send");
  const std::size_t shown =
      std::min<std::size_t>(limit, frame.slowlog.entries.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const obs::SlowQueryRecord& entry = frame.slowlog.entries[i];
    std::printf("%6" PRIu64 " %-10.10s %8" PRIu64
                " %10.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                entry.wire_id,
                std::string(serve::slow_kind_name(entry.kind)).c_str(),
                entry.source, ns_to_ms(entry.wall_ns),
                ns_to_ms(entry.queue_ns), ns_to_ms(entry.parse_ns),
                ns_to_ms(entry.engine_ns), ns_to_ms(entry.serialize_ns),
                ns_to_ms(entry.send_ns));
  }
  if (shown < frame.slowlog.entries.size()) {
    std::printf("  ... %zu more (raise --limit)\n",
                frame.slowlog.entries.size() - shown);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t port = 0;
  bool have_port = false;
  std::size_t interval_s = 2;
  std::size_t limit = 16;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      cli::print_version(kTool);
    } else if (arg == "--port") {
      port = cli::parse_size(kTool, arg,
                             cli::require_value(kTool, arg, argc, argv, i));
      have_port = true;
    } else if (arg == "--interval") {
      interval_s = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--limit") {
      limit = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--once") {
      once = true;
    } else {
      usage();
      return cli::kUsageExit;
    }
  }
  if (!have_port || port > 65535 || (!once && interval_s == 0)) {
    usage();
    return cli::kUsageExit;
  }

  try {
    serve::ClientConnection conn(static_cast<std::uint16_t>(port));
    if (once) {
      const Frame frame = poll_frame(conn);
      render_frame(frame, nullptr, limit);
      return 0;
    }
    struct sigaction action{};
    action.sa_handler = on_interrupt;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    Frame previous = poll_frame(conn);
    std::fputs("\x1b[2J", stdout);  // clear once; frames repaint in place
    std::fputs("\x1b[H", stdout);
    render_frame(previous, nullptr, limit);
    while (g_interrupted == 0) {
      std::this_thread::sleep_for(std::chrono::seconds(interval_s));
      if (g_interrupted != 0) {
        break;
      }
      const Frame frame = poll_frame(conn);
      std::fputs("\x1b[H\x1b[J", stdout);  // home + clear below
      render_frame(frame, &previous, limit);
      previous = frame;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
