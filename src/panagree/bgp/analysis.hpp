// Cross-cutting BGP/route analysis helpers.
#pragma once

#include <vector>

#include "panagree/bgp/spp.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::bgp {

using topology::Graph;

/// All simple valley-free paths from src to dst with at most `max_len` ASes.
/// Convenience adapter: compiles a snapshot per call. Repeated callers
/// should compile once and use the CompiledTopology overload.
[[nodiscard]] std::vector<Path> enumerate_valley_free_paths(
    const Graph& graph, AsId src, AsId dst, std::size_t max_len = 6);

/// Same, over an existing snapshot (no per-call compilation).
[[nodiscard]] std::vector<Path> enumerate_valley_free_paths(
    const topology::CompiledTopology& topo, AsId src, AsId dst,
    std::size_t max_len = 6);

/// Relationship class of a route as seen by its first AS (how the route was
/// learned): 0 = from a customer, 1 = from a peer, 2 = from a provider.
/// Single-AS paths are class 0.
[[nodiscard]] int route_relationship_class(const Graph& graph,
                                           const Path& path);

/// Summary of an SPP instance's stability structure (brute force; use on
/// gadget-sized instances only).
struct StabilityProfile {
  std::size_t stable_solutions = 0;
  bool safe_under_synchronous = false;  ///< synchronous SPVP converged
};

[[nodiscard]] StabilityProfile profile_stability(const SppInstance& instance);

}  // namespace panagree::bgp
