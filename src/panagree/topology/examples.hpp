// Hand-built example topologies used across tests, examples, and benches.
#pragma once

#include "panagree/topology/graph.hpp"

namespace panagree::topology {

/// The paper's Figure 1 topology.
///
/// Peering links (dashed in the paper): A-B, C-D, D-E, E-F, F-G.
/// Provider->customer links: A->C, A->D, B->E, B->F, B->G, D->H, E->I.
///
/// The text's running examples live here: agreement a = [D(^{A}); E(^{B},
/// ->{F})], the extension agreement a' between E and F, the peering
/// agreement ap = [D(v{H}); E(v{I})], and the GRC-violating path ADE.
struct Fig1 {
  Graph graph;
  AsId A, B, C, D, E, F, G, H, I;
};

[[nodiscard]] Fig1 make_fig1();

/// A minimal diamond: T1 provider P on top, two peers X, Y below it, each
/// with one customer. Handy for closed-form economic tests.
struct Diamond {
  Graph graph;
  AsId P;   ///< shared provider
  AsId X;   ///< left mid AS
  AsId Y;   ///< right mid AS (peer of X)
  AsId CX;  ///< customer of X
  AsId CY;  ///< customer of Y
};

[[nodiscard]] Diamond make_diamond();

}  // namespace panagree::topology
