// .pansnap reader: validates the mapped file, materializes Graph/World,
// and borrows the CSR arrays zero-copy out of the mapping.
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "panagree/obs/metrics.hpp"
#include "panagree/storage/snapshot.hpp"

namespace panagree::storage {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw SnapshotError("MappedSnapshot: " + what);
}

/// Bounds-checked, typed access to the mapped sections.
class SectionIndex {
 public:
  SectionIndex(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {
    if (size_ < sizeof(FileHeader)) {
      reject("file truncated (no header)");
    }
    std::memcpy(&header_, data_, sizeof(header_));
    if (std::memcmp(header_.magic, kMagic, sizeof(kMagic)) != 0) {
      reject("bad magic (not a .pansnap file)");
    }
    if (header_.endian_probe != kEndianProbe) {
      reject("endianness mismatch (snapshot written on a foreign host)");
    }
    if (header_.version != kFormatVersion) {
      reject("version mismatch (file version " +
             std::to_string(header_.version) + ", reader version " +
             std::to_string(kFormatVersion) + "); recompile the snapshot");
    }
    if (header_.file_bytes != size_) {
      reject("file truncated (header records " +
             std::to_string(header_.file_bytes) + " bytes, mapped " +
             std::to_string(size_) + ")");
    }
    const std::size_t table_bytes =
        header_.section_count * sizeof(SectionRecord);
    if (header_.section_table_offset > size_ ||
        table_bytes > size_ - header_.section_table_offset) {
      reject("section table out of bounds");
    }
    for (std::uint64_t i = 0; i < header_.section_count; ++i) {
      SectionRecord record;
      std::memcpy(&record,
                  data_ + header_.section_table_offset +
                      i * sizeof(SectionRecord),
                  sizeof(record));
      if (record.offset % kSectionAlignment != 0 || record.offset > size_ ||
          record.bytes > size_ - record.offset) {
        reject("section " + std::to_string(record.kind) + " out of bounds");
      }
      if (!records_.emplace(record.kind, record).second) {
        reject("duplicate section " + std::to_string(record.kind));
      }
    }
  }

  [[nodiscard]] const FileHeader& header() const { return header_; }

  /// The section's payload as a typed array of exactly `count` elements.
  template <typename T>
  [[nodiscard]] std::span<const T> array(SectionKind kind,
                                         std::size_t count) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const SectionRecord& record = find(kind);
    if (record.bytes != count * sizeof(T)) {
      reject("section " + std::to_string(record.kind) + " has " +
             std::to_string(record.bytes) + " bytes, expected " +
             std::to_string(count * sizeof(T)));
    }
    return {reinterpret_cast<const T*>(data_ + record.offset), count};
  }

  /// A jagged payload section whose element count comes from the last
  /// entry of its begin-offset array.
  template <typename T>
  [[nodiscard]] std::span<const T> jagged(SectionKind kind,
                                          std::span<const std::uint32_t>
                                              begins) const {
    if (begins.empty()) {
      reject("empty begin-offset array");
    }
    return array<T>(kind, begins.back());
  }

  /// Absolute file range of a section's payload (for access-pattern
  /// advice on the mapping).
  [[nodiscard]] std::pair<std::size_t, std::size_t> payload_range(
      SectionKind kind) const {
    const SectionRecord& record = find(kind);
    return {static_cast<std::size_t>(record.offset),
            static_cast<std::size_t>(record.bytes)};
  }

  /// A section holding a plain id list whose length is implied by its byte
  /// count (the tier membership lists).
  [[nodiscard]] std::span<const std::uint32_t> id_list(
      SectionKind kind) const {
    const SectionRecord& record = find(kind);
    if (record.bytes % sizeof(std::uint32_t) != 0) {
      reject("section " + std::to_string(record.kind) +
             " is not a whole number of ids");
    }
    return array<std::uint32_t>(kind,
                                record.bytes / sizeof(std::uint32_t));
  }

  /// Whether the snapshot carries `kind` at all (optional sections).
  [[nodiscard]] bool has(SectionKind kind) const {
    return records_.count(static_cast<std::uint32_t>(kind)) != 0;
  }

 private:
  [[nodiscard]] const SectionRecord& find(SectionKind kind) const {
    const auto it = records_.find(static_cast<std::uint32_t>(kind));
    if (it == records_.end()) {
      reject("missing section " +
             std::to_string(static_cast<std::uint32_t>(kind)));
    }
    return it->second;
  }

  const std::byte* data_;
  std::size_t size_;
  FileHeader header_{};
  std::unordered_map<std::uint32_t, SectionRecord> records_;
};

/// Monotone begin-offset array check (jagged rows must be well-formed
/// before any row is sliced out of the payload).
void check_begins(std::span<const std::uint32_t> begins, const char* what) {
  if (begins.empty() || begins.front() != 0) {
    reject(std::string(what) + ": begin-offset array must start at 0");
  }
  for (std::size_t i = 1; i < begins.size(); ++i) {
    if (begins[i] < begins[i - 1]) {
      reject(std::string(what) + ": begin-offset array not monotone");
    }
  }
}

/// WILLNEED prefetch on the CSR sections (the first arrays any analysis
/// walks) + whole-mapping THP behind PANAGREE_MMAP_THP=1.
MmapAdviceReport apply_advice(const MmapFile& file,
                              const SectionIndex& sections) {
  MmapAdviceReport report;
  report.willneed_applied = true;
  for (const SectionKind kind :
       {SectionKind::kRowStart, SectionKind::kProvidersEnd,
        SectionKind::kPeersEnd, SectionKind::kEntries}) {
    const auto [offset, bytes] = sections.payload_range(kind);
    if (bytes > 0 &&
        !file.advise(offset, bytes, MmapFile::Advice::kWillNeed)) {
      report.willneed_applied = false;
    }
  }
  const char* thp = std::getenv("PANAGREE_MMAP_THP");
  if (thp != nullptr && std::strcmp(thp, "1") == 0) {
    report.hugepage_requested = true;
    report.hugepage_applied =
        file.advise(0, file.size(), MmapFile::Advice::kHugePage);
  }
  return report;
}

}  // namespace

std::string MmapAdviceReport::describe() const {
  std::string out = "willneed(csr)=";
  out += willneed_applied ? "applied" : "refused";
  out += " thp=";
  if (!hugepage_requested) {
    out += "off";
  } else {
    out += hugepage_applied ? "applied" : "refused";
  }
  return out;
}

MappedSnapshot MappedSnapshot::open(const std::string& path) {
  MmapFile file = MmapFile::open(path);
  const SectionIndex sections(file.data(), file.size());
  const FileHeader& header = sections.header();
  const auto n = static_cast<std::size_t>(header.num_ases);
  const auto num_links = static_cast<std::size_t>(header.num_links);
  const auto num_cities = static_cast<std::size_t>(header.num_cities);
  const auto num_regions = static_cast<std::size_t>(header.num_regions);

  auto state = std::make_unique<State>();

  // ----------------------------------------------------------- AS table
  const auto tier = sections.array<std::int32_t>(SectionKind::kAsTier, n);
  const auto as_region =
      sections.array<std::uint32_t>(SectionKind::kAsRegion, n);
  const auto centroid =
      sections.array<double>(SectionKind::kAsCentroid, 2 * n);
  const auto has_geo =
      sections.array<std::uint8_t>(SectionKind::kAsHasGeo, n);
  const auto pop_begin =
      sections.array<std::uint32_t>(SectionKind::kAsPopBegin, n + 1);
  check_begins(pop_begin, "AS PoPs");
  const auto pops =
      sections.jagged<std::uint32_t>(SectionKind::kAsPops, pop_begin);
  const auto name_begin =
      sections.array<std::uint32_t>(SectionKind::kAsNameBegin, n + 1);
  check_begins(name_begin, "AS names");
  const auto names =
      sections.jagged<char>(SectionKind::kAsNames, name_begin);

  std::vector<topology::AsInfo> infos(n);
  for (std::size_t as = 0; as < n; ++as) {
    topology::AsInfo& info = infos[as];
    info.name.assign(names.data() + name_begin[as],
                     names.data() + name_begin[as + 1]);
    info.tier = tier[as];
    info.region = as_region[as];
    info.centroid = {centroid[2 * as], centroid[2 * as + 1]};
    info.has_geo = has_geo[as] != 0;
    info.pops.assign(pops.begin() + pop_begin[as],
                     pops.begin() + pop_begin[as + 1]);
  }

  // --------------------------------------------------------- link table
  const auto link_a = sections.array<std::uint32_t>(SectionKind::kLinkA,
                                                    num_links);
  const auto link_b = sections.array<std::uint32_t>(SectionKind::kLinkB,
                                                    num_links);
  const auto link_type =
      sections.array<std::uint8_t>(SectionKind::kLinkType, num_links);
  const auto capacity =
      sections.array<double>(SectionKind::kLinkCapacity, num_links);
  const auto fac_begin = sections.array<std::uint32_t>(
      SectionKind::kLinkFacilityBegin, num_links + 1);
  check_begins(fac_begin, "link facilities");
  const auto facilities =
      sections.jagged<std::uint32_t>(SectionKind::kLinkFacilities, fac_begin);

  std::vector<topology::Link> links(num_links);
  for (std::size_t id = 0; id < num_links; ++id) {
    topology::Link& link = links[id];
    link.a = link_a[id];
    link.b = link_b[id];
    if (link_type[id] > 1) {
      reject("link " + std::to_string(id) + " has invalid type byte");
    }
    link.type = static_cast<topology::LinkType>(link_type[id]);
    link.capacity = capacity[id];
    link.facilities.assign(facilities.begin() + fac_begin[id],
                           facilities.begin() + fac_begin[id + 1]);
  }

  try {
    state->graph = topology::Graph::restore(std::move(infos),
                                            std::move(links));
  } catch (const util::PreconditionError& e) {
    reject(std::string("inconsistent graph tables: ") + e.what());
  }

  // -------------------------------------------------------- world tables
  const auto city_location =
      sections.array<double>(SectionKind::kCityLocation, 2 * num_cities);
  const auto city_region =
      sections.array<std::uint32_t>(SectionKind::kCityRegion, num_cities);
  const auto city_name_begin = sections.array<std::uint32_t>(
      SectionKind::kCityNameBegin, num_cities + 1);
  check_begins(city_name_begin, "city names");
  const auto city_names =
      sections.jagged<char>(SectionKind::kCityNames, city_name_begin);
  const auto region_center =
      sections.array<double>(SectionKind::kRegionCenter, 2 * num_regions);
  const auto region_radius =
      sections.array<double>(SectionKind::kRegionRadius, num_regions);
  const auto region_name_begin = sections.array<std::uint32_t>(
      SectionKind::kRegionNameBegin, num_regions + 1);
  check_begins(region_name_begin, "region names");
  const auto region_names =
      sections.jagged<char>(SectionKind::kRegionNames, region_name_begin);
  const auto region_city_begin = sections.array<std::uint32_t>(
      SectionKind::kRegionCityBegin, num_regions + 1);
  check_begins(region_city_begin, "region city ids");
  const auto region_city_ids = sections.jagged<std::uint32_t>(
      SectionKind::kRegionCityIds, region_city_begin);

  std::vector<geo::City> cities(num_cities);
  for (std::size_t c = 0; c < num_cities; ++c) {
    cities[c].name.assign(city_names.data() + city_name_begin[c],
                          city_names.data() + city_name_begin[c + 1]);
    cities[c].location = {city_location[2 * c], city_location[2 * c + 1]};
    cities[c].region = city_region[c];
  }
  std::vector<geo::Region> regions(num_regions);
  for (std::size_t r = 0; r < num_regions; ++r) {
    regions[r].name.assign(region_names.data() + region_name_begin[r],
                           region_names.data() + region_name_begin[r + 1]);
    regions[r].center = {region_center[2 * r], region_center[2 * r + 1]};
    regions[r].radius_km = region_radius[r];
    regions[r].city_ids.assign(
        region_city_ids.begin() + region_city_begin[r],
        region_city_ids.begin() + region_city_begin[r + 1]);
  }
  try {
    state->world = geo::World::restore(std::move(regions), std::move(cities));
  } catch (const util::PreconditionError& e) {
    reject(std::string("inconsistent world tables: ") + e.what());
  }

  // ---------------------------------------------------------- tier lists
  const auto load_id_list = [&](SectionKind kind, std::vector<AsId>& out,
                                const char* what) {
    const std::span<const AsId> ids = sections.id_list(kind);
    out.assign(ids.begin(), ids.end());
    for (const AsId as : out) {
      if (as >= n) {
        reject(std::string(what) + " member out of range");
      }
    }
  };
  load_id_list(SectionKind::kTier1, state->tier1, "tier1");
  load_id_list(SectionKind::kTier2, state->tier2, "tier2");
  load_id_list(SectionKind::kTier3, state->tier3, "tier3");

  // ----------------------------------------------- CSR arrays (zero-copy)
  const auto row_start =
      sections.array<std::uint32_t>(SectionKind::kRowStart, n + 1);
  const auto providers_end =
      sections.array<std::uint32_t>(SectionKind::kProvidersEnd, n);
  const auto peers_end =
      sections.array<std::uint32_t>(SectionKind::kPeersEnd, n);
  const auto entries =
      sections.array<TopoEntry>(SectionKind::kEntries, 2 * num_links);
  if (row_start.front() != 0 ||
      row_start.back() != entries.size()) {
    reject("CSR row offsets do not cover the entry array");
  }
  for (std::size_t as = 0; as < n; ++as) {
    if (row_start[as] > providers_end[as] ||
        providers_end[as] > peers_end[as] ||
        peers_end[as] > row_start[as + 1]) {
      reject("CSR role-group offsets out of order at AS " +
             std::to_string(as));
    }
  }
  for (const TopoEntry& entry : entries) {
    if (entry.neighbor >= n || entry.link >= num_links ||
        static_cast<std::uint8_t>(entry.role) > 2) {
      reject("CSR entry out of range");
    }
  }
  state->compiled = topology::CompiledTopology::borrow(
      state->graph, row_start, providers_end, peers_end, entries);

  // ------------------------- shard plan + primed baseline (optional)
  // Older snapshots simply lack these sections; newer snapshots always
  // write the six together, so a partial set is a corrupt file.
  if (sections.has(SectionKind::kShardSourceIds)) {
    if (!sections.has(SectionKind::kShardSourceBegin) ||
        !sections.has(SectionKind::kShardRowRanges) ||
        !sections.has(SectionKind::kBaselineGrcCounts) ||
        !sections.has(SectionKind::kBaselinePathBegin) ||
        !sections.has(SectionKind::kBaselinePaths)) {
      reject("shard plan sections are incomplete");
    }
    ShardPlanView plan;
    plan.sources = sections.id_list(SectionKind::kShardSourceIds);
    for (const AsId source : plan.sources) {
      if (source >= n) {
        reject("shard source out of range");
      }
    }
    plan.shard_begin = sections.id_list(SectionKind::kShardSourceBegin);
    if (plan.shard_begin.size() < 2) {
      reject("shard partition must have at least one shard");
    }
    check_begins(plan.shard_begin, "shard partition");
    if (plan.shard_begin.back() != plan.sources.size()) {
      reject("shard partition does not cover the source sample");
    }
    plan.num_shards = plan.shard_begin.size() - 1;
    plan.row_ranges = sections.array<std::uint32_t>(
        SectionKind::kShardRowRanges, 2 * plan.num_shards);
    for (std::size_t shard = 0; shard < plan.num_shards; ++shard) {
      if (plan.row_ranges[2 * shard] > plan.row_ranges[2 * shard + 1] ||
          plan.row_ranges[2 * shard + 1] > entries.size()) {
        reject("shard CSR row range out of bounds");
      }
    }

    const std::size_t num_sources = plan.sources.size();
    PrimedBaselineView baseline;
    baseline.grc_counts = sections.array<std::uint32_t>(
        SectionKind::kBaselineGrcCounts, num_sources);
    baseline.path_begin = sections.array<std::uint32_t>(
        SectionKind::kBaselinePathBegin, num_sources + 1);
    check_begins(baseline.path_begin, "baseline paths");
    for (std::size_t i = 0; i < num_sources; ++i) {
      if (baseline.grc_counts[i] >
          baseline.path_begin[i + 1] - baseline.path_begin[i]) {
        reject("baseline GRC count exceeds the source's path row");
      }
    }
    baseline.path_words = sections.array<std::uint32_t>(
        SectionKind::kBaselinePaths,
        std::size_t{3} * baseline.path_begin.back());
    for (const std::uint32_t word : baseline.path_words) {
      if (word >= n) {
        reject("baseline path AS id out of range");
      }
    }
    state->shard_plan = plan;
    state->primed_baseline = baseline;
  }

  const MmapAdviceReport advice = apply_advice(file, sections);
  if constexpr (obs::enabled()) {
    obs::Registry& registry = obs::Registry::global();
    registry.counter("storage.snapshots_opened").increment();
    registry.gauge("storage.mmap_bytes")
        .set(static_cast<std::int64_t>(file.size()));
    registry.gauge("storage.willneed_applied")
        .set(advice.willneed_applied ? 1 : 0);
    registry.gauge("storage.thp_applied").set(advice.hugepage_applied ? 1 : 0);
    registry.gauge("storage.shard_plan")
        .set(state->shard_plan
                 ? static_cast<std::int64_t>(state->shard_plan->num_shards)
                 : 0);
  }
  return MappedSnapshot(std::move(file), std::move(state), advice);
}

}  // namespace panagree::storage
