// panagree-diversity: the §VI path-diversity analysis over an arbitrary
// as-rel2 relationship file (e.g. the real CAIDA dataset) or a freshly
// generated synthetic topology.
//
//   panagree-diversity <as-rel2-file> [sources] [seed] [--threads N]
//       [--pin-threads]
//   panagree-diversity --synthetic <num_ases> [sources] [seed]
//   panagree-diversity --snapshot <file.pansnap> [sources] [seed]
//
// --threads (anywhere on the line) sets the per-source fan-out worker
// count, 0 = one per hardware core; results are thread-count
// independent.
//
// --snapshot mmaps a compiled topology snapshot (see panagree-compile)
// instead of re-parsing an as-rel2 file - the startup path for repeated
// analyses of CAIDA-scale graphs.
//
// Prints the Figure 3/4 scenario statistics and the §VI-A aggregates.
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/storage/snapshot.hpp"
#include "panagree/topology/caida.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/table.hpp"

using namespace panagree;

int main(int raw_argc, char** raw_argv) {
  // --threads/--pin-threads may appear anywhere; strip them before the
  // positional logic.
  std::size_t threads = 0;
  bool pin_threads = panagree::cli::env_pin_threads();
  std::vector<char*> args;
  args.push_back(raw_argv[0]);
  for (int i = 1; i < raw_argc; ++i) {
    if (std::string(raw_argv[i]) == "--version") {
      panagree::cli::print_version("panagree-diversity");
    } else if (std::string(raw_argv[i]) == "--threads") {
      threads = panagree::cli::parse_threads("panagree-diversity", raw_argc,
                                             raw_argv, i);
    } else if (std::string(raw_argv[i]) == "--pin-threads") {
      pin_threads = true;
    } else {
      args.push_back(raw_argv[i]);
    }
  }
  panagree::cli::init_tracing();
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  if (argc < 2) {
    std::cerr << "usage: panagree-diversity <as-rel2-file> [sources] [seed]"
                 " [--threads N] [--pin-threads]\n"
              << "       panagree-diversity --synthetic <num_ases> [sources] "
                 "[seed]\n"
              << "       panagree-diversity --snapshot <file.pansnap> "
                 "[sources] [seed]\n";
    return 2;
  }
  try {
    topology::Graph owned;
    std::optional<storage::MappedSnapshot> snapshot;
    int arg = 2;
    if (std::string(argv[1]) == "--synthetic") {
      if (argc < 3) {
        std::cerr << "--synthetic requires a size argument\n";
        return 2;
      }
      topology::GeneratorParams params;
      params.num_ases = std::stoul(argv[2]);
      params.seed = 424242;
      owned = topology::generate_internet(params).graph;
      arg = 3;
    } else if (std::string(argv[1]) == "--snapshot") {
      if (argc < 3) {
        std::cerr << "--snapshot requires a file argument\n";
        return 2;
      }
      snapshot.emplace(storage::MappedSnapshot::open(argv[2]));
      arg = 3;
    } else {
      owned = topology::caida::parse_file(argv[1]).graph;
    }
    const topology::Graph& graph = snapshot ? snapshot->graph() : owned;
    diversity::DiversityParams params;
    params.sample_sources = argc > arg ? std::stoul(argv[arg]) : 500;
    params.seed = argc > arg + 1 ? std::stoull(argv[arg + 1]) : 7;
    params.threads = threads;
    params.pin_threads = pin_threads;

    std::cerr << "topology: " << graph.num_ases() << " ASes, "
              << graph.num_links() << " links; analyzing "
              << params.sample_sources << " sources\n";
    const auto report = diversity::analyze_path_diversity(graph, params);

    util::Table table({"series", "mean paths", "median paths", "max paths",
                       "mean dests", "median dests"});
    const auto summarize_pair = [&](const char* name, auto path_of,
                                    auto dest_of) {
      std::vector<double> paths, dests;
      for (std::size_t i = 0; i < report.path_rows.size(); ++i) {
        paths.push_back(path_of(report.path_rows[i]));
        dests.push_back(dest_of(report.dest_rows[i]));
      }
      const auto ps = util::summarize(paths);
      const auto ds = util::summarize(dests);
      table.add_row({name, util::format_double(ps.mean, 1),
                     util::format_double(ps.median, 1),
                     util::format_double(ps.max, 0),
                     util::format_double(ds.mean, 1),
                     util::format_double(ds.median, 1)});
    };
    using Row = diversity::ScenarioRow;
    summarize_pair(
        "GRC", [](const Row& r) { return r.grc; },
        [](const Row& r) { return r.grc; });
    summarize_pair(
        "MA* (Top 1)", [](const Row& r) { return r.ma_top[0]; },
        [](const Row& r) { return r.ma_top[0]; });
    summarize_pair(
        "MA* (Top 5)", [](const Row& r) { return r.ma_top[1]; },
        [](const Row& r) { return r.ma_top[1]; });
    summarize_pair(
        "MA*", [](const Row& r) { return r.ma_star; },
        [](const Row& r) { return r.ma_star; });
    summarize_pair(
        "MA", [](const Row& r) { return r.ma_all; },
        [](const Row& r) { return r.ma_all; });
    table.print(std::cout);

    std::cout << "\nadditional MA paths per AS:        mean "
              << report.additional_paths.mean << ", max "
              << report.additional_paths.max
              << "\nadditional destinations per AS:    mean "
              << report.additional_dests.mean << ", max "
              << report.additional_dests.max << "\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
