#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "panagree/topology/caida.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::topology {
namespace {

GeneratorParams small_params(std::uint64_t seed, std::size_t n = 600) {
  GeneratorParams p;
  p.num_ases = n;
  p.tier1_count = 6;
  p.seed = seed;
  return p;
}

TEST(Generator, ProducesRequestedAsCount) {
  const auto topo = generate_internet(small_params(1));
  EXPECT_EQ(topo.graph.num_ases(), 600u);
  EXPECT_EQ(topo.tier1.size(), 6u);
  EXPECT_EQ(topo.tier1.size() + topo.tier2.size() + topo.tier3.size(),
            topo.graph.num_ases());
}

TEST(Generator, Tier1FormsFullPeeringMesh) {
  const auto topo = generate_internet(small_params(2));
  for (std::size_t i = 0; i < topo.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.tier1.size(); ++j) {
      EXPECT_TRUE(topo.graph.are_peers(topo.tier1[i], topo.tier1[j]));
    }
  }
}

TEST(Generator, Tier1HasNoProviders) {
  const auto topo = generate_internet(small_params(3));
  for (const AsId as : topo.tier1) {
    EXPECT_TRUE(topo.graph.providers(as).empty());
  }
}

TEST(Generator, EveryNonCoreAsHasAProvider) {
  const auto topo = generate_internet(small_params(4));
  for (const AsId as : topo.tier2) {
    EXPECT_FALSE(topo.graph.providers(as).empty()) << "tier2 " << as;
  }
  for (const AsId as : topo.tier3) {
    EXPECT_FALSE(topo.graph.providers(as).empty()) << "tier3 " << as;
  }
}

TEST(Generator, IsDeterministicPerSeed) {
  const auto a = generate_internet(small_params(7));
  const auto b = generate_internet(small_params(7));
  ASSERT_EQ(a.graph.num_links(), b.graph.num_links());
  for (LinkId id = 0; id < a.graph.num_links(); ++id) {
    EXPECT_EQ(a.graph.link(id).a, b.graph.link(id).a);
    EXPECT_EQ(a.graph.link(id).b, b.graph.link(id).b);
    EXPECT_EQ(a.graph.link(id).type, b.graph.link(id).type);
  }
}

TEST(Generator, DiffersAcrossSeeds) {
  const auto a = generate_internet(small_params(8));
  const auto b = generate_internet(small_params(9));
  EXPECT_NE(a.graph.num_links(), b.graph.num_links());
}

TEST(Generator, RejectsBadParameters) {
  GeneratorParams p;
  p.num_ases = 5;
  p.tier1_count = 10;
  EXPECT_THROW((void)generate_internet(p), util::PreconditionError);
  GeneratorParams q;
  q.tier2_fraction = 0.0;
  EXPECT_THROW((void)generate_internet(q), util::PreconditionError);
}

TEST(Generator, AssignsGeoToEveryAs) {
  const auto topo = generate_internet(small_params(10));
  for (AsId as = 0; as < topo.graph.num_ases(); ++as) {
    const AsInfo& info = topo.graph.info(as);
    EXPECT_TRUE(info.has_geo) << as;
    EXPECT_FALSE(info.pops.empty()) << as;
  }
}

TEST(Generator, EveryLinkHasFacilities) {
  const auto topo = generate_internet(small_params(11));
  for (const Link& link : topo.graph.links()) {
    EXPECT_FALSE(link.facilities.empty());
    EXPECT_LE(link.facilities.size(), 3u);
  }
}

TEST(Generator, PeeringExistsBeyondTier1) {
  const auto topo = generate_internet(small_params(12));
  std::size_t non_core_peerings = 0;
  for (const Link& link : topo.graph.links()) {
    if (link.type == LinkType::kPeering &&
        (topo.graph.info(link.a).tier != 1 ||
         topo.graph.info(link.b).tier != 1)) {
      ++non_core_peerings;
    }
  }
  EXPECT_GT(non_core_peerings, 20u);
}

TEST(Generator, IxpMembersAreRegionalOrGlobalHubs) {
  const auto topo = generate_internet(small_params(13));
  std::size_t populated = 0;
  for (const Ixp& ixp : topo.ixps) {
    if (!ixp.members.empty()) {
      ++populated;
    }
    for (const AsId as : ixp.members) {
      const bool is_hub = std::find(topo.hubs.begin(), topo.hubs.end(), as) !=
                          topo.hubs.end();
      EXPECT_TRUE(topo.graph.info(as).region == ixp.region || is_hub)
          << "AS " << as << " at foreign IXP without hub status";
    }
  }
  EXPECT_GT(populated, 0u);
}

TEST(Generator, HubsAreGloballyPresentAndPeeringRich) {
  const auto topo = generate_internet(small_params(16, 2000));
  ASSERT_FALSE(topo.hubs.empty());
  for (const AsId hub : topo.hubs) {
    // Hubs hold PoPs in several regions and peer far above the median AS.
    std::set<std::size_t> regions;
    for (const std::size_t city : topo.graph.info(hub).pops) {
      regions.insert(topo.world.city(city).region);
    }
    EXPECT_GE(regions.size(), 4u);
  }
  // The best-ranked hub out-peers later ranks (graded footprint).
  const AsId first = topo.hubs.front();
  std::size_t max_peers = 0;
  for (const AsId hub : topo.hubs) {
    max_peers = std::max(max_peers, topo.graph.peers(hub).size());
  }
  EXPECT_GE(topo.graph.peers(first).size(), max_peers / 3);
}

TEST(Generator, DegreeDistributionIsHeavyTailed) {
  const auto topo = generate_internet(small_params(14, 2000));
  std::vector<std::size_t> degrees;
  for (AsId as = 0; as < topo.graph.num_ases(); ++as) {
    degrees.push_back(topo.graph.degree(as));
  }
  std::sort(degrees.begin(), degrees.end());
  const std::size_t median = degrees[degrees.size() / 2];
  const std::size_t max = degrees.back();
  // An Internet-like graph has hubs orders of magnitude above the median.
  EXPECT_LE(median, 12u);
  EXPECT_GE(max, 20u * std::max<std::size_t>(median, 1));
}

// Parameterized structural sweep: across sizes and seeds the generator must
// always produce a connected graph with an acyclic provider hierarchy.
struct SweepParam {
  std::size_t num_ases;
  std::uint64_t seed;
};

class GeneratorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GeneratorSweep, ConnectedAndAcyclic) {
  GeneratorParams p;
  p.num_ases = GetParam().num_ases;
  p.tier1_count = 5;
  p.seed = GetParam().seed;
  const auto topo = generate_internet(p);
  EXPECT_TRUE(topo.graph.provider_hierarchy_is_acyclic());
  EXPECT_TRUE(topo.graph.is_connected());
  EXPECT_EQ(topo.graph.num_ases(), p.num_ases);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, GeneratorSweep,
    ::testing::Values(SweepParam{200, 1}, SweepParam{200, 2},
                      SweepParam{500, 3}, SweepParam{500, 4},
                      SweepParam{1200, 5}, SweepParam{1200, 6},
                      SweepParam{3000, 7}, SweepParam{3000, 8}));

// ------------------------------------------------------------- capacity

TEST(Capacity, DegreeGravityMatchesFormula) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const AsId c = g.add_as();
  g.add_peering(a, b);       // deg(a)=2 after both links
  g.add_provider_customer(a, c);
  assign_degree_gravity_capacities(g);
  // deg(a) = 2, deg(b) = 1, deg(c) = 1.
  EXPECT_DOUBLE_EQ(g.link(*g.link_between(a, b)).capacity, 2.0);
  EXPECT_DOUBLE_EQ(g.link(*g.link_between(a, c)).capacity, 2.0);
}

TEST(Capacity, ExponentAndScaleApply) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  g.add_peering(a, b);
  assign_degree_gravity_capacities(g, {10.0, 2.0});
  EXPECT_DOUBLE_EQ(g.link(0).capacity, 10.0);  // (1*1)^2 * 10
}

TEST(Capacity, PathBandwidthIsMinOverLinks) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const AsId c = g.add_as();
  g.add_peering(a, b);
  g.add_peering(b, c);
  g.link(0).capacity = 5.0;
  g.link(1).capacity = 2.0;
  EXPECT_DOUBLE_EQ(path_bandwidth(g, {a, b, c}), 2.0);
}

TEST(Capacity, PathBandwidthRejectsBrokenPath) {
  Graph g;
  const AsId a = g.add_as();
  const AsId b = g.add_as();
  const AsId c = g.add_as();
  g.add_peering(a, b);
  EXPECT_THROW((void)path_bandwidth(g, {a, c}), util::PreconditionError);
  EXPECT_THROW((void)path_bandwidth(g, {a}), util::PreconditionError);
}

TEST(Capacity, RejectsNonPositiveParams) {
  Graph g;
  g.add_as();
  EXPECT_THROW(assign_degree_gravity_capacities(g, {0.0, 1.0}),
               util::PreconditionError);
  EXPECT_THROW(assign_degree_gravity_capacities(g, {1.0, 0.0}),
               util::PreconditionError);
}

// ------------------------------- embedding a parsed relationship graph

/// The committed as-rel2 fixture (also the CI smoke topology for
/// PANAGREE_CAIDA runs): two transit-free cores, three regional transits,
/// one transit-free peer-only CDN, eight stubs.
caida::Dataset load_fixture() {
  return caida::parse_file(std::string(PANAGREE_TEST_DATA_DIR) +
                           "/as-rel2-small.txt");
}

TEST(EmbedRelationshipGraph, FixtureParsesToExpectedShape) {
  const caida::Dataset ds = load_fixture();
  EXPECT_EQ(ds.graph.num_ases(), 14u);
  EXPECT_EQ(ds.graph.num_links(), 20u);
  EXPECT_TRUE(ds.graph.provider_hierarchy_is_acyclic());
  EXPECT_TRUE(ds.graph.is_connected());
}

TEST(EmbedRelationshipGraph, AssignsTiersFromTheHierarchy) {
  caida::Dataset ds = load_fixture();
  const auto id = [&](std::uint64_t asn) { return ds.asn_to_id.at(asn); };
  // Resolve ids before the graph moves into the embedding.
  const AsId core100 = id(100);
  const AsId core200 = id(200);
  const AsId transit300 = id(300);
  const AsId cdn900 = id(900);
  const AsId stub1001 = id(1001);
  const GeneratedTopology topo =
      embed_relationship_graph(std::move(ds.graph), /*seed=*/7);

  // Transit-free with customers -> Tier-1.
  EXPECT_EQ(topo.graph.info(core100).tier, 1);
  EXPECT_EQ(topo.graph.info(core200).tier, 1);
  // Customer-owning mid-tier and the transit-free peer-only CDN -> Tier-2.
  EXPECT_EQ(topo.graph.info(transit300).tier, 2);
  EXPECT_EQ(topo.graph.info(cdn900).tier, 2);
  // Pure customer -> Tier-3.
  EXPECT_EQ(topo.graph.info(stub1001).tier, 3);
  EXPECT_EQ(topo.tier1.size(), 2u);
  EXPECT_EQ(topo.tier2.size(), 4u);
  EXPECT_EQ(topo.tier3.size(), 8u);
  // Generator-only scaffolding stays empty for embedded graphs.
  EXPECT_TRUE(topo.ixps.empty());
  EXPECT_TRUE(topo.hubs.empty());
}

TEST(EmbedRelationshipGraph, AssignsGeodataAndFacilitiesEverywhere) {
  caida::Dataset ds = load_fixture();
  const GeneratedTopology topo =
      embed_relationship_graph(std::move(ds.graph), /*seed=*/7);
  for (AsId as = 0; as < topo.graph.num_ases(); ++as) {
    const AsInfo& info = topo.graph.info(as);
    EXPECT_TRUE(info.has_geo) << "as " << as;
    EXPECT_FALSE(info.pops.empty()) << "as " << as;
    for (const std::size_t city : info.pops) {
      EXPECT_LT(city, topo.world.cities().size());
    }
  }
  for (const auto& link : topo.graph.links()) {
    EXPECT_FALSE(link.facilities.empty())
        << "link AS" << link.a << "-AS" << link.b;
    // The stored facilities are exactly what the public estimation rule
    // derives from the endpoint PoP sets.
    EXPECT_EQ(link.facilities,
              estimate_link_facilities(topo.graph, topo.world, link));
  }
}

TEST(EmbedRelationshipGraph, DeterministicPerSeed) {
  caida::Dataset first = load_fixture();
  caida::Dataset second = load_fixture();
  const GeneratedTopology a =
      embed_relationship_graph(std::move(first.graph), /*seed=*/21);
  const GeneratedTopology b =
      embed_relationship_graph(std::move(second.graph), /*seed=*/21);
  ASSERT_EQ(a.graph.num_ases(), b.graph.num_ases());
  for (AsId as = 0; as < a.graph.num_ases(); ++as) {
    EXPECT_EQ(a.graph.info(as).pops, b.graph.info(as).pops) << "as " << as;
    EXPECT_EQ(a.graph.info(as).region, b.graph.info(as).region);
    EXPECT_EQ(a.graph.info(as).tier, b.graph.info(as).tier);
  }
  for (LinkId id = 0; id < a.graph.num_links(); ++id) {
    EXPECT_EQ(a.graph.link(id).facilities, b.graph.link(id).facilities);
  }

  caida::Dataset third = load_fixture();
  const GeneratedTopology other =
      embed_relationship_graph(std::move(third.graph), /*seed=*/22);
  bool any_difference = false;
  for (AsId as = 0; as < a.graph.num_ases() && !any_difference; ++as) {
    any_difference = a.graph.info(as).pops != other.graph.info(as).pops;
  }
  EXPECT_TRUE(any_difference) << "different seeds should embed differently";
}

TEST(EmbedRelationshipGraph, RejectsEmptyGraph) {
  EXPECT_THROW((void)embed_relationship_graph(Graph{}, 1),
               util::PreconditionError);
}

}  // namespace
}  // namespace panagree::topology
