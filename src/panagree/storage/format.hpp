// On-disk layout of .pansnap topology snapshots, format version 1.
//
// A snapshot freezes everything the analyses need to start without
// re-parsing or re-embedding a relationship graph: the CSR arrays of a
// topology::CompiledTopology (served zero-copy out of the mapped file),
// the Graph's AS/link metadata (names, tiers, PoPs, centroids, facilities,
// capacities), the geo::World city/region tables behind the geodistance
// model, and the tier membership lists of a GeneratedTopology.
//
// Layout: a fixed FileHeader, a section table, then the section payloads.
// Every section payload is 8-byte aligned and its byte length recorded, so
// a reader can bounds-check before touching anything. Numeric arrays are
// stored in host (little-endian) byte order - the header carries an
// endianness probe and readers reject foreign files instead of byte
// swapping. Variable-length per-element data (names, PoP lists, facility
// lists) is stored as a begin-offset array of n + 1 entries plus one
// concatenated payload blob, the same shape as the CSR rows.
//
// Versioning policy: the format is rewrite-on-change. Any layout change
// bumps kFormatVersion, and readers reject every version but their own -
// snapshots are cheap, derived artifacts (recompile with panagree-compile),
// so there is no migration path to maintain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "panagree/topology/compiled.hpp"
#include "panagree/util/error.hpp"

namespace panagree::storage {

/// Malformed or foreign snapshot file (bad magic, wrong version, truncated
/// or inconsistent sections). A ParseError: snapshots are external input.
class SnapshotError : public util::ParseError {
 public:
  using util::ParseError::ParseError;
};

inline constexpr char kMagic[8] = {'P', 'A', 'N', 'S', 'N', 'A', 'P', '\0'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Written as a u32; reads back differently on a foreign-endian host.
inline constexpr std::uint32_t kEndianProbe = 0x50414E53;  // "SNAP" in LE
inline constexpr std::size_t kSectionAlignment = 8;

struct FileHeader {
  char magic[8];
  std::uint32_t version = 0;
  std::uint32_t endian_probe = 0;
  /// Total file size; a shorter mapping means truncation.
  std::uint64_t file_bytes = 0;
  std::uint64_t num_ases = 0;
  std::uint64_t num_links = 0;
  std::uint64_t num_cities = 0;
  std::uint64_t num_regions = 0;
  std::uint64_t section_count = 0;
  /// Offset of the SectionRecord table (sections follow it).
  std::uint64_t section_table_offset = 0;
};
static_assert(std::is_trivially_copyable_v<FileHeader>);
static_assert(sizeof(FileHeader) == 72);

/// Section identifiers. Values are part of the format - append only.
enum class SectionKind : std::uint32_t {
  // CSR arrays of the CompiledTopology (zero-copy on read).
  kRowStart = 1,       // u32[num_ases + 1]
  kProvidersEnd = 2,   // u32[num_ases]
  kPeersEnd = 3,       // u32[num_ases]
  kEntries = 4,        // CompiledTopology::Entry[2 * num_links]
  // Link table.
  kLinkA = 10,             // u32[num_links]
  kLinkB = 11,             // u32[num_links]
  kLinkType = 12,          // u8[num_links] (LinkType values)
  kLinkCapacity = 13,      // f64[num_links]
  kLinkFacilityBegin = 14, // u32[num_links + 1]
  kLinkFacilities = 15,    // u32[...] city ids, concatenated
  // AS table.
  kAsTier = 20,      // i32[num_ases]
  kAsRegion = 21,    // u32[num_ases]
  kAsCentroid = 22,  // f64[2 * num_ases] (lat, lng pairs)
  kAsHasGeo = 23,    // u8[num_ases]
  kAsPopBegin = 24,  // u32[num_ases + 1]
  kAsPops = 25,      // u32[...] city ids, concatenated
  kAsNameBegin = 26, // u32[num_ases + 1]
  kAsNames = 27,     // char[...] names, concatenated (no terminators)
  // geo::World tables.
  kCityLocation = 30,   // f64[2 * num_cities] (lat, lng pairs)
  kCityRegion = 31,     // u32[num_cities]
  kCityNameBegin = 32,  // u32[num_cities + 1]
  kCityNames = 33,      // char[...]
  kRegionCenter = 34,   // f64[2 * num_regions] (lat, lng pairs)
  kRegionRadius = 35,   // f64[num_regions]
  kRegionNameBegin = 36,// u32[num_regions + 1]
  kRegionNames = 37,    // char[...]
  kRegionCityBegin = 38,// u32[num_regions + 1]
  kRegionCityIds = 39,  // u32[...]
  // GeneratedTopology tier membership lists.
  kTier1 = 50,  // u32[...]
  kTier2 = 51,  // u32[...]
  kTier3 = 52,  // u32[...]
  // Sharded-serving plan (optional; written by panagree-compile --shards).
  // The source sample is stored in its canonical order and partitioned
  // into contiguous per-shard ranges - contiguity is what lets a shard
  // router fold per-shard results back in the exact single-engine order.
  kShardSourceIds = 60,   // u32[num_sources] sampled sources, canonical order
  kShardSourceBegin = 61, // u32[num_shards + 1] partition offsets
  kShardRowRanges = 62,   // u32[2 * num_shards] CSR row [first, last) spans
  // Primed baseline (optional; requires the shard plan sections). Persists
  // the SweepRunner's per-source path caches so a daemon can restore its
  // baseline straight off the mapping instead of running prime(). Paths
  // are concatenated per source, GRC paths first then MA paths, each path
  // three u32 AS ids (src, mid, dst).
  kBaselineGrcCounts = 70, // u32[num_sources] GRC path count per source
  kBaselinePathBegin = 71, // u32[num_sources + 1] path begin offsets
  kBaselinePaths = 72,     // u32[3 * total_paths] (src, mid, dst) triples
};

struct SectionRecord {
  std::uint32_t kind = 0;  ///< SectionKind
  std::uint32_t reserved = 0;
  std::uint64_t offset = 0;  ///< absolute file offset, 8-byte aligned
  std::uint64_t bytes = 0;   ///< payload length (unpadded)
};
static_assert(std::is_trivially_copyable_v<SectionRecord>);
static_assert(sizeof(SectionRecord) == 24);

// kEntries is written field-by-field into zeroed storage and read back by
// casting the mapped bytes, so the in-memory layout is part of the format.
using TopoEntry = topology::CompiledTopology::Entry;
static_assert(std::is_trivially_copyable_v<TopoEntry>);
static_assert(sizeof(TopoEntry) == 12 && alignof(TopoEntry) == 4);
static_assert(offsetof(TopoEntry, neighbor) == 0);
static_assert(offsetof(TopoEntry, link) == 4);
static_assert(offsetof(TopoEntry, role) == 8);
// Role/type byte values are part of the format as well.
static_assert(static_cast<int>(topology::NeighborRole::kProvider) == 0 &&
              static_cast<int>(topology::NeighborRole::kPeer) == 1 &&
              static_cast<int>(topology::NeighborRole::kCustomer) == 2);
static_assert(static_cast<int>(topology::LinkType::kProviderCustomer) == 0 &&
              static_cast<int>(topology::LinkType::kPeering) == 1);

}  // namespace panagree::storage
