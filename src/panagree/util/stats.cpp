#include "panagree/util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "panagree/util/error.hpp"

namespace panagree::util {

double mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double m = mean(values);
  double acc = 0.0;
  for (const double v : values) {
    acc += (v - m) * (v - m);
  }
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double percentile(std::vector<double> values, double q) {
  require(!values.empty(), "percentile: sample must be non-empty");
  require(q >= 0.0 && q <= 1.0, "percentile: q must lie in [0, 1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values.front();
  }
  const double position = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double frac = position - static_cast<double>(lower);
  if (lower + 1 >= values.size()) {
    return values.back();
  }
  return values[lower] + frac * (values[lower + 1] - values[lower]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) {
    return s;
  }
  s.mean = mean(values);
  s.stddev = stddev(values);
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  s.median = percentile(std::vector<double>(values.begin(), values.end()), 0.5);
  return s;
}

Cdf::Cdf(std::vector<double> values) : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_at_or_below(double x) const {
  if (sorted_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::fraction_above(double x) const {
  return 1.0 - fraction_at_or_below(x);
}

double Cdf::value_at_fraction(double q) const {
  require(!sorted_.empty(), "Cdf::value_at_fraction: empty sample");
  require(q > 0.0 && q <= 1.0, "Cdf::value_at_fraction: q must be in (0, 1]");
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank == 0 ? 0 : rank - 1, sorted_.size() - 1)];
}

std::vector<double> Cdf::evaluate_at(std::span<const double> xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs) {
    out.push_back(fraction_at_or_below(x));
  }
  return out;
}

std::vector<double> log_space(double lo, double hi, std::size_t n) {
  require(lo > 0.0 && hi >= lo, "log_space: need 0 < lo <= hi");
  require(n >= 2, "log_space: need at least two points");
  std::vector<double> out(n);
  const double log_lo = std::log(lo);
  const double log_hi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = std::exp(log_lo + t * (log_hi - log_lo));
  }
  return out;
}

std::vector<double> lin_space(double lo, double hi, std::size_t n) {
  require(hi >= lo, "lin_space: need lo <= hi");
  require(n >= 2, "lin_space: need at least two points");
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = lo + t * (hi - lo);
  }
  return out;
}

}  // namespace panagree::util
