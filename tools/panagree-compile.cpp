// panagree-compile: turn a topology into a memory-mappable .pansnap
// snapshot - the one-time startup cost every later tool and bench skips.
//
//   panagree-compile <out.pansnap> [--caida FILE | --synthetic N]
//       [--seed S] [--shards N] [--sources M]
//
// Input selection mirrors bench_common: an explicit --caida/--synthetic
// flag wins; otherwise PANAGREE_CAIDA (or the synthetic generator at
// PANAGREE_ASES) decides, so `panagree-compile out.pansnap` freezes
// exactly the topology the benches would build themselves. The graph is
// embedded in the synthetic world (tiers, PoPs, facilities), degree-gravity
// capacities are assigned, the CSR snapshot is compiled, and everything is
// written as one versioned binary file. Consumers mmap it back with
// --snapshot FILE or PANAGREE_SNAPSHOT=FILE.
//
// --shards N additionally writes the source-partitioned serving plan and
// the primed per-source baseline (the sharded daemon's mmap-only cold
// start): the canonical source sample (--sources M, default the benches'
// PANAGREE_SOURCES, sampled with the shared seed) is cut into N
// contiguous ranges, the length-3 baseline of every source is enumerated
// here - the expensive part of the daemon's prime() - and persisted, so
// panagree-serve adopts it straight off the mapping instead of
// recomputing it at every start.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <optional>
#include <string>

#include "bench_common.hpp"
#include "cli_common.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/storage/snapshot.hpp"

using namespace panagree;

namespace {

void usage() {
  std::cerr << "usage: panagree-compile <out.pansnap>"
               " [--caida FILE | --synthetic N] [--seed S]\n"
               "           [--shards N] [--sources M]\n"
               "       panagree-compile --verify <file.pansnap>\n";
}

/// --shards: sample the canonical sources, enumerate every baseline
/// path set (exactly what QueryEngine::prime computes - the daemon
/// adopts these verbatim), and flatten them into the snapshot's shard
/// plan + primed-baseline sections.
storage::ShardPlanData make_shard_plan(const topology::GeneratedTopology& topo,
                                       const topology::CompiledTopology& compiled,
                                       std::size_t shards,
                                       std::size_t sources_n) {
  storage::ShardPlanData plan;
  plan.num_shards = shards;
  plan.sources = diversity::sample_sources(topo.graph, sources_n,
                                           benchcfg::kSampleSeed);
  const std::size_t n = plan.sources.size();
  util::require(shards <= std::max<std::size_t>(n, 1),
                "panagree-compile: more shards than sampled sources");
  plan.shard_begin.reserve(shards + 1);
  for (std::size_t s = 0; s <= shards; ++s) {
    plan.shard_begin.push_back(static_cast<std::uint32_t>(s * n / shards));
  }
  scenario::SweepConfig sweep_config;
  sweep_config.threads = benchcfg::num_threads();
  sweep_config.dirty_radius = scenario::kLength3DirtyRadius;
  scenario::SweepRunner<scenario::SourcePathSet> runner(compiled, plan.sources,
                                                        sweep_config);
  runner.prime([](const scenario::Overlay& overlay, topology::AsId src) {
    return scenario::enumerate_length3(overlay, src);
  });
  plan.grc_counts.reserve(n);
  plan.path_begin.reserve(n + 1);
  plan.path_begin.push_back(0);
  for (const scenario::SourcePathSet& set : runner.baseline()) {
    plan.grc_counts.push_back(static_cast<std::uint32_t>(set.grc().size()));
    plan.path_begin.push_back(
        plan.path_begin.back() +
        static_cast<std::uint32_t>(set.grc().size() + set.ma().size()));
    for (const auto paths : {set.grc(), set.ma()}) {
      for (const diversity::Length3Path& path : paths) {
        plan.path_words.push_back(path.src);
        plan.path_words.push_back(path.mid);
        plan.path_words.push_back(path.dst);
      }
    }
  }
  return plan;
}

/// --verify: open an existing snapshot, validate it, and report what the
/// reader did - including the effective mmap access-pattern advice
/// (WILLNEED on the CSR sections; THP when PANAGREE_MMAP_THP=1).
int verify_snapshot(const std::string& path) {
  const auto snapshot = storage::MappedSnapshot::open(path);
  std::cout << "[verify] " << path << ": " << snapshot.graph().num_ases()
            << " ASes, " << snapshot.graph().num_links() << " links, "
            << snapshot.world().cities().size() << " cities, "
            << snapshot.file_bytes() << " bytes\n"
            << "[verify] madvise: " << snapshot.advice().describe() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string output;
  std::string caida;
  std::string verify;
  std::size_t synthetic = 0;
  std::size_t shards = 0;
  std::size_t sources_n = benchcfg::num_sources();
  std::uint64_t seed = benchcfg::kTopologySeed;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--version") {
        cli::print_version("panagree-compile");
      } else if (arg == "--verify") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        verify = argv[++i];
      } else if (arg == "--caida") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        caida = argv[++i];
      } else if (arg == "--synthetic") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        synthetic = std::stoul(argv[++i]);
      } else if (arg == "--seed") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        seed = std::stoull(argv[++i]);
      } else if (arg == "--shards") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        shards = std::stoul(argv[++i]);
        if (shards == 0) {
          usage();
          return 2;
        }
      } else if (arg == "--sources") {
        if (i + 1 >= argc) {
          usage();
          return 2;
        }
        sources_n = std::stoul(argv[++i]);
      } else if (output.empty() && !arg.starts_with("--")) {
        output = arg;
      } else {
        usage();
        return 2;
      }
    }
  } catch (const std::exception&) {
    usage();
    return 2;
  }
  if (!verify.empty()) {
    if (!output.empty() || !caida.empty() || synthetic > 0) {
      usage();
      return 2;
    }
    try {
      return verify_snapshot(verify);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (output.empty()) {
    usage();
    return 2;
  }
  cli::init_tracing();

  try {
    const auto start = std::chrono::steady_clock::now();
    topology::GeneratedTopology topo;
    if (!caida.empty()) {
      auto dataset = topology::caida::parse_file(caida);
      topo = topology::embed_relationship_graph(std::move(dataset.graph),
                                                seed);
      std::cerr << "[compile] CAIDA " << caida << ": "
                << topo.graph.num_ases() << " ASes, "
                << topo.graph.num_links() << " links\n";
    } else if (synthetic > 0) {
      topology::GeneratorParams params = benchcfg::internet_params();
      params.num_ases = synthetic;
      params.seed = seed;
      topo = topology::generate_internet(params);
      std::cerr << "[compile] synthetic: " << topo.graph.num_ases()
                << " ASes, " << topo.graph.num_links() << " links (seed "
                << seed << ")\n";
    } else if (const char* env = benchcfg::caida_path()) {
      auto dataset = topology::caida::parse_file(env);
      topo = topology::embed_relationship_graph(std::move(dataset.graph),
                                                seed);
      std::cerr << "[compile] CAIDA " << env << " (PANAGREE_CAIDA): "
                << topo.graph.num_ases() << " ASes, "
                << topo.graph.num_links() << " links\n";
    } else {
      topology::GeneratorParams params = benchcfg::internet_params();
      params.seed = seed;
      topo = topology::generate_internet(params);
      std::cerr << "[compile] synthetic: " << topo.graph.num_ases()
                << " ASes, " << topo.graph.num_links() << " links (seed "
                << seed << ")\n";
    }
    topology::assign_degree_gravity_capacities(topo.graph);
    const topology::CompiledTopology compiled(topo.graph);
    std::optional<storage::ShardPlanData> plan;
    if (shards > 0) {
      plan = make_shard_plan(topo, compiled, shards, sources_n);
      std::cerr << "[compile] shard plan: " << shards << " shards over "
                << plan->sources.size() << " sources, "
                << plan->path_begin.back() << " baseline paths\n";
    }
    storage::write_snapshot(output, topo, compiled,
                            plan ? &*plan : nullptr);
    const double total_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();

    // Verify the round trip before declaring success: the mmap'd view
    // must be byte-identical to the in-process compile.
    const auto snapshot = storage::MappedSnapshot::open(output);
    const bool identical =
        std::ranges::equal(snapshot.topology().row_start_array(),
                           compiled.row_start_array()) &&
        std::ranges::equal(snapshot.topology().entry_array(),
                           compiled.entry_array());
    if (!identical) {
      std::cerr << "[compile] round-trip verification FAILED\n";
      return 1;
    }
    std::cerr << "[compile] wrote " << output << ": "
              << snapshot.file_bytes() << " bytes in " << total_ms
              << " ms (round-trip verified; madvise: "
              << snapshot.advice().describe() << ")\n";
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
