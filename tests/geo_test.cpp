#include <gtest/gtest.h>

#include <cmath>

#include "panagree/geo/coordinates.hpp"
#include "panagree/geo/region.hpp"

namespace panagree::geo {
namespace {

TEST(GreatCircle, ZeroForIdenticalPoints) {
  const LatLng p{47.37, 8.54};
  EXPECT_DOUBLE_EQ(great_circle_km(p, p), 0.0);
}

TEST(GreatCircle, IsSymmetric) {
  const LatLng a{47.37, 8.54};   // Zurich
  const LatLng b{40.71, -74.0};  // New York
  EXPECT_DOUBLE_EQ(great_circle_km(a, b), great_circle_km(b, a));
}

TEST(GreatCircle, KnownDistanceZurichNewYork) {
  const LatLng zurich{47.3769, 8.5417};
  const LatLng new_york{40.7128, -74.0060};
  const double d = great_circle_km(zurich, new_york);
  EXPECT_NEAR(d, 6330.0, 60.0);  // ~6.3 Mm
}

TEST(GreatCircle, QuarterMeridian) {
  const LatLng equator{0.0, 0.0};
  const LatLng pole{90.0, 0.0};
  EXPECT_NEAR(great_circle_km(equator, pole),
              kEarthRadiusKm * std::numbers::pi / 2.0, 1.0);
}

TEST(GreatCircle, AntipodalIsHalfCircumference) {
  const LatLng a{0.0, 0.0};
  const LatLng b{0.0, 180.0};
  EXPECT_NEAR(great_circle_km(a, b), kEarthRadiusKm * std::numbers::pi, 1.0);
}

TEST(GreatCircle, TriangleInequalityHolds) {
  const LatLng a{10.0, 20.0};
  const LatLng b{-30.0, 60.0};
  const LatLng c{50.0, -120.0};
  EXPECT_LE(great_circle_km(a, c),
            great_circle_km(a, b) + great_circle_km(b, c) + 1e-9);
}

TEST(Centroid, SinglePointIsItself) {
  const LatLng p{12.0, 34.0};
  const std::vector<LatLng> points{p};
  const LatLng c = spherical_centroid(points);
  EXPECT_NEAR(c.lat_deg, 12.0, 1e-9);
  EXPECT_NEAR(c.lng_deg, 34.0, 1e-9);
}

TEST(Centroid, MidpointOnEquator) {
  const std::vector<LatLng> points{{0.0, 10.0}, {0.0, 20.0}};
  const LatLng c = spherical_centroid(points);
  EXPECT_NEAR(c.lat_deg, 0.0, 1e-9);
  EXPECT_NEAR(c.lng_deg, 15.0, 1e-9);
}

TEST(Centroid, HandlesDatelineCorrectly) {
  // Averaging +179 and -179 longitude must land near the dateline, not 0.
  const std::vector<LatLng> points{{0.0, 179.0}, {0.0, -179.0}};
  const LatLng c = spherical_centroid(points);
  EXPECT_NEAR(std::abs(c.lng_deg), 180.0, 0.5);
}

TEST(Centroid, EmptyReturnsOrigin) {
  const LatLng c = spherical_centroid({});
  EXPECT_DOUBLE_EQ(c.lat_deg, 0.0);
  EXPECT_DOUBLE_EQ(c.lng_deg, 0.0);
}

TEST(Validity, AcceptsPhysicalCoordinates) {
  EXPECT_TRUE(is_valid({0.0, 0.0}));
  EXPECT_TRUE(is_valid({-90.0, 180.0}));
  EXPECT_FALSE(is_valid({91.0, 0.0}));
  EXPECT_FALSE(is_valid({0.0, -181.0}));
  EXPECT_FALSE(is_valid({std::nan(""), 0.0}));
}

TEST(World, DefaultHasFiveRegionsWithCities) {
  util::Rng rng(1);
  const World world = World::make_default(rng, 10);
  EXPECT_EQ(world.regions().size(), 5u);
  EXPECT_EQ(world.cities().size(), 50u);
  for (const Region& region : world.regions()) {
    EXPECT_EQ(region.city_ids.size(), 10u);
  }
}

TEST(World, CitiesHaveValidCoordinatesNearTheirRegion) {
  util::Rng rng(2);
  const World world = World::make_default(rng, 20);
  for (const City& city : world.cities()) {
    EXPECT_TRUE(is_valid(city.location)) << city.name;
    const Region& region = world.regions()[city.region];
    // Cities scatter around the center; allow a generous radius.
    EXPECT_LT(great_circle_km(city.location, region.center),
              region.radius_km * 4.0)
        << city.name;
  }
}

TEST(World, SampleCityStaysInRegion) {
  util::Rng rng(3);
  const World world = World::make_default(rng, 10);
  for (std::size_t r = 0; r < world.regions().size(); ++r) {
    for (int i = 0; i < 20; ++i) {
      const std::size_t city = world.sample_city(r, rng);
      EXPECT_EQ(world.city(city).region, r);
    }
  }
}

TEST(World, SampleRegionRespectsWeights) {
  util::Rng rng(4);
  const World world = World::make_default(rng, 5);
  const std::vector<double> weights{1.0, 0.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(world.sample_region(rng, weights), 0u);
  }
}

TEST(World, IsDeterministicForEqualSeeds) {
  util::Rng a(9);
  util::Rng b(9);
  const World wa = World::make_default(a, 15);
  const World wb = World::make_default(b, 15);
  ASSERT_EQ(wa.cities().size(), wb.cities().size());
  for (std::size_t i = 0; i < wa.cities().size(); ++i) {
    EXPECT_EQ(wa.cities()[i].location, wb.cities()[i].location);
  }
}

}  // namespace
}  // namespace panagree::geo
