#include "panagree/paths/parallel.hpp"

namespace panagree::paths {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> partition_by_cost(
    std::span<const std::uint64_t> costs, std::size_t count,
    std::size_t workers) {
  util::require(workers > 0, "partition_by_cost: need at least one worker");
  util::require(count <= std::numeric_limits<std::uint32_t>::max(),
                "partition_by_cost: count exceeds 32-bit index space");
  util::require(costs.empty() || costs.size() == count,
                "partition_by_cost: costs must be empty or one per index");
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  ranges.reserve(workers);
  if (costs.empty()) {
    // Equal-size contiguous slices; the first (count % workers) get the
    // extra index.
    const std::size_t base = count / workers;
    const std::size_t extra = count % workers;
    std::uint32_t begin = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::uint32_t size =
          static_cast<std::uint32_t>(base + (w < extra ? 1 : 0));
      ranges.emplace_back(begin, begin + size);
      begin += size;
    }
    return ranges;
  }
  std::uint64_t total = 0;
  for (const std::uint64_t cost : costs) {
    total += cost;
  }
  // Greedy prefix cuts: close a range once its cost reaches the average
  // share of the workers still to seed. Recomputing the share from the
  // *remaining* cost keeps one dominant index from starving the tail -
  // the classic linear-scan approximation of balanced contiguous
  // partitioning, plenty for a seed layout that stealing will correct
  // anyway.
  std::uint32_t begin = 0;
  std::uint64_t used = 0;
  for (std::size_t w = 0; w + 1 < workers; ++w) {
    const std::size_t left = workers - w;
    const std::uint64_t share = (total - used + left - 1) / left;
    std::uint32_t end = begin;
    std::uint64_t bucket = 0;
    // Take whole indices until this range's cost reaches its share of
    // what is left. An index is never split, so one dominant source may
    // overshoot - it then owns the range alone and the share recomputes
    // over the remainder for the next worker.
    while (end < count && bucket < share) {
      bucket += costs[end];
      ++end;
    }
    // Leave at least one index for each remaining worker when possible
    // (empty trailing seeds would make those workers start by stealing).
    if (const std::size_t tail = left - 1; count >= tail) {
      end = std::min(end, static_cast<std::uint32_t>(count - tail));
    }
    end = std::max(end, begin);
    ranges.emplace_back(begin, end);
    for (std::uint32_t i = begin; i < end; ++i) {
      used += costs[i];
    }
    begin = end;
  }
  ranges.emplace_back(begin, static_cast<std::uint32_t>(count));
  return ranges;
}

bool bind_topology_to_nodes(const TopologyPlacement& placement,
                            const topology::CompiledTopology& topo) {
  const std::size_t nodes = placement.num_nodes();
  const std::size_t n = topo.num_ases();
  if (nodes <= 1 || n == 0) {
    return false;
  }
  const auto row_start = topo.row_start_array();
  const auto entries = topo.entry_array();
  const auto roles = topo.role_lane_array();
  bool any = false;
  for (std::size_t k = 0; k < nodes; ++k) {
    const std::size_t lo = row_start[n * k / nodes];
    const std::size_t hi = row_start[n * (k + 1) / nodes];
    if (hi <= lo) {
      continue;
    }
    if (placement.bind_memory(
            entries.data() + lo,
            (hi - lo) * sizeof(topology::CompiledTopology::Entry), k)) {
      any = true;
    }
    if (placement.bind_memory(roles.data() + lo, hi - lo, k)) {
      any = true;
    }
  }
  return any;
}

std::vector<std::uint64_t> two_hop_cost_estimates(
    const topology::CompiledTopology& topo,
    std::span<const topology::AsId> sources) {
  std::vector<std::uint64_t> costs;
  costs.reserve(sources.size());
  for (const topology::AsId src : sources) {
    std::uint64_t cost = 1;
    topo.for_each_entry(src, [&](const topology::CompiledTopology::Entry& e) {
      cost += topo.degree(e.neighbor);
    });
    costs.push_back(cost);
  }
  return costs;
}

}  // namespace panagree::paths
