#include "panagree/econ/business.hpp"

#include <algorithm>

namespace panagree::econ {

std::uint64_t TrafficAllocation::pair_key(AsId x, AsId y) {
  const AsId lo = std::min(x, y);
  const AsId hi = std::max(x, y);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

TrafficAllocation::TripleKey TrafficAllocation::canonical_triple(AsId x,
                                                                 AsId y,
                                                                 AsId z) {
  if (x <= z) {
    return TripleKey{x, y, z};
  }
  return TripleKey{z, y, x};
}

std::size_t TrafficAllocation::TripleKeyHash::operator()(
    const TripleKey& k) const {
  std::uint64_t h = (static_cast<std::uint64_t>(k.a) << 32) | k.b;
  h ^= 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(k.c) +
       (h << 6) + (h >> 2);
  return std::hash<std::uint64_t>{}(h);
}

void TrafficAllocation::add_path_flow(std::span<const AsId> path,
                                      double volume) {
  util::require(path.size() >= 1, "add_path_flow: path must be non-empty");
  for (std::size_t i = 0; i < path.size(); ++i) {
    for (std::size_t j = i + 1; j < path.size(); ++j) {
      util::require(path[i] != path[j],
                    "add_path_flow: path must not repeat ASes");
    }
  }
  for (const AsId as : path) {
    through_flows_[as] += volume;
  }
  stub_flows_[path.front()] += volume;
  if (path.size() >= 2) {
    stub_flows_[path.back()] += volume;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      link_flows_[pair_key(path[i], path[i + 1])] += volume;
    }
    for (std::size_t i = 0; i + 2 < path.size(); ++i) {
      segment_flows_[canonical_triple(path[i], path[i + 1], path[i + 2])] +=
          volume;
    }
  }
}

void TrafficAllocation::add_local_flow(AsId as, double volume) {
  through_flows_[as] += volume;
  stub_flows_[as] += volume;
}

double TrafficAllocation::link_flow(AsId x, AsId y) const {
  const auto it = link_flows_.find(pair_key(x, y));
  return it == link_flows_.end() ? 0.0 : it->second;
}

double TrafficAllocation::segment_flow(AsId x, AsId y, AsId z) const {
  const auto it = segment_flows_.find(canonical_triple(x, y, z));
  return it == segment_flows_.end() ? 0.0 : it->second;
}

double TrafficAllocation::through_flow(AsId as) const {
  const auto it = through_flows_.find(as);
  return it == through_flows_.end() ? 0.0 : it->second;
}

double TrafficAllocation::stub_flow(AsId as) const {
  const auto it = stub_flows_.find(as);
  return it == stub_flows_.end() ? 0.0 : it->second;
}

void TrafficAllocation::merge(const TrafficAllocation& other) {
  for (const auto& [k, v] : other.link_flows_) {
    link_flows_[k] += v;
  }
  for (const auto& [k, v] : other.segment_flows_) {
    segment_flows_[k] += v;
  }
  for (const auto& [k, v] : other.through_flows_) {
    through_flows_[k] += v;
  }
  for (const auto& [k, v] : other.stub_flows_) {
    stub_flows_[k] += v;
  }
}

bool TrafficAllocation::is_non_negative(double epsilon) const {
  const auto all_ok = [epsilon](const auto& map) {
    return std::all_of(map.begin(), map.end(), [epsilon](const auto& kv) {
      return kv.second >= -epsilon;
    });
  };
  return all_ok(link_flows_) && all_ok(segment_flows_) &&
         all_ok(through_flows_) && all_ok(stub_flows_);
}

Economy::Economy(const Graph& graph)
    : graph_(&graph),
      stub_pricing_(graph.num_ases()),
      internal_costs_(graph.num_ases()) {}

namespace {
std::uint64_t directed_key(AsId provider, AsId customer) {
  return (static_cast<std::uint64_t>(provider) << 32) | customer;
}
}  // namespace

void Economy::set_link_pricing(AsId provider, AsId customer,
                               PricingFunction p) {
  util::require(graph_->is_provider_of(provider, customer),
                "Economy::set_link_pricing: not a provider->customer link");
  link_pricing_[directed_key(provider, customer)] = p;
}

void Economy::set_stub_pricing(AsId as, PricingFunction p) {
  util::require(as < stub_pricing_.size(),
                "Economy::set_stub_pricing: AS out of range");
  stub_pricing_[as] = p;
}

void Economy::set_internal_cost(AsId as, InternalCostFunction c) {
  util::require(as < internal_costs_.size(),
                "Economy::set_internal_cost: AS out of range");
  internal_costs_[as] = c;
}

const PricingFunction& Economy::link_pricing(AsId provider,
                                             AsId customer) const {
  static const PricingFunction kZero;
  const auto it = link_pricing_.find(directed_key(provider, customer));
  return it == link_pricing_.end() ? kZero : it->second;
}

const PricingFunction& Economy::stub_pricing(AsId as) const {
  util::require(as < stub_pricing_.size(),
                "Economy::stub_pricing: AS out of range");
  return stub_pricing_[as];
}

const InternalCostFunction& Economy::internal_cost(AsId as) const {
  util::require(as < internal_costs_.size(),
                "Economy::internal_cost: AS out of range");
  return internal_costs_[as];
}

double Economy::revenue(AsId as, const TrafficAllocation& flows) const {
  double total = 0.0;
  for (const AsId customer : graph_->customers(as)) {
    total += link_pricing(as, customer)(
        std::max(0.0, flows.link_flow(as, customer)));
  }
  total += stub_pricing(as)(std::max(0.0, flows.stub_flow(as)));
  return total;
}

double Economy::cost(AsId as, const TrafficAllocation& flows) const {
  double total = internal_cost(as)(std::max(0.0, flows.through_flow(as)));
  for (const AsId provider : graph_->providers(as)) {
    total += link_pricing(provider, as)(
        std::max(0.0, flows.link_flow(as, provider)));
  }
  return total;
}

double Economy::utility(AsId as, const TrafficAllocation& flows) const {
  return revenue(as, flows) - cost(as, flows);
}

Economy make_default_economy(const Graph& graph,
                             const DefaultEconomyParams& params) {
  Economy economy(graph);
  for (const topology::Link& link : graph.links()) {
    if (link.type != topology::LinkType::kProviderCustomer) {
      continue;
    }
    int tier = graph.info(link.a).tier;
    if (tier < 1 || tier > 3) {
      tier = 2;  // unspecified tiers priced as mid-tier transit
    }
    economy.set_link_pricing(
        link.a, link.b, PricingFunction::per_unit(params.tier_unit_price[tier]));
  }
  for (AsId as = 0; as < graph.num_ases(); ++as) {
    economy.set_stub_pricing(
        as, PricingFunction::per_unit(params.stub_unit_price));
    economy.set_internal_cost(
        as, InternalCostFunction::linear(params.internal_unit_cost));
  }
  return economy;
}

}  // namespace panagree::econ
