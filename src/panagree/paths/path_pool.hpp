// Interned path storage: one contiguous arena instead of a vector of
// vectors.
//
// At CAIDA scale (~70k ASes) the per-path std::vector representation does
// not survive: a compiled SPP instance or a cached sweep result holds
// millions of short AS sequences, and a heap block (plus a 24-byte header)
// per path dominates both memory and allocation time. BasicPathPool is the
// shared fix: paths are appended once into a single growing buffer and
// referred to by offset-based Slice handles - 12 bytes per path, stable
// across arena growth (offsets, not pointers), trivially serializable.
//
// Users:
//   * bgp::SppInstance interns every permitted path here and hands out
//     PathListView/PathView windows instead of vector references;
//   * scenario::SourcePathSet interns a source's GRC and MA length-3 path
//     sets as two slices of one arena (the unit SweepRunner caches).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <ostream>
#include <span>
#include <vector>

#include "panagree/topology/graph.hpp"

namespace panagree::paths {

/// Append-only arena of `T` sequences. Slices index the arena by offset, so
/// they stay valid while views (which carry pointers) are invalidated by
/// growth - take views late, keep slices.
template <typename T>
class BasicPathPool {
 public:
  struct Slice {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;

    friend bool operator==(const Slice&, const Slice&) = default;
  };

  /// Copies `items` into the arena and returns its slice.
  Slice intern(std::span<const T> items) {
    util::require(items.size() <= std::numeric_limits<std::uint32_t>::max(),
                  "BasicPathPool::intern: sequence too long");
    const Slice slice{items_.size(), static_cast<std::uint32_t>(items.size())};
    items_.insert(items_.end(), items.begin(), items.end());
    return slice;
  }

  /// Appends one item (incremental building; slice the run afterwards with
  /// slice_of()).
  void push_back(const T& item) { items_.push_back(item); }

  /// The slice covering [begin, size()) - the tail appended since `begin`.
  [[nodiscard]] Slice slice_of(std::size_t begin) const {
    PANAGREE_ASSERT(begin <= items_.size());
    return Slice{begin, static_cast<std::uint32_t>(items_.size() - begin)};
  }

  [[nodiscard]] std::span<const T> view(Slice slice) const {
    PANAGREE_ASSERT(slice.offset + slice.length <= items_.size());
    return {items_.data() + slice.offset, slice.length};
  }

  /// Total items interned (the offset the next intern would receive).
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  void reserve(std::size_t items) { items_.reserve(items); }
  void clear() { items_.clear(); }

  friend bool operator==(const BasicPathPool&, const BasicPathPool&) = default;

 private:
  std::vector<T> items_;
};

/// The canonical pool: AS-id sequences.
using PathPool = BasicPathPool<topology::AsId>;

/// Lightweight read-only window over one pooled path. Implicitly
/// constructible from a std::vector<AsId> path so pooled and materialized
/// paths compare with the same operator (view == Path{...} just works).
class PathView {
 public:
  using value_type = topology::AsId;

  PathView() = default;
  PathView(const topology::AsId* data, std::size_t size)
      : data_(data), size_(size) {}
  /*implicit*/ PathView(std::span<const topology::AsId> ids)
      : data_(ids.data()), size_(ids.size()) {}
  /*implicit*/ PathView(const std::vector<topology::AsId>& path)
      : data_(path.data()), size_(path.size()) {}

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] topology::AsId operator[](std::size_t i) const {
    PANAGREE_ASSERT(i < size_);
    return data_[i];
  }
  [[nodiscard]] topology::AsId front() const { return (*this)[0]; }
  [[nodiscard]] topology::AsId back() const { return (*this)[size_ - 1]; }
  [[nodiscard]] const topology::AsId* begin() const { return data_; }
  [[nodiscard]] const topology::AsId* end() const { return data_ + size_; }
  [[nodiscard]] std::span<const topology::AsId> ids() const {
    return {data_, size_};
  }

  /// Materializes an owning path (the bgp::Path shape).
  [[nodiscard]] std::vector<topology::AsId> to_path() const {
    return {data_, data_ + size_};
  }

  friend bool operator==(PathView a, PathView b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

  friend std::ostream& operator<<(std::ostream& os, PathView path) {
    os << "[";
    for (std::size_t i = 0; i < path.size_; ++i) {
      os << (i == 0 ? "" : " ") << path.data_[i];
    }
    return os << "]";
  }

 private:
  const topology::AsId* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Read-only window over a contiguous run of pooled paths - the
/// vector-of-vector replacement handed out by bgp::SppInstance::permitted.
class PathListView {
 public:
  PathListView() = default;
  PathListView(const PathPool& pool, std::span<const PathPool::Slice> slices)
      : pool_(&pool), slices_(slices) {}

  [[nodiscard]] std::size_t size() const { return slices_.size(); }
  [[nodiscard]] bool empty() const { return slices_.empty(); }
  [[nodiscard]] PathView operator[](std::size_t i) const {
    PANAGREE_ASSERT(i < slices_.size());
    return PathView(pool_->view(slices_[i]));
  }

  class iterator {
   public:
    using value_type = PathView;
    using difference_type = std::ptrdiff_t;

    iterator() = default;
    iterator(const PathPool* pool, const PathPool::Slice* slice)
        : pool_(pool), slice_(slice) {}

    PathView operator*() const { return PathView(pool_->view(*slice_)); }
    iterator& operator++() {
      ++slice_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++slice_;
      return old;
    }
    friend bool operator==(const iterator&, const iterator&) = default;

   private:
    const PathPool* pool_ = nullptr;
    const PathPool::Slice* slice_ = nullptr;
  };

  [[nodiscard]] iterator begin() const {
    return {pool_, slices_.data()};
  }
  [[nodiscard]] iterator end() const {
    return {pool_, slices_.data() + slices_.size()};
  }

  /// Materializes every path (test/debug convenience).
  [[nodiscard]] std::vector<std::vector<topology::AsId>> materialize() const {
    std::vector<std::vector<topology::AsId>> out;
    out.reserve(size());
    for (const PathView path : *this) {
      out.push_back(path.to_path());
    }
    return out;
  }

  friend bool operator==(const PathListView& a, const PathListView& b) {
    if (a.size() != b.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  const PathPool* pool_ = nullptr;
  std::span<const PathPool::Slice> slices_;
};

}  // namespace panagree::paths
