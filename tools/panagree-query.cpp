// panagree-query: scriptable client of panagree-serve.
//
//   panagree-query --port P                # send stdin lines, print replies
//   panagree-query --direct [--snapshot FILE] [--sources N] [--threads N]
//       [--shards N]
//   panagree-query --port P --bench [--snapshot FILE] [--requests N]
//       [--connections C] [--kind paths|diversity|whatif|mix] [--sources N]
//   panagree-query --port P --stats [--prom]   # scrape server metrics
//   panagree-query --port P --slowlog          # dump the slow-query ring
//
// One-shot mode reads newline-delimited JSON requests (see
// serve/wire.hpp) from stdin, sends each to the server, waits for its
// response, and prints it - closed loop, so output order equals input
// order and sessions are diffable.
//
// --direct answers the same request lines in-process through the exact
// serving-stack construction panagree-serve uses (tools/serve_common.hpp,
// ShardRouter included - so `rebase` lines work and --shards N is
// accepted, though responses are byte-identical at any shard count): its
// output is the golden reference the CI smoke job diffs server output
// against, byte for byte.
//
// --bench is a closed-loop load generator: C connections each fire their
// share of N deterministic requests (rotating over the sampled sources
// and candidate peering deltas of the topology, which is why it needs
// the snapshot too) and the tool reports throughput and latency
// percentiles (nearest-rank: the smallest sample >= p percent of the
// sorted distribution - an actual observed latency, never interpolated).
//
// --stats sends one `{"kind":"stats"}` request and prints the raw wire
// response (byte-stable field order); --stats --prom re-emits it as
// Prometheus text exposition instead.
//
// --slowlog sends one `{"kind":"slowlog"}` request and prints the raw
// wire response: the server's slow-query ring (threshold and entries
// with per-stage nanosecond breakdowns, slowest first). Like stats, the
// bytes are a stable function of the contents but reflect process-wide
// runtime state - not diffable against --direct.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cli_common.hpp"
#include "panagree/obs/export.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/serve/client.hpp"
#include "panagree/serve/wire.hpp"
#include "serve_common.hpp"

using namespace panagree;

namespace {

constexpr const char* kTool = "panagree-query";

void usage() {
  std::cerr
      << "usage: panagree-query --port P            (requests on stdin)\n"
         "       panagree-query --direct [--snapshot FILE] [--sources N]"
         " [--threads N] [--shards N]\n"
         "       panagree-query --port P --bench [--snapshot FILE]"
         " [--requests N]\n"
         "           [--connections C] [--kind paths|diversity|whatif|mix]"
         " [--sources N]\n"
         "       panagree-query --port P --stats [--prom]\n"
         "       panagree-query --port P --slowlog\n";
}

/// Blank (including CR-only, from CRLF scripts) lines carry no request;
/// the server drops them silently, so the client must not wait for a
/// response to one.
[[nodiscard]] bool is_blank(const std::string& line) {
  return line.empty() || line == "\r";
}

[[nodiscard]] std::string read_response(serve::ClientConnection& conn) {
  std::string response = conn.read_line();
  if (response.empty()) {
    throw serve::ClientError("connection closed before response");
  }
  return response;
}

struct Options {
  std::size_t port = 0;
  bool have_port = false;
  bool direct = false;
  bool bench = false;
  bool stats = false;
  bool prom = false;
  bool slowlog = false;
  std::string snapshot;
  std::size_t sources_n = benchcfg::num_sources();
  std::size_t threads = benchcfg::num_threads();
  std::size_t shards = 1;
  std::size_t requests = 2000;
  std::size_t connections = 4;
  std::string kind = "mix";
};

/// The deterministic --bench request stream: ids are 1-based stream
/// positions, kinds rotate (or stay fixed), sources rotate over the
/// engine's sample, deltas over the candidate peering links.
std::vector<std::string> build_bench_requests(const Options& options) {
  const auto net = benchcfg::load_internet(
      0, options.snapshot.empty() ? nullptr : options.snapshot.c_str());
  const std::vector<topology::AsId> sources = diversity::sample_sources(
      net.graph(), options.sources_n, benchcfg::kSampleSeed);
  const std::vector<scenario::Delta> deltas =
      scenario::candidate_peering_deltas(net.compiled(), 64, 4242);
  if (sources.empty()) {
    throw std::runtime_error("--bench: no sources to query");
  }
  std::vector<std::string> requests;
  requests.reserve(options.requests);
  for (std::size_t i = 0; i < options.requests; ++i) {
    std::string kind = options.kind;
    if (kind == "mix") {
      kind = i % 3 == 0 ? "paths" : (i % 3 == 1 ? "diversity" : "whatif");
    }
    if (kind == "whatif" && deltas.empty()) {
      kind = "paths";  // tiny graphs may have no candidates
    }
    std::string line = "{\"v\":1,\"id\":" + std::to_string(i + 1) +
                       ",\"kind\":\"" + kind + "\"";
    if (kind == "whatif") {
      const scenario::LinkChange& link =
          deltas[i % deltas.size()].add.front();
      line += ",\"add\":[{\"a\":" + std::to_string(link.a) +
              ",\"b\":" + std::to_string(link.b) +
              ",\"type\":\"peering\"}]}";
    } else {
      line += ",\"source\":" + std::to_string(sources[i % sources.size()]) +
              "}";
    }
    requests.push_back(std::move(line));
  }
  return requests;
}

int run_bench(const Options& options) {
  const std::vector<std::string> requests = build_bench_requests(options);
  const std::size_t connections =
      std::max<std::size_t>(1, std::min(options.connections,
                                        requests.size()));
  std::vector<std::vector<double>> latencies(connections);
  std::vector<std::string> errors(connections);

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(connections);
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      try {
        serve::ClientConnection conn(
            static_cast<std::uint16_t>(options.port));
        // Stride partition: connection c sends requests c, c+C, ...
        for (std::size_t i = c; i < requests.size(); i += connections) {
          const auto sent = std::chrono::steady_clock::now();
          conn.send_line(requests[i]);
          const std::string response = read_response(conn);
          latencies[c].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - sent)
                  .count());
          if (response.find("\"ok\":true") == std::string::npos) {
            throw std::runtime_error("server error: " + response);
          }
        }
      } catch (const std::exception& e) {
        errors[c] = e.what();
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();

  for (const std::string& error : errors) {
    if (!error.empty()) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
  }
  std::vector<double> all;
  for (const std::vector<double>& per_conn : latencies) {
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  if (all.empty()) {
    std::cerr << kTool << ": --bench measured no requests (--requests 0?)\n";
    return cli::kUsageExit;
  }
  std::sort(all.begin(), all.end());
  // Nearest-rank percentile: rank = ceil(p/100 * count), 1-based, so the
  // reported value is always an observed sample (p100 = max, and p0
  // clamps to the min). No interpolation - small samples stay honest.
  const auto percentile = [&](double p) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(all.size())));
    return all[std::max<std::size_t>(rank, 1) - 1];
  };
  std::cout << "== panagree-query --bench: " << all.size()
            << " requests over " << connections << " connections ==\n"
            << "qps " << static_cast<double>(all.size()) / wall_s
            << "\nlatency ms (nearest-rank): count " << all.size()
            << ", min " << all.front() << ", p50 " << percentile(50.0)
            << ", p95 " << percentile(95.0) << ", p99 " << percentile(99.0)
            << ", max " << all.back() << "\n";
  return 0;
}

/// --slowlog: one slowlog request over the wire; prints the raw
/// response line (parsed first, so a server error response surfaces as
/// an error exit rather than passing through).
int run_slowlog(const Options& options) {
  serve::ClientConnection conn(static_cast<std::uint16_t>(options.port));
  conn.send_line("{\"v\":1,\"id\":1,\"kind\":\"slowlog\"}");
  const std::string response = read_response(conn);
  (void)serve::parse_slowlog_response(response);
  std::cout << response;
  return 0;
}

/// --stats: one stats request over the wire; prints the raw response
/// line (the byte-stable exposition format) or, with --prom, the same
/// snapshot re-emitted as Prometheus text.
int run_stats(const Options& options) {
  serve::ClientConnection conn(static_cast<std::uint16_t>(options.port));
  conn.send_line("{\"v\":1,\"id\":1,\"kind\":\"stats\"}");
  const std::string response = read_response(conn);
  if (!options.prom) {
    std::cout << response;
    return 0;
  }
  const serve::StatsResult stats = serve::parse_stats_response(response);
  std::cout << obs::to_prometheus_text(stats.metrics);
  return 0;
}

int run_direct(const Options& options) {
  servecfg::ServeContext context(
      options.snapshot.empty() ? nullptr : options.snapshot.c_str(),
      options.sources_n, options.threads, /*max_batch=*/256,
      options.shards);
  context.prime();
  std::string line;
  std::string out;
  while (std::getline(std::cin, line)) {
    if (is_blank(line)) {
      continue;
    }
    out.clear();
    context.router.handle_line(line, out);
    std::cout << out;
  }
  return 0;
}

int run_session(const Options& options) {
  serve::ClientConnection conn(static_cast<std::uint16_t>(options.port));
  std::string line;
  while (std::getline(std::cin, line)) {
    if (is_blank(line)) {
      continue;
    }
    conn.send_line(line);
    std::cout << read_response(conn);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--version") {
      cli::print_version(kTool);
    } else if (arg == "--port") {
      options.port = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
      options.have_port = true;
    } else if (arg == "--direct") {
      options.direct = true;
    } else if (arg == "--bench") {
      options.bench = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--slowlog") {
      options.slowlog = true;
    } else if (arg == "--prom") {
      options.prom = true;
    } else if (arg == "--snapshot") {
      options.snapshot = cli::require_value(kTool, arg, argc, argv, i);
    } else if (arg == "--sources") {
      options.sources_n = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--threads") {
      options.threads = cli::parse_threads(kTool, argc, argv, i);
    } else if (arg == "--shards") {
      options.shards = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
      if (options.shards == 0) {
        usage();
        return cli::kUsageExit;
      }
    } else if (arg == "--requests") {
      options.requests = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--connections") {
      options.connections = cli::parse_size(
          kTool, arg, cli::require_value(kTool, arg, argc, argv, i));
    } else if (arg == "--kind") {
      options.kind = cli::require_value(kTool, arg, argc, argv, i);
      if (options.kind != "paths" && options.kind != "diversity" &&
          options.kind != "whatif" && options.kind != "mix") {
        usage();
        return cli::kUsageExit;
      }
    } else {
      usage();
      return cli::kUsageExit;
    }
  }
  if (options.port > 65535 || (options.have_port && options.direct) ||
      (!options.have_port && !options.direct) ||
      (options.bench && !options.have_port) ||
      (options.stats && !options.have_port) ||
      (options.slowlog && !options.have_port) ||
      (options.slowlog && (options.stats || options.bench)) ||
      (options.stats && options.bench) || (options.prom && !options.stats)) {
    usage();
    return cli::kUsageExit;
  }
  cli::init_tracing();

  try {
    if (options.stats) {
      return run_stats(options);
    }
    if (options.slowlog) {
      return run_slowlog(options);
    }
    if (options.bench) {
      return run_bench(options);
    }
    if (options.direct) {
      return run_direct(options);
    }
    return run_session(options);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
