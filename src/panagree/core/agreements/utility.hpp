// Agreement utility (Eq. 3 and Eq. 7): u_X(a) = U_X(f^(a)) - U_X(f).
//
// An agreement changes an AS's traffic distribution in two ways (Eq. 7c):
// existing flows are rerouted from provider paths onto the new agreement
// segments, and new customer traffic is attracted onto them. A TrafficShift
// captures both; AgreementEvaluator applies it to a base allocation and
// evaluates the utility difference under the Economy.
#pragma once

#include <vector>

#include "panagree/core/agreements/agreement.hpp"
#include "panagree/econ/business.hpp"

namespace panagree::agreements {

/// An existing flow moved from old_path to new_path (same endpoints).
struct Reroute {
  std::vector<AsId> old_path;
  std::vector<AsId> new_path;
  double volume = 0.0;
};

/// Newly attracted customer traffic on an agreement path.
struct NewDemand {
  std::vector<AsId> path;
  double volume = 0.0;
};

/// The full traffic effect of an agreement.
struct TrafficShift {
  std::vector<Reroute> reroutes;
  std::vector<NewDemand> new_demands;

  /// The shift as a TrafficAllocation delta (negative on old paths).
  [[nodiscard]] econ::TrafficAllocation as_delta() const;
};

class AgreementEvaluator {
 public:
  /// Both references must outlive the evaluator.
  AgreementEvaluator(const econ::Economy& economy,
                     const econ::TrafficAllocation& base);

  /// u_party(a): utility difference induced by the shift (Eq. 3).
  [[nodiscard]] double utility_change(AsId party,
                                      const TrafficShift& shift) const;

  /// u_X(a) + u_Y(a): the joint surplus that cash compensation splits.
  [[nodiscard]] double joint_utility_change(AsId x, AsId y,
                                            const TrafficShift& shift) const;

  /// Absolute utility of `party` after applying the shift.
  [[nodiscard]] double utility_after(AsId party,
                                     const TrafficShift& shift) const;

  [[nodiscard]] const econ::Economy& economy() const { return *economy_; }
  [[nodiscard]] const econ::TrafficAllocation& base() const { return *base_; }

 private:
  [[nodiscard]] econ::TrafficAllocation apply(const TrafficShift& shift) const;

  const econ::Economy* economy_;
  const econ::TrafficAllocation* base_;
};

}  // namespace panagree::agreements
