// Bargaining efficiency (§V-C6): expected Nash bargaining product under a
// strategy pair (Eq. 19) and the Price of Dishonesty (Eq. 20)
//
//   PoD(sigma*) = 1 - E[N | sigma*] / E[N | sigma^T].
//
// Both parties' strategies are piecewise constant, so E[N | sigma] is an
// exact finite sum over claim-cell rectangles: within a cell (v_i, v_j) the
// integrand (u_X - Pi)(u_Y + Pi) factorizes into per-axis interval masses
// and first moments. The truthful reference E[N | sigma^T] is computed by
// 2-D composite Simpson over the joint support.
#pragma once

#include "panagree/core/bosco/best_response.hpp"

namespace panagree::bosco {

/// Exact E[N | (sx, sy)] for product-form joint distributions (Eq. 19).
[[nodiscard]] double expected_nash_product(const ChoiceSet& choices_x,
                                           const ChoiceSet& choices_y,
                                           const Strategy& sx,
                                           const Strategy& sy,
                                           const UtilityDistribution& dist_x,
                                           const UtilityDistribution& dist_y);

/// E[N | truthful claims]: integral of ((u_X + u_Y)/2)^2 over the region
/// u_X + u_Y >= 0 (numeric; `grid` intervals per axis).
[[nodiscard]] double expected_truthful_nash_product(
    const UtilityDistribution& dist_x, const UtilityDistribution& dist_y,
    std::size_t grid = 600);

/// Eq. 20; requires E[N | truthful] > 0 (the paper disregards agreements
/// that are unviable even under honesty).
[[nodiscard]] double price_of_dishonesty(double expected_equilibrium,
                                         double expected_truthful);

}  // namespace panagree::bosco
