#include "panagree/core/agreements/agreement.hpp"

#include <algorithm>
#include <sstream>

namespace panagree::agreements {

std::vector<AsId> AccessGrant::all() const {
  std::vector<AsId> out;
  out.reserve(providers.size() + peers.size() + customers.size());
  out.insert(out.end(), providers.begin(), providers.end());
  out.insert(out.end(), peers.begin(), peers.end());
  out.insert(out.end(), customers.begin(), customers.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Agreement::violates_grc() const {
  return !grant_x.providers.empty() || !grant_x.peers.empty() ||
         !grant_y.providers.empty() || !grant_y.peers.empty();
}

namespace {

void validate_grant(const Graph& graph, const AccessGrant& grant,
                    AsId partner) {
  util::require(grant.grantor < graph.num_ases(),
                "Agreement: grantor out of range");
  const auto is_in = [](const std::vector<AsId>& set, AsId as) {
    return std::find(set.begin(), set.end(), as) != set.end();
  };
  for (const AsId p : grant.providers) {
    util::require(is_in(graph.providers(grant.grantor), p),
                  "Agreement: granted provider is not a provider");
    util::require(p != partner, "Agreement: cannot grant the partner itself");
  }
  for (const AsId p : grant.peers) {
    util::require(is_in(graph.peers(grant.grantor), p),
                  "Agreement: granted peer is not a peer");
    util::require(p != partner, "Agreement: cannot grant the partner itself");
  }
  for (const AsId c : grant.customers) {
    util::require(is_in(graph.customers(grant.grantor), c),
                  "Agreement: granted customer is not a customer");
    util::require(c != partner, "Agreement: cannot grant the partner itself");
  }
}

void append_set(std::ostringstream& os, const char* prefix,
                const std::vector<AsId>& set, const Graph& graph,
                bool& first) {
  if (set.empty()) {
    return;
  }
  if (!first) {
    os << ", ";
  }
  first = false;
  os << prefix << "{";
  for (std::size_t i = 0; i < set.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << graph.info(set[i]).name;
  }
  os << "}";
}

void append_grant(std::ostringstream& os, const AccessGrant& grant,
                  const Graph& graph) {
  os << graph.info(grant.grantor).name << "(";
  bool first = true;
  append_set(os, "^", grant.providers, graph, first);
  append_set(os, "->", grant.peers, graph, first);
  append_set(os, "v", grant.customers, graph, first);
  os << ")";
}

}  // namespace

void Agreement::validate(const Graph& graph) const {
  util::require(x() != y(), "Agreement: parties must differ");
  validate_grant(graph, grant_x, y());
  validate_grant(graph, grant_y, x());
}

std::string Agreement::to_string(const Graph& graph) const {
  std::ostringstream os;
  os << "[";
  append_grant(os, grant_x, graph);
  os << "; ";
  append_grant(os, grant_y, graph);
  os << "]";
  return os.str();
}

std::vector<std::vector<AsId>> new_segments_for(const Agreement& agreement,
                                                AsId party) {
  util::require(party == agreement.x() || party == agreement.y(),
                "new_segments_for: not a party to the agreement");
  const AccessGrant& partner_grant =
      party == agreement.x() ? agreement.grant_y : agreement.grant_x;
  std::vector<std::vector<AsId>> segments;
  for (const AsId z : partner_grant.all()) {
    if (z == party) {
      continue;
    }
    segments.push_back({party, partner_grant.grantor, z});
  }
  return segments;
}

std::vector<pan::Crossing> to_crossings(const Agreement& agreement,
                                        const Graph& graph) {
  agreement.validate(graph);
  std::vector<pan::Crossing> crossings;
  const auto add_side = [&](const AccessGrant& grant, AsId beneficiary) {
    const auto cone = topology::customer_cone(graph, beneficiary);
    const std::set<AsId> sources(cone.begin(), cone.end());
    for (const AsId z : grant.all()) {
      if (z == beneficiary) {
        continue;
      }
      pan::Crossing c;
      c.at = grant.grantor;
      c.from = beneficiary;
      c.to = z;
      c.allowed_sources = sources;
      crossings.push_back(std::move(c));
      // The reverse direction (traffic returning from Z toward the
      // beneficiary's cone) is equally authorized by the grant.
      pan::Crossing back;
      back.at = grant.grantor;
      back.from = z;
      back.to = beneficiary;
      back.allowed_sources = {};  // checked at the far end by path policy
      crossings.push_back(std::move(back));
    }
  };
  add_side(agreement.grant_x, agreement.y());
  add_side(agreement.grant_y, agreement.x());
  return crossings;
}

}  // namespace panagree::agreements
