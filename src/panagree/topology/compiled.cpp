#include "panagree/topology/compiled.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace panagree::topology {

void CompiledTopology::point_at_owned() noexcept {
  row_start_ = owned_row_start_.data();
  providers_end_ = owned_providers_end_.data();
  peers_end_ = owned_peers_end_.data();
  entries_ = owned_entries_.data();
  num_ases_ = owned_row_start_.empty() ? 0 : owned_row_start_.size() - 1;
  num_entries_ = owned_entries_.size();
}

void CompiledTopology::build_role_lane() {
  owned_roles_.resize(num_entries_);
  for (std::size_t i = 0; i < num_entries_; ++i) {
    owned_roles_[i] = static_cast<std::uint8_t>(entries_[i].role);
  }
  roles_ = owned_roles_.data();
}

CompiledTopology::CompiledTopology(const Graph& graph) : graph_(&graph) {
  const std::size_t n = graph.num_ases();
  util::require(2 * graph.num_links() <
                    std::numeric_limits<std::uint32_t>::max(),
                "CompiledTopology: too many links for 32-bit offsets");

  owned_row_start_.assign(n + 1, 0);
  owned_providers_end_.assign(n, 0);
  owned_peers_end_.assign(n, 0);
  for (AsId as = 0; as < n; ++as) {
    const auto base = owned_row_start_[as];
    const auto np = static_cast<std::uint32_t>(graph.providers(as).size());
    const auto ne = static_cast<std::uint32_t>(graph.peers(as).size());
    const auto nc = static_cast<std::uint32_t>(graph.customers(as).size());
    owned_providers_end_[as] = base + np;
    owned_peers_end_[as] = base + np + ne;
    owned_row_start_[as + 1] = base + np + ne + nc;
  }
  owned_entries_.resize(owned_row_start_[n]);

  // Fill each role group from the link table (one pass; group-relative
  // cursors), then sort every group by neighbor id for binary lookup.
  std::vector<std::uint32_t> cursor(3 * n, 0);
  const auto emplace = [&](AsId at, std::size_t group, std::uint32_t begin,
                           AsId neighbor, NeighborRole role, LinkId link) {
    const std::uint32_t slot = begin + cursor[3 * at + group]++;
    owned_entries_[slot] =
        Entry{neighbor, static_cast<std::uint32_t>(link), role};
  };
  const auto& links = graph.links();
  for (LinkId id = 0; id < links.size(); ++id) {
    const Link& l = links[id];
    if (l.type == LinkType::kProviderCustomer) {
      // a is the provider, b the customer.
      emplace(l.a, 2, owned_peers_end_[l.a], l.b, NeighborRole::kCustomer, id);
      emplace(l.b, 0, owned_row_start_[l.b], l.a, NeighborRole::kProvider, id);
    } else {
      emplace(l.a, 1, owned_providers_end_[l.a], l.b, NeighborRole::kPeer, id);
      emplace(l.b, 1, owned_providers_end_[l.b], l.a, NeighborRole::kPeer, id);
    }
  }

  const auto by_neighbor = [](const Entry& x, const Entry& y) {
    return x.neighbor < y.neighbor;
  };
  for (AsId as = 0; as < n; ++as) {
    std::sort(owned_entries_.begin() + owned_row_start_[as],
              owned_entries_.begin() + owned_providers_end_[as], by_neighbor);
    std::sort(owned_entries_.begin() + owned_providers_end_[as],
              owned_entries_.begin() + owned_peers_end_[as], by_neighbor);
    std::sort(owned_entries_.begin() + owned_peers_end_[as],
              owned_entries_.begin() + owned_row_start_[as + 1], by_neighbor);
  }
  point_at_owned();
  build_role_lane();
}

CompiledTopology CompiledTopology::borrow(
    const Graph& graph, std::span<const std::uint32_t> row_start,
    std::span<const std::uint32_t> providers_end,
    std::span<const std::uint32_t> peers_end, std::span<const Entry> entries) {
  const std::size_t n = graph.num_ases();
  util::require(row_start.size() == n + 1 && providers_end.size() == n &&
                    peers_end.size() == n,
                "CompiledTopology::borrow: CSR offset arrays do not match "
                "the graph's AS count");
  util::require(!row_start.empty() && row_start.back() == entries.size() &&
                    entries.size() == 2 * graph.num_links(),
                "CompiledTopology::borrow: entry array does not match the "
                "graph's link count");
  CompiledTopology out;
  out.graph_ = &graph;
  out.owns_ = false;
  out.row_start_ = row_start.data();
  out.providers_end_ = providers_end.data();
  out.peers_end_ = peers_end.data();
  out.entries_ = entries.data();
  out.num_ases_ = n;
  out.num_entries_ = entries.size();
  out.build_role_lane();
  return out;
}

void CompiledTopology::adopt_views_from(const CompiledTopology& other) {
  if (owns_) {
    point_at_owned();
  } else {
    row_start_ = other.row_start_;
    providers_end_ = other.providers_end_;
    peers_end_ = other.peers_end_;
    entries_ = other.entries_;
    num_ases_ = other.num_ases_;
    num_entries_ = other.num_entries_;
  }
  // The role lane is owned in both modes; re-point at this object's copy.
  roles_ = owned_roles_.data();
}

CompiledTopology::CompiledTopology(const CompiledTopology& other)
    : graph_(other.graph_),
      owns_(other.owns_),
      owned_row_start_(other.owned_row_start_),
      owned_providers_end_(other.owned_providers_end_),
      owned_peers_end_(other.owned_peers_end_),
      owned_entries_(other.owned_entries_),
      owned_roles_(other.owned_roles_) {
  adopt_views_from(other);
}

CompiledTopology& CompiledTopology::operator=(const CompiledTopology& other) {
  if (this != &other) {
    *this = CompiledTopology(other);  // copy, then move-assign
  }
  return *this;
}

CompiledTopology::CompiledTopology(CompiledTopology&& other) noexcept
    : graph_(other.graph_),
      owns_(other.owns_),
      owned_row_start_(std::move(other.owned_row_start_)),
      owned_providers_end_(std::move(other.owned_providers_end_)),
      owned_peers_end_(std::move(other.owned_peers_end_)),
      owned_entries_(std::move(other.owned_entries_)),
      owned_roles_(std::move(other.owned_roles_)) {
  adopt_views_from(other);
}

CompiledTopology& CompiledTopology::operator=(
    CompiledTopology&& other) noexcept {
  if (this != &other) {
    graph_ = other.graph_;
    owns_ = other.owns_;
    owned_row_start_ = std::move(other.owned_row_start_);
    owned_providers_end_ = std::move(other.owned_providers_end_);
    owned_peers_end_ = std::move(other.owned_peers_end_);
    owned_entries_ = std::move(other.owned_entries_);
    owned_roles_ = std::move(other.owned_roles_);
    adopt_views_from(other);
  }
  return *this;
}

const CompiledTopology::Entry* CompiledTopology::find(AsId x, AsId y) const {
  check(x);
  // Short rows are scanned linearly (branch-predictable, one cache line);
  // long rows use a binary search per role group.
  constexpr std::size_t kLinearThreshold = 16;
  if (degree(x) <= kLinearThreshold) {
    for (const Entry& e : entries(x)) {
      if (e.neighbor == y) {
        return &e;
      }
    }
    return nullptr;
  }
  const auto search = [&](std::span<const Entry> group) -> const Entry* {
    const auto it = std::lower_bound(
        group.begin(), group.end(), y,
        [](const Entry& e, AsId id) { return e.neighbor < id; });
    return (it != group.end() && it->neighbor == y) ? &*it : nullptr;
  };
  if (const Entry* e = search(providers(x))) {
    return e;
  }
  if (const Entry* e = search(peers(x))) {
    return e;
  }
  return search(customers(x));
}

}  // namespace panagree::topology
