#include "panagree/obs/export.hpp"

#include <charconv>
#include <chrono>
#include <cmath>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace panagree::obs {

namespace {

#if !defined(PANAGREE_OBS_OFF)
// Static-initialized at load time so uptime_s measures the process, not
// the first stats request.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();
#endif

void append_uint(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer),
                                       value);
  (void)ec;
  out.append(buffer, ptr);
}

void append_int(std::string& out, std::int64_t value) {
  char buffer[24];
  const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof(buffer),
                                       value);
  (void)ec;
  out.append(buffer, ptr);
}

/// `paths.items_claimed` -> `panagree_paths_items_claimed`.
void append_prom_name(std::string& out, std::string_view name) {
  out += "panagree_";
  for (const char c : name) {
    const bool word = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    out.push_back(word ? c : '_');
  }
}

}  // namespace

MetricsSnapshot snapshot_metrics() {
  MetricsSnapshot snap;
#if !defined(PANAGREE_OBS_OFF)
  const Registry& registry = Registry::global();
  registry.for_each_counter(
      [](std::string_view name, const Counter& counter, void* ctx) {
        static_cast<MetricsSnapshot*>(ctx)->counters.push_back(
            {std::string(name), counter.value()});
      },
      &snap);
  registry.for_each_gauge(
      [](std::string_view name, const Gauge& gauge, void* ctx) {
        static_cast<MetricsSnapshot*>(ctx)->gauges.push_back(
            {std::string(name), gauge.value()});
      },
      &snap);
  registry.for_each_histogram(
      [](std::string_view name, const Histogram& histogram, void* ctx) {
        HistogramSample sample;
        sample.name = std::string(name);
        sample.sum = histogram.sum();
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          const std::uint64_t count = histogram.bucket_count(b);
          if (count != 0) {
            sample.buckets.emplace_back(static_cast<std::uint32_t>(b),
                                        count);
            sample.count += count;
          }
        }
        static_cast<MetricsSnapshot*>(ctx)->histograms.push_back(
            std::move(sample));
      },
      &snap);
#endif
  return snap;
}

void refresh_process_gauges() {
#if !defined(PANAGREE_OBS_OFF)
  static Gauge& uptime = Registry::global().gauge("process.uptime_s");
  static Gauge& peak_rss = Registry::global().gauge("process.peak_rss_kb");
  uptime.set(std::chrono::duration_cast<std::chrono::seconds>(
                 std::chrono::steady_clock::now() - g_process_start)
                 .count());
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    peak_rss.set(usage.ru_maxrss / 1024);  // ru_maxrss is bytes on macOS
#else
    peak_rss.set(usage.ru_maxrss);
#endif
  }
#else
  (void)peak_rss;
#endif
#endif  // !PANAGREE_OBS_OFF
}

std::uint64_t histogram_percentile(const HistogramSample& h,
                                   double percentile) {
  if (h.count == 0) {
    return 0;
  }
  if (percentile < 0.0) {
    percentile = 0.0;
  }
  if (percentile > 100.0) {
    percentile = 100.0;
  }
  // Nearest rank, 1-based: the smallest rank whose cumulative share
  // reaches p%.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(h.count)));
  const std::uint64_t target = rank == 0 ? 1 : rank;
  std::uint64_t cumulative = 0;
  for (const auto& [bucket, count] : h.buckets) {
    cumulative += count;
    if (cumulative >= target) {
      return histogram_bucket_bound(bucket);
    }
  }
  return histogram_bucket_bound(h.buckets.back().first);
}

std::string to_prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const CounterSample& counter : snap.counters) {
    out += "# TYPE ";
    append_prom_name(out, counter.name);
    out += " counter\n";
    append_prom_name(out, counter.name);
    out += "_total ";
    append_uint(out, counter.value);
    out.push_back('\n');
  }
  for (const GaugeSample& gauge : snap.gauges) {
    out += "# TYPE ";
    append_prom_name(out, gauge.name);
    out += " gauge\n";
    append_prom_name(out, gauge.name);
    out.push_back(' ');
    append_int(out, gauge.value);
    out.push_back('\n');
  }
  for (const HistogramSample& histogram : snap.histograms) {
    out += "# TYPE ";
    append_prom_name(out, histogram.name);
    out += " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [bucket, count] : histogram.buckets) {
      cumulative += count;
      append_prom_name(out, histogram.name);
      out += "_bucket{le=\"";
      if (bucket >= kHistogramBuckets - 1) {
        out += "+Inf";
      } else {
        append_uint(out, histogram_bucket_bound(bucket));
      }
      out += "\"} ";
      append_uint(out, cumulative);
      out.push_back('\n');
    }
    // Prometheus requires the +Inf bucket even when the overflow bucket
    // is empty: it must equal _count.
    if (histogram.buckets.empty() ||
        histogram.buckets.back().first < kHistogramBuckets - 1) {
      append_prom_name(out, histogram.name);
      out += "_bucket{le=\"+Inf\"} ";
      append_uint(out, cumulative);
      out.push_back('\n');
    }
    append_prom_name(out, histogram.name);
    out += "_sum ";
    append_uint(out, histogram.sum);
    out.push_back('\n');
    append_prom_name(out, histogram.name);
    out += "_count ";
    append_uint(out, histogram.count);
    out.push_back('\n');
  }
  return out;
}

}  // namespace panagree::obs
