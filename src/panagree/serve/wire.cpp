#include "panagree/serve/wire.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "panagree/util/json.hpp"

namespace panagree::serve {

namespace {

using util::json::Array;
using util::json::Object;
using util::json::Value;

[[noreturn]] void reject(const std::string& what) {
  throw ProtocolError("protocol: " + what);
}

// Typed accessors over the shared JSON model; every mismatch is a
// protocol error naming the offending field.

[[nodiscard]] const Object& as_object(const Value& value, const char* what) {
  const auto* object =
      std::get_if<std::unique_ptr<Object>>(&value.data);
  if (object == nullptr) {
    reject(std::string(what) + " must be an object");
  }
  return **object;
}

[[nodiscard]] const Array& as_array(const Value& value, const char* what) {
  const auto* array = std::get_if<std::unique_ptr<Array>>(&value.data);
  if (array == nullptr) {
    reject(std::string(what) + " must be an array");
  }
  return **array;
}

[[nodiscard]] const std::string& as_string(const Value& value,
                                           const char* what) {
  const auto* text = std::get_if<std::string>(&value.data);
  if (text == nullptr) {
    reject(std::string(what) + " must be a string");
  }
  return *text;
}

[[nodiscard]] std::uint64_t as_uint(const Value& value, const char* what) {
  const auto* integer = std::get_if<std::uint64_t>(&value.data);
  if (integer == nullptr) {
    reject(std::string(what) + " must be a non-negative integer");
  }
  return *integer;
}

/// Signed integer: the reader parses negative integrals as doubles
/// (integer-first applies to non-negative tokens only), so accept both
/// representations as long as the value is integral and in range.
[[nodiscard]] std::int64_t as_int(const Value& value, const char* what) {
  if (const auto* integer = std::get_if<std::uint64_t>(&value.data)) {
    if (*integer >
        static_cast<std::uint64_t>(
            std::numeric_limits<std::int64_t>::max())) {
      reject(std::string(what) + " out of range");
    }
    return static_cast<std::int64_t>(*integer);
  }
  if (const auto* number = std::get_if<double>(&value.data)) {
    const double rounded = std::nearbyint(*number);
    if (rounded != *number ||
        *number < static_cast<double>(
                      std::numeric_limits<std::int64_t>::min()) ||
        *number > static_cast<double>(
                      std::numeric_limits<std::int64_t>::max())) {
      reject(std::string(what) + " must be an integer");
    }
    return static_cast<std::int64_t>(rounded);
  }
  reject(std::string(what) + " must be an integer");
}

[[nodiscard]] bool as_bool(const Value& value, const char* what) {
  const auto* flag = std::get_if<bool>(&value.data);
  if (flag == nullptr) {
    reject(std::string(what) + " must be a boolean");
  }
  return *flag;
}

[[nodiscard]] const Value* find(const Object& object, std::string_view key) {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

[[nodiscard]] const Value& require_field(const Object& object,
                                         const char* key) {
  const Value* value = find(object, key);
  if (value == nullptr) {
    reject(std::string("missing field \"") + key + "\"");
  }
  return *value;
}

[[nodiscard]] AsId as_as_id(const Value& value, const char* what) {
  const std::uint64_t raw = as_uint(value, what);
  if (raw >= topology::kInvalidAs) {
    reject(std::string(what) + " out of range");
  }
  return static_cast<AsId>(raw);
}

[[nodiscard]] scenario::Delta parse_delta(const Object& object) {
  scenario::Delta delta;
  if (const Value* add = find(object, "add")) {
    for (const Value& entry : as_array(*add, "\"add\"")) {
      const Object& link = as_object(entry, "\"add\" entry");
      scenario::LinkChange change;
      change.a = as_as_id(require_field(link, "a"), "\"a\"");
      change.b = as_as_id(require_field(link, "b"), "\"b\"");
      const std::string& type =
          as_string(require_field(link, "type"), "\"type\"");
      if (type == "peering") {
        change.type = topology::LinkType::kPeering;
      } else if (type == "transit") {
        change.type = topology::LinkType::kProviderCustomer;
      } else {
        reject("unknown link type \"" + type + "\"");
      }
      delta.add.push_back(change);
    }
  }
  if (const Value* remove = find(object, "remove")) {
    for (const Value& entry : as_array(*remove, "\"remove\"")) {
      const Array& pair = as_array(entry, "\"remove\" entry");
      if (pair.size() != 2) {
        reject("\"remove\" entries must be [a, b] pairs");
      }
      delta.remove.emplace_back(as_as_id(pair[0], "\"remove\" id"),
                                as_as_id(pair[1], "\"remove\" id"));
    }
  }
  return delta;
}

/// json::parse with ProtocolError rethrow - reader errors are protocol
/// errors at this layer.
[[nodiscard]] Value parse_json_line(std::string_view line) {
  try {
    return util::json::parse(line);
  } catch (const util::ParseError& e) {
    reject(e.what());
  }
}

void append_uint(std::string& out, std::uint64_t value) {
  char buffer[24];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;
  out.append(buffer, ptr);
}

void append_int(std::string& out, std::int64_t value) {
  char buffer[24];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;
  out.append(buffer, ptr);
}

void append_path_array(std::string& out,
                       std::span<const diversity::Length3Path> paths) {
  out.push_back('[');
  bool first = true;
  for (const diversity::Length3Path& path : paths) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.push_back('[');
    append_uint(out, path.src);
    out.push_back(',');
    append_uint(out, path.mid);
    out.push_back(',');
    append_uint(out, path.dst);
    out.push_back(']');
  }
  out.push_back(']');
}

void append_response_head(std::string& out, std::uint64_t id, bool ok) {
  out += "{\"v\":";
  append_uint(out, kProtocolVersion);
  out += ",\"id\":";
  append_uint(out, id);
  out += ok ? ",\"ok\":true" : ",\"ok\":false";
}

/// Slow-query kind names, indexed by code (0-5 mirror RequestKind).
constexpr std::string_view kSlowKindNames[] = {
    "paths",   "diversity", "whatif",  "stats",
    "slowlog", "rebase",    "error",   "unknown"};

}  // namespace

std::string_view slow_kind_name(std::uint64_t code) noexcept {
  return code <= kSlowKindUnknown ? kSlowKindNames[code]
                                  : kSlowKindNames[kSlowKindUnknown];
}

std::uint64_t slow_kind_code(std::string_view name) {
  for (std::uint64_t code = 0; code <= kSlowKindUnknown; ++code) {
    if (kSlowKindNames[code] == name) {
      return code;
    }
  }
  reject("unknown slow-query kind \"" + std::string(name) + "\"");
}

Request parse_request(std::string_view line, std::uint64_t* id_out) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const Value root = parse_json_line(line);
  const Object& object = as_object(root, "request");
  Request request;
  request.id = as_uint(require_field(object, "id"), "\"id\"");
  if (id_out != nullptr) {
    *id_out = request.id;
  }
  const std::uint64_t version =
      as_uint(require_field(object, "v"), "\"v\"");
  if (version != kProtocolVersion) {
    reject("unsupported protocol version " + std::to_string(version) +
           " (server speaks " + std::to_string(kProtocolVersion) + ")");
  }
  const std::string& kind =
      as_string(require_field(object, "kind"), "\"kind\"");
  if (kind == "paths" || kind == "diversity") {
    request.kind = kind == "paths" ? RequestKind::kPaths
                                   : RequestKind::kDiversity;
    request.source =
        as_as_id(require_field(object, "source"), "\"source\"");
  } else if (kind == "whatif") {
    request.kind = RequestKind::kWhatIf;
    request.delta = parse_delta(object);
    if (request.delta.empty()) {
      reject("whatif request with an empty delta");
    }
  } else if (kind == "stats") {
    request.kind = RequestKind::kStats;
  } else if (kind == "slowlog") {
    request.kind = RequestKind::kSlowLog;
  } else if (kind == "rebase") {
    request.kind = RequestKind::kRebase;
    request.delta = parse_delta(object);
    if (request.delta.empty()) {
      reject("rebase request with an empty delta");
    }
  } else {
    reject("unknown kind \"" + kind + "\"");
  }
  return request;
}

void append_json_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN; the engine never produces them, but the
    // writer must not emit unparsable bytes if a weight ever does.
    out += value > 0 ? "1e999" : (value < 0 ? "-1e999" : "0");
    return;
  }
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  (void)ec;
  out.append(buffer, ptr);
}

void append_json_string(std::string& out, std::string_view value) {
  out.push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_paths_response(std::string& out, std::uint64_t id, AsId source,
                           std::span<const diversity::Length3Path> grc,
                           std::span<const diversity::Length3Path> ma) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"paths\",\"source\":";
  append_uint(out, source);
  out += ",\"grc\":";
  append_path_array(out, grc);
  out += ",\"ma\":";
  append_path_array(out, ma);
  out += "}\n";
}

void append_diversity_response(std::string& out, std::uint64_t id,
                               AsId source, const DiversityResult& result) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"diversity\",\"source\":";
  append_uint(out, source);
  out += ",\"grc_paths\":";
  append_uint(out, result.grc_paths);
  out += ",\"ma_paths\":";
  append_uint(out, result.ma_paths);
  out += ",\"grc_pairs\":";
  append_uint(out, result.grc_pairs);
  out += ",\"ma_extra_pairs\":";
  append_uint(out, result.ma_extra_pairs);
  out += ",\"mean_best_geodistance_km\":";
  append_json_double(out, result.mean_best_geodistance_km);
  out += ",\"transit_fees\":";
  append_json_double(out, result.transit_fees);
  out += "}\n";
}

void append_whatif_response(std::string& out, std::uint64_t id,
                            const WhatIfResult& result) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"whatif\",\"paths\":";
  append_json_double(out, result.paths_delta);
  out += ",\"pairs\":";
  append_json_double(out, result.pairs_delta);
  out += ",\"mean_km\":";
  append_json_double(out, result.mean_km_delta);
  out += ",\"fees\":";
  append_json_double(out, result.fees_delta);
  out += ",\"utility\":";
  append_json_double(out, result.utility);
  out += ",\"recomputed_sources\":";
  append_uint(out, result.recomputed_sources);
  out += ",\"cached_sources\":";
  append_uint(out, result.cached_sources);
  out += ",\"ball_size\":";
  append_uint(out, result.ball_size);
  out += "}\n";
}

void append_error_response(std::string& out, std::uint64_t id,
                           std::string_view message) {
  append_response_head(out, id, false);
  out += ",\"error\":";
  append_json_string(out, message);
  out += "}\n";
}

void append_rebase_response(std::string& out, std::uint64_t id,
                            std::uint64_t epoch) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"rebase\",\"epoch\":";
  append_uint(out, epoch);
  out += "}\n";
}

void append_stats_response(std::string& out, std::uint64_t id,
                           std::string_view build, std::uint64_t epoch,
                           const obs::MetricsSnapshot& metrics) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"stats\",\"build\":";
  append_json_string(out, build);
  out += ",\"epoch\":";
  append_uint(out, epoch);
  out += ",\"counters\":{";
  bool first = true;
  for (const obs::CounterSample& counter : metrics.counters) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    append_json_string(out, counter.name);
    out.push_back(':');
    append_uint(out, counter.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const obs::GaugeSample& gauge : metrics.gauges) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    append_json_string(out, gauge.name);
    out.push_back(':');
    append_int(out, gauge.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const obs::HistogramSample& histogram : metrics.histograms) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    append_json_string(out, histogram.name);
    out += ":{\"count\":";
    append_uint(out, histogram.count);
    out += ",\"sum\":";
    append_uint(out, histogram.sum);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [bucket, count] : histogram.buckets) {
      if (!first_bucket) {
        out.push_back(',');
      }
      first_bucket = false;
      out.push_back('[');
      append_uint(out, bucket);
      out.push_back(',');
      append_uint(out, count);
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}\n";
}

void append_slowlog_response(std::string& out, std::uint64_t id,
                             std::uint64_t threshold_ns,
                             std::span<const obs::SlowQueryRecord> entries) {
  append_response_head(out, id, true);
  out += ",\"kind\":\"slowlog\",\"threshold_ns\":";
  append_uint(out, threshold_ns);
  out += ",\"entries\":[";
  bool first = true;
  for (const obs::SlowQueryRecord& entry : entries) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out += "{\"wire_id\":";
    append_uint(out, entry.wire_id);
    out += ",\"kind\":\"";
    out += slow_kind_name(entry.kind);
    out += "\",\"source\":";
    append_uint(out, entry.source);
    out += ",\"delta_links\":";
    append_uint(out, entry.delta_links);
    out += ",\"wall_ns\":";
    append_uint(out, entry.wall_ns);
    out += ",\"queue_ns\":";
    append_uint(out, entry.queue_ns);
    out += ",\"parse_ns\":";
    append_uint(out, entry.parse_ns);
    out += ",\"engine_ns\":";
    append_uint(out, entry.engine_ns);
    out += ",\"serialize_ns\":";
    append_uint(out, entry.serialize_ns);
    out += ",\"send_ns\":";
    append_uint(out, entry.send_ns);
    out.push_back('}');
  }
  out += "]}\n";
}

SlowLogResult parse_slowlog_response(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const Value root = parse_json_line(line);
  const Object& object = as_object(root, "slowlog response");
  if (!as_bool(require_field(object, "ok"), "\"ok\"")) {
    const Value* error = find(object, "error");
    reject("slowlog request failed: " +
           (error != nullptr ? as_string(*error, "\"error\"")
                             : std::string("unknown error")));
  }
  const std::string& kind =
      as_string(require_field(object, "kind"), "\"kind\"");
  if (kind != "slowlog") {
    reject("expected a slowlog response, got kind \"" + kind + "\"");
  }
  SlowLogResult result;
  result.id = as_uint(require_field(object, "id"), "\"id\"");
  result.threshold_ns =
      as_uint(require_field(object, "threshold_ns"), "\"threshold_ns\"");
  for (const Value& value :
       as_array(require_field(object, "entries"), "\"entries\"")) {
    const Object& body = as_object(value, "slowlog entry");
    obs::SlowQueryRecord entry;
    entry.wire_id =
        as_uint(require_field(body, "wire_id"), "\"wire_id\"");
    entry.kind =
        slow_kind_code(as_string(require_field(body, "kind"), "\"kind\""));
    entry.source = as_uint(require_field(body, "source"), "\"source\"");
    entry.delta_links =
        as_uint(require_field(body, "delta_links"), "\"delta_links\"");
    entry.wall_ns = as_uint(require_field(body, "wall_ns"), "\"wall_ns\"");
    entry.queue_ns =
        as_uint(require_field(body, "queue_ns"), "\"queue_ns\"");
    entry.parse_ns =
        as_uint(require_field(body, "parse_ns"), "\"parse_ns\"");
    entry.engine_ns =
        as_uint(require_field(body, "engine_ns"), "\"engine_ns\"");
    entry.serialize_ns =
        as_uint(require_field(body, "serialize_ns"), "\"serialize_ns\"");
    entry.send_ns = as_uint(require_field(body, "send_ns"), "\"send_ns\"");
    result.entries.push_back(entry);
  }
  return result;
}

StatsResult parse_stats_response(std::string_view line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.remove_suffix(1);
  }
  const Value root = parse_json_line(line);
  const Object& object = as_object(root, "stats response");
  if (!as_bool(require_field(object, "ok"), "\"ok\"")) {
    const Value* error = find(object, "error");
    reject("stats request failed: " +
           (error != nullptr ? as_string(*error, "\"error\"")
                             : std::string("unknown error")));
  }
  const std::string& kind =
      as_string(require_field(object, "kind"), "\"kind\"");
  if (kind != "stats") {
    reject("expected a stats response, got kind \"" + kind + "\"");
  }
  StatsResult result;
  result.id = as_uint(require_field(object, "id"), "\"id\"");
  result.build = as_string(require_field(object, "build"), "\"build\"");
  result.epoch = as_uint(require_field(object, "epoch"), "\"epoch\"");
  const Object& counters =
      as_object(require_field(object, "counters"), "\"counters\"");
  for (const auto& [name, value] : counters) {
    result.metrics.counters.push_back(
        {name, as_uint(value, "counter value")});
  }
  const Object& gauges =
      as_object(require_field(object, "gauges"), "\"gauges\"");
  for (const auto& [name, value] : gauges) {
    result.metrics.gauges.push_back({name, as_int(value, "gauge value")});
  }
  const Object& histograms =
      as_object(require_field(object, "histograms"), "\"histograms\"");
  for (const auto& [name, value] : histograms) {
    const Object& body = as_object(value, "histogram");
    obs::HistogramSample sample;
    sample.name = name;
    sample.count = as_uint(require_field(body, "count"), "\"count\"");
    sample.sum = as_uint(require_field(body, "sum"), "\"sum\"");
    for (const Value& entry :
         as_array(require_field(body, "buckets"), "\"buckets\"")) {
      const Array& pair = as_array(entry, "\"buckets\" entry");
      if (pair.size() != 2) {
        reject("\"buckets\" entries must be [bucket, count] pairs");
      }
      const std::uint64_t bucket = as_uint(pair[0], "bucket index");
      if (bucket >= obs::kHistogramBuckets) {
        reject("bucket index out of range");
      }
      sample.buckets.emplace_back(static_cast<std::uint32_t>(bucket),
                                  as_uint(pair[1], "bucket count"));
    }
    result.metrics.histograms.push_back(std::move(sample));
  }
  return result;
}

}  // namespace panagree::serve
