#include "panagree/core/agreements/utility.hpp"

namespace panagree::agreements {

econ::TrafficAllocation TrafficShift::as_delta() const {
  econ::TrafficAllocation delta;
  for (const Reroute& r : reroutes) {
    util::require(r.volume >= 0.0, "TrafficShift: reroute volume must be >= 0");
    util::require(!r.old_path.empty() && !r.new_path.empty(),
                  "TrafficShift: reroute paths must be non-empty");
    util::require(r.old_path.front() == r.new_path.front() &&
                      r.old_path.back() == r.new_path.back(),
                  "TrafficShift: reroute must keep the same endpoints");
    delta.add_path_flow(r.old_path, -r.volume);
    delta.add_path_flow(r.new_path, r.volume);
  }
  for (const NewDemand& d : new_demands) {
    util::require(d.volume >= 0.0,
                  "TrafficShift: new demand volume must be >= 0");
    delta.add_path_flow(d.path, d.volume);
  }
  return delta;
}

AgreementEvaluator::AgreementEvaluator(const econ::Economy& economy,
                                       const econ::TrafficAllocation& base)
    : economy_(&economy), base_(&base) {}

econ::TrafficAllocation AgreementEvaluator::apply(
    const TrafficShift& shift) const {
  econ::TrafficAllocation combined = *base_;
  combined.merge(shift.as_delta());
  return combined;
}

double AgreementEvaluator::utility_change(AsId party,
                                          const TrafficShift& shift) const {
  const econ::TrafficAllocation after = apply(shift);
  return economy_->utility(party, after) - economy_->utility(party, *base_);
}

double AgreementEvaluator::joint_utility_change(
    AsId x, AsId y, const TrafficShift& shift) const {
  const econ::TrafficAllocation after = apply(shift);
  const double ux =
      economy_->utility(x, after) - economy_->utility(x, *base_);
  const double uy =
      economy_->utility(y, after) - economy_->utility(y, *base_);
  return ux + uy;
}

double AgreementEvaluator::utility_after(AsId party,
                                         const TrafficShift& shift) const {
  return economy_->utility(party, apply(shift));
}

}  // namespace panagree::agreements
