// Nash equilibria of the bargaining game (§V-C5): a pair of strategies,
// each a best response to the other, found by alternating best-response
// dynamics. The game is not a potential game, but the iteration converged
// in all of the paper's simulations (and in ours; convergence is reported).
#pragma once

#include <cstddef>

#include "panagree/core/bosco/best_response.hpp"

namespace panagree::bosco {

struct EquilibriumOptions {
  std::size_t max_iterations = 256;
  double threshold_eps = 1e-12;
};

struct EquilibriumResult {
  Strategy x;
  Strategy y;
  bool converged = false;
  std::size_t iterations = 0;
};

/// Alternating best-response dynamics starting from the floor quantizers.
[[nodiscard]] EquilibriumResult find_equilibrium(
    const ChoiceSet& choices_x, const ChoiceSet& choices_y,
    const UtilityDistribution& dist_x, const UtilityDistribution& dist_y,
    const EquilibriumOptions& options = {});

/// Verifies the defining property: each strategy is a best response to the
/// other (used by the parties to check the service's proposal, §V-C6).
[[nodiscard]] bool is_nash_equilibrium(const ChoiceSet& choices_x,
                                       const ChoiceSet& choices_y,
                                       const Strategy& sx, const Strategy& sy,
                                       const UtilityDistribution& dist_x,
                                       const UtilityDistribution& dist_y,
                                       double eps = 1e-9);

}  // namespace panagree::bosco
