// The sharded serving front end: one ShardRouter owns N QueryEngine
// shards, each primed over a contiguous range of the canonical source
// sample, and presents exactly the single-engine wire surface.
//
// Routing: `paths`/`diversity` go to the shard owning the source (cold -
// unsampled - sources go to shard 0; every shard serves any state-wide
// query, ownership only decides whose cache answers). `whatif` fans
// across all shards: each shard evaluates the delta over its own source
// range through QueryEngine::whatif_slice (the documented epoch-batch
// seam), and the router splices the per-source SourceContribution slices
// back together in canonical source order before running the
// finalize/subtract/utility fold once. The in-order fold is what makes an
// N-shard response byte-identical to the 1-shard one - floating-point
// addition is order-sensitive, so per-shard partial sums would round
// differently.
//
// Epoch coherence: the router exposes one epoch for the whole fleet. The
// admin `rebase` wire kind applies the delta to every shard under a
// single epoch barrier (a shared_mutex: readers hold it shared for the
// duration of a request, rebase holds it exclusive across the per-shard
// rebases, the baseline re-fold, and the epoch bump), so a reader can
// never observe shard A answering from the new topology while shard B
// still answers from the old one.
//
// What-if memoization happens at the router (same canonical-delta key,
// epoch check, and max_batch bound as the engine's memo); the per-shard
// engine memos are bypassed by whatif_slice.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "panagree/serve/query_engine.hpp"

namespace panagree::serve {

struct RouterConfig {
  /// Bound on memoized what-if evaluations per epoch (see EngineConfig).
  std::size_t max_batch = 256;
  /// Scoring weights of whatif utilities; must match the shards' weights
  /// (the router runs the utility fold, the shards never score).
  scenario::UtilityWeights weights;
};

class ShardRouter {
 public:
  /// `shards` are the owned-by-caller engines, in partition order: the
  /// concatenation of their sources() must be the canonical sample, and
  /// every source must appear in exactly one shard. The engines must
  /// outlive the router. Prime the shards (prime() or prime_restored()),
  /// then call refresh_baseline() before serving.
  ShardRouter(std::vector<QueryEngine*> shards, RouterConfig config = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  /// The canonical source sample (all shards concatenated).
  [[nodiscard]] const std::vector<AsId>& sources() const { return sources_; }
  /// The fleet-wide epoch: bumped by every rebase(), never mixed.
  [[nodiscard]] std::uint64_t epoch() const;

  /// Recomputes the router's global baseline fold from the shards'
  /// current states and publishes the per-shard epoch gauges. Call once
  /// after priming the shards; rebase() keeps it fresh afterwards.
  void refresh_baseline();

  /// Single-engine API shape, routed (see header comment). All throw
  /// util::PreconditionError like QueryEngine for out-of-range sources /
  /// unprimed shards.
  void paths(AsId src, const QueryEngine::PathsSink& sink) const;
  [[nodiscard]] DiversityResult diversity(AsId src) const;
  [[nodiscard]] WhatIfResult whatif(const scenario::Delta& delta) const;

  /// Applies `step` to every shard under the epoch barrier and returns
  /// the new fleet epoch. Readers never observe a partial application.
  std::uint64_t rebase(const scenario::Delta& step);

  /// Drops the router's memoized what-if evaluations so the next
  /// request re-runs the sharded fan-out - benchmark support, the
  /// router-level twin of QueryEngine::flush_whatif_memo().
  void flush_whatif_memo() const;

  /// Parses one request line, dispatches it, and appends the
  /// newline-terminated response: the router's twin of
  /// QueryEngine::handle_line, plus the `rebase` admin kind. Same
  /// byte-identity and stage-clock contract.
  void handle_line(std::string_view line, std::string& out,
                   RequestStages* stages = nullptr);

 private:
  struct ShardObs;

  [[nodiscard]] WhatIfResult compute_whatif(
      const scenario::Delta& delta) const;
  /// paths/diversity routing: the owning shard of a sampled source,
  /// shard 0 for cold sources.
  [[nodiscard]] std::size_t shard_of(AsId src) const;

  std::vector<QueryEngine*> shards_;
  std::vector<AsId> sources_;
  std::unordered_map<AsId, std::size_t> source_shard_;
  RouterConfig config_;

  /// The epoch barrier: requests hold it shared, rebase exclusive.
  mutable std::shared_mutex barrier_mutex_;
  std::uint64_t epoch_ = 0;
  bool primed_ = false;
  /// finalize() of the in-order fold over all shards' baseline
  /// contributions - the subtract() reference of whatif scoring.
  scenario::ScenarioMetrics baseline_metrics_;

  struct MemoEntry {
    std::uint64_t epoch = 0;
    std::shared_future<WhatIfResult> future;
  };
  mutable std::mutex memo_mutex_;
  mutable std::unordered_map<std::string, MemoEntry> memo_;

  /// Per-shard request counters + epoch gauges (shard.<i>.*), feeding
  /// panagree-top's per-shard columns.
  std::unique_ptr<ShardObs> obs_;
};

}  // namespace panagree::serve
