#include <gtest/gtest.h>

#include <cmath>

#include "panagree/econ/business.hpp"
#include "panagree/econ/cost.hpp"
#include "panagree/econ/pricing.hpp"
#include "panagree/topology/examples.hpp"

namespace panagree::econ {
namespace {

using topology::make_diamond;
using topology::make_fig1;

// ---------------------------------------------------------------- pricing

TEST(Pricing, FlatRateIsVolumeIndependent) {
  const auto p = PricingFunction::flat(100.0);
  EXPECT_DOUBLE_EQ(p(0.0), 100.0);
  EXPECT_DOUBLE_EQ(p(42.0), 100.0);
  EXPECT_DOUBLE_EQ(p.marginal(10.0), 0.0);
}

TEST(Pricing, PerUnitIsLinear) {
  const auto p = PricingFunction::per_unit(2.5);
  EXPECT_DOUBLE_EQ(p(0.0), 0.0);
  EXPECT_DOUBLE_EQ(p(4.0), 10.0);
  EXPECT_DOUBLE_EQ(p.marginal(4.0), 2.5);
}

TEST(Pricing, SuperlinearGrowsFasterThanLinear) {
  const auto p = PricingFunction::superlinear(1.0, 2.0);
  EXPECT_DOUBLE_EQ(p(3.0), 9.0);
  EXPECT_GT(p(10.0) / p(5.0), 2.0);
  EXPECT_DOUBLE_EQ(p.marginal(3.0), 6.0);
}

TEST(Pricing, SuperlinearRequiresBetaAboveOne) {
  EXPECT_THROW((void)PricingFunction::superlinear(1.0, 1.0),
               util::PreconditionError);
}

TEST(Pricing, RejectsNegativeParameters) {
  EXPECT_THROW(PricingFunction(-1.0, 1.0), util::PreconditionError);
  EXPECT_THROW(PricingFunction(1.0, -0.1), util::PreconditionError);
}

TEST(Pricing, RejectsNegativeVolume) {
  const PricingFunction p(1.0, 1.0);
  EXPECT_THROW((void)p(-1.0), util::PreconditionError);
}

TEST(Pricing, DefaultChargesNothing) {
  const PricingFunction p;
  EXPECT_DOUBLE_EQ(p(123.0), 0.0);
}

// Parameterized: p(f) = alpha f^beta must be monotone in f for all betas.
class PricingMonotone : public ::testing::TestWithParam<double> {};

TEST_P(PricingMonotone, MonotoneInVolume) {
  const PricingFunction p(2.0, GetParam());
  double prev = p(0.0);
  for (double f = 0.5; f < 20.0; f += 0.5) {
    const double cur = p(f);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, PricingMonotone,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0, 3.0));

// ------------------------------------------------------------------- cost

TEST(Cost, LinearInternalCost) {
  const auto c = InternalCostFunction::linear(0.5);
  EXPECT_DOUBLE_EQ(c(0.0), 0.0);
  EXPECT_DOUBLE_EQ(c(10.0), 5.0);
}

TEST(Cost, BaseAndGamma) {
  const InternalCostFunction c(3.0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(c(0.0), 3.0);
  EXPECT_DOUBLE_EQ(c(2.0), 7.0);
}

TEST(Cost, RejectsGammaBelowOne) {
  EXPECT_THROW(InternalCostFunction(0.0, 1.0, 0.5), util::PreconditionError);
}

TEST(Cost, MonotoneNonNegative) {
  const InternalCostFunction c(1.0, 2.0, 1.5);
  double prev = 0.0;
  for (double f = 0.0; f < 10.0; f += 0.25) {
    const double cur = c(f);
    EXPECT_GE(cur, 0.0);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

// ------------------------------------------------------ traffic allocation

TEST(TrafficAllocation, PathFlowUpdatesAllAggregates) {
  TrafficAllocation alloc;
  alloc.add_path_flow(std::vector<topology::AsId>{0, 1, 2, 3}, 10.0);
  EXPECT_DOUBLE_EQ(alloc.link_flow(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(alloc.link_flow(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(alloc.link_flow(2, 3), 10.0);
  EXPECT_DOUBLE_EQ(alloc.link_flow(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(alloc.segment_flow(0, 1, 2), 10.0);
  EXPECT_DOUBLE_EQ(alloc.segment_flow(1, 2, 3), 10.0);
  for (topology::AsId as = 0; as < 4; ++as) {
    EXPECT_DOUBLE_EQ(alloc.through_flow(as), 10.0);
  }
  EXPECT_DOUBLE_EQ(alloc.stub_flow(0), 10.0);
  EXPECT_DOUBLE_EQ(alloc.stub_flow(3), 10.0);
  EXPECT_DOUBLE_EQ(alloc.stub_flow(1), 0.0);
}

TEST(TrafficAllocation, SegmentFlowIsDirectionIndependent) {
  TrafficAllocation alloc;
  alloc.add_path_flow(std::vector<topology::AsId>{0, 1, 2}, 4.0);
  alloc.add_path_flow(std::vector<topology::AsId>{2, 1, 0}, 6.0);
  EXPECT_DOUBLE_EQ(alloc.segment_flow(0, 1, 2), 10.0);
  EXPECT_DOUBLE_EQ(alloc.segment_flow(2, 1, 0), 10.0);
}

TEST(TrafficAllocation, LinkFlowIsSymmetric) {
  TrafficAllocation alloc;
  alloc.add_path_flow(std::vector<topology::AsId>{5, 9}, 3.0);
  EXPECT_DOUBLE_EQ(alloc.link_flow(5, 9), 3.0);
  EXPECT_DOUBLE_EQ(alloc.link_flow(9, 5), 3.0);
}

TEST(TrafficAllocation, NegativeDeltasExpressReroutes) {
  TrafficAllocation alloc;
  alloc.add_path_flow(std::vector<topology::AsId>{0, 1, 2}, 10.0);
  alloc.add_path_flow(std::vector<topology::AsId>{0, 1, 2}, -4.0);
  EXPECT_DOUBLE_EQ(alloc.link_flow(0, 1), 6.0);
  EXPECT_TRUE(alloc.is_non_negative());
  alloc.add_path_flow(std::vector<topology::AsId>{0, 1, 2}, -7.0);
  EXPECT_FALSE(alloc.is_non_negative());
}

TEST(TrafficAllocation, RejectsRepeatedAses) {
  TrafficAllocation alloc;
  EXPECT_THROW(alloc.add_path_flow(std::vector<topology::AsId>{0, 1, 0}, 1.0),
               util::PreconditionError);
}

TEST(TrafficAllocation, MergeAddsEverything) {
  TrafficAllocation a;
  a.add_path_flow(std::vector<topology::AsId>{0, 1}, 2.0);
  TrafficAllocation b;
  b.add_path_flow(std::vector<topology::AsId>{0, 1}, 3.0);
  b.add_path_flow(std::vector<topology::AsId>{1, 2}, 5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.link_flow(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(a.link_flow(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.through_flow(1), 10.0);
}

TEST(TrafficAllocation, LocalFlowOnlyTouchesOneAs) {
  TrafficAllocation alloc;
  alloc.add_local_flow(3, 7.0);
  EXPECT_DOUBLE_EQ(alloc.through_flow(3), 7.0);
  EXPECT_DOUBLE_EQ(alloc.stub_flow(3), 7.0);
  EXPECT_DOUBLE_EQ(alloc.link_flow(3, 4), 0.0);
}

// ---------------------------------------------------------------- economy

TEST(Economy, RevenueAndCostFollowEq1) {
  // Diamond: P provider of X and Y; X-Y peers; CX customer of X.
  const auto t = make_diamond();
  Economy economy(t.graph);
  economy.set_link_pricing(t.P, t.X, PricingFunction::per_unit(2.0));
  economy.set_link_pricing(t.X, t.CX, PricingFunction::per_unit(3.0));
  economy.set_internal_cost(t.X, InternalCostFunction::linear(0.1));

  TrafficAllocation flows;
  // CX <-> P traffic through X: 10 units.
  flows.add_path_flow(std::vector<topology::AsId>{t.CX, t.X, t.P}, 10.0);

  // Eq. 1a: revenue of X = p_{X,CX}(10) = 30.
  EXPECT_DOUBLE_EQ(economy.revenue(t.X, flows), 30.0);
  // Eq. 1b: cost of X = i_X(10) + p_{P,X}(10) = 1 + 20.
  EXPECT_DOUBLE_EQ(economy.cost(t.X, flows), 21.0);
  EXPECT_DOUBLE_EQ(economy.utility(t.X, flows), 9.0);
}

TEST(Economy, StubRevenueCountsEndHostTraffic) {
  const auto t = make_diamond();
  Economy economy(t.graph);
  economy.set_stub_pricing(t.X, PricingFunction::per_unit(1.5));
  TrafficAllocation flows;
  flows.add_path_flow(std::vector<topology::AsId>{t.X, t.P}, 4.0);
  // X is an endpoint, so its end-hosts exchange 4 units.
  EXPECT_DOUBLE_EQ(economy.revenue(t.X, flows), 6.0);
}

TEST(Economy, PeeringLinksAreSettlementFree) {
  const auto t = make_diamond();
  Economy economy(t.graph);
  economy.set_link_pricing(t.P, t.X, PricingFunction::per_unit(2.0));
  TrafficAllocation flows;
  // Traffic between X and Y over the peering link only.
  flows.add_path_flow(std::vector<topology::AsId>{t.X, t.Y}, 8.0);
  EXPECT_DOUBLE_EQ(economy.cost(t.X, flows), 0.0);
  EXPECT_DOUBLE_EQ(economy.cost(t.Y, flows), 0.0);
}

TEST(Economy, SetLinkPricingRejectsNonProviderLinks) {
  const auto t = make_diamond();
  Economy economy(t.graph);
  EXPECT_THROW(
      economy.set_link_pricing(t.X, t.Y, PricingFunction::per_unit(1.0)),
      util::PreconditionError);
  EXPECT_THROW(
      economy.set_link_pricing(t.X, t.P, PricingFunction::per_unit(1.0)),
      util::PreconditionError);
}

TEST(Economy, TransitProfitRequiresCustomerRevenueAboveProviderCharges) {
  // The paper's §III-A example: for D (A->D->H chain) to profit, revenue
  // from H must exceed charges from A plus internal cost.
  const auto t = make_fig1();
  Economy economy(t.graph);
  economy.set_link_pricing(t.A, t.D, PricingFunction::per_unit(1.0));
  economy.set_link_pricing(t.D, t.H, PricingFunction::per_unit(2.0));
  economy.set_internal_cost(t.D, InternalCostFunction::linear(0.2));
  TrafficAllocation flows;
  flows.add_path_flow(std::vector<topology::AsId>{t.H, t.D, t.A}, 5.0);
  // r_D = 10, c_D = 5 + 1 -> profitable.
  EXPECT_GT(economy.utility(t.D, flows), 0.0);

  // Raise A's price so the same traffic is loss-making.
  economy.set_link_pricing(t.A, t.D, PricingFunction::per_unit(3.0));
  EXPECT_LT(economy.utility(t.D, flows), 0.0);
}

TEST(DefaultEconomy, PricesEveryProviderLinkAndAs) {
  const auto t = make_fig1();
  const Economy economy = make_default_economy(t.graph);
  // Every provider->customer link must have a positive unit price.
  for (const topology::Link& link : t.graph.links()) {
    if (link.type == topology::LinkType::kProviderCustomer) {
      EXPECT_GT(economy.link_pricing(link.a, link.b)(1.0), 0.0);
    }
  }
  for (topology::AsId as = 0; as < t.graph.num_ases(); ++as) {
    EXPECT_GT(economy.stub_pricing(as)(1.0), 0.0);
    EXPECT_GT(economy.internal_cost(as)(1.0), 0.0);
  }
}

}  // namespace
}  // namespace panagree::econ
