#include "panagree/scenario/overlay.hpp"

#include <limits>

namespace panagree::scenario {

void Overlay::clear() {
  added_.clear();
  added_links_.clear();
  removed_.clear();
  touched_.clear();
  first_added_link_ =
      static_cast<std::uint32_t>(base_->graph().links().size());
}

const LinkChange& Overlay::added_link(std::uint32_t link_id) const {
  util::require(link_id >= first_added_link_ &&
                    link_id - first_added_link_ < added_links_.size(),
                "Overlay::added_link: not an added-link id");
  return added_links_[link_id - first_added_link_];
}

void Overlay::apply(const Delta& delta) {
  clear();
  const std::size_t n = base_->num_ases();
  const std::size_t base_links = base_->graph().links().size();
  util::require(base_links + delta.add.size() <
                    std::numeric_limits<std::uint32_t>::max(),
                "Overlay::apply: too many links for 32-bit link ids");

  // --- Removed links: must exist in the base, no duplicates. ---
  removed_.reserve(delta.remove.size());
  for (const auto& [x, y] : delta.remove) {
    const bool linked =
        x < n && y < n && base_->role_of(x, y).has_value();
    if (!linked) {
      clear();
      util::require(false, "Overlay::apply: removed pair is not a base link");
    }
    removed_.push_back(pair_key(x, y));
  }
  std::sort(removed_.begin(), removed_.end());
  if (std::adjacent_find(removed_.begin(), removed_.end()) !=
      removed_.end()) {
    clear();
    util::require(false, "Overlay::apply: duplicate removed pair");
  }

  // --- Added links: distinct in-range endpoints, pair free after removal,
  // no duplicates. Each contributes one slot to both endpoints' rows. ---
  added_.reserve(2 * delta.add.size());
  added_links_ = delta.add;
  std::vector<std::uint64_t> added_pairs;
  added_pairs.reserve(delta.add.size());
  for (std::size_t i = 0; i < delta.add.size(); ++i) {
    const LinkChange& change = delta.add[i];
    const bool ok = change.a < n && change.b < n && change.a != change.b &&
                    (!base_->role_of(change.a, change.b).has_value() ||
                     is_removed(change.a, change.b));
    if (!ok) {
      clear();
      util::require(false,
                    "Overlay::apply: added link must connect two distinct "
                    "in-range ASes that are unlinked in the overlaid base");
    }
    added_pairs.push_back(pair_key(change.a, change.b));
    const auto link = static_cast<std::uint32_t>(base_links + i);
    if (change.type == LinkType::kProviderCustomer) {
      added_.push_back(
          {change.a, Entry{change.b, link, NeighborRole::kCustomer}});
      added_.push_back(
          {change.b, Entry{change.a, link, NeighborRole::kProvider}});
    } else {
      added_.push_back({change.a, Entry{change.b, link, NeighborRole::kPeer}});
      added_.push_back({change.b, Entry{change.a, link, NeighborRole::kPeer}});
    }
  }
  std::sort(added_pairs.begin(), added_pairs.end());
  if (std::adjacent_find(added_pairs.begin(), added_pairs.end()) !=
      added_pairs.end()) {
    clear();
    util::require(false, "Overlay::apply: duplicate added pair");
  }

  // Row order of a recompiled topology: (as, role group, neighbor id).
  std::sort(added_.begin(), added_.end(),
            [](const AddedEntry& x, const AddedEntry& y) {
              if (x.as != y.as) {
                return x.as < y.as;
              }
              const std::size_t gx = group_of(x.entry.role);
              const std::size_t gy = group_of(y.entry.role);
              if (gx != gy) {
                return gx < gy;
              }
              return x.entry.neighbor < y.entry.neighbor;
            });

  touched_.reserve(2 * (delta.add.size() + delta.remove.size()));
  for (const LinkChange& change : delta.add) {
    touched_.push_back(change.a);
    touched_.push_back(change.b);
  }
  for (const auto& [x, y] : delta.remove) {
    touched_.push_back(x);
    touched_.push_back(y);
  }
  std::sort(touched_.begin(), touched_.end());
  touched_.erase(std::unique(touched_.begin(), touched_.end()),
                 touched_.end());
}

}  // namespace panagree::scenario
