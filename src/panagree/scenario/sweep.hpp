// Incremental what-if sweeps over agreement-deployment deltas.
//
// A sweep evaluates one per-source analysis (path enumeration, routing
// tables, diversity counters, ...) across many scenarios, each a small
// link Delta over the same base snapshot. Two facts make this incremental:
//
//   1. *Locality.* A bounded-depth walk from source S can only be affected
//      by a changed link if one of the link's endpoints lies within the
//      walk's reach of S. SweepRunner computes the "invalidation ball" -
//      every AS within `dirty_radius` undirected hops of a changed-link
//      endpoint - and recomputes only the sources inside it. For a
//      max_len-AS enumeration, dirty_radius = max_len - 1 is sufficient:
//      on-path links have an endpoint within max_len - 2 hops, and the
//      only off-path lookups of the shipped policies (BasicMaLength3Step's
//      (source, dst) role checks) involve the source itself, at distance
//      zero. The ball is computed over base + added links, which contains
//      every link either the cached or the overlaid walk can traverse, so
//      the dirty set is conservative in both directions of the delta.
//
//   2. *Determinism.* Clean sources reuse the cached baseline result;
//      dirty sources are recomputed over paths::map_sources, whose output
//      is in source order at any thread count. Spliced results are
//      therefore byte-identical to a full recompute of the mutated graph,
//      serial or parallel (scenario_test locks this in).
//
// The per-source function must be pure, thread-safe, and local: its result
// may depend only on topology within dirty_radius hops of the source.
// Results of sources outside the ball are assumed (and asserted by tests,
// not at runtime) to equal their baseline values.
//
// The canonical Result (scenario::SourcePathSet) interns its path sets
// into one paths::BasicPathPool arena per source, so the runner's cache
// holds one contiguous slice pair per source rather than a vector of
// vectors - at CAIDA-scale source counts the difference is the cache
// fitting in memory at all.
//
// Deployment *programs* (ordered step sequences, scenario::Program) ride
// on the same machinery: rebase() folds a committed step into the cached
// state, so the cache is always keyed by the current program prefix, and
// every evaluate flavor measures its delta on top of state(). The ball of
// a step seeds only at the step's own endpoints while walking the full
// composed adjacency - locality holds because any link present in one of
// the compared topologies but not the other is a step link, whose
// endpoints are both seeds.
#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <vector>

#include "panagree/obs/metrics.hpp"
#include "panagree/obs/trace.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/scenario/program.hpp"

namespace panagree::scenario {

namespace detail {

/// Sweep metrics: the invalidation-ball distribution is *the* quantity
/// deciding whether incremental sweeps pay off, so it is always on
/// (relaxed adds at scenario granularity, not per source).
struct SweepMetrics {
  obs::Counter& recomputed_sources;
  obs::Counter& cached_sources;
  obs::Counter& primes;
  obs::Histogram& ball_size;
  obs::Histogram& dirty_sources;
  obs::Histogram& prime_ns;
  obs::Histogram& evaluate_ns;
};

[[nodiscard]] inline SweepMetrics& sweep_metrics() {
  obs::Registry& reg = obs::Registry::global();
  static SweepMetrics metrics{
      reg.counter("sweep.recomputed_sources"),
      reg.counter("sweep.cached_sources"),
      reg.counter("sweep.prime"),
      reg.histogram("sweep.ball_size"),
      reg.histogram("sweep.dirty_sources"),
      reg.histogram("sweep.prime_ns"),
      reg.histogram("sweep.evaluate_ns"),
  };
  return metrics;
}

[[nodiscard]] inline std::uint64_t sweep_clock_ns() noexcept {
  if constexpr (obs::enabled()) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  } else {
    return 0;
  }
}

}  // namespace detail

struct SweepConfig {
  /// Worker threads for per-source fan-outs (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Invalidation radius in undirected hops around changed-link endpoints.
  /// For a max_len-AS enumeration, max_len - 2 covers every on-path link
  /// (hop i's nearer endpoint is at distance i from the source) and every
  /// policy lookup anchored at the source; add 1 if a policy consults
  /// role pairs *not* involving the source. The default is the safe bound
  /// for the length-3 analyses; pass metrics' kLength3DirtyRadius (= 1,
  /// with proof) for the canonical sweep - on small-world AS graphs the
  /// radius-2 ball of a hub covers most sources and forfeits the caching.
  std::size_t dirty_radius = 2;
  /// Worker placement of the fan-outs (thread pinning / NUMA sharding).
  /// Results never depend on it.
  paths::ExecPolicy exec;
};

/// Per-scenario accounting of the cache's effectiveness.
struct SweepStats {
  std::size_t recomputed_sources = 0;  ///< inside the invalidation ball
  std::size_t cached_sources = 0;      ///< baseline result reused
  std::size_t ball_size = 0;           ///< ASes in the invalidation ball
};

/// All ASes within `radius` undirected hops of a changed-link endpoint of
/// `overlay` (the endpoints themselves included), sorted ascending. BFS
/// over the overlaid adjacency; since both endpoints of every changed link
/// are seeds, traversing base-removed links could not reach anything new.
[[nodiscard]] std::vector<AsId> invalidation_ball(const Overlay& overlay,
                                                  std::size_t radius);

/// The ball grown from an explicit seed set instead of every AS the
/// overlay touches - the program-aware variant: when a step delta lands on
/// top of an already-composed overlay, only the *step's* endpoints dirty
/// anything, while the BFS still walks the full composed adjacency.
/// `seeds` must be sorted, deduplicated, in-range AS ids; the result is
/// sorted ascending and contains the seeds. Sound for a step onto a
/// cached state: every link present in either the cached or the stepped
/// topology but not both is a step link, and both its endpoints are
/// seeds, so walking only the stepped adjacency misses no distances.
[[nodiscard]] std::vector<AsId> invalidation_ball(const Overlay& overlay,
                                                  std::vector<AsId> seeds,
                                                  std::size_t radius);

/// `count` single-link candidate deployments: new peering links between
/// distinct ASes two hops apart today (the "we already meet at a common
/// facility" pairs that dominate real peering candidacies), no pair twice.
/// Deterministic given `seed`; returns fewer if the graph runs out of
/// distinct candidates.
[[nodiscard]] std::vector<Delta> candidate_peering_deltas(
    const CompiledTopology& base, std::size_t count, std::uint64_t seed);

template <typename Result>
class SweepRunner {
 public:
  /// `base` must outlive the runner; `sources` is the analyzed sample (any
  /// order, kept verbatim - results are returned in this order).
  SweepRunner(const CompiledTopology& base, std::vector<AsId> sources,
              SweepConfig config = {})
      : base_(&base), sources_(std::move(sources)), config_(config) {
    for (const AsId src : sources_) {
      util::require(src < base.num_ases(),
                    "SweepRunner: source out of range");
    }
  }

  [[nodiscard]] const std::vector<AsId>& sources() const { return sources_; }
  [[nodiscard]] const CompiledTopology& base() const { return *base_; }
  [[nodiscard]] bool primed() const { return primed_; }

  /// The composed delta the cache currently represents: empty after
  /// prime(), the cumulative program after rebase() calls. Every evaluate
  /// flavor measures its scenario delta *on top of* this state.
  [[nodiscard]] const Delta& state() const { return state_; }

  /// Computes and caches the baseline result of every source over the
  /// empty overlay (= the base snapshot) and resets state() to empty.
  /// `fn(overlay, source) -> Result` must be callable concurrently.
  /// Idempotent per fn; re-priming with a different fn replaces the cache.
  template <typename Fn>
  void prime(const Fn& fn) {
    const obs::TraceSpan span("sweep.prime");
    const std::uint64_t start = detail::sweep_clock_ns();
    const Overlay empty(*base_);
    cache_ = paths::map_sources(
        sources_, config_.threads,
        [&](AsId src) { return fn(empty, src); }, map_options(sources_));
    state_ = Delta{};
    primed_ = true;
    if constexpr (obs::enabled()) {
      detail::SweepMetrics& metrics = detail::sweep_metrics();
      metrics.primes.increment();
      metrics.prime_ns.record(detail::sweep_clock_ns() - start);
    }
  }

  /// Installs an externally produced baseline (e.g. deserialized from a
  /// snapshot's primed-baseline sections) as if prime() had run: `results`
  /// becomes the cache (must be in sources() order and equal what
  /// `fn(empty overlay, source)` would compute - the caller vouches for
  /// that), state() resets to empty. Records no prime metrics: the whole
  /// point is that nothing was enumerated.
  void restore_baseline(std::vector<Result>&& results) {
    util::require(results.size() == sources_.size(),
                  "SweepRunner::restore_baseline: result count does not "
                  "match the source sample");
    cache_ = std::move(results);
    state_ = Delta{};
    primed_ = true;
  }

  /// The cached per-source results of state(), in sources() order (the
  /// base-snapshot baseline until the first rebase).
  [[nodiscard]] const std::vector<Result>& baseline() const {
    util::require(primed_, "SweepRunner::baseline: prime() first");
    return cache_;
  }

  /// Folds `step` into the cached state: state() becomes
  /// compose(state(), step) and the cache becomes that composed
  /// scenario's per-source results - recomputing only the sources inside
  /// the step's invalidation ball. This is the program-prefix cache: a
  /// deployment optimizer commits its chosen step per round and keeps
  /// evaluating candidates incrementally against the grown state.
  template <typename Fn>
  void rebase(const Delta& step, const Fn& fn, SweepStats* stats = nullptr) {
    const std::size_t dirty = recompute_dirty(step, fn, stats);
    state_ = compose(state_, step);
    for (std::size_t i = 0; i < dirty; ++i) {
      cache_[dirty_positions_[i]] = std::move(fresh_[i]);
    }
    fresh_.clear();
    dirty_positions_.clear();
    dirty_sources_.clear();
  }

  /// rebase() for a caller that already evaluated `step` as a candidate
  /// against the current state: adopts the candidate's recomputed slice
  /// instead of re-enumerating the ball. `positions` must be exactly the
  /// ascending dirty positions evaluate_dirty_visit reported for `step`,
  /// and results[i] the result of sources()[positions[i]] - the slices
  /// are trusted verbatim (this is how a deployment optimizer commits
  /// its winning candidate without paying its enumeration twice).
  void rebase_adopted(const Delta& step,
                      std::span<const std::size_t> positions,
                      std::vector<Result>&& results) {
    util::require(primed_, "SweepRunner::rebase_adopted: prime() first");
    util::require(positions.size() == results.size(),
                  "SweepRunner::rebase_adopted: positions/results mismatch");
    // Validate the step against the snapshot exactly like rebase() would
    // before touching the cache.
    const Delta composed = compose(state_, step);
    Overlay overlay(*base_);
    overlay.apply(composed);
    for (std::size_t i = 0; i < positions.size(); ++i) {
      util::require(positions[i] < sources_.size() &&
                        (i == 0 || positions[i - 1] < positions[i]),
                    "SweepRunner::rebase_adopted: bad position list");
      cache_[positions[i]] = std::move(results[i]);
    }
    state_ = composed;
  }

  /// Evaluates one scenario delta on top of state(): recomputes the
  /// sources whose invalidation ball membership makes them dirty, reuses
  /// the cache for the rest, and invokes `visit(source_index, result)`
  /// for every source in order. The Result references stay valid until
  /// the next evaluate*/rebase/prime call on this runner (cached slots
  /// point into the state cache, fresh ones into runner-owned scratch).
  template <typename Fn, typename Visit>
  void evaluate_visit(const Delta& delta, const Fn& fn, Visit&& visit,
                      SweepStats* stats = nullptr) {
    const std::size_t dirty = recompute_dirty(delta, fn, stats);
    std::size_t next_dirty = 0;
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (next_dirty < dirty && dirty_positions_[next_dirty] == i) {
        visit(i, fresh_[next_dirty]);
        ++next_dirty;
      } else {
        visit(i, cache_[i]);
      }
    }
  }

  /// Dirty-slice evaluation for *concurrent candidate scoring*: invokes
  /// `visit(source_index, overlay, result)` only for the dirty sources
  /// (in order), computing each result serially on the calling thread and
  /// leaving the runner untouched - so many candidate deltas can be
  /// evaluated against the same state from a parallel fan-out (e.g.
  /// paths::map_indices over candidates), each worker paying only its own
  /// candidate's invalidation ball. The overlay handed to the visitor is
  /// the composed (state + delta) view the results were enumerated over.
  template <typename Fn, typename Visit>
  void evaluate_dirty_visit(const Delta& delta, const Fn& fn, Visit&& visit,
                            SweepStats* stats = nullptr) const {
    util::require(primed_, "SweepRunner::evaluate_dirty_visit: prime() first");
    const obs::TraceSpan span("sweep.evaluate");
    const std::uint64_t start = detail::sweep_clock_ns();
    Overlay overlay(*base_);
    overlay.apply(state_.empty() ? delta : compose(state_, delta));
    const std::vector<AsId> ball = invalidation_ball(
        overlay, touched_ases(delta), config_.dirty_radius);
    std::size_t recomputed = 0;
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (std::binary_search(ball.begin(), ball.end(), sources_[i])) {
        visit(i, overlay, fn(overlay, sources_[i]));
        ++recomputed;
      }
    }
    if (stats != nullptr) {
      stats->recomputed_sources = recomputed;
      stats->cached_sources = sources_.size() - recomputed;
      stats->ball_size = ball.size();
    }
    if constexpr (obs::enabled()) {
      detail::SweepMetrics& metrics = detail::sweep_metrics();
      metrics.recomputed_sources.add(recomputed);
      metrics.cached_sources.add(sources_.size() - recomputed);
      metrics.ball_size.record(ball.size());
      metrics.dirty_sources.record(recomputed);
      metrics.evaluate_ns.record(detail::sweep_clock_ns() - start);
    }
  }

  /// The scenario's per-source results as pointers, in sources() order -
  /// the zero-copy shape for aggregation (cache-served sources are not
  /// duplicated). Pointers are invalidated by the next evaluate*/prime
  /// call on this runner.
  template <typename Fn>
  [[nodiscard]] std::vector<const Result*> evaluate_refs(
      const Delta& delta, const Fn& fn, SweepStats* stats = nullptr) {
    std::vector<const Result*> out;
    out.reserve(sources_.size());
    evaluate_visit(
        delta, fn,
        [&](std::size_t, const Result& result) { out.push_back(&result); },
        stats);
    return out;
  }

  /// evaluate_visit materialized: the full per-source result vector of the
  /// scenario, in sources() order (cached slots copied).
  template <typename Fn>
  [[nodiscard]] std::vector<Result> evaluate(const Delta& delta,
                                             const Fn& fn,
                                             SweepStats* stats = nullptr) {
    std::vector<Result> out;
    out.reserve(sources_.size());
    evaluate_visit(
        delta, fn,
        [&](std::size_t, const Result& result) { out.push_back(result); },
        stats);
    return out;
  }

 private:
  /// Shared front half of every evaluate flavor: applies the delta on top
  /// of the current state, computes the dirty source positions (the ball
  /// is seeded by the *step* delta's endpoints only, walked over the full
  /// composed adjacency), and recomputes them into fresh_. Returns the
  /// dirty count.
  template <typename Fn>
  std::size_t recompute_dirty(const Delta& delta, const Fn& fn,
                              SweepStats* stats) {
    util::require(primed_, "SweepRunner::evaluate_visit: prime() first");
    const obs::TraceSpan span("sweep.evaluate");
    const std::uint64_t start = detail::sweep_clock_ns();
    Overlay overlay(*base_);
    overlay.apply(state_.empty() ? delta : compose(state_, delta));
    const std::vector<AsId> ball = invalidation_ball(
        overlay, touched_ases(delta), config_.dirty_radius);

    dirty_positions_.clear();
    dirty_sources_.clear();
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (std::binary_search(ball.begin(), ball.end(), sources_[i])) {
        dirty_positions_.push_back(i);
        dirty_sources_.push_back(sources_[i]);
      }
    }
    fresh_ = paths::map_sources(
        dirty_sources_, config_.threads,
        [&](AsId src) { return fn(overlay, src); },
        map_options(dirty_sources_));

    if (stats != nullptr) {
      stats->recomputed_sources = dirty_sources_.size();
      stats->cached_sources = sources_.size() - dirty_sources_.size();
      stats->ball_size = ball.size();
    }
    if constexpr (obs::enabled()) {
      detail::SweepMetrics& metrics = detail::sweep_metrics();
      metrics.recomputed_sources.add(dirty_sources_.size());
      metrics.cached_sources.add(sources_.size() - dirty_sources_.size());
      metrics.ball_size.record(ball.size());
      metrics.dirty_sources.record(dirty_sources_.size());
      metrics.evaluate_ns.record(detail::sweep_clock_ns() - start);
    }
    return dirty_sources_.size();
  }

  /// Driver options of a fan-out over `sources`: the configured placement
  /// plus degree-aware cost seeding, so one hub source among hundreds of
  /// stubs seeds as its own worker range instead of serializing the tail
  /// (the estimate is exact for the length-3 enumerations and a sound
  /// proxy otherwise; stealing corrects any residue). The estimates are
  /// computed against the base snapshot - deltas move single links, which
  /// cannot change the cost *ranking* enough to matter for seeding.
  [[nodiscard]] paths::MapOptions map_options(
      const std::vector<AsId>& sources) {
    cost_scratch_ = paths::two_hop_cost_estimates(*base_, sources);
    paths::MapOptions options;
    options.costs = cost_scratch_;
    options.exec = config_.exec;
    return options;
  }

  const CompiledTopology* base_;
  std::vector<AsId> sources_;
  SweepConfig config_;
  std::vector<Result> cache_;
  /// The composed delta cache_ holds results for (empty until rebase).
  Delta state_;
  bool primed_ = false;
  /// Scratch reused across evaluate calls (a runner is single-sweep;
  /// parallelism lives inside map_sources). fresh_ backs the references
  /// evaluate_visit/evaluate_refs hand out for dirty sources.
  std::vector<std::size_t> dirty_positions_;
  std::vector<AsId> dirty_sources_;
  std::vector<Result> fresh_;
  /// Backs the cost span handed to the driver (map_options).
  std::vector<std::uint64_t> cost_scratch_;
};

}  // namespace panagree::scenario
