// Event-driven, message-passing SPVP on the discrete-event engine: the
// ns-3-style view of BGP convergence.
//
// Routers exchange UPDATE messages over links with randomized per-message
// delays; each recomputes its best permitted path on receipt and announces
// changes. Convergence = the message queue drains and the resulting
// assignment is stable; divergence (BAD GADGET) = unbounded message churn,
// cut off by a message budget. Compared to the round-based simulator in
// simulator.hpp, this model exposes *timing* effects: which wedgie state a
// topology lands in depends on real message interleavings.
#pragma once

#include <cstdint>

#include "panagree/bgp/spp.hpp"
#include "panagree/sim/engine.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::bgp {

struct AsyncSpvpParams {
  double min_delay_s = 0.01;  ///< per-message propagation delay bounds
  double max_delay_s = 0.05;
  /// MRAI-style advertisement batching (jittered): a router announces at
  /// most one update per interval, batching interim changes. Without it,
  /// DISAGREE-shaped instances livelock structurally - every receipt
  /// triggers an immediate flip-and-announce, so contradicting updates
  /// cross forever. Real BGP rate-limits advertisements for this reason.
  double mrai_min_s = 0.02;
  double mrai_max_s = 0.1;
  std::size_t max_messages = 200000;  ///< divergence cut-off
  std::uint64_t seed = 1;
};

struct AsyncSpvpResult {
  bool converged = false;
  Assignment assignment;
  std::size_t messages = 0;  ///< UPDATE messages delivered
  double sim_time_s = 0.0;   ///< simulated time at quiescence / cut-off
};

/// Runs the asynchronous protocol to quiescence or the message budget.
[[nodiscard]] AsyncSpvpResult run_async(const SppInstance& instance,
                                        const AsyncSpvpParams& params = {});

/// Statistical variant of simulator.hpp's check_safety under real message
/// timing: how many distinct stable outcomes do different delay seeds reach?
struct AsyncSafetyReport {
  bool always_converged = true;
  std::size_t distinct_outcomes = 0;
  std::size_t trials = 0;
  double mean_messages = 0.0;
};

[[nodiscard]] AsyncSafetyReport check_async_safety(
    const SppInstance& instance, std::size_t trials, std::uint64_t seed,
    const AsyncSpvpParams& params = {});

}  // namespace panagree::bgp
