// Versioned binary topology snapshots: compile once, mmap everywhere.
//
// Every tool and bench in this repo used to re-parse (or re-generate) and
// re-embed its topology on startup - at CAIDA scale (~70k ASes) that
// startup dwarfs many analyses. The storage layer splits the pipeline:
//
//   panagree-compile: as-rel2 (or generator) -> embed -> CSR -> .pansnap
//   MappedSnapshot::open: .pansnap -> ready-to-analyze topology, with the
//     CSR arrays served zero-copy straight out of the mapped file.
//
// The loaded view is byte-identical to compiling the graph in-process:
// same AS/link ids, same CSR row order, same entry bytes (property-tested
// in tests/storage_test.cpp), so analyses cannot tell the difference. The
// Graph and geo::World objects are materialized at load time (they hold
// strings and per-node vectors and cannot be borrowed), which is the cheap
// part; the embed step's RNG-driven geo assignment and facility estimation
// - the expensive part - is paid once at compile time.
//
// See format.hpp for the on-disk layout and the versioning policy.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "panagree/geo/region.hpp"
#include "panagree/storage/format.hpp"
#include "panagree/storage/mmap_file.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::storage {

using topology::AsId;

/// Source-partitioned serving plan plus the primed per-source baseline,
/// staged for writing. `sources` is the canonical sample order;
/// `shard_begin` (num_shards + 1 offsets) cuts it into contiguous shard
/// ranges. The baseline arrays persist one SweepRunner path cache:
/// per-source GRC counts, per-source path begin offsets (in paths, not
/// bytes), and the flat (src, mid, dst) triple payload, GRC paths first
/// then MA paths within each source.
struct ShardPlanData {
  std::size_t num_shards = 0;
  std::vector<AsId> sources;
  std::vector<std::uint32_t> shard_begin;
  std::vector<std::uint32_t> grc_counts;
  std::vector<std::uint32_t> path_begin;
  std::vector<std::uint32_t> path_words;
};

/// Zero-copy view of the shard plan sections of a mapped snapshot.
struct ShardPlanView {
  std::size_t num_shards = 0;
  std::span<const AsId> sources;               ///< canonical sample order
  std::span<const std::uint32_t> shard_begin;  ///< num_shards + 1
  std::span<const std::uint32_t> row_ranges;   ///< 2 * num_shards
};

/// Zero-copy view of the primed-baseline sections of a mapped snapshot.
/// Indexed parallel to ShardPlanView::sources.
struct PrimedBaselineView {
  std::span<const std::uint32_t> grc_counts;  ///< per source
  std::span<const std::uint32_t> path_begin;  ///< num_sources + 1, in paths
  std::span<const std::uint32_t> path_words;  ///< 3 * total_paths
};

/// Writes `topo` (graph + world + tier lists) and its compiled CSR
/// snapshot to `path` as a version-1 .pansnap. `compiled` must be a
/// compilation of `topo.graph`. The file is written to a temporary sibling
/// and renamed into place; throws SnapshotError on I/O failure and
/// util::PreconditionError on unserializable input (e.g. city ids beyond
/// 32 bits).
void write_snapshot(const std::string& path,
                    const topology::GeneratedTopology& topo,
                    const topology::CompiledTopology& compiled);

/// Same, plus the optional shard plan + primed baseline sections. The
/// per-shard CSR row ranges are derived here from `compiled`. `plan` may
/// be nullptr (then identical to the three-argument overload).
void write_snapshot(const std::string& path,
                    const topology::GeneratedTopology& topo,
                    const topology::CompiledTopology& compiled,
                    const ShardPlanData* plan);

/// What open() asked the kernel about the mapping's access pattern, and
/// what the kernel accepted. WILLNEED prefetch covers the CSR sections
/// (the arrays every analysis walks immediately); transparent huge pages
/// are requested for the whole mapping only behind PANAGREE_MMAP_THP=1
/// (file-backed THP support is kernel-dependent, so the request may be
/// refused - the report says so instead of guessing).
struct MmapAdviceReport {
  bool willneed_applied = false;
  bool hugepage_requested = false;
  bool hugepage_applied = false;

  /// One-line human summary, e.g. "willneed(csr)=applied thp=off";
  /// printed by panagree-compile's verify output.
  [[nodiscard]] std::string describe() const;
};

/// A loaded .pansnap: owns the mapping plus the materialized Graph/World
/// and exposes the CompiledTopology as a zero-copy view over the mapped
/// CSR arrays. Movable; all references remain valid across moves (the
/// restored state is heap-allocated).
class MappedSnapshot {
 public:
  /// Maps and validates `path`. Throws SnapshotError on bad magic, version
  /// mismatch, endianness mismatch, truncation, or inconsistent sections.
  [[nodiscard]] static MappedSnapshot open(const std::string& path);

  MappedSnapshot(MappedSnapshot&&) noexcept = default;
  MappedSnapshot& operator=(MappedSnapshot&&) noexcept = default;

  [[nodiscard]] const topology::Graph& graph() const { return state_->graph; }
  [[nodiscard]] const geo::World& world() const { return state_->world; }
  /// The CSR view over the mapped file - use instead of recompiling.
  [[nodiscard]] const topology::CompiledTopology& topology() const {
    return *state_->compiled;
  }
  [[nodiscard]] const std::vector<AsId>& tier1() const {
    return state_->tier1;
  }
  [[nodiscard]] const std::vector<AsId>& tier2() const {
    return state_->tier2;
  }
  [[nodiscard]] const std::vector<AsId>& tier3() const {
    return state_->tier3;
  }
  [[nodiscard]] std::size_t file_bytes() const { return file_.size(); }
  /// The access-pattern advice open() applied to the mapping.
  [[nodiscard]] const MmapAdviceReport& advice() const { return advice_; }
  /// The shard plan sections, if the snapshot carries them (compiled with
  /// --shards). Spans borrow the mapping.
  [[nodiscard]] const std::optional<ShardPlanView>& shard_plan() const {
    return state_->shard_plan;
  }
  /// The primed-baseline sections, if present (always alongside a shard
  /// plan). Spans borrow the mapping.
  [[nodiscard]] const std::optional<PrimedBaselineView>& primed_baseline()
      const {
    return state_->primed_baseline;
  }

 private:
  struct State {
    topology::Graph graph;
    geo::World world;
    std::vector<AsId> tier1, tier2, tier3;
    std::optional<ShardPlanView> shard_plan;
    std::optional<PrimedBaselineView> primed_baseline;
    /// Borrowed view into the mapped file; engaged by open() once graph
    /// and the mapped arrays are in place.
    std::optional<topology::CompiledTopology> compiled;
  };

  MappedSnapshot(MmapFile file, std::unique_ptr<State> state,
                 MmapAdviceReport advice)
      : file_(std::move(file)), state_(std::move(state)), advice_(advice) {}

  MmapFile file_;
  std::unique_ptr<State> state_;
  MmapAdviceReport advice_;
};

}  // namespace panagree::storage
