// Extension experiment (the paper's §VIII future work: "designing and
// evaluating interconnection agreements that can achieve desirable goals of
// network operators, such as network utilization"):
//
// Part 1 - network-wide MA adoption. Every demand of a gravity traffic
// matrix is routed over its geodistance-best length-3 path, once with GRC
// paths only and once with all MA paths additionally available. We measure
// the system-level shifts: mean path geodistance (latency proxy), the
// volume share carried by peering vs. provider links (the revenue-relevant
// utilization shift), link utilization against degree-gravity capacities,
// and the aggregate transit fees saved.
//
// Part 2 - incremental what-if sweep. On top of the full-MA regime, we
// evaluate PANAGREE_SCENARIOS (default 64) candidate *new* peering
// deployments, each a single-link Delta over the same base snapshot,
// through scenario::SweepRunner: per-source routing tables are cached from
// part 1 and only sources inside a candidate's invalidation ball are
// recomputed. The table ranks the deployments by transit fees saved.
#include <algorithm>
#include <iostream>
#include <unordered_map>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/sim/flow_assignment.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/traffic/matrix.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;
using topology::AsId;

struct BestPath {
  std::vector<AsId> path;
  double geodistance_km = 0.0;
};

/// Per-source routing tables: destination -> geodistance-best length-3 path
/// under the GRC-only and all-MA path sets.
struct SourceRoutes {
  std::unordered_map<AsId, BestPath> grc;
  std::unordered_map<AsId, BestPath> ma;
};

}  // namespace

int main() {
  std::cout << "== Extension: network-wide MA adoption (§VIII outlook) ==\n";
  const auto net = benchcfg::load_internet(/*synthetic_cap=*/4000);
  const auto& g = net.graph();
  const topology::CompiledTopology& compiled = net.compiled();
  benchjson::ResultWriter json("ext_networkwide_adoption", g);
  json.add("topology_load", 0.0,
           {{"load_ms", net.load_ms()},
            {"peak_rss_kb", static_cast<double>(benchcfg::peak_rss_kb())},
            {"from_snapshot", net.from_snapshot() ? 1.0 : 0.0}});

  // Gravity demands (volume units per accounting period).
  util::Rng rng(99);
  traffic::GravityParams gravity;
  gravity.total_volume = 20000.0;
  gravity.sampled_pairs = 4000;
  const auto demands = traffic::generate_gravity_demands(g, gravity, rng);

  const econ::Economy economy = econ::make_default_economy(g);
  const scenario::MetricsAggregator aggregator(compiled, &net.world(),
                                               &economy);

  // Per-source routing tables are independent: the sweep runner computes
  // them for every distinct demand source over the parallel driver
  // (deterministic merge) and keeps them as the reusable scenario cache.
  std::vector<AsId> demand_sources;
  demand_sources.reserve(demands.size());
  for (const auto& demand : demands) {
    demand_sources.push_back(demand.src);
  }
  std::sort(demand_sources.begin(), demand_sources.end());
  demand_sources.erase(
      std::unique(demand_sources.begin(), demand_sources.end()),
      demand_sources.end());

  scenario::SweepConfig sweep_config;
  sweep_config.threads = benchcfg::num_threads();
  sweep_config.dirty_radius = scenario::kLength3DirtyRadius;
  scenario::SweepRunner<SourceRoutes> runner(compiled, demand_sources,
                                             sweep_config);
  const auto routes_of = [&](const scenario::Overlay& overlay, AsId src) {
    const scenario::SourcePathSet sets =
        scenario::enumerate_length3(overlay, src);
    SourceRoutes table;
    for (const auto& p : sets.grc()) {
      const double km =
          aggregator.path_geodistance_km(overlay, p.src, p.mid, p.dst);
      auto& slot = table.grc[p.dst];
      if (slot.path.empty() || km < slot.geodistance_km) {
        slot = BestPath{{p.src, p.mid, p.dst}, km};
      }
    }
    table.ma = table.grc;  // GRC paths remain available under MAs
    for (const auto& p : sets.ma()) {
      const double km =
          aggregator.path_geodistance_km(overlay, p.src, p.mid, p.dst);
      auto& slot = table.ma[p.dst];
      if (slot.path.empty() || km < slot.geodistance_km) {
        slot = BestPath{{p.src, p.mid, p.dst}, km};
      }
    }
    return table;
  };
  const benchjson::Stopwatch prime_watch;
  runner.prime(routes_of);
  json.add("prime_routing_tables", prime_watch.elapsed_ms(),
           {{"sources", static_cast<double>(demand_sources.size())}});
  std::unordered_map<AsId, const SourceRoutes*> routes;
  routes.reserve(demand_sources.size());
  for (std::size_t i = 0; i < demand_sources.size(); ++i) {
    routes.emplace(demand_sources[i], &runner.baseline()[i]);
  }

  // Route every demand under both regimes.
  std::vector<sim::PathDemand> grc_flows, ma_flows;
  double grc_km_sum = 0.0, ma_km_sum = 0.0, routed_volume = 0.0;
  std::size_t routed = 0, switched = 0;
  for (const auto& demand : demands) {
    const SourceRoutes& table = *routes.at(demand.src);
    const auto grc_it = table.grc.find(demand.dst);
    if (grc_it == table.grc.end()) {
      continue;  // not length-3-reachable under GRC: out of scope
    }
    const auto ma_it = table.ma.find(demand.dst);
    const BestPath& grc_best = grc_it->second;
    const BestPath& ma_best = ma_it->second;
    grc_flows.push_back({grc_best.path, demand.volume});
    ma_flows.push_back({ma_best.path, demand.volume});
    grc_km_sum += grc_best.geodistance_km * demand.volume;
    ma_km_sum += ma_best.geodistance_km * demand.volume;
    routed_volume += demand.volume;
    ++routed;
    if (ma_best.path != grc_best.path) {
      ++switched;
    }
  }

  const auto grc_result = sim::assign_flows(g, grc_flows);
  const auto ma_result = sim::assign_flows(g, ma_flows);

  const auto scenario_stats = [&](const sim::FlowAssignmentResult& r) {
    struct Stats {
      double peering_share;
      double max_util;
      std::size_t overloaded;
      double transit_fees;
    } s{};
    double peering = 0.0, total = 0.0;
    for (const auto& lu : r.links) {
      total += lu.volume;
      if (g.link(lu.link).type == topology::LinkType::kPeering) {
        peering += lu.volume;
      }
    }
    s.peering_share = total > 0.0 ? peering / total : 0.0;
    s.max_util = r.max_utilization;
    s.overloaded = r.overloaded_links;
    // Aggregate transit fees = sum of all provider-link charges.
    for (const auto& link : g.links()) {
      if (link.type == topology::LinkType::kProviderCustomer) {
        s.transit_fees += economy.link_pricing(link.a, link.b)(
            r.allocation.link_flow(link.a, link.b));
      }
    }
    return s;
  };
  const auto grc_stats = scenario_stats(grc_result);
  const auto ma_stats = scenario_stats(ma_result);

  std::cout << "routed demands: " << routed << " of " << demands.size()
            << " (volume " << routed_volume << "); demands switching to an "
            << "MA path: " << switched << "\n\n";

  util::Table table({"metric", "GRC only", "all MAs", "change"});
  const auto add = [&](const char* name, double a, double b, int precision) {
    std::string change;
    if (a != 0.0) {
      change = util::format_double(100.0 * (b - a) / a, 1) + "%";
    }
    table.add_row({name, util::format_double(a, precision),
                   util::format_double(b, precision), change});
  };
  add("volume-weighted mean geodistance (km)", grc_km_sum / routed_volume,
      ma_km_sum / routed_volume, 0);
  add("share of volume on peering links", grc_stats.peering_share,
      ma_stats.peering_share, 3);
  add("max link utilization", grc_stats.max_util, ma_stats.max_util, 3);
  add("overloaded links", static_cast<double>(grc_stats.overloaded),
      static_cast<double>(ma_stats.overloaded), 0);
  add("aggregate transit fees paid", grc_stats.transit_fees,
      ma_stats.transit_fees, 0);
  table.print(std::cout);
  table.print_csv(std::cout, "ext_adoption");

  std::cout << "\nReading: network-wide MA adoption moves traffic from paid "
               "provider links onto settlement-free peering, shortens "
               "volume-weighted paths, and cuts aggregate transit fees - "
               "the economic pressure behind the paper's adoption thesis. "
               "The fees forgone by providers are exactly what the "
               "mutuality/compensation structures of §IV redistribute.\n";

  // ---- Part 2: incremental sweep over candidate peering deployments ----
  const std::size_t num_scenarios =
      benchcfg::env_size("PANAGREE_SCENARIOS", 64);
  const auto deltas =
      scenario::candidate_peering_deltas(compiled, num_scenarios, 4242);

  // Demands grouped by source index, so each scenario is scored inside the
  // runner's visit (results for clean sources are cache references - no
  // per-scenario routing-table copies).
  std::vector<std::vector<const traffic::Demand*>> demands_by_source(
      demand_sources.size());
  for (const auto& demand : demands) {
    const auto it = std::lower_bound(demand_sources.begin(),
                                     demand_sources.end(), demand.src);
    demands_by_source[static_cast<std::size_t>(
                          it - demand_sources.begin())]
        .push_back(&demand);
  }

  struct ScenarioScore {
    std::size_t scenario = 0;
    double fee_delta = 0.0;   // vs the all-MA baseline (negative = saved)
    double km_delta = 0.0;    // volume-weighted mean geodistance shift
    long long new_demands = 0;  // demands newly length-3 routable
    scenario::SweepStats stats;
  };
  // Per-hop accounting under the all-MA regime (per-unit pricing, exact
  // for the linear default economy; added links are settlement-free).
  const auto score_scenario = [&](const scenario::Delta& delta,
                                  std::size_t index) {
    scenario::Overlay overlay(compiled);  // for the per-hop role lookups
    overlay.apply(delta);
    ScenarioScore score;
    score.scenario = index;
    double fees = 0.0, km_sum = 0.0, volume = 0.0;
    long long reachable = 0;
    runner.evaluate_visit(
        delta, routes_of,
        [&](std::size_t i, const SourceRoutes& routes_i) {
          for (const traffic::Demand* demand : demands_by_source[i]) {
            const auto it = routes_i.ma.find(demand->dst);
            if (it == routes_i.ma.end()) {
              continue;
            }
            ++reachable;
            const BestPath& best = it->second;
            km_sum += best.geodistance_km * demand->volume;
            volume += demand->volume;
            fees += aggregator.path_fee(overlay, best.path, demand->volume);
          }
        },
        &score.stats);
    score.fee_delta = fees;
    score.km_delta = volume > 0.0 ? km_sum / volume : 0.0;
    score.new_demands = reachable;
    return score;
  };

  const benchjson::Stopwatch sweep_watch;
  std::vector<ScenarioScore> scores;
  scores.reserve(deltas.size());
  std::size_t recomputed_total = 0, cached_total = 0;
  for (std::size_t index = 0; index < deltas.size(); ++index) {
    scores.push_back(score_scenario(deltas[index], index));
    recomputed_total += scores.back().stats.recomputed_sources;
    cached_total += scores.back().stats.cached_sources;
  }
  // Reference = the empty delta, scored through the exact same per-hop
  // accounting (so deltas isolate the deployment, not the fee model).
  const ScenarioScore reference = score_scenario(scenario::Delta{}, 0);
  const double sweep_ms = sweep_watch.elapsed_ms();

  for (ScenarioScore& s : scores) {
    s.fee_delta -= reference.fee_delta;
    s.km_delta -= reference.km_delta;
    s.new_demands -= reference.new_demands;
  }
  std::sort(scores.begin(), scores.end(),
            [](const ScenarioScore& a, const ScenarioScore& b) {
              if (a.fee_delta != b.fee_delta) {
                return a.fee_delta < b.fee_delta;
              }
              return a.scenario < b.scenario;
            });

  std::cout << "\n== What-if sweep: " << deltas.size()
            << " candidate peering deployments ==\n"
            << "per-source recomputes: " << recomputed_total << " ("
            << cached_total << " served from cache)\n\n";
  util::Table sweep_table({"deployment", "fees saved", "mean km shift",
                           "newly routable demands", "recomputed sources"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, scores.size()); ++i) {
    const ScenarioScore& s = scores[i];
    const scenario::LinkChange& link = deltas[s.scenario].add.front();
    sweep_table.add_row(
        {"peer AS" + std::to_string(link.a) + " - AS" +
             std::to_string(link.b),
         util::format_double(-s.fee_delta, 1),
         util::format_double(s.km_delta, 1),
         std::to_string(s.new_demands),
         std::to_string(s.stats.recomputed_sources)});
  }
  sweep_table.print(std::cout);

  json.add("incremental_sweep", sweep_ms,
           {{"scenarios", static_cast<double>(deltas.size())},
            {"recomputed_sources", static_cast<double>(recomputed_total)},
            {"cached_sources", static_cast<double>(cached_total)}});
  json.write();
  return 0;
}
