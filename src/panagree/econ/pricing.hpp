// Pricing functions on provider->customer links (§III-A).
//
// Each provider-customer link l carries a pricing function
//   p_l(f) = alpha_l * f^beta_l,   alpha_l >= 0, beta_l >= 0,
// yielding the amount the provider receives from the customer for flow
// volume f. beta = 0 is flat-rate, beta = 1 is pay-per-usage, beta > 1 is
// superlinear (congestion) pricing. Peering links are settlement-free and
// simply have no pricing function attached.
#pragma once

namespace panagree::econ {

class PricingFunction {
 public:
  /// Zero pricing (alpha = 0): charges nothing at any volume.
  PricingFunction() = default;

  /// General alpha * f^beta; requires alpha >= 0 and beta >= 0.
  PricingFunction(double alpha, double beta);

  /// Flat-rate subscription: p(f) = fee.
  [[nodiscard]] static PricingFunction flat(double fee);

  /// Pay-per-usage: p(f) = unit_price * f.
  [[nodiscard]] static PricingFunction per_unit(double unit_price);

  /// Superlinear / congestion pricing: p(f) = alpha * f^beta with beta > 1.
  [[nodiscard]] static PricingFunction superlinear(double alpha, double beta);

  /// Charge for flow volume f (f >= 0).
  [[nodiscard]] double operator()(double volume) const;

  /// Marginal price dp/df at volume f (f > 0 for beta < 1).
  [[nodiscard]] double marginal(double volume) const;

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double beta() const { return beta_; }

  friend bool operator==(const PricingFunction&,
                         const PricingFunction&) = default;

 private:
  double alpha_ = 0.0;
  double beta_ = 1.0;
};

}  // namespace panagree::econ
