// Minimal recursive-descent JSON reader, shared by the wire protocol
// (serve/wire.cpp), the stats-response parser, and the trace-file
// validation in tests.
//
// A deliberately small model: numbers keep both an integer and a double
// view (JSON does not distinguish, but ids and AS numbers must not round
// through doubles), objects are key-ordered maps (the documents this repo
// parses are tiny). Strings accept the standard escapes plus \uXXXX for
// the ASCII range only - nothing in the repo's formats needs more.
//
// parse() throws util::ParseError on malformed input; callers that need a
// domain-specific error type (serve::ProtocolError) catch and rewrap.
#pragma once

#include <charconv>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "panagree/util/error.hpp"

namespace panagree::util::json {

struct Value;
using Object = std::map<std::string, Value, std::less<>>;
using Array = std::vector<Value>;

struct Value {
  std::variant<std::nullptr_t, bool, std::uint64_t, double, std::string,
               std::unique_ptr<Array>, std::unique_ptr<Object>>
      data = nullptr;
};

namespace detail {

[[noreturn]] inline void reject(const std::string& what) {
  throw ParseError("json: " + what);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] Value parse() {
    Value value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      reject("trailing bytes after JSON value");
    }
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 16;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) {
      reject("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      reject(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  [[nodiscard]] Value parse_value(std::size_t depth) {
    if (depth > kMaxDepth) {
      reject("nesting too deep");
    }
    skip_ws();
    const char c = peek();
    Value value;
    if (c == '{') {
      value.data = parse_object(depth);
    } else if (c == '[') {
      value.data = parse_array(depth);
    } else if (c == '"') {
      value.data = parse_string();
    } else if (c == 't') {
      if (!consume_literal("true")) {
        reject("bad literal");
      }
      value.data = true;
    } else if (c == 'f') {
      if (!consume_literal("false")) {
        reject("bad literal");
      }
      value.data = false;
    } else if (c == 'n') {
      if (!consume_literal("null")) {
        reject("bad literal");
      }
      value.data = nullptr;
    } else {
      parse_number(value);
    }
    return value;
  }

  [[nodiscard]] std::unique_ptr<Object> parse_object(std::size_t depth) {
    expect('{');
    auto object = std::make_unique<Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (!object->emplace(std::move(key), parse_value(depth + 1)).second) {
        reject("duplicate object key");
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return object;
    }
  }

  [[nodiscard]] std::unique_ptr<Array> parse_array(std::size_t depth) {
    expect('[');
    auto array = std::make_unique<Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array->push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return array;
    }
  }

  [[nodiscard]] std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        reject("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        reject("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        reject("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The repo's documents are ASCII-shaped; accept \uXXXX for the
          // ASCII range only.
          if (pos_ + 4 > text_.size()) {
            reject("truncated \\u escape");
          }
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || ptr != text_.data() + pos_ + 4 ||
              code > 0x7f) {
            reject("unsupported \\u escape");
          }
          pos_ += 4;
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          reject("unknown escape");
      }
    }
  }

  void parse_number(Value& value) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty()) {
      reject("expected a value");
    }
    // Integer first (exact); fall back to double.
    if (token.find_first_of(".eE") == std::string_view::npos &&
        token.front() != '-') {
      std::uint64_t integer = 0;
      const auto [ptr, ec] = std::from_chars(
          token.data(), token.data() + token.size(), integer);
      if (ec == std::errc() && ptr == token.data() + token.size()) {
        value.data = integer;
        return;
      }
    }
    double number = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), number);
    if (ec != std::errc() || ptr != token.data() + token.size()) {
      reject("malformed number");
    }
    value.data = number;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Parses one complete JSON document. Throws util::ParseError on anything
/// malformed, including trailing bytes after the value.
[[nodiscard]] inline Value parse(std::string_view text) {
  return detail::Parser(text).parse();
}

}  // namespace panagree::util::json
