// .pansnap writer: serializes a GeneratedTopology + its compiled CSR
// snapshot into the section layout of format.hpp.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string_view>

#include "panagree/storage/snapshot.hpp"

namespace panagree::storage {

namespace {

/// Accumulates section payloads (8-byte aligned) and their records; the
/// header and table are prepended at write time.
class SectionBuilder {
 public:
  void add(SectionKind kind, const void* data, std::size_t bytes) {
    while (payload_.size() % kSectionAlignment != 0) {
      payload_.push_back(std::byte{0});
    }
    SectionRecord record;
    record.kind = static_cast<std::uint32_t>(kind);
    record.offset = payload_.size();  // relative; rebased when writing
    record.bytes = bytes;
    records_.push_back(record);
    const auto* src = static_cast<const std::byte*>(data);
    payload_.insert(payload_.end(), src, src + bytes);
  }

  template <typename T>
  void add_array(SectionKind kind, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    add(kind, items.data(), items.size() * sizeof(T));
  }

  [[nodiscard]] const std::vector<std::byte>& payload() const {
    return payload_;
  }
  [[nodiscard]] const std::vector<SectionRecord>& records() const {
    return records_;
  }

 private:
  std::vector<std::byte> payload_;
  std::vector<SectionRecord> records_;
};

std::uint32_t narrow_index(std::size_t value, const char* what) {
  util::require(value <= std::numeric_limits<std::uint32_t>::max(), what);
  return static_cast<std::uint32_t>(value);
}

/// Concatenated variable-length data: begin offsets (n + 1 u32 entries)
/// plus one payload blob.
template <typename Sequence, typename Append>
void build_jagged(std::span<const Sequence> rows, std::vector<std::uint32_t>& begins,
                  const Append& append) {
  begins.clear();
  begins.reserve(rows.size() + 1);
  std::uint32_t offset = 0;
  begins.push_back(offset);
  for (const Sequence& row : rows) {
    for (const auto& item : row) {
      append(item);
    }
    offset = narrow_index(offset + row.size(),
                          "write_snapshot: jagged payload exceeds 32 bits");
    begins.push_back(offset);
  }
}

/// Entries are staged field-by-field into zeroed bytes so the padding
/// bytes of CompiledTopology::Entry never leak indeterminate values into
/// the file (the reader casts the mapped bytes straight back to Entry).
std::vector<std::byte> stage_entries(std::span<const TopoEntry> entries) {
  std::vector<std::byte> staged(entries.size() * sizeof(TopoEntry),
                                std::byte{0});
  std::byte* out = staged.data();
  for (const TopoEntry& entry : entries) {
    std::memcpy(out + offsetof(TopoEntry, neighbor), &entry.neighbor,
                sizeof(entry.neighbor));
    std::memcpy(out + offsetof(TopoEntry, link), &entry.link,
                sizeof(entry.link));
    std::memcpy(out + offsetof(TopoEntry, role), &entry.role,
                sizeof(entry.role));
    out += sizeof(TopoEntry);
  }
  return staged;
}

}  // namespace

void write_snapshot(const std::string& path,
                    const topology::GeneratedTopology& topo,
                    const topology::CompiledTopology& compiled) {
  write_snapshot(path, topo, compiled, nullptr);
}

void write_snapshot(const std::string& path,
                    const topology::GeneratedTopology& topo,
                    const topology::CompiledTopology& compiled,
                    const ShardPlanData* plan) {
  const topology::Graph& graph = topo.graph;
  util::require(&compiled.graph() == &graph,
                "write_snapshot: compiled snapshot does not belong to the "
                "given graph");
  const std::size_t n = graph.num_ases();
  const std::size_t num_links = graph.num_links();
  const std::size_t num_cities = topo.world.cities().size();
  const std::size_t num_regions = topo.world.regions().size();

  SectionBuilder sections;

  // CSR arrays.
  sections.add_array(SectionKind::kRowStart, compiled.row_start_array());
  sections.add_array(SectionKind::kProvidersEnd,
                     compiled.providers_end_array());
  sections.add_array(SectionKind::kPeersEnd, compiled.peers_end_array());
  const std::vector<std::byte> staged_entries =
      stage_entries(compiled.entry_array());
  sections.add(SectionKind::kEntries, staged_entries.data(),
               staged_entries.size());

  // Link table.
  {
    std::vector<std::uint32_t> a, b, fac_begin, facilities;
    std::vector<std::uint8_t> type;
    std::vector<double> capacity;
    a.reserve(num_links);
    b.reserve(num_links);
    type.reserve(num_links);
    capacity.reserve(num_links);
    std::vector<std::span<const std::size_t>> fac_rows;
    fac_rows.reserve(num_links);
    for (const topology::Link& link : graph.links()) {
      a.push_back(link.a);
      b.push_back(link.b);
      type.push_back(static_cast<std::uint8_t>(link.type));
      capacity.push_back(link.capacity);
      fac_rows.push_back(link.facilities);
    }
    build_jagged<std::span<const std::size_t>>(
        fac_rows, fac_begin, [&](std::size_t city) {
          facilities.push_back(narrow_index(
              city, "write_snapshot: facility city id exceeds 32 bits"));
        });
    sections.add_array<std::uint32_t>(SectionKind::kLinkA, a);
    sections.add_array<std::uint32_t>(SectionKind::kLinkB, b);
    sections.add_array<std::uint8_t>(SectionKind::kLinkType, type);
    sections.add_array<double>(SectionKind::kLinkCapacity, capacity);
    sections.add_array<std::uint32_t>(SectionKind::kLinkFacilityBegin,
                                      fac_begin);
    sections.add_array<std::uint32_t>(SectionKind::kLinkFacilities,
                                      facilities);
  }

  // AS table.
  {
    std::vector<std::int32_t> tier;
    std::vector<std::uint32_t> region, pop_begin, pops, name_begin;
    std::vector<double> centroid;
    std::vector<std::uint8_t> has_geo;
    std::string names;
    tier.reserve(n);
    region.reserve(n);
    centroid.reserve(2 * n);
    has_geo.reserve(n);
    std::vector<std::span<const std::size_t>> pop_rows;
    std::vector<std::string_view> name_rows;
    pop_rows.reserve(n);
    name_rows.reserve(n);
    for (AsId as = 0; as < n; ++as) {
      const topology::AsInfo& info = graph.info(as);
      tier.push_back(info.tier);
      region.push_back(narrow_index(
          info.region, "write_snapshot: AS region index exceeds 32 bits"));
      centroid.push_back(info.centroid.lat_deg);
      centroid.push_back(info.centroid.lng_deg);
      has_geo.push_back(info.has_geo ? 1 : 0);
      pop_rows.push_back(info.pops);
      name_rows.push_back(info.name);
    }
    build_jagged<std::span<const std::size_t>>(
        pop_rows, pop_begin, [&](std::size_t city) {
          pops.push_back(narrow_index(
              city, "write_snapshot: PoP city id exceeds 32 bits"));
        });
    build_jagged<std::string_view>(name_rows, name_begin,
                                   [&](char c) { names.push_back(c); });
    sections.add_array<std::int32_t>(SectionKind::kAsTier, tier);
    sections.add_array<std::uint32_t>(SectionKind::kAsRegion, region);
    sections.add_array<double>(SectionKind::kAsCentroid, centroid);
    sections.add_array<std::uint8_t>(SectionKind::kAsHasGeo, has_geo);
    sections.add_array<std::uint32_t>(SectionKind::kAsPopBegin, pop_begin);
    sections.add_array<std::uint32_t>(SectionKind::kAsPops, pops);
    sections.add_array<std::uint32_t>(SectionKind::kAsNameBegin, name_begin);
    sections.add(SectionKind::kAsNames, names.data(), names.size());
  }

  // World tables.
  {
    std::vector<double> location, center, radius;
    std::vector<std::uint32_t> city_region, city_name_begin, region_name_begin,
        region_city_begin, region_city_ids;
    std::string city_names, region_names;
    std::vector<std::string_view> city_name_rows, region_name_rows;
    std::vector<std::span<const std::size_t>> region_city_rows;
    for (const geo::City& city : topo.world.cities()) {
      location.push_back(city.location.lat_deg);
      location.push_back(city.location.lng_deg);
      city_region.push_back(narrow_index(
          city.region, "write_snapshot: city region index exceeds 32 bits"));
      city_name_rows.push_back(city.name);
    }
    for (const geo::Region& region : topo.world.regions()) {
      center.push_back(region.center.lat_deg);
      center.push_back(region.center.lng_deg);
      radius.push_back(region.radius_km);
      region_name_rows.push_back(region.name);
      region_city_rows.push_back(region.city_ids);
    }
    build_jagged<std::string_view>(city_name_rows, city_name_begin,
                                   [&](char c) { city_names.push_back(c); });
    build_jagged<std::string_view>(region_name_rows, region_name_begin,
                                   [&](char c) { region_names.push_back(c); });
    build_jagged<std::span<const std::size_t>>(
        region_city_rows, region_city_begin, [&](std::size_t city) {
          region_city_ids.push_back(narrow_index(
              city, "write_snapshot: region city id exceeds 32 bits"));
        });
    sections.add_array<double>(SectionKind::kCityLocation, location);
    sections.add_array<std::uint32_t>(SectionKind::kCityRegion, city_region);
    sections.add_array<std::uint32_t>(SectionKind::kCityNameBegin,
                                      city_name_begin);
    sections.add(SectionKind::kCityNames, city_names.data(),
                 city_names.size());
    sections.add_array<double>(SectionKind::kRegionCenter, center);
    sections.add_array<double>(SectionKind::kRegionRadius, radius);
    sections.add_array<std::uint32_t>(SectionKind::kRegionNameBegin,
                                      region_name_begin);
    sections.add(SectionKind::kRegionNames, region_names.data(),
                 region_names.size());
    sections.add_array<std::uint32_t>(SectionKind::kRegionCityBegin,
                                      region_city_begin);
    sections.add_array<std::uint32_t>(SectionKind::kRegionCityIds,
                                      region_city_ids);
  }

  // Tier membership lists.
  sections.add_array<AsId>(SectionKind::kTier1, topo.tier1);
  sections.add_array<AsId>(SectionKind::kTier2, topo.tier2);
  sections.add_array<AsId>(SectionKind::kTier3, topo.tier3);

  // Shard plan + primed baseline (optional).
  std::vector<std::uint32_t> row_ranges;
  if (plan != nullptr) {
    const std::size_t num_sources = plan->sources.size();
    util::require(plan->num_shards > 0,
                  "write_snapshot: shard plan with zero shards");
    util::require(plan->shard_begin.size() == plan->num_shards + 1 &&
                      plan->shard_begin.front() == 0 &&
                      plan->shard_begin.back() == num_sources,
                  "write_snapshot: shard_begin does not cover the sources");
    util::require(plan->grc_counts.size() == num_sources &&
                      plan->path_begin.size() == num_sources + 1 &&
                      plan->path_begin.front() == 0 &&
                      std::size_t{plan->path_begin.back()} * 3 ==
                          plan->path_words.size(),
                  "write_snapshot: baseline arrays are inconsistent");
    for (const AsId source : plan->sources) {
      util::require(source < n, "write_snapshot: shard source out of range");
    }
    // Per-shard CSR row ranges: the [first, last) span of kEntries rows the
    // shard's cached sources touch, for placement advice at load time.
    const std::span<const std::uint32_t> row_start =
        compiled.row_start_array();
    row_ranges.reserve(2 * plan->num_shards);
    for (std::size_t shard = 0; shard < plan->num_shards; ++shard) {
      std::uint32_t first = row_start.back();
      std::uint32_t last = 0;
      for (std::size_t i = plan->shard_begin[shard];
           i < plan->shard_begin[shard + 1]; ++i) {
        const AsId source = plan->sources[i];
        first = std::min(first, row_start[source]);
        last = std::max(last, row_start[source + 1]);
      }
      if (first > last) {  // empty shard
        first = last = 0;
      }
      row_ranges.push_back(first);
      row_ranges.push_back(last);
    }
    sections.add_array<AsId>(SectionKind::kShardSourceIds, plan->sources);
    sections.add_array<std::uint32_t>(SectionKind::kShardSourceBegin,
                                      plan->shard_begin);
    sections.add_array<std::uint32_t>(SectionKind::kShardRowRanges,
                                      row_ranges);
    sections.add_array<std::uint32_t>(SectionKind::kBaselineGrcCounts,
                                      plan->grc_counts);
    sections.add_array<std::uint32_t>(SectionKind::kBaselinePathBegin,
                                      plan->path_begin);
    sections.add_array<std::uint32_t>(SectionKind::kBaselinePaths,
                                      plan->path_words);
  }

  // Assemble header + section table + payload.
  FileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kFormatVersion;
  header.endian_probe = kEndianProbe;
  header.num_ases = n;
  header.num_links = num_links;
  header.num_cities = num_cities;
  header.num_regions = num_regions;
  header.section_count = sections.records().size();
  header.section_table_offset = sizeof(FileHeader);

  std::vector<SectionRecord> table = sections.records();
  std::size_t payload_base =
      sizeof(FileHeader) + table.size() * sizeof(SectionRecord);
  while (payload_base % kSectionAlignment != 0) {
    ++payload_base;
  }
  for (SectionRecord& record : table) {
    record.offset += payload_base;
  }
  header.file_bytes = payload_base + sections.payload().size();

  // Per-process temp sibling: concurrent writers of the same destination
  // must not interleave in one shared ".tmp" (last rename wins cleanly).
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SnapshotError("write_snapshot: cannot open '" + tmp +
                          "' for writing");
    }
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
    out.write(reinterpret_cast<const char*>(table.data()),
              static_cast<std::streamsize>(table.size() *
                                           sizeof(SectionRecord)));
    const std::size_t written =
        sizeof(FileHeader) + table.size() * sizeof(SectionRecord);
    for (std::size_t i = written; i < payload_base; ++i) {
      out.put('\0');
    }
    out.write(reinterpret_cast<const char*>(sections.payload().data()),
              static_cast<std::streamsize>(sections.payload().size()));
    if (!out) {
      throw SnapshotError("write_snapshot: write to '" + tmp + "' failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("write_snapshot: cannot rename '" + tmp + "' to '" +
                        path + "'");
  }
}

}  // namespace panagree::storage
