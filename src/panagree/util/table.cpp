#include "panagree/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "panagree/util/error.hpp"

namespace panagree::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  require(!header_.empty(), "Table: header must have at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == header_.size(),
          "Table::add_row: arity must match header");
  rows_.push_back(std::move(cells));
}

void Table::add_row(std::initializer_list<double> cells, int precision) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double value : cells) {
    formatted.push_back(format_double(value, precision));
  }
  add_row(std::move(formatted));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::print_csv(std::ostream& os, const std::string& tag) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    os << "csv," << tag;
    for (const auto& cell : row) {
      os << ',' << cell;
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') {
      s.pop_back();
    }
    if (s.back() == '.') {
      s.pop_back();
    }
  }
  if (s == "-0") {
    s = "0";
  }
  return s;
}

}  // namespace panagree::util
