// Lock-free metrics primitives: sharded counters, gauges, log2
// histograms, and a process-wide registry of interned metric names.
//
// Design constraints, in order:
//
//  1. The hot-path record must be one relaxed atomic add on a cache line
//     no other thread is writing. Counters spread increments over
//     kShards cache-line-aligned slots (threads hash to a slot once, via
//     a thread_local), so 8 workers bumping `paths.items_claimed` never
//     contend; value() sums the shards. Histograms shard the same way.
//  2. Registration is the cold path: call sites look a metric up once
//     and cache the reference (`static obs::Counter& c =
//     Registry::global().counter("...")`). The registry hands out
//     stable addresses for the life of the process and interns each
//     name exactly once; re-registering a name as a different kind is a
//     precondition error, not a silent alias.
//  3. The whole layer compiles out under PANAGREE_OBS_OFF. The stub and
//     the real implementation live in different *inline namespaces*
//     (obs_off / obs_on) so a translation unit built with the macro gets
//     header-only no-op types whose mangled names cannot collide with
//     the library's real symbols - mixing instrumented and
//     uninstrumented TUs in one binary is ODR-clean by construction.
//
// Readers (value(), snapshots) are racy-by-design against concurrent
// writers: they see some interleaving of relaxed adds, which is exactly
// the precision monitoring needs. The shard-sum identity - value() after
// all writers join equals the number of add()s - is property-tested.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string_view>

#include "panagree/util/error.hpp"

namespace panagree::obs {

/// Number of fixed log2 buckets in a Histogram. Bucket 0 holds exact
/// zeros; bucket i (1 <= i < 63) holds values in [2^(i-1), 2^i - 1];
/// bucket 63 holds everything >= 2^62.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Bucket index for a recorded value (log2 rule above).
[[nodiscard]] constexpr std::size_t histogram_bucket(
    std::uint64_t value) noexcept {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

/// Inclusive upper bound of a bucket (saturates at uint64 max for the
/// overflow bucket). Percentile estimates report this bound.
[[nodiscard]] constexpr std::uint64_t histogram_bucket_bound(
    std::size_t bucket) noexcept {
  if (bucket == 0) {
    return 0;
  }
  if (bucket >= kHistogramBuckets - 1) {
    return ~std::uint64_t{0};
  }
  return (std::uint64_t{1} << bucket) - 1;
}

#if defined(PANAGREE_OBS_OFF)

// ------------------------------------------------------------- compiled out
//
// Header-only no-ops: every record call inlines to nothing, the registry
// hands out shared dummy instances. Kept API-identical to obs_on so
// instrumented code compiles unchanged.

inline namespace obs_off {

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  void increment() noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void update_max(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t) const noexcept {
    return 0;
  }
};

class Registry {
 public:
  [[nodiscard]] static Registry& global() {
    static Registry instance;
    return instance;
  }

  [[nodiscard]] Counter& counter(std::string_view) { return counter_; }
  [[nodiscard]] Gauge& gauge(std::string_view) { return gauge_; }
  [[nodiscard]] Histogram& histogram(std::string_view) {
    return histogram_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return 0; }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

/// True when records actually land somewhere (false here).
[[nodiscard]] constexpr bool enabled() noexcept { return false; }

}  // namespace obs_off

#else  // !PANAGREE_OBS_OFF

// ------------------------------------------------------------------ enabled

inline namespace obs_on {

namespace detail {

inline constexpr std::size_t kCacheLine = 64;
/// Shard fan-out (power of two). 16 slots cover any realistic worker
/// count here; extra shards only cost idle cache lines.
inline constexpr std::size_t kShards = 16;

/// Each thread draws one shard slot on first use and keeps it for life.
/// Round-robin assignment (not hashing) guarantees the first kShards
/// threads all land on distinct cache lines.
[[nodiscard]] inline std::size_t shard_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

struct alignas(kCacheLine) PaddedAtomic {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace detail

/// Monotonic event counter. add() is one relaxed fetch_add on the
/// calling thread's private shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::shard_slot()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Sum over shards. Exact once writers have joined; a live snapshot
  /// otherwise.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::PaddedAtomic, detail::kShards> shards_{};
};

/// Last-write-wins level (queue depth, mapped bytes, kernel in use).
/// Set-dominated, so a single cache-line-isolated cell instead of
/// shards; add() and update_max() are still lock-free for the
/// depth/high-water uses.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    cell_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    cell_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if above the current value (high-water
  /// marks).
  void update_max(std::int64_t v) noexcept {
    std::int64_t seen = cell_.load(std::memory_order_relaxed);
    while (v > seen && !cell_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return cell_.load(std::memory_order_relaxed);
  }

 private:
  alignas(detail::kCacheLine) std::atomic<std::int64_t> cell_{0};
};

/// Fixed-bucket log2 histogram (latencies in ns, ball sizes, batch
/// sizes). record() is two relaxed adds (bucket + sum) on the calling
/// thread's shard block; no thread ever writes another thread's block,
/// so there is no false sharing between recording threads.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept {
    Shard& shard = shards_[detail::shard_slot() % kHistShards];
    shard.buckets[histogram_bucket(value)].fetch_add(
        1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      total += bucket_count(b);
    }
    return total;
  }

  [[nodiscard]] std::uint64_t sum() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.sum.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.buckets[bucket].load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  /// Fewer shards than Counter: a shard block is already 65 lines wide,
  /// and histogram call sites record at request granularity, not inner
  /// loops.
  static constexpr std::size_t kHistShards = 8;

  struct alignas(detail::kCacheLine) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> sum{0};
  };

  std::array<Shard, kHistShards> shards_{};
};

/// Process-wide metric registry. Lookups intern the name (one owned
/// string per metric for the life of the process) behind a mutex -
/// strictly a registration-time cost, never on the record path.
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  /// Returns the counter registered under `name`, creating it on first
  /// use. Throws util::PreconditionError if `name` is already
  /// registered as a different kind.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Number of registered metrics (all kinds).
  [[nodiscard]] std::size_t size() const noexcept;

  // Export-side iteration (sorted by name, registry locked for the
  // duration; values are still live atomics). Function-pointer visitors
  // keep <functional> out of this hot-path header.
  void for_each_counter(void (*fn)(std::string_view, const Counter&,
                                   void*),
                        void* ctx) const;
  void for_each_gauge(void (*fn)(std::string_view, const Gauge&, void*),
                      void* ctx) const;
  void for_each_histogram(void (*fn)(std::string_view, const Histogram&,
                                     void*),
                          void* ctx) const;

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Public so the out-of-line interning helper can name it; the
  // definition lives in metrics.cpp and impl_ itself stays private.
  struct Impl;

 private:
  Impl* impl_;
};

/// True when records actually land somewhere.
[[nodiscard]] constexpr bool enabled() noexcept { return true; }

}  // namespace obs_on

#endif  // PANAGREE_OBS_OFF

}  // namespace panagree::obs
