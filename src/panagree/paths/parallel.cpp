#include "panagree/paths/parallel.hpp"

namespace panagree::paths {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested != 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace panagree::paths
