#include "panagree/traffic/elasticity.hpp"

#include "panagree/util/error.hpp"

namespace panagree::traffic {

DemandElasticity::DemandElasticity(ElasticityParams params) : params_(params) {
  util::require(params_.max_new_fraction >= 0.0,
                "DemandElasticity: max_new_fraction must be >= 0");
  util::require(params_.half_point > 0.0,
                "DemandElasticity: half_point must be positive");
}

double DemandElasticity::max_new_demand(double base_demand,
                                        double improvement_ratio) const {
  util::require(base_demand >= 0.0,
                "DemandElasticity: base demand must be >= 0");
  if (improvement_ratio <= 0.0) {
    return 0.0;
  }
  // Saturating response: improvement h attracts h / (h + half_point) of the
  // latent demand.
  const double saturation =
      improvement_ratio / (improvement_ratio + params_.half_point);
  return params_.max_new_fraction * base_demand * saturation;
}

}  // namespace panagree::traffic
