// Internal-cost functions (§III-A).
//
// Each AS X incurs an internal cost i_X(f_X) for carrying total flow f_X,
// modelled as i(f) = base + unit * f^gamma with gamma >= 1: non-negative and
// monotonically increasing, as the paper requires.
#pragma once

namespace panagree::econ {

class InternalCostFunction {
 public:
  /// Zero-cost function.
  InternalCostFunction() = default;

  /// i(f) = base + unit * f^gamma; base, unit >= 0 and gamma >= 1.
  InternalCostFunction(double base, double unit, double gamma = 1.0);

  /// Linear internal cost: i(f) = unit * f.
  [[nodiscard]] static InternalCostFunction linear(double unit);

  [[nodiscard]] double operator()(double total_flow) const;

  [[nodiscard]] double base() const { return base_; }
  [[nodiscard]] double unit() const { return unit_; }
  [[nodiscard]] double gamma() const { return gamma_; }

  friend bool operator==(const InternalCostFunction&,
                         const InternalCostFunction&) = default;

 private:
  double base_ = 0.0;
  double unit_ = 0.0;
  double gamma_ = 1.0;
};

}  // namespace panagree::econ
