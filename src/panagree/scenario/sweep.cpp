#include "panagree/scenario/sweep.hpp"

#include <unordered_set>

#include "panagree/util/rng.hpp"

namespace panagree::scenario {

std::vector<AsId> invalidation_ball(const Overlay& overlay,
                                    std::size_t radius) {
  return invalidation_ball(overlay, overlay.touched(), radius);
}

std::vector<AsId> invalidation_ball(const Overlay& overlay,
                                    std::vector<AsId> seeds,
                                    std::size_t radius) {
  std::vector<AsId> ball = std::move(seeds);
  if (ball.empty()) {
    return ball;
  }
  for (const AsId as : ball) {
    util::require(as < overlay.num_ases(),
                  "invalidation_ball: seed out of range");
  }
  std::vector<char> seen(overlay.num_ases(), 0);
  for (const AsId as : ball) {
    seen[as] = 1;
  }
  std::vector<AsId> frontier = ball;
  std::vector<AsId> next;
  for (std::size_t depth = 0; depth < radius && !frontier.empty(); ++depth) {
    next.clear();
    for (const AsId as : frontier) {
      overlay.for_each_entry(as, [&](const Overlay::Entry& entry) {
        if (seen[entry.neighbor] == 0) {
          seen[entry.neighbor] = 1;
          next.push_back(entry.neighbor);
        }
      });
    }
    ball.insert(ball.end(), next.begin(), next.end());
    frontier.swap(next);
  }
  std::sort(ball.begin(), ball.end());
  return ball;
}

std::vector<Delta> candidate_peering_deltas(const CompiledTopology& base,
                                            std::size_t count,
                                            std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Delta> deltas;
  std::unordered_set<std::uint64_t> used;
  // The rejection loop can run dry on tiny or near-complete graphs; the
  // attempt bound turns that into a short result instead of a hang.
  for (std::size_t attempts = 0;
       deltas.size() < count && attempts < 100 * count + 1000; ++attempts) {
    const auto a = static_cast<AsId>(rng.uniform_index(base.num_ases()));
    if (base.degree(a) == 0) {
      continue;
    }
    const auto via = base.entries(a);
    const AsId mid = via[rng.uniform_index(via.size())].neighbor;
    const auto onward = base.entries(mid);
    const AsId b = onward[rng.uniform_index(onward.size())].neighbor;
    if (b == a || base.role_of(a, b).has_value()) {
      continue;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    if (!used.insert(key).second) {
      continue;
    }
    Delta delta;
    delta.add.push_back({a, b, topology::LinkType::kPeering});
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

}  // namespace panagree::scenario
