#include <gtest/gtest.h>

#include <algorithm>

#include "panagree/bgp/analysis.hpp"
#include "panagree/bgp/gadgets.hpp"
#include "panagree/bgp/policy.hpp"
#include "panagree/bgp/spp.hpp"
#include "panagree/topology/examples.hpp"

namespace panagree::bgp {
namespace {

using topology::make_fig1;

TEST(SppInstance, OriginOwnsTrivialPath) {
  const SppInstance spp(3, 0);
  ASSERT_EQ(spp.permitted(0).size(), 1u);
  EXPECT_EQ(spp.permitted(0)[0], Path{0});
}

TEST(SppInstance, RejectsMalformedPermittedPaths) {
  SppInstance spp(3, 0);
  EXPECT_THROW(spp.set_permitted(1, {{2, 0}}), util::PreconditionError);
  EXPECT_THROW(spp.set_permitted(1, {{1, 2}}), util::PreconditionError);
  EXPECT_THROW(spp.set_permitted(1, {{1, 2, 1, 0}}), util::PreconditionError);
  EXPECT_THROW(spp.set_permitted(0, {{0}}), util::PreconditionError);
}

TEST(SppInstance, RankOfFindsPaths) {
  SppInstance spp(3, 0);
  spp.set_permitted(1, {{1, 2, 0}, {1, 0}});
  EXPECT_EQ(spp.rank_of(1, {1, 2, 0}), 0);
  EXPECT_EQ(spp.rank_of(1, {1, 0}), 1);
  EXPECT_EQ(spp.rank_of(1, {1, 2}), -1);
}

TEST(SppInstance, NextHopsAreUnique) {
  SppInstance spp(4, 0);
  spp.set_permitted(1, {{1, 2, 0}, {1, 2, 3, 0}, {1, 0}});
  const auto hops = spp.next_hops(1);
  EXPECT_EQ(hops, (std::vector<AsId>{0, 2}));
}

TEST(BestAvailable, FollowsNeighborSelections) {
  const SppInstance spp = make_disagree();
  Assignment assignment(3);
  assignment[0] = {0};
  assignment[2] = {2, 0};
  // Node 1 prefers 1-2-0 and node 2 currently has 2-0: available.
  EXPECT_EQ(best_available_path(spp, 1, assignment), (Path{1, 2, 0}));
  // If 2 routes via 1, the peer path would loop, so 1 falls back to direct.
  assignment[2] = {2, 1, 0};
  EXPECT_EQ(best_available_path(spp, 1, assignment), (Path{1, 0}));
}

TEST(BestAvailable, EmptyWhenNothingAvailable) {
  SppInstance spp(3, 0);
  spp.set_permitted(1, {{1, 2, 0}});
  Assignment assignment(3);
  assignment[0] = {0};
  // Node 2 has no path, so 1-2-0 is not available.
  EXPECT_TRUE(best_available_path(spp, 1, assignment).empty());
}

TEST(StableSolutions, DisagreeHasExactlyTwo) {
  const auto solutions = find_stable_solutions(make_disagree());
  EXPECT_EQ(solutions.size(), 2u);
  for (const Assignment& a : solutions) {
    EXPECT_TRUE(is_stable(make_disagree(), a));
  }
}

TEST(StableSolutions, BadGadgetHasNone) {
  EXPECT_TRUE(find_stable_solutions(make_bad_gadget()).empty());
}

TEST(StableSolutions, GoodGadgetHasExactlyOne) {
  EXPECT_EQ(find_stable_solutions(make_good_gadget()).size(), 1u);
}

TEST(StableSolutions, WedgieHasTwo) {
  EXPECT_EQ(find_stable_solutions(make_wedgie()).size(), 2u);
}

TEST(Fig1Gadgets, DisagreeHasTwoStableStates) {
  const auto t = make_fig1();
  const auto solutions = find_stable_solutions(make_fig1_disagree(t));
  EXPECT_EQ(solutions.size(), 2u);
}

TEST(Fig1Gadgets, BadGadgetHasNoStableState) {
  const auto t = make_fig1();
  EXPECT_TRUE(find_stable_solutions(make_fig1_bad_gadget(t)).empty());
}

// ------------------------------------------------------------ valley-free

TEST(ValleyFree, ClassifiesFig1Paths) {
  const auto t = make_fig1();
  const auto& g = t.graph;
  // H -> D -> A: climbing only.
  EXPECT_TRUE(is_valley_free(g, {t.H, t.D, t.A}));
  // H -> D -> E: up then peer.
  EXPECT_TRUE(is_valley_free(g, {t.H, t.D, t.E}));
  // A -> D -> H: descending only.
  EXPECT_TRUE(is_valley_free(g, {t.A, t.D, t.H}));
  // A -> D -> E: down then peer - a valley.
  EXPECT_FALSE(is_valley_free(g, {t.A, t.D, t.E}));
  // D -> E -> B: peer then up (the MA path of Eq. 6) - GRC-invalid.
  EXPECT_FALSE(is_valley_free(g, {t.D, t.E, t.B}));
  // C -> D -> E -> F: two peering links.
  EXPECT_FALSE(is_valley_free(g, {t.C, t.D, t.E, t.F}));
  // H -> D -> E -> I: up, peer, down.
  EXPECT_TRUE(is_valley_free(g, {t.H, t.D, t.E, t.I}));
}

TEST(ValleyFree, NonLinksAreRejected) {
  const auto t = make_fig1();
  EXPECT_FALSE(is_valley_free(t.graph, {t.H, t.I}));
}

TEST(ValleyFree, TrivialPathsAreValleyFree) {
  const auto t = make_fig1();
  EXPECT_TRUE(is_valley_free(t.graph, {t.A}));
  EXPECT_TRUE(is_valley_free(t.graph, {}));
}

TEST(GrcForwarding, MatchesValleyFreedomOnFig1) {
  const auto t = make_fig1();
  const auto& g = t.graph;
  EXPECT_TRUE(grc_forwarding_allowed(g, {t.H, t.D, t.A}));
  EXPECT_FALSE(grc_forwarding_allowed(g, {t.D, t.E, t.B}));
  // The economically undesirable path ADE of §I: D forwards from provider
  // A to peer E - no customer involved.
  EXPECT_FALSE(grc_forwarding_allowed(g, {t.A, t.D, t.E}));
}

TEST(EnumerateValleyFree, FindsAllFig1PathsHtoI) {
  const auto t = make_fig1();
  const auto paths = enumerate_valley_free_paths(t.graph, t.H, t.I, 6);
  // H-D-E-I (up, peer, down) and H-D-A-B-E-I (up up peer down down).
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      Path{t.H, t.D, t.E, t.I}),
            paths.end());
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      Path{t.H, t.D, t.A, t.B, t.E, t.I}),
            paths.end());
}

TEST(EnumerateValleyFree, AllResultsAreValleyFree) {
  const auto t = make_fig1();
  for (AsId src = 0; src < t.graph.num_ases(); ++src) {
    for (AsId dst = 0; dst < t.graph.num_ases(); ++dst) {
      if (src == dst) {
        continue;
      }
      for (const Path& p : enumerate_valley_free_paths(t.graph, src, dst, 6)) {
        EXPECT_TRUE(is_valley_free(t.graph, p));
        EXPECT_EQ(p.front(), src);
        EXPECT_EQ(p.back(), dst);
      }
    }
  }
}

TEST(RouteClass, OrdersCustomerPeerProvider) {
  const auto t = make_fig1();
  const auto& g = t.graph;
  EXPECT_EQ(route_relationship_class(g, {t.D, t.H}), 0);  // via customer
  EXPECT_EQ(route_relationship_class(g, {t.D, t.E, t.I}), 1);  // via peer
  EXPECT_EQ(route_relationship_class(g, {t.D, t.A}), 2);  // via provider
}

// -------------------------------------------------- policy-compiled SPPs

TEST(GaoRexfordSpp, PermittedPathsAreValleyFreeAndRankedByClass) {
  const auto t = make_fig1();
  const SppInstance spp = make_gao_rexford_spp(t.graph, t.I);
  for (AsId node = 0; node < t.graph.num_ases(); ++node) {
    if (node == t.I) {
      continue;
    }
    int prev_class = -1;
    for (const paths::PathView view : spp.permitted(node)) {
      const Path p = view.to_path();
      EXPECT_TRUE(is_valley_free(t.graph, p));
      const int cls = route_relationship_class(t.graph, p);
      EXPECT_GE(cls, prev_class);
      prev_class = cls;
    }
  }
}

TEST(GaoRexfordSpp, EveryNodeHasARouteInFig1) {
  const auto t = make_fig1();
  const SppInstance spp = make_gao_rexford_spp(t.graph, t.I);
  for (AsId node = 0; node < t.graph.num_ases(); ++node) {
    if (node != t.I) {
      EXPECT_FALSE(spp.permitted(node).empty()) << "node " << node;
    }
  }
}

TEST(MutualTransitSpp, AddsGrcViolatingPaths) {
  const auto t = make_fig1();
  const SppInstance grc = make_gao_rexford_spp(t.graph, t.A);
  const SppInstance mutual =
      make_mutual_transit_spp(t.graph, t.A, {{t.D, t.E}});
  // Under plain GRC, E cannot route to A via peer D (peer would have to
  // forward provider traffic); with the mutual-transit agreement it can.
  EXPECT_EQ(grc.rank_of(t.E, {t.E, t.D, t.A}), -1);
  EXPECT_GE(mutual.rank_of(t.E, {t.E, t.D, t.A}), 0);
  // And D gains the DEBA path of §II.
  EXPECT_GE(mutual.rank_of(t.D, {t.D, t.E, t.B, t.A}), 0);
}

TEST(ProfileStability, DistinguishesGadgets) {
  const auto good = profile_stability(make_good_gadget());
  EXPECT_EQ(good.stable_solutions, 1u);
  EXPECT_TRUE(good.safe_under_synchronous);
  const auto bad = profile_stability(make_bad_gadget());
  EXPECT_EQ(bad.stable_solutions, 0u);
  EXPECT_FALSE(bad.safe_under_synchronous);
}

}  // namespace
}  // namespace panagree::bgp
