// Tests for the convergence engine: Gao-Rexford route selection on hand
// graphs, valley-free export, deterministic fixpoints (pure function of
// the topology at every thread count), loop-free next-hop graphs, and
// churn reports across deployments.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "panagree/dynamics/convergence.hpp"
#include "panagree/scenario/overlay.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/error.hpp"

namespace panagree::dynamics {
namespace {

using scenario::Delta;
using scenario::Overlay;
using topology::CompiledTopology;
using topology::Graph;
using topology::LinkType;

/// 0 can reach dest 4 through its customer 1, its peer 2, and its
/// provider 3 - each of which provides to 4 (so each one's own route is
/// customer-learned and exported to everybody, including 0).
Graph preference_graph() {
  Graph g;
  for (int i = 0; i < 5; ++i) {
    g.add_as();
  }
  g.add_provider_customer(0, 1);  // 1 is 0's customer
  g.add_peering(0, 2);            // 2 is 0's peer
  g.add_provider_customer(3, 0);  // 3 is 0's provider
  g.add_provider_customer(1, 4);
  g.add_provider_customer(2, 4);
  g.add_provider_customer(3, 4);
  return g;
}

TEST(Converge, DestinationHoldsTheSelfRoute) {
  const Graph g = preference_graph();
  const CompiledTopology c(g);
  const ConvergenceResult result = converge(c, 4);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.routes[4].cls, RouteClass::kSelf);
  EXPECT_EQ(result.routes[4].length, 0u);
  EXPECT_EQ(result.routes[4].next_hop, 4u);
}

TEST(Converge, CustomerRoutesBeatPeerAndProviderRoutes) {
  const Graph g = preference_graph();
  const CompiledTopology c(g);
  const ConvergenceResult result = converge(c, 4);
  ASSERT_TRUE(result.converged);
  // All three of 0's candidates have length 2; the customer-learned one
  // wins regardless of shorter alternatives elsewhere in the order.
  EXPECT_EQ(result.routes[0].next_hop, 1u);
  EXPECT_EQ(result.routes[0].cls, RouteClass::kCustomer);
  EXPECT_EQ(result.routes[0].length, 2u);
  // The direct providers hold customer routes of length 1.
  for (const AsId as : {1u, 2u, 3u}) {
    EXPECT_EQ(result.routes[as].cls, RouteClass::kCustomer);
    EXPECT_EQ(result.routes[as].length, 1u);
    EXPECT_EQ(result.routes[as].next_hop, 4u);
  }
  EXPECT_EQ(result.reachable, 5u);
}

TEST(Converge, PeerLearnedRoutesAreNotExportedToPeers) {
  // 0 -peer- 1 -peer- 2: 1's route toward 2 is peer-learned, so 0 never
  // hears about it (the valley 0-1-2 would be peer-peer).
  Graph g;
  for (int i = 0; i < 3; ++i) {
    g.add_as();
  }
  g.add_peering(0, 1);
  g.add_peering(1, 2);
  const CompiledTopology c(g);
  const ConvergenceResult result = converge(c, 2);
  EXPECT_TRUE(result.converged);
  EXPECT_FALSE(result.routes[0].reachable());
  EXPECT_EQ(result.routes[1].cls, RouteClass::kPeer);
  EXPECT_EQ(result.reachable, 2u);
}

TEST(Converge, EverythingIsExportedToCustomers) {
  // 1 provides to 0 and peers with 2: the peer-learned route does reach
  // the customer 0, as a provider-learned route of length 2.
  Graph g;
  for (int i = 0; i < 3; ++i) {
    g.add_as();
  }
  g.add_provider_customer(1, 0);
  g.add_peering(1, 2);
  const CompiledTopology c(g);
  const ConvergenceResult result = converge(c, 2);
  EXPECT_TRUE(result.converged);
  ASSERT_TRUE(result.routes[0].reachable());
  EXPECT_EQ(result.routes[0].cls, RouteClass::kProvider);
  EXPECT_EQ(result.routes[0].next_hop, 1u);
  EXPECT_EQ(result.routes[0].length, 2u);
}

TEST(Converge, TiesBreakOnTheLowestNextHopId) {
  // 1 and 2 are both 0's customers and both provide to 3: two
  // customer-class length-2 routes; the lower next-hop id wins.
  Graph g;
  for (int i = 0; i < 4; ++i) {
    g.add_as();
  }
  g.add_provider_customer(0, 1);
  g.add_provider_customer(0, 2);
  g.add_provider_customer(1, 3);
  g.add_provider_customer(2, 3);
  const CompiledTopology c(g);
  const ConvergenceResult result = converge(c, 3);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.routes[0].cls, RouteClass::kCustomer);
  EXPECT_EQ(result.routes[0].length, 2u);
  EXPECT_EQ(result.routes[0].next_hop, 1u);
}

TEST(Converge, IsolatedDestinationIsStableAtRoundZero) {
  Graph g;
  for (int i = 0; i < 3; ++i) {
    g.add_as();
  }
  g.add_peering(0, 1);  // 2 stays an island
  const CompiledTopology c(g);
  const ConvergenceResult result = converge(c, 2);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.rounds, 0u);
  EXPECT_EQ(result.reachable, 1u);
}

TEST(Converge, RoundCapReportsNonConvergence) {
  const Graph g = preference_graph();
  const CompiledTopology c(g);
  ConvergenceOptions options;
  options.max_rounds = 1;  // the fixpoint needs more
  const ConvergenceResult result = converge(c, 4, options);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(Converge, DestinationOutOfRangeThrows) {
  const Graph g = preference_graph();
  const CompiledTopology c(g);
  EXPECT_THROW((void)converge(c, 99), util::PreconditionError);
}

topology::GeneratedTopology generated(std::size_t num_ases,
                                      std::uint64_t seed) {
  return topology::generate_internet([&] {
    topology::GeneratorParams params;
    params.num_ases = num_ases;
    params.tier1_count = 4;
    params.seed = seed;
    return params;
  }());
}

TEST(Converge, FixpointIsAPureFunctionOfTheTopology) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  ConvergenceEngine engine;
  const ConvergenceResult first = engine.converge(c, 17);
  // Reusing the engine (dirty scratch), a fresh engine, and the one-shot
  // helper all land on the identical result and round count.
  const ConvergenceResult again = engine.converge(c, 17);
  const ConvergenceResult fresh = converge(c, 17);
  EXPECT_EQ(first, again);
  EXPECT_EQ(first, fresh);
  EXPECT_TRUE(first.converged);
  EXPECT_GT(first.rounds, 0u);
}

TEST(Converge, NextHopGraphIsLoopFreeAndLengthsDecrease) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  const AsId dest = 17;
  const ConvergenceResult result = converge(c, dest);
  ASSERT_TRUE(result.converged);
  for (AsId u = 0; u < c.num_ases(); ++u) {
    if (!result.routes[u].reachable() || u == dest) {
      continue;
    }
    // Lengths strictly decrease along next hops, so following them must
    // reach the destination in at most `length` steps.
    AsId at = u;
    std::uint32_t steps = 0;
    while (at != dest) {
      const Route& route = result.routes[at];
      ASSERT_TRUE(route.reachable()) << "broken chain at AS " << at;
      const Route& next = result.routes[route.next_hop];
      ASSERT_EQ(next.length + 1, route.length) << "AS " << at;
      at = route.next_hop;
      ASSERT_LE(++steps, result.routes[u].length) << "loop from AS " << u;
    }
  }
}

TEST(Converge, ConvergedPathsAreValleyFree) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  const AsId dest = 17;
  const ConvergenceResult result = converge(c, dest);
  ASSERT_TRUE(result.converged);
  for (AsId u = 0; u < c.num_ases(); ++u) {
    if (!result.routes[u].reachable() || u == dest) {
      continue;
    }
    // The hop sequence must match uphill* peer? downhill*: after the
    // first peer or downhill edge, only downhill edges may follow.
    bool downhill_only = false;
    AsId at = u;
    while (at != dest) {
      const AsId next = result.routes[at].next_hop;
      const auto role = c.role_of(at, next);
      ASSERT_TRUE(role.has_value());
      if (downhill_only) {
        ASSERT_EQ(*role, topology::NeighborRole::kCustomer)
            << "valley on the path from AS " << u;
      } else if (*role != topology::NeighborRole::kProvider) {
        downhill_only = true;
      }
      at = next;
    }
  }
}

TEST(ConvergeAll, ByteIdenticalAtEveryThreadCount) {
  const auto topo = generated(200, 23);
  const CompiledTopology c(topo.graph);
  std::vector<AsId> dests;
  for (AsId as = 0; as < c.num_ases(); as += 17) {
    dests.push_back(as);
  }
  const RoutingSnapshot one = converge_all(c, dests, 1);
  for (const std::size_t threads : {2u, 8u}) {
    const RoutingSnapshot many = converge_all(c, dests, threads);
    ASSERT_EQ(one.dests, many.dests);
    ASSERT_EQ(one.results.size(), many.results.size());
    for (std::size_t i = 0; i < one.results.size(); ++i) {
      EXPECT_EQ(one.results[i], many.results[i]) << "dest " << dests[i];
    }
    EXPECT_EQ(one.max_rounds, many.max_rounds);
    EXPECT_EQ(one.total_rounds, many.total_rounds);
    EXPECT_EQ(one.reachable_pairs, many.reachable_pairs);
    EXPECT_EQ(one.all_converged, many.all_converged);
  }
}

TEST(ConvergeAll, RunsOnAnOverlayView) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  const Overlay base_view(c);
  std::vector<AsId> dests{3, 17, 60};
  // The empty overlay is the base: identical snapshots.
  const RoutingSnapshot direct = converge_all(c, dests, 2);
  const RoutingSnapshot via_overlay = converge_all(base_view, dests, 2);
  EXPECT_EQ(direct.results.size(), via_overlay.results.size());
  for (std::size_t i = 0; i < direct.results.size(); ++i) {
    EXPECT_EQ(direct.results[i], via_overlay.results[i]);
  }
}

TEST(Churn, DeploymentChurnMatchesThePerRouteComparison) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  std::vector<AsId> dests{3, 17, 60, 101};
  const RoutingSnapshot before = converge_all(c, dests, 2);

  Delta delta;
  delta.add.push_back({20, 120, LinkType::kPeering});
  Overlay overlay(c);
  overlay.apply(delta);
  const RoutingSnapshot after = converge_all(overlay, dests, 2);

  ChurnReport expected;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    for (AsId u = 0; u < c.num_ases(); ++u) {
      const Route& b = before.results[i].routes[u];
      const Route& a = after.results[i].routes[u];
      if (b.reachable() && a.reachable() && b.next_hop != a.next_hop) {
        ++expected.changed_next_hops;
      } else if (b.reachable() && !a.reachable()) {
        ++expected.routes_lost;
      } else if (!b.reachable() && a.reachable()) {
        ++expected.routes_gained;
      }
    }
  }
  EXPECT_EQ(churn(before, after), expected);
  // Adding a link never loses a route.
  EXPECT_EQ(churn(before, after).routes_lost, 0u);
}

TEST(Churn, RemoveThenReAddIsTheIdentity) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  std::vector<AsId> dests{3, 17, 60};
  const RoutingSnapshot base = converge_all(c, dests, 2);

  // Rewire a base peering link onto itself: the overlaid rows are
  // identical to the base (entries sort by role group and neighbor id,
  // not insertion order), so convergence - and churn - must be zero.
  const auto& links = c.graph().links();
  const auto it = std::find_if(links.begin(), links.end(), [](const auto& l) {
    return l.type == LinkType::kPeering;
  });
  ASSERT_NE(it, links.end());
  Delta rewire;
  rewire.remove.emplace_back(it->a, it->b);
  rewire.add.push_back({it->a, it->b, LinkType::kPeering});
  Overlay overlay(c);
  overlay.apply(rewire);
  const RoutingSnapshot rewired = converge_all(overlay, dests, 2);
  for (std::size_t i = 0; i < dests.size(); ++i) {
    EXPECT_EQ(base.results[i], rewired.results[i]);
  }
  EXPECT_EQ(churn(base, rewired), ChurnReport{});
}

TEST(Churn, SnapshotOverloadRequiresMatchingDestinations) {
  const auto topo = generated(150, 11);
  const CompiledTopology c(topo.graph);
  const RoutingSnapshot a = converge_all(c, {3, 17}, 1);
  const RoutingSnapshot b = converge_all(c, {3, 60}, 1);
  EXPECT_THROW((void)churn(a, b), util::PreconditionError);
}

}  // namespace
}  // namespace panagree::dynamics
