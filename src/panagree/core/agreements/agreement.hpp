// Interconnection agreements (Eq. 2 of §III-B):
//
//   a = [ X(^pi'_X, ->eps'_X, v gamma'_X) ; Y(^pi'_Y, ->eps'_Y, v gamma'_Y) ]
//
// where each side grants the *other* party access to a subset of its own
// providers (pi'), peers (eps'), and customers (gamma'). Classic peering
// grants customers only; mutuality-based agreements (MAs) also grant
// providers and peers, which violates the GRC and is only viable in a PAN.
#pragma once

#include <string>
#include <vector>

#include "panagree/pan/path_construction.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::agreements {

using topology::AsId;
using topology::Graph;

/// One side of an agreement: the neighbors of `grantor` that the partner
/// gains access to.
struct AccessGrant {
  AsId grantor = topology::kInvalidAs;
  std::vector<AsId> providers;  ///< pi'  subset of pi(grantor)
  std::vector<AsId> peers;      ///< eps' subset of eps(grantor)
  std::vector<AsId> customers;  ///< gamma' subset of gamma(grantor)

  /// a_X = pi' | eps' | gamma' (sorted, deduplicated).
  [[nodiscard]] std::vector<AsId> all() const;

  [[nodiscard]] bool empty() const {
    return providers.empty() && peers.empty() && customers.empty();
  }
};

/// A bilateral agreement between grant_x.grantor (X) and grant_y.grantor (Y).
struct Agreement {
  AccessGrant grant_x;  ///< what X grants to Y
  AccessGrant grant_y;  ///< what Y grants to X

  [[nodiscard]] AsId x() const { return grant_x.grantor; }
  [[nodiscard]] AsId y() const { return grant_y.grantor; }

  /// True iff any provider or peer is granted (the GRC-violating part that
  /// needs a PAN, §III-B2).
  [[nodiscard]] bool violates_grc() const;

  /// Checks that parties differ and all granted sets are genuine subsets of
  /// the grantor's neighbor sets; throws util::PreconditionError otherwise.
  void validate(const Graph& graph) const;

  /// Human-readable form, e.g. "[D(^{A}); E(^{B}, ->{F})]".
  [[nodiscard]] std::string to_string(const Graph& graph) const;
};

/// New 3-AS path segments the agreement creates for `party` (one per
/// destination granted by the partner): party - partner - Z.
[[nodiscard]] std::vector<std::vector<AsId>> new_segments_for(
    const Agreement& agreement, AsId party);

/// Compiles the agreement into PAN forwarding-plane crossings. Each grant
/// "X lets Y reach Z" becomes a crossing at X from Y to Z. Per §III-B3 the
/// parties extend the new segments only to their own customers, so the
/// allowed sources of each crossing are the beneficiary's customer cone.
[[nodiscard]] std::vector<pan::Crossing> to_crossings(
    const Agreement& agreement, const Graph& graph);

}  // namespace panagree::agreements
