// The one way panagree-serve and panagree-query (--direct / --bench)
// build the serving stack, factored out so the two sides cannot drift:
// the byte-identity contract of the serving layer ("server responses ==
// direct library calls") only holds if both construct the engines from
// the same topology, the same source sample (sample seed included), the
// same economy, the same scoring weights, and the same shard partition.
//
// Sharding: the canonical source sample is split into `shards`
// contiguous ranges (shard s owns sources [s*n/shards, (s+1)*n/shards)),
// one QueryEngine per range, fronted by a serve::ShardRouter. shards=1
// degenerates to the old single-engine layout - the router adds one
// indirection but changes no bytes.
//
// Cold start: prime() adopts the snapshot's primed-baseline sections
// when the mmap'd snapshot carries them for exactly our source sample,
// skipping the per-source path enumeration entirely (the expensive part
// of priming); otherwise it enumerates fresh. Either way the router
// baseline is refreshed, so the context is serve-ready afterwards.
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "panagree/diversity/report.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/serve/query_engine.hpp"
#include "panagree/serve/shard_router.hpp"

namespace panagree::servecfg {

/// Everything a serving process keeps resident, in construction order
/// (each member borrows from the earlier ones). Not movable: the engines
/// hold pointers into the bundle and the router holds the engines.
struct ServeContext {
  /// `snapshot_override` follows benchcfg::load_internet semantics (a
  /// --snapshot flag wins over PANAGREE_SNAPSHOT / PANAGREE_CAIDA /
  /// the synthetic generator); `sources_n` is the cached sample size,
  /// sampled with the benches' shared seed.
  ServeContext(const char* snapshot_override, std::size_t sources_n,
               std::size_t threads, std::size_t max_batch,
               std::size_t shards = 1, bool pin_threads = false)
      : net(benchcfg::load_internet(0, snapshot_override)),
        economy(econ::make_default_economy(net.graph())),
        sources(diversity::sample_sources(net.graph(), sources_n,
                                          benchcfg::kSampleSeed)),
        engines(make_engines(net, economy, sources, shards, threads,
                             max_batch, pin_threads)),
        router(engine_pointers(engines), router_config(max_batch)) {}

  ServeContext(const ServeContext&) = delete;
  ServeContext& operator=(const ServeContext&) = delete;

  /// Primes every shard and publishes the router baseline. Returns true
  /// when the baseline was adopted from the snapshot's primed-baseline
  /// sections (mmap-only cold start: no path enumeration, the
  /// sweep.prime counter stays untouched), false when it was computed
  /// fresh. Serve through `router` afterwards.
  bool prime() {
    const bool restored = try_restore_from_snapshot();
    if (!restored) {
      for (const std::unique_ptr<serve::QueryEngine>& engine : engines) {
        engine->prime();
      }
    }
    router.refresh_baseline();
    return restored;
  }

  benchcfg::Internet net;
  econ::Economy economy;
  std::vector<topology::AsId> sources;
  /// The shard engines, in partition order; `router` fronts them.
  std::vector<std::unique_ptr<serve::QueryEngine>> engines;
  serve::ShardRouter router;

 private:
  static serve::EngineConfig engine_config(std::size_t threads,
                                           std::size_t max_batch,
                                           bool pin_threads) {
    serve::EngineConfig config;
    config.threads = threads;
    config.max_batch = max_batch;
    config.pin_threads = pin_threads;
    return config;
  }

  static serve::RouterConfig router_config(std::size_t max_batch) {
    serve::RouterConfig config;
    config.max_batch = max_batch;
    return config;
  }

  static std::vector<std::unique_ptr<serve::QueryEngine>> make_engines(
      const benchcfg::Internet& net, const econ::Economy& economy,
      const std::vector<topology::AsId>& sources, std::size_t shards,
      std::size_t threads, std::size_t max_batch, bool pin_threads) {
    util::require(shards > 0, "serve: need at least one shard");
    util::require(shards <= std::max<std::size_t>(sources.size(), 1),
                  "serve: more shards than sampled sources");
    std::vector<std::unique_ptr<serve::QueryEngine>> engines;
    engines.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = s * sources.size() / shards;
      const std::size_t end = (s + 1) * sources.size() / shards;
      engines.push_back(std::make_unique<serve::QueryEngine>(
          net.compiled(), &net.world(), &economy,
          std::vector<topology::AsId>(sources.begin() + begin,
                                      sources.begin() + end),
          engine_config(threads, max_batch, pin_threads)));
    }
    return engines;
  }

  static std::vector<serve::QueryEngine*> engine_pointers(
      const std::vector<std::unique_ptr<serve::QueryEngine>>& engines) {
    std::vector<serve::QueryEngine*> pointers;
    pointers.reserve(engines.size());
    for (const std::unique_ptr<serve::QueryEngine>& engine : engines) {
      pointers.push_back(engine.get());
    }
    return pointers;
  }

  /// Adopts the snapshot's primed baseline if it matches our source
  /// sample exactly. The baseline caches are per-source path sets, so
  /// any drift in the sample (different --sources, a different seed, a
  /// recompiled topology) makes them useless - fall back to enumerating.
  bool try_restore_from_snapshot() {
    const storage::MappedSnapshot* snap = net.snapshot();
    if (snap == nullptr || !snap->primed_baseline().has_value()) {
      return false;
    }
    const storage::ShardPlanView& plan = *snap->shard_plan();
    if (plan.sources.size() != sources.size() ||
        !std::equal(plan.sources.begin(), plan.sources.end(),
                    sources.begin())) {
      return false;
    }
    const storage::PrimedBaselineView& baseline = *snap->primed_baseline();
    // Rebuild each source's GRC/MA path sets from the flat (src, mid,
    // dst) triples - GRC paths first, then MA, per source - and hand
    // them to the owning shard.
    std::size_t global = 0;
    for (const std::unique_ptr<serve::QueryEngine>& engine : engines) {
      std::vector<scenario::SourcePathSet> results;
      results.reserve(engine->sources().size());
      for (std::size_t i = 0; i < engine->sources().size();
           ++i, ++global) {
        scenario::SourcePathSet set;
        const std::size_t grc = baseline.grc_counts[global];
        const std::size_t first = baseline.path_begin[global];
        const std::size_t last = baseline.path_begin[global + 1];
        for (std::size_t p = first; p < last; ++p) {
          const diversity::Length3Path path{
              topology::AsId{baseline.path_words[3 * p]},
              topology::AsId{baseline.path_words[3 * p + 1]},
              topology::AsId{baseline.path_words[3 * p + 2]}};
          if (p - first < grc) {
            set.add_grc(path);
          } else {
            set.add_ma(path);
          }
        }
        results.push_back(std::move(set));
      }
      engine->prime_restored(std::move(results));
    }
    return true;
  }
};

}  // namespace panagree::servecfg
