#include "panagree/obs/slowlog.hpp"

#include <algorithm>
#include <tuple>

namespace panagree::obs {

namespace {

[[nodiscard]] auto record_key(const SlowQueryRecord& r) noexcept {
  // wall_ns leads (descending via the caller's comparison); the rest is
  // an arbitrary-but-total tiebreak so equal-wall records still order
  // deterministically.
  return std::tuple(r.wire_id, r.kind, r.source, r.delta_links, r.queue_ns,
                    r.parse_ns, r.engine_ns, r.serialize_ns, r.send_ns);
}

}  // namespace

bool slow_record_before(const SlowQueryRecord& a,
                        const SlowQueryRecord& b) noexcept {
  if (a.wall_ns != b.wall_ns) {
    return a.wall_ns > b.wall_ns;
  }
  return record_key(a) < record_key(b);
}

}  // namespace panagree::obs

#if !defined(PANAGREE_OBS_OFF)

namespace panagree::obs {

inline namespace obs_on {

namespace {

/// Slot payload layout: field i of the record, in declaration order.
void store_record(std::array<std::atomic<std::uint64_t>, kSlowQueryFields>&
                      fields,
                  const SlowQueryRecord& rec) noexcept {
  const std::uint64_t values[kSlowQueryFields] = {
      rec.wire_id,   rec.kind,     rec.source,       rec.delta_links,
      rec.wall_ns,   rec.queue_ns, rec.parse_ns,     rec.engine_ns,
      rec.serialize_ns, rec.send_ns};
  for (std::size_t i = 0; i < kSlowQueryFields; ++i) {
    fields[i].store(values[i], std::memory_order_relaxed);
  }
}

[[nodiscard]] SlowQueryRecord load_record(
    const std::array<std::atomic<std::uint64_t>, kSlowQueryFields>& fields)
    noexcept {
  SlowQueryRecord rec;
  rec.wire_id = fields[0].load(std::memory_order_relaxed);
  rec.kind = fields[1].load(std::memory_order_relaxed);
  rec.source = fields[2].load(std::memory_order_relaxed);
  rec.delta_links = fields[3].load(std::memory_order_relaxed);
  rec.wall_ns = fields[4].load(std::memory_order_relaxed);
  rec.queue_ns = fields[5].load(std::memory_order_relaxed);
  rec.parse_ns = fields[6].load(std::memory_order_relaxed);
  rec.engine_ns = fields[7].load(std::memory_order_relaxed);
  rec.serialize_ns = fields[8].load(std::memory_order_relaxed);
  rec.send_ns = fields[9].load(std::memory_order_relaxed);
  return rec;
}

/// Index of the record's wall_ns field inside the slot payload.
inline constexpr std::size_t kWallField = 4;

/// A writer that keeps losing claim races gives up after this many full
/// scans: the ring is monitoring, not accounting, and a dropped record
/// under that much write pressure is indistinguishable from losing the
/// min-wall comparison a microsecond later.
inline constexpr int kClaimAttempts = 4;

/// A reader retries a slot this many times before skipping it (only
/// reachable when a writer keeps re-claiming the same slot mid-read).
inline constexpr int kReadAttempts = 8;

}  // namespace

SlowQueryLog::SlowQueryLog(std::size_t slots)
    : slots_n_(std::bit_ceil(slots == 0 ? std::size_t{1} : slots)),
      slots_(new Slot[slots_n_]) {}

SlowQueryLog& SlowQueryLog::global() {
  // Leaked for the same reason as the metrics registry: worker threads
  // may record during static destruction.
  static SlowQueryLog* instance = new SlowQueryLog(kDefaultSlowLogSlots);
  return *instance;
}

void SlowQueryLog::set_threshold_ns(std::uint64_t ns) noexcept {
  threshold_ns_.store(ns, std::memory_order_relaxed);
}

std::uint64_t SlowQueryLog::threshold_ns() const noexcept {
  return threshold_ns_.load(std::memory_order_relaxed);
}

void SlowQueryLog::record(const SlowQueryRecord& rec) noexcept {
  if (rec.wall_ns < threshold_ns()) {
    return;
  }
  for (int attempt = 0; attempt < kClaimAttempts; ++attempt) {
    // Victim selection: first never-written slot, else the stable slot
    // with the smallest wall. Slots mid-write (odd seq) are skipped -
    // their writer is installing a record that already beat the
    // threshold, so passing them over cannot evict the wrong slot.
    std::size_t victim = slots_n_;
    std::uint64_t victim_seq = 0;
    std::uint64_t min_wall = ~std::uint64_t{0};
    bool victim_empty = false;
    for (std::size_t i = 0; i < slots_n_; ++i) {
      const std::uint64_t seq = slots_[i].seq.load(std::memory_order_acquire);
      if (seq == 0) {
        victim = i;
        victim_seq = seq;
        victim_empty = true;
        break;
      }
      if ((seq & 1) != 0) {
        continue;
      }
      const std::uint64_t wall =
          slots_[i].fields[kWallField].load(std::memory_order_relaxed);
      if (wall < min_wall) {
        min_wall = wall;
        victim = i;
        victim_seq = seq;
      }
    }
    if (victim == slots_n_) {
      return;  // every slot mid-write; drop
    }
    if (!victim_empty && rec.wall_ns <= min_wall) {
      return;  // ring is full of slower requests; keep the slowest N
    }
    Slot& slot = slots_[victim];
    std::uint64_t expected = victim_seq;
    if (slot.seq.compare_exchange_strong(expected, victim_seq + 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
      store_record(slot.fields, rec);
      slot.seq.store(victim_seq + 2, std::memory_order_release);
      return;
    }
    // Lost the claim race; rescan - the ring's contents just changed.
  }
}

std::vector<SlowQueryRecord> SlowQueryLog::snapshot() const {
  std::vector<SlowQueryRecord> out;
  out.reserve(slots_n_);
  for (std::size_t i = 0; i < slots_n_; ++i) {
    const Slot& slot = slots_[i];
    for (int attempt = 0; attempt < kReadAttempts; ++attempt) {
      const std::uint64_t before =
          slot.seq.load(std::memory_order_acquire);
      if (before == 0) {
        break;  // never written
      }
      if ((before & 1) != 0) {
        continue;  // writer inside; retry
      }
      const SlowQueryRecord rec = load_record(slot.fields);
      // Order the payload loads before the re-check of seq (the
      // standard seqlock read fence; the loads themselves are atomic,
      // so a concurrent writer is not a data race, just a retry).
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) == before) {
        out.push_back(rec);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end(), slow_record_before);
  return out;
}

void SlowQueryLog::clear() noexcept {
  for (std::size_t i = 0; i < slots_n_; ++i) {
    slots_[i].seq.store(0, std::memory_order_release);
  }
}

}  // namespace obs_on

}  // namespace panagree::obs

#endif  // !PANAGREE_OBS_OFF
