#include "panagree/paths/role_filter.hpp"

#include <cstdlib>

#include "panagree/obs/metrics.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace panagree::paths {

namespace {

using FilterFn = std::size_t (*)(const std::uint8_t*, std::size_t, RoleMask,
                                 std::uint32_t*);

/// 0=scalar, 1=sse2, 2=avx2 - the numeric face of role_filter_dispatch()
/// for the `rolefilter.kernel_id` gauge.
enum KernelId : std::int64_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

std::size_t filter_scalar_impl(const std::uint8_t* roles, std::size_t count,
                               RoleMask mask, std::uint32_t* out) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if ((static_cast<unsigned>(mask) >> roles[i]) & 1U) {
      out[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

#if defined(__x86_64__) || defined(__i386__)

/// Drains a movemask word: each set bit is one admitted lane.
inline std::size_t emit_bits(std::uint32_t bits, std::size_t base,
                             std::uint32_t* out, std::size_t n) {
  while (bits != 0) {
    const unsigned lane = static_cast<unsigned>(__builtin_ctz(bits));
    out[n++] = static_cast<std::uint32_t>(base + lane);
    bits &= bits - 1;
  }
  return n;
}

/// SSE2 (the x86-64 baseline, no runtime check needed): compare the 16
/// roles of a block against each role value the mask admits (<= 3
/// compares) and OR the verdicts.
std::size_t filter_sse2_impl(const std::uint8_t* roles, std::size_t count,
                             RoleMask mask, std::uint32_t* out) {
  __m128i wanted[3];
  int num_wanted = 0;
  for (int role = 0; role < 3; ++role) {
    if ((mask >> role) & 1U) {
      wanted[num_wanted++] = _mm_set1_epi8(static_cast<char>(role));
    }
  }
  std::size_t n = 0;
  std::size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(roles + i));
    __m128i admit = _mm_setzero_si128();
    for (int w = 0; w < num_wanted; ++w) {
      admit = _mm_or_si128(admit, _mm_cmpeq_epi8(v, wanted[w]));
    }
    n = emit_bits(static_cast<std::uint32_t>(_mm_movemask_epi8(admit)), i,
                  out, n);
  }
  for (; i < count; ++i) {
    if ((static_cast<unsigned>(mask) >> roles[i]) & 1U) {
      out[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

/// AVX2: one pshufb against a 16-entry admit table classifies 32 roles
/// per iteration regardless of how many roles the mask admits.
__attribute__((target("avx2"))) std::size_t filter_avx2_impl(
    const std::uint8_t* roles, std::size_t count, RoleMask mask,
    std::uint32_t* out) {
  alignas(32) std::uint8_t table[32];
  for (int value = 0; value < 16; ++value) {
    const std::uint8_t admit =
        value < 8 && ((mask >> value) & 1U) ? 0xFF : 0x00;
    table[value] = admit;
    table[16 + value] = admit;  // both 128-bit lanes of the shuffle
  }
  const __m256i lut =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(table));
  std::size_t n = 0;
  std::size_t i = 0;
  for (; i + 32 <= count; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(roles + i));
    const __m256i admit = _mm256_shuffle_epi8(lut, v);
    n = emit_bits(static_cast<std::uint32_t>(_mm256_movemask_epi8(admit)), i,
                  out, n);
  }
  for (; i < count; ++i) {
    if ((static_cast<unsigned>(mask) >> roles[i]) & 1U) {
      out[n++] = static_cast<std::uint32_t>(i);
    }
  }
  return n;
}

#endif  // x86

struct Dispatch {
  FilterFn fn;
  const char* name;
  std::int64_t kernel_id;
};

Dispatch select_dispatch() {
  const char* no_simd = std::getenv("PANAGREE_NO_SIMD");
  const bool forced_scalar =
      no_simd != nullptr && no_simd[0] != '\0' && no_simd[0] != '0';
#if defined(__x86_64__) || defined(__i386__)
  if (!forced_scalar) {
    if (__builtin_cpu_supports("avx2")) {
      return {&filter_avx2_impl, "avx2", kAvx2};
    }
#if defined(__SSE2__)
    return {&filter_sse2_impl, "sse2", kSse2};
#endif
  }
#else
  (void)forced_scalar;
#endif
  return {&filter_scalar_impl, "scalar", kScalar};
}

const Dispatch& dispatch() {
  // Selected once per process: the environment override is read at first
  // use, like the rest of the PANAGREE_* env knobs. The kernel gauge is
  // set in the same once-block - dispatch never changes after this.
  static const Dispatch selected = [] {
    const Dispatch chosen = select_dispatch();
    obs::Registry::global().gauge("rolefilter.kernel_id").set(
        chosen.kernel_id);
    return chosen;
  }();
  return selected;
}

// Row-granular tallies: filter_roles runs once per DFS row, so this is
// the hottest instrumented point in the repo - two sharded relaxed adds
// per row, cost documented by BM_Obs_CounterHot.
struct FilterMetrics {
  obs::Counter& rows;
  obs::Counter& entries_admitted;
};

FilterMetrics& filter_metrics() {
  static FilterMetrics metrics{
      obs::Registry::global().counter("rolefilter.rows"),
      obs::Registry::global().counter("rolefilter.entries_admitted"),
  };
  return metrics;
}

}  // namespace

std::size_t filter_roles_scalar(const std::uint8_t* roles, std::size_t count,
                                RoleMask mask, std::uint32_t* out) {
  return filter_scalar_impl(roles, count, mask, out);
}

std::size_t filter_roles(const std::uint8_t* roles, std::size_t count,
                         RoleMask mask, std::uint32_t* out) {
  const std::size_t n = dispatch().fn(roles, count, mask, out);
  if constexpr (obs::enabled()) {
    FilterMetrics& metrics = filter_metrics();
    metrics.rows.increment();
    metrics.entries_admitted.add(n);
  }
  return n;
}

const char* role_filter_dispatch() { return dispatch().name; }

}  // namespace panagree::paths
