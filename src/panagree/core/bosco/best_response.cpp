#include "panagree/core/bosco/best_response.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "panagree/util/error.hpp"

namespace panagree::bosco {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();
}  // namespace

Strategy::Strategy(std::vector<double> starts) : starts_(std::move(starts)) {
  util::require(starts_.size() >= 2, "Strategy: need at least one choice");
  util::require(starts_.front() == kNegInf,
                "Strategy: first interval must start at -infinity");
  util::require(starts_.back() == kPosInf,
                "Strategy: last interval must end at +infinity");
  for (std::size_t i = 0; i + 1 < starts_.size(); ++i) {
    util::require(!(starts_[i] > starts_[i + 1]),
                  "Strategy: interval starts must be non-decreasing");
  }
}

Strategy Strategy::quantizer(const ChoiceSet& choices) {
  // Floor quantizer: claim the largest choice <= true utility.
  const std::size_t w = choices.size();
  std::vector<double> starts(w + 1);
  starts[0] = kNegInf;
  for (std::size_t i = 1; i < w; ++i) {
    starts[i] = choices.value(i);
  }
  starts[w] = kPosInf;
  return Strategy(std::move(starts));
}

std::size_t Strategy::choice_for(double u) const {
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), u);
  PANAGREE_ASSERT(it != starts_.begin());
  const std::size_t index = static_cast<std::size_t>(it - starts_.begin()) - 1;
  return std::min(index, num_choices() - 1);
}

std::size_t Strategy::active_choices() const {
  std::size_t active = 0;
  for (std::size_t i = 0; i + 1 < starts_.size(); ++i) {
    if (starts_[i] < starts_[i + 1]) {
      ++active;
    }
  }
  return active;
}

double Strategy::shortest_active_interval() const {
  double shortest = kPosInf;
  for (std::size_t i = 0; i + 1 < starts_.size(); ++i) {
    if (starts_[i] < starts_[i + 1] && std::isfinite(starts_[i]) &&
        std::isfinite(starts_[i + 1])) {
      shortest = std::min(shortest, starts_[i + 1] - starts_[i]);
    }
  }
  return shortest;
}

bool Strategy::approx_equal(const Strategy& other, double eps) const {
  if (starts_.size() != other.starts_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    const double a = starts_[i];
    const double b = other.starts_[i];
    if (std::isinf(a) || std::isinf(b)) {
      if (a != b) {
        return false;
      }
      continue;
    }
    if (std::abs(a - b) > eps) {
      return false;
    }
  }
  return true;
}

std::vector<double> claim_probabilities(const Strategy& strategy,
                                        const UtilityDistribution& dist) {
  const auto& starts = strategy.starts();
  std::vector<double> probs(strategy.num_choices(), 0.0);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double lo = std::max(starts[i], dist.support_lo());
    const double hi = std::min(starts[i + 1], dist.support_hi());
    if (hi > lo) {
      probs[i] = dist.mass_in(lo, hi);
    }
  }
  return probs;
}

std::vector<UtilityLine> expected_utility_lines(
    const ChoiceSet& own, const ChoiceSet& opponent,
    const std::vector<double>& opponent_probs) {
  util::require(opponent_probs.size() == opponent.size(),
                "expected_utility_lines: probability vector size mismatch");
  std::vector<UtilityLine> lines(own.size());
  for (std::size_t i = 0; i < own.size(); ++i) {
    const double v = own.value(i);
    if (std::isinf(v)) {
      continue;  // cancellation: zero utility regardless of u
    }
    UtilityLine line;
    for (std::size_t j = 0; j < opponent.size(); ++j) {
      const double w = opponent.value(j);
      if (std::isinf(w) || w < -v) {
        continue;  // opponent cancels or the surplus check fails
      }
      line.m += opponent_probs[j];
      line.q += opponent_probs[j] * (w - v) / 2.0;
    }
    lines[i] = line;
  }
  return lines;
}

Strategy best_response(const std::vector<UtilityLine>& lines) {
  const std::size_t w = lines.size();
  util::require(w >= 1, "best_response: need at least one line");

  // Keep, per distinct slope, only the line with the largest intercept
  // (lower ones are dominated for every u); remember original indices.
  struct Entry {
    double m, q;
    std::size_t idx;
  };
  std::vector<Entry> entries;
  entries.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    entries.push_back(Entry{lines[i].m, lines[i].q, i});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.m != b.m) {
      return a.m < b.m;
    }
    if (a.q != b.q) {
      return a.q > b.q;  // best intercept first within a slope group
    }
    return a.idx < b.idx;
  });
  std::vector<Entry> filtered;
  for (const Entry& e : entries) {
    if (filtered.empty() || filtered.back().m != e.m) {
      filtered.push_back(e);
    }
  }

  // Upper envelope of lines with strictly increasing slopes.
  std::vector<Entry> hull;
  std::vector<double> crossing;  // crossing[k]: hull[k] -> hull[k+1] switch
  for (const Entry& line : filtered) {
    for (;;) {
      if (hull.empty()) {
        hull.push_back(line);
        break;
      }
      const Entry& top = hull.back();
      const double x = (top.q - line.q) / (line.m - top.m);
      if (!crossing.empty() && x <= crossing.back()) {
        hull.pop_back();
        crossing.pop_back();
        continue;
      }
      crossing.push_back(x);
      hull.push_back(line);
      break;
    }
  }

  // Translate the envelope into the threshold series (Algorithm 1's output
  // shape): active choice k starts at its envelope switch point; inactive
  // choices inherit the next active start so their interval is empty.
  std::vector<double> starts(w + 1, kPosInf);
  starts[w] = kPosInf;
  for (std::size_t k = 0; k < hull.size(); ++k) {
    starts[hull[k].idx] = k == 0 ? kNegInf : crossing[k - 1];
  }
  // Envelope indices ascend (slopes are CCDF values, non-decreasing in the
  // choice index), so a simple back-fill closes the gaps.
  for (std::size_t i = w; i-- > 0;) {
    if (starts[i] == kPosInf && i != hull.back().idx) {
      starts[i] = starts[i + 1];
    }
  }
  // The lowest interval must still start at -infinity after back-fill.
  PANAGREE_ASSERT(starts.front() == kNegInf);
  return Strategy(std::move(starts));
}

Strategy best_response_to(const ChoiceSet& own, const ChoiceSet& opponent,
                          const Strategy& opponent_strategy,
                          const UtilityDistribution& opponent_dist) {
  const std::vector<double> probs =
      claim_probabilities(opponent_strategy, opponent_dist);
  return best_response(expected_utility_lines(own, opponent, probs));
}

}  // namespace panagree::bosco
