// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of panagree (topology generation, choice-set
// sampling, activation sequences, ...) draw from Rng so that every experiment
// is reproducible from a single 64-bit seed. The generator is xoshiro256**
// seeded via SplitMix64, following the reference implementations by Blackman
// and Vigna (public domain).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "panagree/util/error.hpp"

namespace panagree::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also be plugged into
/// <random> distributions where needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
      word = splitmix64(sm);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    require(lo <= hi, "Rng::uniform: lo must not exceed hi");
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n); n must be positive. Unbiased via rejection.
  std::uint64_t uniform_index(std::uint64_t n) {
    require(n > 0, "Rng::uniform_index: n must be positive");
    const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) {
        return r % n;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    require(lo <= hi, "Rng::uniform_int: lo must not exceed hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_index(span));
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (one value per call; no caching so the
  /// stream stays reproducible under reordering).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with given rate (> 0).
  double exponential(double rate);

  /// Pareto-distributed value with shape alpha > 0 and scale x_min > 0.
  /// Used for power-law degree targets in the topology generator.
  double pareto(double alpha, double x_min);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Index drawn proportionally to non-negative weights (at least one > 0).
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derive an independent child generator (for parallel substreams).
  Rng split() { return Rng(next() ^ 0xa02bdbf7bb3c0a7ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace panagree::util
