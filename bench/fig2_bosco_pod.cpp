// Figure 2: Price of Dishonesty (minimum and mean over 200 random
// choice-set draws) guaranteed by BOSCO, as a function of the number of
// choices W_X = W_Y, for the two utility distributions of the paper:
//   U(1) = uniform on [-1, 1] x [-1, 1]
//   U(2) = uniform on [-1/2, 1] x [-1/2, 1].
//
// Expected shape (paper §V-E): PoD falls as choices are added, flattens
// around 50 choices near ~0.1, and the number of equilibrium (active)
// choices settles around 4.
#include <iostream>
#include <memory>

#include "panagree/core/bosco/service.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;

struct SeriesSpec {
  const char* name;
  double lo;
  double hi;
};

}  // namespace

int main() {
  std::cout << "== Figure 2: BOSCO Price of Dishonesty vs. choice-set size "
               "==\n"
            << "200 random choice-set draws per (W, distribution); PoD = 1 - "
               "E[N|equilibrium]/E[N|truthful].\n\n";

  const SeriesSpec series[] = {
      {"U(1)=Unif[-1,1]^2", -1.0, 1.0},
      {"U(2)=Unif[-1/2,1]^2", -0.5, 1.0},
  };

  util::Table table({"W", "U(1) min", "U(1) mean", "U(2) min", "U(2) mean",
                     "U(1) act.choices", "U(2) act.choices", "conv.trials"});

  for (std::size_t w = 10; w <= 60; w += 10) {
    std::vector<std::string> row{std::to_string(w)};
    std::vector<std::string> active;
    std::size_t converged = 0;
    for (const SeriesSpec& spec : series) {
      bosco::BoscoService service(
          std::make_unique<bosco::UniformDistribution>(spec.lo, spec.hi),
          std::make_unique<bosco::UniformDistribution>(spec.lo, spec.hi),
          bosco::BoscoServiceOptions{
              .trials = 200, .seed = 1000 + w, .equilibrium = {},
              .truthful_grid = 600});
      const auto stats = service.trial_statistics(w);
      row.push_back(util::format_double(stats.min_pod, 4));
      row.push_back(util::format_double(stats.mean_pod, 4));
      active.push_back(util::format_double(
          0.5 * (stats.mean_active_choices_x + stats.mean_active_choices_y),
          2));
      converged += stats.converged_trials;
    }
    row.push_back(active[0]);
    row.push_back(active[1]);
    row.push_back(std::to_string(converged));
    table.add_row(std::move(row));
  }

  table.print(std::cout);
  std::cout << '\n';
  table.print_csv(std::cout, "fig2");
  std::cout << "\nPaper reference: PoD decreases with W and flattens around "
               "W~50 at roughly 0.1 for both distributions; ~4 equilibrium "
               "choices per party at that point.\n";

  // Extension beyond the paper: the mechanism's efficiency under
  // non-uniform utility beliefs (the paper evaluates uniforms only). The
  // guarantees (Theorems 1-4) are distribution-free; the question is
  // whether the ~10% PoD level carries over.
  std::cout << "\n-- extension: non-uniform utility distributions (W = 50) "
               "--\n";
  util::Table ext({"distribution pair", "min PoD", "mean PoD",
                   "converged trials"});
  struct NamedDist {
    const char* name;
    std::unique_ptr<bosco::UtilityDistribution> (*make)();
  };
  const NamedDist dists[] = {
      {"Triangular(-1, 0.2, 1)^2",
       [] {
         return std::unique_ptr<bosco::UtilityDistribution>(
             std::make_unique<bosco::TriangularDistribution>(-1.0, 0.2, 1.0));
       }},
      {"TruncNormal(0.1, 0.5 | [-1, 1])^2",
       [] {
         return std::unique_ptr<bosco::UtilityDistribution>(
             std::make_unique<bosco::TruncatedNormalDistribution>(0.1, 0.5,
                                                                  -1.0, 1.0));
       }},
      {"asymmetric: Unif[-1,1] x TruncNormal(0.3, 0.4 | [-0.5, 1.2])",
       [] {
         return std::unique_ptr<bosco::UtilityDistribution>(
             std::make_unique<bosco::UniformDistribution>(-1.0, 1.0));
       }},
  };
  for (std::size_t d = 0; d < 3; ++d) {
    auto dist_x = dists[d].make();
    std::unique_ptr<bosco::UtilityDistribution> dist_y;
    if (d == 2) {
      dist_y = std::make_unique<bosco::TruncatedNormalDistribution>(0.3, 0.4,
                                                                    -0.5, 1.2);
    } else {
      dist_y = dists[d].make();
    }
    bosco::BoscoService service(std::move(dist_x), std::move(dist_y),
                                bosco::BoscoServiceOptions{
                                    .trials = 200,
                                    .seed = 4242 + d,
                                    .equilibrium = {},
                                    .truthful_grid = 600});
    const auto stats = service.trial_statistics(50);
    ext.add_row({dists[d].name, util::format_double(stats.min_pod, 4),
                 util::format_double(stats.mean_pod, 4),
                 std::to_string(stats.converged_trials)});
  }
  ext.print(std::cout);
  ext.print_csv(std::cout, "fig2_ext");
  return 0;
}
