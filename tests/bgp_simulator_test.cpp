#include <gtest/gtest.h>

#include "panagree/bgp/gadgets.hpp"
#include "panagree/bgp/policy.hpp"
#include "panagree/bgp/simulator.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::bgp {
namespace {

using topology::make_fig1;

TEST(Synchronous, GoodGadgetConverges) {
  const SpvpResult r = run_synchronous(make_good_gadget());
  EXPECT_EQ(r.outcome, Outcome::kConverged);
  EXPECT_TRUE(is_stable(make_good_gadget(), r.assignment));
}

TEST(Synchronous, BadGadgetOscillates) {
  const SpvpResult r = run_synchronous(make_bad_gadget());
  EXPECT_EQ(r.outcome, Outcome::kOscillated);
}

TEST(Synchronous, Fig1BadGadgetOscillates) {
  const auto t = make_fig1();
  const SpvpResult r = run_synchronous(make_fig1_bad_gadget(t));
  EXPECT_EQ(r.outcome, Outcome::kOscillated);
}

TEST(RandomActivations, DisagreeAlwaysConvergesButNondeterministically) {
  // The paper (§II): DISAGREE "does converge with BGP but
  // non-deterministically".
  const SafetyReport report = check_safety(make_disagree(), 60, 1234);
  EXPECT_TRUE(report.always_converged);
  EXPECT_EQ(report.distinct_outcomes, 2u);
}

TEST(RandomActivations, Fig1DisagreeReachesBothWedgieStates) {
  const auto t = make_fig1();
  const SafetyReport report = check_safety(make_fig1_disagree(t), 60, 99);
  EXPECT_TRUE(report.always_converged);
  EXPECT_EQ(report.distinct_outcomes, 2u);
}

TEST(RandomActivations, BadGadgetNeverConverges) {
  util::Rng rng(7);
  const SpvpResult r =
      run_random_activations(make_bad_gadget(), rng, 20000);
  EXPECT_EQ(r.outcome, Outcome::kOscillated);
}

TEST(RandomActivations, GoodGadgetUniqueOutcome) {
  const SafetyReport report = check_safety(make_good_gadget(), 40, 5);
  EXPECT_TRUE(report.always_converged);
  EXPECT_EQ(report.distinct_outcomes, 1u);
}

TEST(GaoRexford, Fig1ConvergesForEveryDestination) {
  const auto t = make_fig1();
  for (AsId dest = 0; dest < t.graph.num_ases(); ++dest) {
    const SppInstance spp = make_gao_rexford_spp(t.graph, dest);
    const SpvpResult r = run_synchronous(spp);
    EXPECT_EQ(r.outcome, Outcome::kConverged) << "destination " << dest;
  }
}

TEST(MutualTransit, SingleAgreementYieldsWedgieNotDivergence) {
  // D and E exchanging provider routes: converges, but to one of several
  // stable states depending on timing (the "BGP wedgie" of §II). With
  // destination B, D prefers the peer-learned [D,E,B] while E prefers
  // [E,D,A,B] - the classic DISAGREE shape.
  const auto t = make_fig1();
  const SppInstance spp = make_mutual_transit_spp(t.graph, t.B, {{t.D, t.E}});
  EXPECT_GE(spp.rank_of(t.D, {t.D, t.E, t.B}), 0);
  EXPECT_GE(spp.rank_of(t.E, {t.E, t.D, t.A, t.B}), 0);
  const SafetyReport report = check_safety(spp, 50, 77);
  EXPECT_TRUE(report.always_converged);
  EXPECT_GE(report.distinct_outcomes, 2u);
}

// Gao-Rexford safety on random Internet-like topologies: any destination,
// any activation order (sampled), always converges - the paper's §II
// premise for why today's Internet needs the GRC.
struct SafetyParam {
  std::uint64_t topo_seed;
  std::uint32_t destination;
};

class GaoRexfordSafety : public ::testing::TestWithParam<SafetyParam> {};

TEST_P(GaoRexfordSafety, RandomTopologyConverges) {
  topology::GeneratorParams params;
  params.num_ases = 30;
  params.tier1_count = 3;
  params.tier2_fraction = 0.3;
  params.seed = GetParam().topo_seed;
  const auto topo = topology::generate_internet(params);
  const AsId dest = GetParam().destination % topo.graph.num_ases();
  const SppInstance spp =
      make_gao_rexford_spp(topo.graph, dest, {.max_path_length = 5});
  const SafetyReport report = check_safety(spp, 10, GetParam().topo_seed);
  EXPECT_TRUE(report.always_converged);
  EXPECT_LE(report.distinct_outcomes, 1u);
  const SpvpResult sync = run_synchronous(spp);
  EXPECT_EQ(sync.outcome, Outcome::kConverged);
}

INSTANTIATE_TEST_SUITE_P(
    TopologiesAndDestinations, GaoRexfordSafety,
    ::testing::Values(SafetyParam{1, 0}, SafetyParam{1, 7}, SafetyParam{1, 23},
                      SafetyParam{2, 3}, SafetyParam{2, 11}, SafetyParam{3, 5},
                      SafetyParam{3, 17}, SafetyParam{4, 2}, SafetyParam{4, 29},
                      SafetyParam{5, 13}));

TEST(Convergence, StableStateIsFixedPointOfSynchronousRun) {
  const auto t = make_fig1();
  const SppInstance spp = make_gao_rexford_spp(t.graph, t.I);
  const SpvpResult r = run_synchronous(spp);
  ASSERT_EQ(r.outcome, Outcome::kConverged);
  // Re-running one more synchronous round changes nothing.
  for (AsId node = 0; node < spp.num_nodes(); ++node) {
    EXPECT_EQ(best_available_path(spp, node, r.assignment),
              r.assignment[node]);
  }
}

}  // namespace
}  // namespace panagree::bgp
