#include "panagree/topology/generator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "panagree/geo/coordinates.hpp"

namespace panagree::topology {

namespace {

/// Rough relative Internet-population weights of the five default regions.
const std::vector<double> kRegionWeights = {0.28, 0.10, 0.27, 0.25, 0.10};

/// Assigns PoP cities and the centroid to an AS.
void assign_pops(Graph& graph, AsId as, const geo::World& world,
                 util::Rng& rng, std::size_t own_region,
                 std::size_t min_cities, std::size_t max_cities,
                 bool global_footprint, double foreign_pop_prob) {
  AsInfo& info = graph.info(as);
  info.region = own_region;
  if (global_footprint) {
    // Tier-1: presence in every region.
    for (std::size_t r = 0; r < world.regions().size(); ++r) {
      const std::size_t n = 1 + rng.uniform_index(2);
      for (std::size_t i = 0; i < n; ++i) {
        info.pops.push_back(world.sample_city(r, rng));
      }
    }
  } else {
    const std::size_t span = max_cities - min_cities + 1;
    const std::size_t n = min_cities + rng.uniform_index(span);
    for (std::size_t i = 0; i < n; ++i) {
      info.pops.push_back(world.sample_city(own_region, rng));
    }
    if (rng.bernoulli(foreign_pop_prob)) {
      const std::size_t other = rng.uniform_index(world.regions().size());
      info.pops.push_back(world.sample_city(other, rng));
    }
  }
  std::sort(info.pops.begin(), info.pops.end());
  info.pops.erase(std::unique(info.pops.begin(), info.pops.end()),
                  info.pops.end());
  std::vector<geo::LatLng> points;
  points.reserve(info.pops.size());
  for (const std::size_t city : info.pops) {
    points.push_back(world.city(city).location);
  }
  info.centroid = geo::spherical_centroid(points);
  info.has_geo = true;
}

/// Preferential provider selection among transit candidates.
class ProviderSelector {
 public:
  ProviderSelector(const Graph& graph, double bias, double region_boost)
      : graph_(graph), bias_(bias), region_boost_(region_boost) {}

  void add_candidate(AsId as) { candidates_.push_back(as); }

  /// Samples a provider for `customer` that is not already linked to it;
  /// returns kInvalidAs if no candidate qualifies.
  AsId sample(AsId customer, std::size_t customer_region, util::Rng& rng) {
    weights_.clear();
    weights_.reserve(candidates_.size());
    for (const AsId cand : candidates_) {
      double w = 0.0;
      if (cand != customer && !graph_.link_between(cand, customer)) {
        w = std::pow(1.0 + static_cast<double>(graph_.customers(cand).size()),
                     bias_);
        if (graph_.info(cand).region == customer_region) {
          w *= region_boost_;
        }
        if (graph_.info(cand).tier == 1) {
          w *= 1.5;  // Tier-1 transit is easy to buy anywhere
        }
      }
      weights_.push_back(w);
    }
    double total = 0.0;
    for (const double w : weights_) {
      total += w;
    }
    if (total <= 0.0) {
      return kInvalidAs;
    }
    return candidates_[rng.weighted_index(weights_)];
  }

 private:
  const Graph& graph_;
  double bias_;
  double region_boost_;
  std::vector<AsId> candidates_;
  std::vector<double> weights_;
};

}  // namespace

std::vector<std::size_t> estimate_link_facilities(const Graph& graph,
                                                  const geo::World& world,
                                                  const Link& link,
                                                  std::size_t max_count) {
  const AsId a = link.a;
  const AsId b = link.b;
  const auto& pa = graph.info(a).pops;
  const auto& pb = graph.info(b).pops;
  std::vector<std::size_t> common;
  std::set_intersection(pa.begin(), pa.end(), pb.begin(), pb.end(),
                        std::back_inserter(common));
  if (common.size() > max_count) {
    common.resize(max_count);
  }
  if (!common.empty()) {
    return common;
  }
  if (pa.empty() || pb.empty()) {
    return {};
  }
  if (link.type == LinkType::kProviderCustomer) {
    // link.a is the provider: the customer hauls traffic to the provider's
    // facilities.
    std::vector<std::size_t> facilities(
        pa.begin(), pa.begin() + std::min(max_count, pa.size()));
    return facilities;
  }
  // Peering without a shared city: the PoP pair with the smallest
  // great-circle separation.
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_a = pa.front();
  std::size_t best_b = pb.front();
  for (const std::size_t ca : pa) {
    for (const std::size_t cb : pb) {
      const double d = geo::great_circle_km(world.city(ca).location,
                                            world.city(cb).location);
      if (d < best) {
        best = d;
        best_a = ca;
        best_b = cb;
      }
    }
  }
  if (best_a == best_b) {
    return {best_a};
  }
  return {best_a, best_b};
}

GeneratedTopology generate_internet(const GeneratorParams& params) {
  util::require(params.tier1_count >= 2,
                "generate_internet: need at least two Tier-1 ASes");
  util::require(params.num_ases >= params.tier1_count + 10,
                "generate_internet: num_ases too small for the tier split");
  util::require(params.tier2_fraction > 0.0 && params.tier2_fraction < 1.0,
                "generate_internet: tier2_fraction must be in (0, 1)");

  util::Rng rng(params.seed);
  GeneratedTopology out;
  out.world = geo::World::make_default(rng, params.cities_per_region);
  Graph& g = out.graph;
  const std::size_t num_regions = out.world.regions().size();

  const auto tier2_count = static_cast<std::size_t>(
      std::round(params.tier2_fraction * static_cast<double>(params.num_ases)));
  util::require(params.tier1_count + tier2_count < params.num_ases,
                "generate_internet: tier2_fraction leaves no Tier-3 ASes");

  ProviderSelector selector(g, params.preferential_bias,
                            params.same_region_provider_boost);

  // --- Tier-1 core: global footprint, full peering mesh. ---
  for (std::size_t i = 0; i < params.tier1_count; ++i) {
    const AsId as = g.add_as("T1-" + std::to_string(i));
    g.info(as).tier = 1;
    assign_pops(g, as, out.world, rng, i % num_regions, 0, 0,
                /*global_footprint=*/true, 0.0);
    out.tier1.push_back(as);
    selector.add_candidate(as);
  }
  for (std::size_t i = 0; i < out.tier1.size(); ++i) {
    for (std::size_t j = i + 1; j < out.tier1.size(); ++j) {
      g.add_peering(out.tier1[i], out.tier1[j]);
    }
  }

  // --- Tier-2 regional transits. ---
  for (std::size_t i = 0; i < tier2_count; ++i) {
    const AsId as = g.add_as("T2-" + std::to_string(i));
    g.info(as).tier = 2;
    const std::size_t region = out.world.sample_region(rng, kRegionWeights);
    assign_pops(g, as, out.world, rng, region, 2, 5,
                /*global_footprint=*/false, /*foreign_pop_prob=*/0.25);
    std::size_t providers = 1;
    while (providers < 3 && rng.bernoulli(params.tier2_extra_provider_prob)) {
      ++providers;
    }
    for (std::size_t p = 0; p < providers; ++p) {
      const AsId provider = selector.sample(as, region, rng);
      if (provider != kInvalidAs) {
        g.add_provider_customer(provider, as);
      }
    }
    out.tier2.push_back(as);
    selector.add_candidate(as);
  }

  // --- Tier-3 stubs / edge networks. ---
  const std::size_t tier3_count =
      params.num_ases - params.tier1_count - tier2_count;
  for (std::size_t i = 0; i < tier3_count; ++i) {
    const AsId as = g.add_as("T3-" + std::to_string(i));
    g.info(as).tier = 3;
    const std::size_t region = out.world.sample_region(rng, kRegionWeights);
    assign_pops(g, as, out.world, rng, region, 1, 2,
                /*global_footprint=*/false, /*foreign_pop_prob=*/0.05);
    std::size_t providers = 1;
    while (providers < 3 && rng.bernoulli(params.tier3_extra_provider_prob)) {
      ++providers;
    }
    for (std::size_t p = 0; p < providers; ++p) {
      const AsId provider = selector.sample(as, region, rng);
      if (provider != kInvalidAs) {
        g.add_provider_customer(provider, as);
      }
    }
    out.tier3.push_back(as);
  }

  // --- IXPs: membership, then probabilistic peering meshes. ---
  std::vector<std::vector<std::size_t>> region_ixps(num_regions);
  for (std::size_t r = 0; r < num_regions; ++r) {
    for (std::size_t k = 0; k < params.ixps_per_region; ++k) {
      region_ixps[r].push_back(out.ixps.size());
      out.ixps.push_back(
          Ixp{out.world.sample_city(r, rng), r, {}});
    }
  }
  const auto join_ixps = [&](AsId as, double join_prob, std::size_t max_join) {
    const std::size_t region = g.info(as).region;
    if (region_ixps[region].empty() || !rng.bernoulli(join_prob)) {
      return;
    }
    const std::size_t want = 1 + rng.uniform_index(max_join);
    const auto picks = rng.sample_without_replacement(
        region_ixps[region].size(), std::min(want, region_ixps[region].size()));
    for (const std::size_t p : picks) {
      out.ixps[region_ixps[region][p]].members.push_back(as);
    }
  };
  for (const AsId as : out.tier2) {
    join_ixps(as, params.tier2_ixp_join_prob, params.ixps_per_region);
  }
  for (const AsId as : out.tier3) {
    join_ixps(as, params.tier3_ixp_join_prob, 1);
  }

  // Open-peering hubs: the highest-degree Tier-2 members per region. Hubs
  // get a global footprint (a PoP in every region and presence at every
  // IXP) and peer openly, like the giant route-server/open-peering networks
  // that dominate the real Internet's p2p link count. Hub footprints are
  // graded by rank (rank 0 = an HE-like giant, later ranks progressively
  // smaller), which reproduces the broad degree diversity of the real
  // peering fabric.
  std::vector<int> hub_rank(g.num_ases(), -1);
  for (std::size_t r = 0; r < num_regions; ++r) {
    std::vector<AsId> regional_t2;
    for (const AsId as : out.tier2) {
      if (g.info(as).region == r) {
        regional_t2.push_back(as);
      }
    }
    std::sort(regional_t2.begin(), regional_t2.end(),
              [&](AsId x, AsId y) { return g.degree(x) > g.degree(y); });
    for (std::size_t h = 0;
         h < std::min(params.open_peering_hubs_per_region, regional_t2.size());
         ++h) {
      const AsId hub = regional_t2[h];
      hub_rank[hub] = static_cast<int>(h);
      out.hubs.push_back(hub);
      // Global footprint: one PoP per region, everywhere.
      AsInfo& info = g.info(hub);
      for (std::size_t pr = 0; pr < num_regions; ++pr) {
        info.pops.push_back(out.world.sample_city(pr, rng));
      }
      std::sort(info.pops.begin(), info.pops.end());
      info.pops.erase(std::unique(info.pops.begin(), info.pops.end()),
                      info.pops.end());
      std::vector<geo::LatLng> points;
      for (const std::size_t city : info.pops) {
        points.push_back(out.world.city(city).location);
      }
      info.centroid = geo::spherical_centroid(points);
      // Present at every IXP worldwide.
      for (Ixp& ixp : out.ixps) {
        if (std::find(ixp.members.begin(), ixp.members.end(), hub) ==
            ixp.members.end()) {
          ixp.members.push_back(hub);
        }
      }
    }
  }

  for (const Ixp& ixp : out.ixps) {
    for (std::size_t i = 0; i < ixp.members.size(); ++i) {
      for (std::size_t j = i + 1; j < ixp.members.size(); ++j) {
        const AsId x = ixp.members[i];
        const AsId y = ixp.members[j];
        if (g.link_between(x, y)) {
          continue;
        }
        double p;
        const int rank_x = hub_rank[x];
        const int rank_y = hub_rank[y];
        if (rank_x >= 0 || rank_y >= 0) {
          // The better-ranked hub drives the peering appetite; remote
          // presence falls off with rank (smaller hubs do less remote
          // peering).
          int rank = rank_x >= 0 ? rank_x : rank_y;
          if (rank_x >= 0 && rank_y >= 0) {
            rank = std::min(rank_x, rank_y);
          }
          const bool home =
              (rank_x >= 0 && g.info(x).region == ixp.region) ||
              (rank_y >= 0 && g.info(y).region == ixp.region);
          const double base =
              home ? params.hub_peer_prob : params.hub_remote_peer_prob;
          p = base / (1.0 + (home ? 0.4 : 1.0) * static_cast<double>(rank));
        } else {
          const int tx = g.info(x).tier;
          const int ty = g.info(y).tier;
          if (tx == 2 && ty == 2) {
            p = params.ixp_peer_prob_tier2;
          } else if (tx == 3 && ty == 3) {
            p = params.ixp_peer_prob_tier3;
          } else {
            p = params.ixp_peer_prob_mixed;
          }
        }
        if (rng.bernoulli(p)) {
          const LinkId id = g.add_peering(x, y);
          // Peering struck at the IXP: that city is the primary facility.
          g.link(id).facilities.push_back(ixp.city);
        }
      }
    }
  }

  // --- Facilities for the remaining links + dedup for IXP links. ---
  for (LinkId id = 0; id < g.num_links(); ++id) {
    Link& link = g.link(id);
    auto extra =
        estimate_link_facilities(g, out.world, link,
                                 params.max_facilities_per_link);
    for (const std::size_t city : extra) {
      if (std::find(link.facilities.begin(), link.facilities.end(), city) ==
          link.facilities.end() &&
          link.facilities.size() < params.max_facilities_per_link) {
        link.facilities.push_back(city);
      }
    }
  }

  return out;
}

GeneratedTopology embed_relationship_graph(Graph graph, std::uint64_t seed,
                                           std::size_t cities_per_region) {
  util::require(graph.num_ases() > 0,
                "embed_relationship_graph: graph has no ASes");
  util::Rng rng(seed);
  GeneratedTopology out;
  out.world = geo::World::make_default(rng, cities_per_region);
  out.graph = std::move(graph);
  Graph& g = out.graph;
  constexpr std::size_t kMaxFacilities = 3;

  for (AsId as = 0; as < g.num_ases(); ++as) {
    const bool has_providers = !g.providers(as).empty();
    const bool has_customers = !g.customers(as).empty();
    const bool has_peers = !g.peers(as).empty();
    // Transit-free with customers: Tier-1 core. Transit-free peer-only
    // (real files contain such content/CDN networks) and any other
    // customer-owning AS: regional-transit footprint. The rest are stubs.
    int tier = 3;
    if (!has_providers && has_customers) {
      tier = 1;
    } else if (has_customers || (!has_providers && has_peers)) {
      tier = 2;
    }
    g.info(as).tier = tier;
    (tier == 1   ? out.tier1
     : tier == 2 ? out.tier2
                 : out.tier3)
        .push_back(as);

    const std::size_t region = out.world.sample_region(rng, kRegionWeights);
    assign_pops(g, as, out.world, rng, region,
                /*min_cities=*/tier == 3 ? 1 : 2,
                /*max_cities=*/tier == 3 ? 2 : 5,
                /*global_footprint=*/tier == 1,
                /*foreign_pop_prob=*/tier == 3 ? 0.05 : 0.25);
  }

  for (LinkId id = 0; id < g.num_links(); ++id) {
    Link& link = g.link(id);
    link.facilities =
        estimate_link_facilities(g, out.world, link, kMaxFacilities);
  }
  return out;
}

}  // namespace panagree::topology
