#include "panagree/core/agreements/enumeration.hpp"

#include <algorithm>

#include "panagree/core/agreements/mutuality.hpp"

namespace panagree::agreements {

std::vector<Agreement> enumerate_all_mas(const Graph& graph) {
  std::vector<Agreement> out;
  for (const topology::Link& link : graph.links()) {
    if (link.type != topology::LinkType::kPeering) {
      continue;
    }
    Agreement a = make_mutuality_agreement(graph, link.a, link.b);
    if (!a.grant_x.empty() || !a.grant_y.empty()) {
      out.push_back(std::move(a));
    }
  }
  return out;
}

std::vector<RankedMa> rank_mas_for(const Graph& graph, AsId as) {
  util::require(as < graph.num_ases(), "rank_mas_for: AS out of range");
  std::vector<RankedMa> ranked;
  ranked.reserve(graph.peers(as).size());
  for (const AsId peer : graph.peers(as)) {
    ranked.push_back(RankedMa{peer, ma_gain_for(graph, as, peer)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedMa& a, const RankedMa& b) {
              if (a.new_destinations != b.new_destinations) {
                return a.new_destinations > b.new_destinations;
              }
              return a.peer < b.peer;
            });
  return ranked;
}

}  // namespace panagree::agreements
