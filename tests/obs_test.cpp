// Property tests of the obs metrics primitives, the exposition formats,
// and the trace recorder.
//
// The concurrency properties here are the layer's core contracts:
//
//   * shard-sum identity - a Counter's value() after all writers join is
//     exactly the number of add()s, regardless of how threads were
//     assigned to shards;
//   * histogram-total conservation - every record() lands in exactly one
//     bucket, so count() == records and sum() == sum of recorded values.
//
// Both are exercised at 1, 2, and 8 threads (8 exceeds the histogram's
// shard fan-out on purpose: slot collisions must not lose updates).
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "panagree/obs/build_info.hpp"
#include "panagree/obs/export.hpp"
#include "panagree/obs/metrics.hpp"
#include "panagree/obs/slowlog.hpp"
#include "panagree/obs/trace.hpp"
#include "panagree/util/error.hpp"
#include "panagree/util/json.hpp"

namespace panagree::obs {
namespace {

TEST(ObsHistogramBucket, Log2Rule) {
  EXPECT_EQ(histogram_bucket(0), 0U);
  EXPECT_EQ(histogram_bucket(1), 1U);
  EXPECT_EQ(histogram_bucket(2), 2U);
  EXPECT_EQ(histogram_bucket(3), 2U);
  EXPECT_EQ(histogram_bucket(4), 3U);
  EXPECT_EQ(histogram_bucket(1023), 10U);
  EXPECT_EQ(histogram_bucket(1024), 11U);
  EXPECT_EQ(histogram_bucket(~std::uint64_t{0}), kHistogramBuckets - 1);
}

TEST(ObsHistogramBucket, BoundsBracketTheirBucket) {
  // Every bucket's inclusive upper bound maps back into that bucket, and
  // bound+1 maps into the next (except the saturating overflow bucket).
  for (std::size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
    const std::uint64_t bound = histogram_bucket_bound(b);
    EXPECT_EQ(histogram_bucket(bound), b) << "bucket " << b;
    EXPECT_EQ(histogram_bucket(bound + 1), b + 1) << "bucket " << b;
  }
  EXPECT_EQ(histogram_bucket_bound(kHistogramBuckets - 1),
            ~std::uint64_t{0});
}

/// Fans `threads` workers over `per_thread` calls of `fn(worker, i)`.
void run_workers(std::size_t threads, std::size_t per_thread,
                 void (*fn)(std::size_t, std::size_t, void*), void* ctx) {
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    pool.emplace_back([=] {
      for (std::size_t i = 0; i < per_thread; ++i) {
        fn(w, i, ctx);
      }
    });
  }
  for (std::thread& worker : pool) {
    worker.join();
  }
}

class ObsConcurrency : public testing::TestWithParam<std::size_t> {};

TEST_P(ObsConcurrency, CounterShardSumIdentity) {
  const std::size_t threads = GetParam();
  constexpr std::size_t kPerThread = 20000;
  Counter counter;
  run_workers(
      threads, kPerThread,
      [](std::size_t, std::size_t, void* ctx) {
        static_cast<Counter*>(ctx)->increment();
      },
      &counter);
  EXPECT_EQ(counter.value(), threads * kPerThread);
}

TEST_P(ObsConcurrency, HistogramTotalConservation) {
  const std::size_t threads = GetParam();
  constexpr std::size_t kPerThread = 20000;
  Histogram histogram;
  run_workers(
      threads, kPerThread,
      [](std::size_t worker, std::size_t i, void* ctx) {
        // Values spread over many buckets, deterministic per (worker, i).
        static_cast<Histogram*>(ctx)->record((worker * kPerThread + i) % 4097);
      },
      &histogram);
  EXPECT_EQ(histogram.count(), threads * kPerThread);
  std::uint64_t expected_sum = 0;
  for (std::size_t w = 0; w < threads; ++w) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      expected_sum += (w * kPerThread + i) % 4097;
    }
  }
  EXPECT_EQ(histogram.sum(), expected_sum);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    bucket_total += histogram.bucket_count(b);
  }
  EXPECT_EQ(bucket_total, histogram.count());
}

INSTANTIATE_TEST_SUITE_P(Threads, ObsConcurrency,
                         testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}));

TEST(ObsGauge, SetAddUpdateMax) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0);
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);
  gauge.add(10);
  EXPECT_EQ(gauge.value(), 3);
  gauge.update_max(9);
  EXPECT_EQ(gauge.value(), 9);
  gauge.update_max(2);  // never lowers
  EXPECT_EQ(gauge.value(), 9);
}

TEST(ObsRegistry, InterningIsUniquePerName) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("obs_test.interned");
  Counter& b = registry.counter("obs_test.interned");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = registry.gauge("obs_test.gauge");
  Gauge& g2 = registry.gauge("obs_test.gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.histogram("obs_test.hist");
  Histogram& h2 = registry.histogram("obs_test.hist");
  EXPECT_EQ(&h1, &h2);
  // Distinct names get distinct storage.
  EXPECT_NE(&a, &registry.counter("obs_test.interned2"));
}

TEST(ObsRegistry, KindMismatchThrows) {
  Registry& registry = Registry::global();
  (void)registry.counter("obs_test.kind_probe");
  EXPECT_THROW((void)registry.gauge("obs_test.kind_probe"),
               util::PreconditionError);
  EXPECT_THROW((void)registry.histogram("obs_test.kind_probe"),
               util::PreconditionError);
}

TEST(ObsSnapshot, ReflectsRegisteredMetrics) {
  Registry& registry = Registry::global();
  registry.counter("obs_test.snap_counter").add(5);
  registry.gauge("obs_test.snap_gauge").set(-3);
  registry.histogram("obs_test.snap_hist").record(100);

  const MetricsSnapshot snap = snapshot_metrics();
  bool saw_counter = false;
  bool saw_gauge = false;
  bool saw_hist = false;
  for (const CounterSample& c : snap.counters) {
    if (c.name == "obs_test.snap_counter") {
      saw_counter = true;
      EXPECT_GE(c.value, 5U);
    }
  }
  for (const GaugeSample& g : snap.gauges) {
    if (g.name == "obs_test.snap_gauge") {
      saw_gauge = true;
      EXPECT_EQ(g.value, -3);
    }
  }
  for (const HistogramSample& h : snap.histograms) {
    if (h.name == "obs_test.snap_hist") {
      saw_hist = true;
      EXPECT_GE(h.count, 1U);
      EXPECT_GE(h.sum, 100U);
      std::uint64_t from_buckets = 0;
      for (const auto& [bucket, count] : h.buckets) {
        EXPECT_LT(bucket, kHistogramBuckets);
        from_buckets += count;
      }
      EXPECT_EQ(from_buckets, h.count);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);

  // Sections are sorted ascending by name (the byte-stability anchor).
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
}

TEST(ObsPercentile, NearestRankOverBuckets) {
  HistogramSample h;
  h.name = "p";
  EXPECT_EQ(histogram_percentile(h, 50.0), 0U);  // empty -> 0

  // 10 samples in bucket 1 (value 1), 10 in bucket 4 ([8,15]).
  h.count = 20;
  h.sum = 10 * 1 + 10 * 8;
  h.buckets = {{1, 10}, {4, 10}};
  EXPECT_EQ(histogram_percentile(h, 50.0), histogram_bucket_bound(1));
  EXPECT_EQ(histogram_percentile(h, 51.0), histogram_bucket_bound(4));
  EXPECT_EQ(histogram_percentile(h, 100.0), histogram_bucket_bound(4));
  EXPECT_EQ(histogram_percentile(h, 0.0), histogram_bucket_bound(1));
}

TEST(ObsPrometheus, TextExposition) {
  MetricsSnapshot snap;
  snap.counters.push_back({"serve.requests.paths", 42});
  snap.gauges.push_back({"server.queue_depth", -1});
  HistogramSample h;
  h.name = "serve.latency_ns.paths";
  h.count = 3;
  h.sum = 70;
  h.buckets = {{5, 2}, {6, 1}};
  snap.histograms.push_back(h);

  const std::string text = to_prometheus_text(snap);
  EXPECT_NE(text.find("# TYPE panagree_serve_requests_paths counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("panagree_serve_requests_paths_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE panagree_server_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("panagree_server_queue_depth -1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE panagree_serve_latency_ns_paths histogram\n"),
            std::string::npos);
  // Cumulative buckets with a mandatory +Inf series equal to _count.
  EXPECT_NE(text.find("_bucket{le=\"31\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"63\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("panagree_serve_latency_ns_paths_sum 70\n"),
            std::string::npos);
  EXPECT_NE(text.find("panagree_serve_latency_ns_paths_count 3\n"),
            std::string::npos);
  // Every non-comment line is `name{labels} value` with a sane name.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      continue;
    }
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_TRUE(line.rfind("panagree_", 0) == 0) << line;
  }
}

TEST(ObsBuildInfo, FieldsPopulated) {
  const BuildInfo& info = build_info();
  EXPECT_FALSE(info.git_describe.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_EQ(info.obs, enabled() ? "on" : "off");
  const std::string line = build_info_line();
  EXPECT_NE(line.find("build="), std::string::npos);
  EXPECT_NE(line.find("compiler="), std::string::npos);
  EXPECT_NE(line.find("obs=on"), std::string::npos);
}

TEST(ObsTrace, RecorderEmitsValidNestedJson) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "panagree_obs_trace_test.json";
  std::filesystem::remove(path);
  trace_init(path.native());
  ASSERT_TRUE(trace_enabled());

  const std::size_t before = trace_event_count();
  std::uint64_t outer_id = 0;
  {
    const TraceSpan outer("obs_test.outer");
    outer_id = outer.id();
    EXPECT_NE(outer_id, 0U);
    {
      const TraceSpan inner("obs_test.inner", outer);
      EXPECT_NE(inner.id(), 0U);
      EXPECT_NE(inner.id(), outer_id);
    }
  }
  // Retroactive recording: a span named after the fact, tied to a wire
  // request id - the shape finish_request_observation emits.
  SpanArgs recorded_args;
  recorded_args.id = trace_next_span_id();
  recorded_args.parent = outer_id;
  recorded_args.wire_id = 7;
  recorded_args.has_wire_id = true;
  trace_record_span("obs_test.recorded", trace_now_ns(), trace_now_ns(),
                    recorded_args);
  EXPECT_EQ(trace_event_count(), before + 3);
  trace_flush();

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const util::json::Value doc = util::json::parse(buffer.str());
  const util::json::Object& root =
      *std::get<std::unique_ptr<util::json::Object>>(doc.data);
  const auto events_it = root.find("traceEvents");
  ASSERT_NE(events_it, root.end());
  const util::json::Array& events =
      *std::get<std::unique_ptr<util::json::Array>>(events_it->second.data);
  ASSERT_GE(events.size(), 2U);

  // Find our two spans and check nesting: inner closed first (spans are
  // recorded at destruction, so inner precedes outer in the buffer) and
  // the outer interval contains the inner one.
  double inner_ts = -1;
  double inner_dur = -1;
  double outer_ts = -1;
  double outer_dur = -1;
  std::uint64_t inner_parent = 0;
  std::uint64_t outer_json_id = 0;
  bool saw_recorded = false;
  const auto num = [](const util::json::Value& v) {
    if (const auto* u = std::get_if<std::uint64_t>(&v.data)) {
      return static_cast<double>(*u);
    }
    return std::get<double>(v.data);
  };
  for (const util::json::Value& event : events) {
    const util::json::Object& fields =
        *std::get<std::unique_ptr<util::json::Object>>(event.data);
    const std::string& name =
        std::get<std::string>(fields.at("name").data);
    EXPECT_EQ(std::get<std::string>(fields.at("ph").data), "X");
    // Every event carries the span-tree args: its own id and the parent
    // (0 for roots).
    const auto args_it = fields.find("args");
    ASSERT_NE(args_it, fields.end()) << name;
    const util::json::Object& args =
        *std::get<std::unique_ptr<util::json::Object>>(args_it->second.data);
    ASSERT_NE(args.find("id"), args.end()) << name;
    ASSERT_NE(args.find("parent"), args.end()) << name;
    if (name == "obs_test.inner") {
      inner_ts = num(fields.at("ts"));
      inner_dur = num(fields.at("dur"));
      inner_parent =
          static_cast<std::uint64_t>(num(args.at("parent")));
    } else if (name == "obs_test.outer") {
      outer_ts = num(fields.at("ts"));
      outer_dur = num(fields.at("dur"));
      outer_json_id = static_cast<std::uint64_t>(num(args.at("id")));
      EXPECT_EQ(num(args.at("parent")), 0.0);
      EXPECT_EQ(args.find("wire_id"), args.end());
    } else if (name == "obs_test.recorded") {
      saw_recorded = true;
      EXPECT_EQ(num(args.at("parent")), static_cast<double>(outer_id));
      ASSERT_NE(args.find("wire_id"), args.end());
      EXPECT_EQ(num(args.at("wire_id")), 7.0);
    }
  }
  ASSERT_GE(inner_ts, 0.0);
  ASSERT_GE(outer_ts, 0.0);
  EXPECT_LE(outer_ts, inner_ts);
  EXPECT_GE(outer_ts + outer_dur, inner_ts + inner_dur);
  EXPECT_EQ(outer_json_id, outer_id);
  EXPECT_EQ(inner_parent, outer_id);
  EXPECT_TRUE(saw_recorded);
  std::filesystem::remove(path);
}

// ---- SlowQueryLog: the lock-free slow-query ring ---------------------

/// A record whose nine non-wall fields are all derived from `wall` by
/// fixed offsets - any torn slot (fields from two different writes)
/// breaks at least one of the equalities checked by `is_consistent`.
[[nodiscard]] SlowQueryRecord patterned_record(std::uint64_t wall) {
  SlowQueryRecord rec;
  rec.wall_ns = wall;
  rec.wire_id = wall + 1;
  rec.kind = wall % 5;
  rec.source = wall + 2;
  rec.delta_links = wall + 3;
  rec.queue_ns = wall + 4;
  rec.parse_ns = wall + 5;
  rec.engine_ns = wall + 6;
  rec.serialize_ns = wall + 7;
  rec.send_ns = wall + 8;
  return rec;
}

[[nodiscard]] bool is_consistent(const SlowQueryRecord& rec) {
  return rec == patterned_record(rec.wall_ns);
}

TEST(ObsSlowLog, CapacityRoundsToPowerOfTwo) {
  EXPECT_EQ(SlowQueryLog(5).capacity(), 8U);
  EXPECT_EQ(SlowQueryLog(8).capacity(), 8U);
  EXPECT_EQ(SlowQueryLog(1).capacity(), 1U);
  EXPECT_EQ(SlowQueryLog(0).capacity(), 1U);
  EXPECT_EQ(SlowQueryLog().capacity(), kDefaultSlowLogSlots);
}

TEST(ObsSlowLog, ThresholdGatesCapture) {
  SlowQueryLog log(8);
  log.set_threshold_ns(1000);
  EXPECT_EQ(log.threshold_ns(), 1000U);
  log.record(patterned_record(999));
  EXPECT_TRUE(log.snapshot().empty());
  log.record(patterned_record(1000));
  ASSERT_EQ(log.snapshot().size(), 1U);
  EXPECT_EQ(log.snapshot()[0].wall_ns, 1000U);
  log.clear();
  EXPECT_TRUE(log.snapshot().empty());
  // Threshold survives clear().
  log.record(patterned_record(500));
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(ObsSlowLog, EvictionKeepsSlowestN) {
  SlowQueryLog log(8);
  log.set_threshold_ns(0);
  // 100 distinct wall times in an adversarial order (ascending, so every
  // later record must evict the current minimum).
  for (std::uint64_t wall = 1; wall <= 100; ++wall) {
    log.record(patterned_record(wall));
  }
  const std::vector<SlowQueryRecord> snap = log.snapshot();
  ASSERT_EQ(snap.size(), 8U);
  for (std::size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].wall_ns, 100U - i) << i;  // slowest first
    EXPECT_TRUE(is_consistent(snap[i])) << i;
  }
}

TEST(ObsSlowLog, SnapshotSortsSlowestFirstWithStableTies) {
  SlowQueryRecord a = patterned_record(10);
  SlowQueryRecord b = patterned_record(10);
  b.wire_id = 5;  // same wall, lower wire_id -> before by the tiebreak
  EXPECT_TRUE(slow_record_before(b, a));
  EXPECT_FALSE(slow_record_before(a, b));
  EXPECT_FALSE(slow_record_before(a, a));
  EXPECT_TRUE(slow_record_before(patterned_record(11), a));
}

class ObsSlowLogConcurrency : public testing::TestWithParam<std::size_t> {};

TEST_P(ObsSlowLogConcurrency, ConcurrentWritersNeverTearASlot) {
  const std::size_t threads = GetParam();
  constexpr std::size_t kPerThread = 5000;
  SlowQueryLog log(16);
  log.set_threshold_ns(0);

  // A reader snapshots continuously while the writers hammer the ring;
  // every record it ever observes must be internally consistent (the
  // seqlock contract), and so must the final snapshot.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> reader_checked{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const SlowQueryRecord& rec : log.snapshot()) {
        EXPECT_TRUE(is_consistent(rec)) << "torn record, wall="
                                        << rec.wall_ns;
        reader_checked.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    writers.emplace_back([&log, w] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        // Distinct wall per (worker, i) so torn slots are detectable.
        log.record(patterned_record(w * kPerThread + i + 1));
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  const std::vector<SlowQueryRecord> snap = log.snapshot();
  EXPECT_FALSE(snap.empty());
  EXPECT_LE(snap.size(), log.capacity());
  for (const SlowQueryRecord& rec : snap) {
    EXPECT_TRUE(is_consistent(rec));
    EXPECT_LE(rec.wall_ns, threads * kPerThread);
  }
  // Single writer has no contention: the ring must hold exactly the
  // slowest capacity() records.
  if (threads == 1) {
    ASSERT_EQ(snap.size(), log.capacity());
    for (std::size_t i = 0; i < snap.size(); ++i) {
      EXPECT_EQ(snap[i].wall_ns, kPerThread - i);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ObsSlowLogConcurrency,
                         testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}));

TEST(ObsProcessGauges, RefreshPopulatesUptimeAndPeakRss) {
  refresh_process_gauges();
  const MetricsSnapshot snap = snapshot_metrics();
  bool saw_uptime = false;
  bool saw_rss = false;
  for (const GaugeSample& gauge : snap.gauges) {
    if (gauge.name == "process.uptime_s") {
      saw_uptime = true;
      EXPECT_GE(gauge.value, 0);
    } else if (gauge.name == "process.peak_rss_kb") {
      saw_rss = true;
      EXPECT_GT(gauge.value, 0);  // any live process has a peak RSS
    }
  }
  EXPECT_TRUE(saw_uptime);
  EXPECT_TRUE(saw_rss);
}

}  // namespace
}  // namespace panagree::obs
