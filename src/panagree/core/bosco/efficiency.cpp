#include "panagree/core/bosco/efficiency.hpp"

#include <algorithm>
#include <cmath>

#include "panagree/util/error.hpp"

namespace panagree::bosco {

double expected_nash_product(const ChoiceSet& choices_x,
                             const ChoiceSet& choices_y, const Strategy& sx,
                             const Strategy& sy,
                             const UtilityDistribution& dist_x,
                             const UtilityDistribution& dist_y) {
  util::require(sx.num_choices() == choices_x.size() &&
                    sy.num_choices() == choices_y.size(),
                "expected_nash_product: strategy/choice-set size mismatch");
  const auto& tx = sx.starts();
  const auto& ty = sy.starts();

  // Per-cell masses and first moments along each axis.
  std::vector<double> mass_x(choices_x.size()), mom_x(choices_x.size());
  std::vector<double> mass_y(choices_y.size()), mom_y(choices_y.size());
  for (std::size_t i = 0; i < choices_x.size(); ++i) {
    const double lo = std::max(tx[i], dist_x.support_lo());
    const double hi = std::min(tx[i + 1], dist_x.support_hi());
    mass_x[i] = hi > lo ? dist_x.mass_in(lo, hi) : 0.0;
    mom_x[i] = hi > lo ? dist_x.first_moment_in(lo, hi) : 0.0;
  }
  for (std::size_t j = 0; j < choices_y.size(); ++j) {
    const double lo = std::max(ty[j], dist_y.support_lo());
    const double hi = std::min(ty[j + 1], dist_y.support_hi());
    mass_y[j] = hi > lo ? dist_y.mass_in(lo, hi) : 0.0;
    mom_y[j] = hi > lo ? dist_y.first_moment_in(lo, hi) : 0.0;
  }

  double total = 0.0;
  for (std::size_t i = 0; i < choices_x.size(); ++i) {
    const double vx = choices_x.value(i);
    if (std::isinf(vx) || mass_x[i] == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < choices_y.size(); ++j) {
      const double vy = choices_y.value(j);
      if (std::isinf(vy) || mass_y[j] == 0.0 || vx + vy < 0.0) {
        continue;  // negotiation cancelled in this cell: N = 0
      }
      const double pi = (vx - vy) / 2.0;  // Pi_{X->Y}
      // integral over the cell of (u_X - pi)(u_Y + pi) dU = product of the
      // per-axis integrals (product-form joint).
      const double ix = mom_x[i] - pi * mass_x[i];
      const double iy = mom_y[j] + pi * mass_y[j];
      total += ix * iy;
    }
  }
  return total;
}

double expected_truthful_nash_product(const UtilityDistribution& dist_x,
                                      const UtilityDistribution& dist_y,
                                      std::size_t grid) {
  util::require(grid >= 8, "expected_truthful_nash_product: grid too small");
  const double ax = dist_x.support_lo();
  const double bx = dist_x.support_hi();
  const double ay = dist_y.support_lo();
  const double by = dist_y.support_hi();
  const double hx = (bx - ax) / static_cast<double>(grid);
  const double hy = (by - ay) / static_cast<double>(grid);
  // Midpoint rule; the integrand vanishes quadratically at the region
  // boundary u_X + u_Y = 0, so midpoint converges at O(h^2) without
  // boundary pathologies.
  double total = 0.0;
  for (std::size_t i = 0; i < grid; ++i) {
    const double x = ax + (static_cast<double>(i) + 0.5) * hx;
    const double px = dist_x.pdf(x);
    if (px == 0.0) {
      continue;
    }
    for (std::size_t j = 0; j < grid; ++j) {
      const double y = ay + (static_cast<double>(j) + 0.5) * hy;
      const double s = x + y;
      if (s < 0.0) {
        continue;
      }
      total += px * dist_y.pdf(y) * (s / 2.0) * (s / 2.0);
    }
  }
  return total * hx * hy;
}

double price_of_dishonesty(double expected_equilibrium,
                           double expected_truthful) {
  util::require(expected_truthful > 0.0,
                "price_of_dishonesty: truthful expectation must be positive");
  return 1.0 - expected_equilibrium / expected_truthful;
}

}  // namespace panagree::bosco
