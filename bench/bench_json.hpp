// Machine-readable bench results: each bench appends named wall-clock (and
// free-form numeric) measurements and writes one BENCH_<bench>.json file,
// so the perf trajectory of the repo is diffable across PRs without
// scraping stdout tables. No third-party JSON dependency - the schema is
// flat: {"bench", "topology": {"ases", "links"}, "results": [{"name",
// "wall_ms", ...extras}]}.
//
// Output lands in $PANAGREE_BENCH_JSON_DIR (default: the working
// directory). perf_micro uses google-benchmark's own JSON reporter
// instead; this helper serves the plain-main benches.
#pragma once

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "panagree/topology/graph.hpp"

namespace panagree::benchjson {

class ResultWriter {
 public:
  ResultWriter(std::string bench_name, const topology::Graph& graph)
      : bench_name_(std::move(bench_name)),
        num_ases_(graph.num_ases()),
        num_links_(graph.num_links()) {}

  /// One measurement row: a name, its wall-clock milliseconds, and
  /// arbitrary extra numeric fields (e.g. scenario counts, speedups).
  void add(const std::string& name, double wall_ms,
           std::vector<std::pair<std::string, double>> extras = {}) {
    rows_.push_back({name, wall_ms, std::move(extras)});
  }

  /// Writes BENCH_<bench>.json; failures warn on stderr but never fail the
  /// bench itself.
  void write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("PANAGREE_BENCH_JSON_DIR")) {
      if (*env != '\0') {
        dir = env;
      }
    }
    const std::string path = dir + "/BENCH_" + bench_name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "[bench] cannot write " << path << "\n";
      return;
    }
    out << "{\n  \"bench\": \"" << escaped(bench_name_) << "\",\n"
        << "  \"topology\": {\"ases\": " << num_ases_
        << ", \"links\": " << num_links_ << "},\n"
        << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << "    {\"name\": \"" << escaped(row.name)
          << "\", \"wall_ms\": " << row.wall_ms;
      for (const auto& [key, value] : row.extras) {
        out << ", \"" << escaped(key) << "\": " << value;
      }
      out << (i + 1 < rows_.size() ? "},\n" : "}\n");
    }
    out << "  ]\n}\n";
    std::cerr << "[bench] wrote " << path << "\n";
  }

 private:
  struct Row {
    std::string name;
    double wall_ms = 0.0;
    std::vector<std::pair<std::string, double>> extras;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out.push_back('\\');
      }
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::size_t num_ases_;
  std::size_t num_links_;
  std::vector<Row> rows_;
};

/// Wall-clock stopwatch for the result rows.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace panagree::benchjson
