#include "panagree/core/agreements/extension.hpp"

#include <algorithm>

namespace panagree::agreements {

AgreementId AgreementRegistry::register_agreement(
    Agreement agreement, std::vector<FlowAllowance> allowances) {
  for (const FlowAllowance& allowance : allowances) {
    util::require(allowance.total >= 0.0,
                  "register_agreement: allowance must be non-negative");
    util::require(allowance.segment.size() >= 2,
                  "register_agreement: allowance segment too short");
    util::require(allowance.used == 0.0,
                  "register_agreement: allowance must start unused");
  }
  entries_.push_back(Entry{std::move(agreement), std::move(allowances)});
  return entries_.size() - 1;
}

const Agreement& AgreementRegistry::agreement(AgreementId id) const {
  util::require(id < entries_.size(), "AgreementRegistry: bad id");
  return entries_[id].agreement;
}

const std::vector<FlowAllowance>& AgreementRegistry::allowances(
    AgreementId id) const {
  util::require(id < entries_.size(), "AgreementRegistry: bad id");
  return entries_[id].allowances;
}

std::optional<double> AgreementRegistry::remaining(
    AgreementId id, const std::vector<AsId>& segment) const {
  util::require(id < entries_.size(), "AgreementRegistry: bad id");
  for (const FlowAllowance& allowance : entries_[id].allowances) {
    if (allowance.segment == segment) {
      return allowance.remaining();
    }
  }
  return std::nullopt;
}

bool AgreementRegistry::try_register_extension(const Graph& graph,
                                               Extension extension) {
  util::require(extension.parent < entries_.size(),
                "try_register_extension: bad parent id");
  util::require(extension.volume >= 0.0,
                "try_register_extension: volume must be non-negative");
  Entry& parent = entries_[extension.parent];
  util::require(extension.party == parent.agreement.x() ||
                    extension.party == parent.agreement.y(),
                "try_register_extension: party not part of the parent");
  // The extended segment must be beneficiary . parent-segment.
  if (extension.extended_segment.size() < 3 ||
      extension.extended_segment.front() != extension.beneficiary ||
      extension.extended_segment[1] != extension.party) {
    return false;
  }
  if (!graph.link_between(extension.beneficiary, extension.party)) {
    return false;
  }
  const std::vector<AsId> parent_segment(
      extension.extended_segment.begin() + 1,
      extension.extended_segment.end());
  for (FlowAllowance& allowance : parent.allowances) {
    if (allowance.segment == parent_segment) {
      if (allowance.remaining() + 1e-12 < extension.volume) {
        return false;  // would violate the parent's conditions (§III-B3)
      }
      allowance.used += extension.volume;
      extensions_.push_back(std::move(extension));
      return true;
    }
  }
  return false;
}

}  // namespace panagree::agreements
