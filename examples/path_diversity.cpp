// Path-diversity exploration (§VI) on a generated Internet-like topology:
// pick an AS, rank its candidate mutuality-based agreements by gain, and
// show how its reachable path set grows - including the latency/bandwidth
// quality of the new paths.
#include <algorithm>
#include <iostream>

#include "panagree/core/agreements/enumeration.hpp"
#include "panagree/diversity/bandwidth.hpp"
#include "panagree/diversity/geodistance.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/topology/capacity.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/table.hpp"

using namespace panagree;

int main() {
  topology::GeneratorParams params;
  params.num_ases = 3000;
  params.tier1_count = 8;
  params.seed = 11;
  auto topo = topology::generate_internet(params);
  topology::assign_degree_gravity_capacities(topo.graph);
  const topology::Graph& g = topo.graph;
  std::cout << "Generated " << g.num_ases() << " ASes / " << g.num_links()
            << " links (" << topo.ixps.size() << " IXPs, "
            << topo.hubs.size() << " open-peering hubs)\n\n";

  // Pick a mid-size Tier-3 AS with a few peers.
  topology::AsId subject = topology::kInvalidAs;
  for (const auto as : topo.tier3) {
    if (g.peers(as).size() >= 4) {
      subject = as;
      break;
    }
  }
  if (subject == topology::kInvalidAs) {
    subject = topo.tier3.front();
  }
  std::cout << "Subject AS: " << g.info(subject).name << " ("
            << g.providers(subject).size() << " providers, "
            << g.peers(subject).size() << " peers)\n\n";

  // Rank its candidate MAs (§VI "Top n" scenarios).
  const auto ranked = agreements::rank_mas_for(g, subject);
  util::Table ma_table({"rank", "peer", "new destinations"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
    ma_table.add_row({std::to_string(i + 1), g.info(ranked[i].peer).name,
                      std::to_string(ranked[i].new_destinations)});
  }
  std::cout << "Top candidate mutuality-based agreements:\n";
  ma_table.print(std::cout);

  // Quantify the diversity gain.
  const diversity::Length3Analyzer analyzer(g);
  const auto counts = analyzer.count(subject, {1, 5});
  std::cout << "\nLength-3 paths from " << g.info(subject).name << ":\n"
            << "  GRC only:            " << counts.grc_paths << " paths to "
            << counts.grc_dests << " destinations\n"
            << "  + top-1 MA:          "
            << counts.grc_paths + counts.ma_top_paths[0] << " paths (+"
            << counts.ma_top_dests[0] << " destinations)\n"
            << "  + top-5 MAs:         "
            << counts.grc_paths + counts.ma_top_paths[1] << " paths (+"
            << counts.ma_top_dests[1] << " destinations)\n"
            << "  all own MAs (MA*):   "
            << counts.grc_paths + counts.ma_direct_paths << " paths (+"
            << counts.ma_direct_dests << " destinations)\n"
            << "  all MAs (MA):        "
            << counts.grc_paths + counts.ma_all_paths << " paths (+"
            << counts.ma_all_dests << " destinations)\n";

  // Show concrete quality improvements on a handful of new paths.
  const diversity::GeodistanceModel geo_model(g, topo.world);
  const auto grc = analyzer.grc_paths(subject);
  const auto ma = analyzer.ma_direct_paths(subject);
  util::Table path_table({"new MA path", "geodistance km", "bandwidth",
                          "best GRC km to same dst", "best GRC bandwidth"});
  std::size_t shown = 0;
  for (const auto& p : ma) {
    double best_grc_km = -1.0;
    double best_grc_bw = 0.0;
    for (const auto& q : grc) {
      if (q.dst != p.dst) {
        continue;
      }
      const double km = geo_model.path_geodistance_km(q.src, q.mid, q.dst);
      if (best_grc_km < 0.0 || km < best_grc_km) {
        best_grc_km = km;
      }
      best_grc_bw = std::max(
          best_grc_bw, diversity::length3_bandwidth(g, q.src, q.mid, q.dst));
    }
    if (best_grc_km < 0.0) {
      continue;  // destination not GRC-reachable at length 3
    }
    const double km = geo_model.path_geodistance_km(p.src, p.mid, p.dst);
    const double bw = diversity::length3_bandwidth(g, p.src, p.mid, p.dst);
    if (km < best_grc_km || bw > best_grc_bw) {
      path_table.add_row({g.info(p.src).name + "-" + g.info(p.mid).name +
                              "-" + g.info(p.dst).name,
                          util::format_double(km, 0),
                          util::format_double(bw, 0),
                          util::format_double(best_grc_km, 0),
                          util::format_double(best_grc_bw, 0)});
      if (++shown == 8) {
        break;
      }
    }
  }
  std::cout << "\nSample MA paths that beat every GRC path to the same "
               "destination:\n";
  path_table.print(std::cout);
  return 0;
}
