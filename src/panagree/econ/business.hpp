// AS business calculation (§III-A, Eq. 1).
//
// TrafficAllocation records a traffic distribution: per-neighbor flows f_XY,
// path-segment flows f_XYZ (direction-independent), per-AS through-flow f_X,
// and per-AS end-host ("virtual stub" Gamma_X) flows. Economy attaches
// pricing functions to provider->customer links, end-host pricing and
// internal-cost functions to ASes, and evaluates
//
//   r_X(f_X) = sum_{Y in gamma(X)} p_XY(f_XY) + p_{X Gamma_X}(f_{X Gamma_X})
//   c_X(f_X) = i_X(f_X) + sum_{Y in pi(X)} p_YX(f_XY)
//   U_X(f_X) = r_X(f_X) - c_X(f_X)
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "panagree/econ/cost.hpp"
#include "panagree/econ/pricing.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::econ {

using topology::AsId;
using topology::Graph;

/// A traffic distribution over the AS graph.
///
/// Flows are added path-by-path: add_path_flow({X1,...,Xk}, v) accounts
/// volume v on every traversed link (f_{Xi,Xi+1}), every 3-AS segment
/// (f_{Xi,Xi+1,Xi+2}), the through-flow of every on-path AS, and the virtual
/// stub flow of the two path endpoints (the traffic enters/leaves via their
/// customer end-hosts).
class TrafficAllocation {
 public:
  /// Adds `volume` of traffic along the AS path (at least 1 hop). The path
  /// must not repeat ASes. Negative volumes are allowed so that flow deltas
  /// (rerouted traffic) can be expressed; aggregate flows must stay >= 0
  /// when evaluated.
  void add_path_flow(std::span<const AsId> path, double volume);

  /// Adds only endpoint/stub traffic for a single AS (local sinks).
  void add_local_flow(AsId as, double volume);

  /// f_XY: volume on the link between x and y (0 if never touched).
  [[nodiscard]] double link_flow(AsId x, AsId y) const;

  /// f_XYZ: volume on the 3-AS segment x-y-z, independent of direction.
  [[nodiscard]] double segment_flow(AsId x, AsId y, AsId z) const;

  /// f_X: total flow through `as`.
  [[nodiscard]] double through_flow(AsId as) const;

  /// f_{X Gamma_X}: flow exchanged with the AS's own end-hosts.
  [[nodiscard]] double stub_flow(AsId as) const;

  /// Merges another allocation into this one (adding all flows).
  void merge(const TrafficAllocation& other);

  /// True if all recorded aggregates are >= -epsilon (sanity after deltas).
  [[nodiscard]] bool is_non_negative(double epsilon = 1e-9) const;

 private:
  static std::uint64_t pair_key(AsId x, AsId y);
  struct TripleKey {
    AsId a, b, c;  // canonical: a <= c
    friend bool operator==(const TripleKey&, const TripleKey&) = default;
  };
  struct TripleKeyHash {
    std::size_t operator()(const TripleKey& k) const;
  };
  static TripleKey canonical_triple(AsId x, AsId y, AsId z);

  std::unordered_map<std::uint64_t, double> link_flows_;
  std::unordered_map<TripleKey, double, TripleKeyHash> segment_flows_;
  std::unordered_map<AsId, double> through_flows_;
  std::unordered_map<AsId, double> stub_flows_;
};

/// Pricing/cost configuration and the business calculation of Eq. (1).
class Economy {
 public:
  explicit Economy(const Graph& graph);

  /// Sets the pricing function of a provider->customer link.
  void set_link_pricing(AsId provider, AsId customer, PricingFunction p);

  /// Sets what `as` charges its own customer end-hosts (virtual stub link).
  void set_stub_pricing(AsId as, PricingFunction p);

  /// Sets the internal-cost function of `as`.
  void set_internal_cost(AsId as, InternalCostFunction c);

  [[nodiscard]] const PricingFunction& link_pricing(AsId provider,
                                                    AsId customer) const;
  [[nodiscard]] const PricingFunction& stub_pricing(AsId as) const;
  [[nodiscard]] const InternalCostFunction& internal_cost(AsId as) const;

  /// r_X(f_X) of Eq. (1a).
  [[nodiscard]] double revenue(AsId as, const TrafficAllocation& flows) const;

  /// c_X(f_X) of Eq. (1b).
  [[nodiscard]] double cost(AsId as, const TrafficAllocation& flows) const;

  /// U_X(f_X) = r_X - c_X.
  [[nodiscard]] double utility(AsId as, const TrafficAllocation& flows) const;

  [[nodiscard]] const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;
  std::unordered_map<std::uint64_t, PricingFunction> link_pricing_;
  std::vector<PricingFunction> stub_pricing_;
  std::vector<InternalCostFunction> internal_costs_;
};

/// Parameters for a simple tier-based default economy.
struct DefaultEconomyParams {
  /// Per-unit transit price charged by providers of each tier (index 1..3;
  /// index 0 unused). Lower tiers (bigger networks) are cheaper per unit.
  double tier_unit_price[4] = {0.0, 1.0, 1.4, 2.0};
  /// Per-unit revenue from an AS's own end-hosts.
  double stub_unit_price = 2.5;
  /// Per-unit internal forwarding cost.
  double internal_unit_cost = 0.12;
};

/// Builds an Economy where every provider->customer link uses per-unit
/// pricing depending on the provider's tier, every AS charges its end-hosts
/// per unit, and internal costs are linear.
[[nodiscard]] Economy make_default_economy(
    const Graph& graph, const DefaultEconomyParams& params = {});

}  // namespace panagree::econ
