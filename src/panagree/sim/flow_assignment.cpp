#include "panagree/sim/flow_assignment.hpp"

#include <algorithm>

namespace panagree::sim {

FlowAssignmentResult assign_flows(const Graph& graph,
                                  const std::vector<PathDemand>& demands) {
  FlowAssignmentResult result;
  std::vector<double> volumes(graph.num_links(), 0.0);
  for (const PathDemand& demand : demands) {
    util::require(demand.volume >= 0.0,
                  "assign_flows: demand volume must be non-negative");
    util::require(demand.path.size() >= 1, "assign_flows: empty path");
    for (std::size_t i = 0; i + 1 < demand.path.size(); ++i) {
      const auto link = graph.link_between(demand.path[i], demand.path[i + 1]);
      util::require(link.has_value(),
                    "assign_flows: demand path uses a non-existent link");
      volumes[*link] += demand.volume;
    }
    result.allocation.add_path_flow(demand.path, demand.volume);
  }
  result.links.reserve(graph.num_links());
  for (topology::LinkId id = 0; id < graph.num_links(); ++id) {
    LinkUtilization u;
    u.link = id;
    u.volume = volumes[id];
    u.capacity = graph.link(id).capacity;
    result.max_utilization = std::max(result.max_utilization, u.utilization());
    if (u.capacity > 0.0 && u.volume > u.capacity) {
      ++result.overloaded_links;
    }
    result.links.push_back(u);
  }
  return result;
}

}  // namespace panagree::sim
