#include "panagree/bgp/simulator.hpp"

#include <set>

namespace panagree::bgp {

SpvpResult run_synchronous(const SppInstance& instance,
                           std::size_t max_rounds) {
  SpvpResult result;
  result.assignment.assign(instance.num_nodes(), Path{});
  result.assignment[instance.origin()] = Path{instance.origin()};

  std::set<Assignment> seen;
  seen.insert(result.assignment);

  for (std::size_t round = 0; round < max_rounds; ++round) {
    Assignment next(instance.num_nodes());
    for (AsId node = 0; node < instance.num_nodes(); ++node) {
      next[node] = best_available_path(instance, node, result.assignment);
    }
    result.steps = round + 1;
    if (next == result.assignment) {
      result.outcome = Outcome::kConverged;
      return result;
    }
    result.assignment = std::move(next);
    if (!seen.insert(result.assignment).second) {
      result.outcome = Outcome::kOscillated;
      return result;
    }
  }
  result.outcome = Outcome::kOscillated;
  return result;
}

SpvpResult run_random_activations(const SppInstance& instance, util::Rng& rng,
                                  std::size_t max_steps) {
  SpvpResult result;
  result.assignment.assign(instance.num_nodes(), Path{});
  result.assignment[instance.origin()] = Path{instance.origin()};

  // Track how many consecutive activations changed nothing; once every node
  // has been activated without change, re-check stability exactly.
  for (std::size_t step = 0; step < max_steps; ++step) {
    const AsId node =
        static_cast<AsId>(rng.uniform_index(instance.num_nodes()));
    Path best = best_available_path(instance, node, result.assignment);
    result.steps = step + 1;
    if (best != result.assignment[node]) {
      result.assignment[node] = std::move(best);
    } else if (step % instance.num_nodes() == 0 &&
               is_stable(instance, result.assignment)) {
      result.outcome = Outcome::kConverged;
      return result;
    }
  }
  if (is_stable(instance, result.assignment)) {
    result.outcome = Outcome::kConverged;
  } else {
    result.outcome = Outcome::kOscillated;
  }
  return result;
}

SafetyReport check_safety(const SppInstance& instance, std::size_t trials,
                          std::uint64_t seed, std::size_t max_steps) {
  SafetyReport report;
  report.trials = trials;
  std::set<Assignment> outcomes;
  for (std::size_t t = 0; t < trials; ++t) {
    util::Rng rng(seed + t);
    const SpvpResult result =
        run_random_activations(instance, rng, max_steps);
    if (result.outcome != Outcome::kConverged) {
      report.always_converged = false;
    } else {
      outcomes.insert(result.assignment);
    }
  }
  report.distinct_outcomes = outcomes.size();
  return report;
}

}  // namespace panagree::bgp
