#include "panagree/diversity/bandwidth.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace panagree::diversity {

double length3_bandwidth(const Graph& graph, AsId s, AsId m, AsId d) {
  const auto l1 = graph.link_between(s, m);
  const auto l2 = graph.link_between(m, d);
  util::require(l1.has_value() && l2.has_value(),
                "length3_bandwidth: path hops must be linked");
  return std::min(graph.link(*l1).capacity, graph.link(*l2).capacity);
}

BandwidthReport analyze_bandwidth(const Graph& graph,
                                  const std::vector<AsId>& sources) {
  BandwidthReport report;
  const Length3Analyzer analyzer(graph);

  struct PairAccumulator {
    std::vector<float> grc;
    std::vector<float> ma;
  };

  for (const AsId src : sources) {
    std::unordered_map<AsId, PairAccumulator> per_dst;
    for (const Length3Path& p : analyzer.grc_paths(src)) {
      per_dst[p.dst].grc.push_back(
          static_cast<float>(length3_bandwidth(graph, p.src, p.mid, p.dst)));
    }
    for (const Length3Path& p : analyzer.ma_paths(src)) {
      const auto it = per_dst.find(p.dst);
      if (it == per_dst.end()) {
        continue;
      }
      it->second.ma.push_back(
          static_cast<float>(length3_bandwidth(graph, p.src, p.mid, p.dst)));
    }
    for (auto& [dst, acc] : per_dst) {
      if (acc.grc.empty()) {
        continue;
      }
      std::sort(acc.grc.begin(), acc.grc.end());
      const float grc_min = acc.grc.front();
      const float grc_max = acc.grc.back();
      const float grc_median = acc.grc[acc.grc.size() / 2];
      BandwidthPairResult result;
      float ma_max = 0.0F;
      for (const float b : acc.ma) {
        if (b > grc_max) {
          ++result.ma_paths_above_grc_max;
        }
        if (b > grc_median) {
          ++result.ma_paths_above_grc_median;
        }
        if (b > grc_min) {
          ++result.ma_paths_above_grc_min;
        }
        ma_max = std::max(ma_max, b);
      }
      if (ma_max > grc_max && grc_max > 0.0F) {
        result.relative_increase =
            static_cast<double>(ma_max) / static_cast<double>(grc_max) - 1.0;
      }
      report.pairs.push_back(result);
    }
  }
  return report;
}

}  // namespace panagree::diversity
