// Structuring an agreement with flow-volume targets (§IV-A), then extending
// an agreement path to a third AS (§III-B3) within the negotiated
// allowances.
#include <iostream>

#include "panagree/core/agreements/extension.hpp"
#include "panagree/core/agreements/mutuality.hpp"
#include "panagree/core/agreements/utility.hpp"
#include "panagree/core/bargain/flow_volume.hpp"
#include "panagree/core/bargain/negotiation.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/util/table.hpp"

using namespace panagree;

int main() {
  const topology::Fig1 t = topology::make_fig1();
  const topology::Graph& g = t.graph;

  // Economy and base traffic, as in the quickstart.
  econ::Economy economy(g);
  economy.set_link_pricing(t.A, t.D, econ::PricingFunction::per_unit(2.0));
  economy.set_link_pricing(t.B, t.E, econ::PricingFunction::per_unit(2.0));
  economy.set_link_pricing(t.D, t.H, econ::PricingFunction::per_unit(2.6));
  economy.set_link_pricing(t.E, t.I, econ::PricingFunction::per_unit(2.6));
  economy.set_internal_cost(t.D, econ::InternalCostFunction::linear(0.05));
  economy.set_internal_cost(t.E, econ::InternalCostFunction::linear(0.05));
  econ::TrafficAllocation base;
  base.add_path_flow(std::vector<topology::AsId>{t.H, t.D, t.A, t.B}, 4.0);
  base.add_path_flow(std::vector<topology::AsId>{t.I, t.E, t.B, t.A}, 4.0);

  // The MA between D and E (the §VI generation rule applied to Fig. 1).
  const agreements::Agreement ma =
      agreements::make_mutuality_agreement(g, t.D, t.E);
  std::cout << "Agreement: " << ma.to_string(g) << "\n\n";

  // Negotiate flow-volume targets (Eq. 9): for each new segment, how much
  // existing traffic may be rerouted and how much new demand admitted.
  bargain::FlowVolumeProblem problem;
  problem.party_x = t.D;
  problem.party_y = t.E;
  problem.x_segments.push_back(bargain::SegmentOption{
      {t.H, t.D, t.E, t.B}, {t.H, t.D, t.A, t.B}, 4.0, 6.0});
  problem.y_segments.push_back(bargain::SegmentOption{
      {t.I, t.E, t.D, t.A}, {t.I, t.E, t.B, t.A}, 4.0, 6.0});

  const agreements::AgreementEvaluator evaluator(economy, base);
  const bargain::FlowVolumeSolution sol =
      bargain::solve_flow_volume(problem, evaluator);
  std::cout << "Flow-volume program (Eq. 9): "
            << (sol.concluded ? "agreement concluded" : "no agreement")
            << "\n  u_D = " << sol.u_x << ", u_E = " << sol.u_y
            << ", Nash product = " << sol.nash << "\n\n";

  util::Table targets({"party", "segment", "allowance f_P", "rerouted",
                       "new demand"});
  const auto add_targets = [&](const char* who,
                               const std::vector<bargain::FlowVolumeTarget>&
                                   list) {
    for (const auto& target : list) {
      std::string seg;
      for (const auto as : target.segment) {
        seg += g.info(as).name;
      }
      targets.add_row({who, seg, util::format_double(target.allowance, 3),
                       util::format_double(target.rerouted, 3),
                       util::format_double(target.new_demand, 3)});
    }
  };
  add_targets("D", sol.x_targets);
  add_targets("E", sol.y_targets);
  targets.print(std::cout);

  // Register the concluded agreement with its allowances, then extend the
  // EDA segment to F (the paper's agreement a', §III-B3). The extension
  // must fit within the parent's allowance.
  agreements::AgreementRegistry registry;
  std::vector<agreements::FlowAllowance> allowances;
  allowances.push_back(agreements::FlowAllowance{
      {t.E, t.D, t.A}, sol.y_targets[0].allowance, 0.0});
  const auto id = registry.register_agreement(ma, std::move(allowances));

  std::cout << "\nExtension a' (E grants F access to segment EDA):\n";
  for (const double volume : {2.0, 50.0}) {
    agreements::Extension ext;
    ext.parent = id;
    ext.party = t.E;
    ext.beneficiary = t.F;
    ext.extended_segment = {t.F, t.E, t.D, t.A};
    ext.volume = volume;
    const bool ok = registry.try_register_extension(g, ext);
    const auto remaining = registry.remaining(id, {t.E, t.D, t.A});
    std::cout << "  request " << volume << " units: "
              << (ok ? "granted" : "refused (parent allowance exceeded)")
              << ", remaining allowance = " << *remaining << "\n";
  }

  // The same negotiation, fully automated: segments, reroutable volumes and
  // demand limits are derived from the observed traffic and the elasticity
  // model; both structuring methods are solved in one call.
  std::cout << "\n-- automated negotiation (derived from observed traffic) "
               "--\n";
  const traffic::DemandElasticity elasticity(
      {.max_new_fraction = 1.0, .half_point = 0.1});
  const auto negotiation =
      bargain::negotiate_agreement(ma, evaluator, elasticity);
  std::cout << "derived segments: " << negotiation.problem.x_segments.size()
            << " for D, " << negotiation.problem.y_segments.size()
            << " for E\n"
            << "flow-volume: "
            << (negotiation.volume.concluded ? "concludes" : "no agreement")
            << " (u_D = " << negotiation.volume.u_x
            << ", u_E = " << negotiation.volume.u_y << ")\n"
            << "cash at full usage: "
            << (negotiation.cash ? "concludes" : "no agreement");
  if (negotiation.cash) {
    std::cout << " (Pi_{D->E} = " << negotiation.cash->transfer_x_to_y
              << ")";
  }
  std::cout << "\n";
  return 0;
}
