#include "panagree/pan/mac.hpp"

#include <cstring>
#include <vector>

namespace panagree::pan {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  explicit SipState(const MacKey& key)
      : v0(0x736f6d6570736575ULL ^ key.k0),
        v1(0x646f72616e646f6dULL ^ key.k1),
        v2(0x6c7967656e657261ULL ^ key.k0),
        v3(0x7465646279746573ULL ^ key.k1) {}

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void compress(std::uint64_t m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  std::uint64_t finalize() {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

std::uint64_t load_le(const std::uint8_t* p, std::size_t n) {
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    w |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return w;
}

}  // namespace

std::uint64_t siphash24(const MacKey& key, std::span<const std::uint8_t> data) {
  SipState state(key);
  const std::size_t full_blocks = data.size() / 8;
  for (std::size_t b = 0; b < full_blocks; ++b) {
    state.compress(load_le(data.data() + 8 * b, 8));
  }
  const std::size_t tail = data.size() % 8;
  std::uint64_t last = load_le(data.data() + 8 * full_blocks, tail);
  last |= static_cast<std::uint64_t>(data.size() & 0xff) << 56;
  state.compress(last);
  return state.finalize();
}

std::uint64_t siphash24_words(const MacKey& key,
                              std::initializer_list<std::uint64_t> words) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(words.size() * 8);
  for (const std::uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<std::uint8_t>((w >> (8 * i)) & 0xff));
    }
  }
  return siphash24(key, bytes);
}

}  // namespace panagree::pan
