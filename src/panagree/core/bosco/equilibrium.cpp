#include "panagree/core/bosco/equilibrium.hpp"

namespace panagree::bosco {

EquilibriumResult find_equilibrium(const ChoiceSet& choices_x,
                                   const ChoiceSet& choices_y,
                                   const UtilityDistribution& dist_x,
                                   const UtilityDistribution& dist_y,
                                   const EquilibriumOptions& options) {
  Strategy sx = Strategy::quantizer(choices_x);
  Strategy sy = Strategy::quantizer(choices_y);
  EquilibriumResult result{sx, sy, false, 0};
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    Strategy nx = best_response_to(choices_x, choices_y, sy, dist_y);
    Strategy ny = best_response_to(choices_y, choices_x, nx, dist_x);
    const bool x_fixed = nx.approx_equal(sx, options.threshold_eps);
    const bool y_fixed = ny.approx_equal(sy, options.threshold_eps);
    sx = std::move(nx);
    sy = std::move(ny);
    result.iterations = it + 1;
    if (x_fixed && y_fixed) {
      // One more cross-check: sx must also be a best response to the new sy.
      Strategy check = best_response_to(choices_x, choices_y, sy, dist_y);
      if (check.approx_equal(sx, options.threshold_eps)) {
        result.converged = true;
        break;
      }
    }
  }
  result.x = sx;
  result.y = sy;
  return result;
}

bool is_nash_equilibrium(const ChoiceSet& choices_x,
                         const ChoiceSet& choices_y, const Strategy& sx,
                         const Strategy& sy,
                         const UtilityDistribution& dist_x,
                         const UtilityDistribution& dist_y, double eps) {
  const Strategy bx = best_response_to(choices_x, choices_y, sy, dist_y);
  const Strategy by = best_response_to(choices_y, choices_x, sx, dist_x);
  return bx.approx_equal(sx, eps) && by.approx_equal(sy, eps);
}

}  // namespace panagree::bosco
