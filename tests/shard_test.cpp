// Sharded serving tests: the shard-routing byte-identity property
// (N-shard ShardRouter responses == the 1-shard stack, through the
// library and through a pooled-reader Server at 1/2/8 worker threads,
// rebase included), epoch-barrier atomicity under concurrent rebase (a
// reader observes the old fleet or the new fleet, never a mix), the
// primed-baseline snapshot round trip (reconstructed path sets ==
// a fresh prime(), and prime_restored never touches the sweep.prime
// counter), and the `rebase` wire kind.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "panagree/diversity/report.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/obs/export.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/serve/client.hpp"
#include "panagree/serve/server.hpp"
#include "panagree/serve/shard_router.hpp"
#include "panagree/serve/wire.hpp"
#include "panagree/storage/snapshot.hpp"
#include "panagree/topology/generator.hpp"

namespace panagree::serve {
namespace {

using topology::AsId;

// ------------------------------------------------------------------ wire

TEST(Wire, ParsesRebaseRequest) {
  const Request request = parse_request(
      R"({"v":1,"id":8,"kind":"rebase","add":[{"a":1,"b":2,"type":"peering"}]})");
  EXPECT_EQ(request.id, 8u);
  EXPECT_EQ(request.kind, RequestKind::kRebase);
  ASSERT_EQ(request.delta.add.size(), 1u);
  EXPECT_EQ(request.delta.add[0].a, 1u);
  EXPECT_EQ(request.delta.add[0].b, 2u);
}

TEST(Wire, RejectsEmptyRebase) {
  EXPECT_THROW(parse_request(R"({"v":1,"id":1,"kind":"rebase"})"),
               ProtocolError);
}

TEST(Wire, RebaseResponseIsOneTerminatedLine) {
  std::string out;
  append_rebase_response(out, 12, 3);
  EXPECT_EQ(out,
            "{\"v\":1,\"id\":12,\"ok\":true,\"kind\":\"rebase\","
            "\"epoch\":3}\n");
}

TEST(Wire, RebaseSlowKindNameRoundTrips) {
  const std::uint64_t code =
      static_cast<std::uint64_t>(RequestKind::kRebase);
  EXPECT_EQ(slow_kind_name(code), "rebase");
  EXPECT_EQ(slow_kind_code("rebase"), code);
}

// --------------------------------------------------------------- fixture

/// Shared fixture: a small synthetic Internet, its economy, and the
/// 40-source sample every stack partitions. Expensive, so built once.
class ShardFixture {
 public:
  ShardFixture() {
    topology::GeneratorParams params;
    params.num_ases = 250;
    params.tier1_count = 5;
    params.seed = 20260801;
    topo_ = topology::generate_internet(params);
    compiled_.emplace(topo_.graph);
    economy_.emplace(econ::make_default_economy(topo_.graph));
    sources_ = diversity::sample_sources(topo_.graph, 40, 7);
  }

  [[nodiscard]] std::vector<scenario::Delta> candidates(
      std::size_t count) const {
    return scenario::candidate_peering_deltas(*compiled_, count, 4242);
  }

  /// An unsampled source (served cold, routed to shard 0).
  [[nodiscard]] AsId cold_source() const {
    for (AsId as = 0; as < topo_.graph.num_ases(); ++as) {
      if (std::find(sources_.begin(), sources_.end(), as) ==
          sources_.end()) {
        return as;
      }
    }
    return 0;
  }

  topology::GeneratedTopology topo_;
  std::optional<topology::CompiledTopology> compiled_;
  std::optional<econ::Economy> economy_;
  std::vector<AsId> sources_;
};

const ShardFixture& fixture() {
  static const ShardFixture fixture;
  return fixture;
}

/// One serving stack: the partitioned engines plus the router fronting
/// them, primed and baseline-published - what servecfg::ServeContext
/// builds, minus the topology loading.
struct ShardedStack {
  std::vector<std::unique_ptr<QueryEngine>> engines;
  std::unique_ptr<ShardRouter> router;
};

ShardedStack make_stack(const ShardFixture& f, std::size_t shards) {
  ShardedStack stack;
  const std::size_t n = f.sources_.size();
  std::vector<QueryEngine*> pointers;
  for (std::size_t s = 0; s < shards; ++s) {
    std::vector<AsId> part(f.sources_.begin() + s * n / shards,
                           f.sources_.begin() + (s + 1) * n / shards);
    stack.engines.push_back(std::make_unique<QueryEngine>(
        *f.compiled_, &f.topo_.world, &*f.economy_, std::move(part)));
    stack.engines.back()->prime();
    pointers.push_back(stack.engines.back().get());
  }
  stack.router = std::make_unique<ShardRouter>(std::move(pointers));
  stack.router->refresh_baseline();
  return stack;
}

std::string delta_request(const char* kind, std::uint64_t id,
                          const scenario::Delta& delta) {
  std::string line = "{\"v\":1,\"id\":" + std::to_string(id) +
                     ",\"kind\":\"" + kind + "\"";
  if (!delta.add.empty()) {
    line += ",\"add\":[";
    for (std::size_t i = 0; i < delta.add.size(); ++i) {
      const scenario::LinkChange& link = delta.add[i];
      line += std::string(i == 0 ? "" : ",") +
              "{\"a\":" + std::to_string(link.a) +
              ",\"b\":" + std::to_string(link.b) + ",\"type\":\"" +
              (link.type == topology::LinkType::kPeering ? "peering"
                                                         : "transit") +
              "\"}";
    }
    line += "]";
  }
  if (!delta.remove.empty()) {
    line += ",\"remove\":[";
    for (std::size_t i = 0; i < delta.remove.size(); ++i) {
      line += std::string(i == 0 ? "" : ",") + "[" +
              std::to_string(delta.remove[i].first) + "," +
              std::to_string(delta.remove[i].second) + "]";
    }
    line += "]";
  }
  return line + "}";
}

std::string source_request(const char* kind, std::uint64_t id, AsId src) {
  return "{\"v\":1,\"id\":" + std::to_string(id) + ",\"kind\":\"" + kind +
         "\",\"source\":" + std::to_string(src) + "}";
}

/// The deterministic byte-identity script: every routed kind over
/// sampled and cold sources, what-ifs before and after a mid-script
/// rebase (so the fleet-wide fold is exercised against both states),
/// and malformed lines that must answer as errors. Excludes stats /
/// slowlog, whose responses carry process-wide counters.
std::vector<std::string> request_script(const ShardFixture& f) {
  const std::vector<scenario::Delta> deltas = f.candidates(4);
  std::vector<std::string> lines;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < f.sources_.size(); i += 7) {
    lines.push_back(source_request("paths", ++id, f.sources_[i]));
    lines.push_back(source_request("diversity", ++id, f.sources_[i]));
  }
  lines.push_back(source_request("paths", ++id, f.cold_source()));
  lines.push_back(source_request("diversity", ++id, f.cold_source()));
  for (const scenario::Delta& delta : deltas) {
    lines.push_back(delta_request("whatif", ++id, delta));
  }
  lines.push_back(delta_request("rebase", ++id, deltas[0]));
  for (const scenario::Delta& delta : deltas) {
    lines.push_back(delta_request("whatif", ++id, delta));
  }
  lines.push_back(source_request("paths", ++id, f.sources_[1]));
  lines.push_back("{\"v\":1,\"id\":9001,\"kind\":\"nope\"}");
  lines.push_back("not json at all");
  lines.push_back("{\"v\":1,\"id\":9002,\"kind\":\"rebase\"}");  // empty
  return lines;
}

[[nodiscard]] std::string run_script_direct(
    ShardRouter& router, const std::vector<std::string>& lines) {
  std::string all;
  for (const std::string& line : lines) {
    router.handle_line(line, all);
  }
  return all;
}

// ------------------------------------------- router byte-identity

TEST(ShardRouter, ResponsesByteIdenticalAcrossShardCounts) {
  const ShardFixture& f = fixture();
  const std::vector<std::string> script = request_script(f);
  ShardedStack one = make_stack(f, 1);
  const std::string expected = run_script_direct(*one.router, script);
  ASSERT_FALSE(expected.empty());
  for (const std::size_t shards : {2u, 4u, 8u}) {
    ShardedStack stack = make_stack(f, shards);
    EXPECT_EQ(stack.router->num_shards(), shards);
    EXPECT_EQ(run_script_direct(*stack.router, script), expected)
        << shards << "-shard responses diverged";
  }
}

TEST(ShardRouter, RebaseBumpsFleetEpochOnce) {
  const ShardFixture& f = fixture();
  ShardedStack stack = make_stack(f, 4);
  const std::vector<scenario::Delta> deltas = f.candidates(2);
  EXPECT_EQ(stack.router->epoch(), 0u);
  EXPECT_EQ(stack.router->rebase(deltas[0]), 1u);
  EXPECT_EQ(stack.router->rebase(deltas[1]), 2u);
  EXPECT_EQ(stack.router->epoch(), 2u);
  // Every shard advanced with the fleet.
  for (const std::unique_ptr<QueryEngine>& engine : stack.engines) {
    EXPECT_EQ(engine->epoch(), 2u);
  }
}

// --------------------------------------------- through the server

TEST(Server, ShardedResponsesByteIdenticalAcrossWorkerCounts) {
  const ShardFixture& f = fixture();
  const std::vector<std::string> script = request_script(f);
  ShardedStack reference = make_stack(f, 1);
  const std::string expected = run_script_direct(*reference.router, script);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    ShardedStack stack = make_stack(f, 4);
    ServerConfig config;
    config.worker_threads = workers;
    Server server(*stack.router, config);
    server.start();
    std::string all;
    {
      ClientConnection conn(server.port());
      // Closed loop: send, await the response, so response order is
      // request order and the concatenation is diffable.
      for (const std::string& line : script) {
        conn.send_line(line);
        all += conn.read_line();
      }
    }
    server.stop();
    EXPECT_EQ(all, expected) << workers << " workers diverged";
    EXPECT_GE(server.handled_requests(), script.size());
  }
}

// ------------------------------------------------ rebase atomicity

TEST(ShardRouter, ConcurrentRebaseNeverServesMixedEpochs) {
  const ShardFixture& f = fixture();
  const std::vector<scenario::Delta> deltas = f.candidates(4);
  const scenario::Delta& step = deltas[0];

  // A probe whose response the rebase actually changes (over 250 ASes
  // some candidate's score moves when another link lands).
  std::string probe_line;
  std::string expected_before;
  std::string expected_after;
  {
    ShardedStack reference = make_stack(f, 2);
    for (std::size_t i = 1; i < deltas.size() && probe_line.empty(); ++i) {
      const std::string line = delta_request("whatif", 1, deltas[i]);
      std::string before;
      reference.router->handle_line(line, before);
      ShardedStack rebased = make_stack(f, 2);
      rebased.router->rebase(step);
      std::string after;
      rebased.router->handle_line(line, after);
      if (before != after) {
        probe_line = line;
        expected_before = std::move(before);
        expected_after = std::move(after);
      }
    }
  }
  ASSERT_FALSE(probe_line.empty())
      << "no candidate probe is affected by the step";

  // Readers hammer the probe while the rebase lands: every response
  // must be the complete old fleet or the complete new fleet. A mixed
  // epoch (some shards rebased, some not) would splice contributions of
  // different states and produce a third byte pattern.
  ShardedStack stack = make_stack(f, 2);
  std::atomic<bool> go{false};
  std::atomic<int> mixed{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < 8; ++i) {
        std::string out;
        stack.router->handle_line(probe_line, out);
        if (out != expected_before && out != expected_after) {
          mixed.fetch_add(1);
        }
      }
    });
  }
  std::thread rebaser([&] {
    while (!go.load()) {
    }
    stack.router->rebase(step);
  });
  go.store(true);
  for (std::thread& reader : readers) {
    reader.join();
  }
  rebaser.join();
  EXPECT_EQ(mixed.load(), 0);
  // Settled state serves the post-rebase bytes.
  std::string out;
  stack.router->handle_line(probe_line, out);
  EXPECT_EQ(out, expected_after);
}

// ------------------------------------------------ primed baseline

const auto kEnumerate = [](const scenario::Overlay& overlay, AsId src) {
  return scenario::enumerate_length3(overlay, src);
};

/// What panagree-compile --shards persists: the primed runner's path
/// caches flattened into the shard-plan + baseline arrays.
storage::ShardPlanData make_plan(
    const ShardFixture& f, std::size_t shards,
    const std::vector<scenario::SourcePathSet>& baseline) {
  storage::ShardPlanData plan;
  plan.num_shards = shards;
  plan.sources = f.sources_;
  const std::size_t n = plan.sources.size();
  for (std::size_t s = 0; s <= shards; ++s) {
    plan.shard_begin.push_back(static_cast<std::uint32_t>(s * n / shards));
  }
  plan.path_begin.push_back(0);
  for (const scenario::SourcePathSet& set : baseline) {
    plan.grc_counts.push_back(static_cast<std::uint32_t>(set.grc().size()));
    plan.path_begin.push_back(
        plan.path_begin.back() +
        static_cast<std::uint32_t>(set.grc().size() + set.ma().size()));
    for (const auto paths : {set.grc(), set.ma()}) {
      for (const diversity::Length3Path& path : paths) {
        plan.path_words.push_back(path.src);
        plan.path_words.push_back(path.mid);
        plan.path_words.push_back(path.dst);
      }
    }
  }
  return plan;
}

/// The serving-side reconstruction (tools/serve_common.hpp).
std::vector<scenario::SourcePathSet> reconstruct(
    const storage::PrimedBaselineView& baseline, std::size_t first,
    std::size_t last) {
  std::vector<scenario::SourcePathSet> out;
  for (std::size_t i = first; i < last; ++i) {
    scenario::SourcePathSet set;
    const std::size_t grc = baseline.grc_counts[i];
    for (std::size_t p = baseline.path_begin[i];
         p < baseline.path_begin[i + 1]; ++p) {
      const diversity::Length3Path path{baseline.path_words[3 * p],
                                        baseline.path_words[3 * p + 1],
                                        baseline.path_words[3 * p + 2]};
      if (p - baseline.path_begin[i] < grc) {
        set.add_grc(path);
      } else {
        set.add_ma(path);
      }
    }
    out.push_back(std::move(set));
  }
  return out;
}

[[nodiscard]] std::uint64_t sweep_prime_count() {
  const obs::MetricsSnapshot snap = obs::snapshot_metrics();
  for (const obs::CounterSample& counter : snap.counters) {
    if (counter.name == "sweep.prime") {
      return counter.value;
    }
  }
  return 0;
}

TEST(PrimedBaseline, SnapshotRoundTripEqualsFreshPrime) {
  const ShardFixture& f = fixture();
  scenario::SweepConfig config;
  config.dirty_radius = scenario::kLength3DirtyRadius;
  scenario::SweepRunner<scenario::SourcePathSet> runner(*f.compiled_,
                                                        f.sources_, config);
  runner.prime(kEnumerate);
  const storage::ShardPlanData plan = make_plan(f, 3, runner.baseline());

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "shard_roundtrip.pansnap";
  storage::write_snapshot(path.string(), f.topo_, *f.compiled_, &plan);
  {
    const storage::MappedSnapshot snap =
        storage::MappedSnapshot::open(path.string());
    ASSERT_TRUE(snap.shard_plan().has_value());
    ASSERT_TRUE(snap.primed_baseline().has_value());
    const storage::ShardPlanView& view = *snap.shard_plan();
    EXPECT_EQ(view.num_shards, 3u);
    ASSERT_TRUE(std::ranges::equal(view.sources, f.sources_));
    ASSERT_TRUE(std::ranges::equal(view.shard_begin, plan.shard_begin));
    EXPECT_EQ(view.row_ranges.size(), 6u);

    const std::vector<scenario::SourcePathSet> restored = reconstruct(
        *snap.primed_baseline(), 0, f.sources_.size());
    ASSERT_EQ(restored.size(), runner.baseline().size());
    for (std::size_t i = 0; i < restored.size(); ++i) {
      EXPECT_EQ(restored[i], runner.baseline()[i]) << "source " << i;
    }
  }
  std::filesystem::remove(path);
}

TEST(PrimedBaseline, PrimeRestoredSkipsEnumerationAndServesSameBytes) {
  const ShardFixture& f = fixture();
  scenario::SweepConfig config;
  config.dirty_radius = scenario::kLength3DirtyRadius;
  scenario::SweepRunner<scenario::SourcePathSet> runner(*f.compiled_,
                                                        f.sources_, config);
  runner.prime(kEnumerate);

  // The restored stack primes every shard from the runner's cache
  // slices; the sweep.prime counter must not move (the acceptance
  // criterion of the mmap-only cold start).
  const std::size_t shards = 2;
  const std::size_t n = f.sources_.size();
  ShardedStack restored;
  std::vector<QueryEngine*> pointers;
  const std::uint64_t primes_before = sweep_prime_count();
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * n / shards;
    const std::size_t end = (s + 1) * n / shards;
    restored.engines.push_back(std::make_unique<QueryEngine>(
        *f.compiled_, &f.topo_.world, &*f.economy_,
        std::vector<AsId>(f.sources_.begin() + begin,
                          f.sources_.begin() + end)));
    restored.engines.back()->prime_restored(
        std::vector<scenario::SourcePathSet>(
            runner.baseline().begin() + begin,
            runner.baseline().begin() + end));
    pointers.push_back(restored.engines.back().get());
  }
  restored.router = std::make_unique<ShardRouter>(std::move(pointers));
  restored.router->refresh_baseline();
  EXPECT_EQ(sweep_prime_count(), primes_before);

  ShardedStack fresh = make_stack(f, shards);
  const std::vector<std::string> script = request_script(f);
  EXPECT_EQ(run_script_direct(*restored.router, script),
            run_script_direct(*fresh.router, script));
}

}  // namespace
}  // namespace panagree::serve
