// The serving layer's query engine: a long-running, thread-safe front end
// over one topology snapshot and one primed scenario::SweepRunner.
//
// Every batch tool in this repo loads, enumerates, prints, and exits; the
// engine keeps the expensive state resident and answers three request
// kinds out of it:
//
//   * paths      - the §VI GRC + MA length-3 path sets of a source.
//                  Sampled sources are served zero-copy out of the
//                  runner's PathPool-backed per-source cache; other
//                  sources are enumerated on the fly (cold).
//   * diversity  - the per-source diversity / geodistance / fee
//                  aggregate (scenario::SourceContribution, finalized).
//   * whatif     - score a candidate link delta against the current
//                  state: only the sources inside the delta's
//                  invalidation ball are re-enumerated (the SweepRunner
//                  machinery), never a full recompute, and the scenario
//                  is re-scored in O(sources) additive folds.
//
// Concurrency model: read-mostly. The engine state (runner cache,
// per-source contributions, baseline metrics) lives behind a
// std::shared_mutex as an immutable shared_ptr snapshot; readers take the
// shared lock only long enough to copy the pointer and then work lock-free
// on their snapshot. rebase() (committing a deployment program step) is
// copy-on-rebase: it clones the state, folds the step into the clone's
// cache (recomputing only the step's invalidation ball), and swaps the
// pointer under the exclusive lock - in-flight readers keep their old
// snapshot alive, so readers never block on a rebase.
//
// Epoch batching: concurrent whatif requests for the same delta share one
// enumeration. The first requester installs a shared future keyed by the
// canonical delta; later requesters (same epoch) wait on it instead of
// re-walking the dirty ball. rebase() bumps the epoch and drops the memo
// - cached scores are only ever served against the state they were
// computed on. The memo is bounded (max_batch): past the cap requests
// compute unshared rather than grow memory.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "panagree/econ/business.hpp"
#include "panagree/obs/metrics.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/sweep.hpp"
#include "panagree/serve/wire.hpp"

namespace panagree::serve {

/// The stage clock's time source: steady-clock nanoseconds when the obs
/// layer is live, constant 0 under PANAGREE_OBS_OFF - which collapses
/// every stage duration to zero and makes the whole per-request clock a
/// no-op without a single branch in the instrumented code.
[[nodiscard]] inline std::uint64_t stage_now_ns() noexcept {
  if constexpr (obs::enabled()) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  } else {
    return 0;
  }
}

/// Which engine machinery served a request's engine stage - the
/// sweep/cache sub-attribution folded into the per-stage histograms
/// (serve.stage_ns.engine_cache vs serve.stage_ns.engine_sweep).
enum class EngineWork : std::uint8_t {
  kNone,   // introspection kinds (stats, slowlog) and failed requests
  kCache,  // served out of the primed per-source cache
  kSweep,  // went through enumeration / the incremental sweep
};

/// Per-request stage clock, threaded from accept to send. handle_line
/// fills parse/engine/serialize and the request identity; the server
/// supplies enqueue_ns before the call and send_ns after, then hands the
/// record to finish_request_observation. The five stage durations sum to
/// wall_ns() by construction: serialization that happens inside an
/// engine sink (the paths response) is measured directly and subtracted
/// from the surrounding engine interval, so no nanosecond is counted
/// twice or dropped.
struct RequestStages {
  /// Server reader's enqueue timestamp (stage_now_ns clock); 0 means no
  /// queue stage (--direct calls).
  std::uint64_t enqueue_ns = 0;
  /// handle_line entry timestamp (set by handle_line).
  std::uint64_t start_ns = 0;
  std::uint64_t parse_ns = 0;
  std::uint64_t engine_ns = 0;
  std::uint64_t serialize_ns = 0;
  /// Socket write duration (set by the server after send_all; 0 for
  /// --direct).
  std::uint64_t send_ns = 0;

  std::uint64_t wire_id = 0;
  /// Wire slow-kind code (RequestKind value, or kSlowKindError).
  std::uint64_t slow_kind = 0;
  std::uint64_t source = 0;
  std::uint64_t delta_links = 0;
  EngineWork work = EngineWork::kNone;

  /// Queue wait: handle start minus enqueue (0 without a queue stage).
  [[nodiscard]] std::uint64_t queue_ns() const noexcept {
    return enqueue_ns != 0 && start_ns > enqueue_ns
               ? start_ns - enqueue_ns
               : 0;
  }

  /// Total attributed wall time: the exact sum of the five stages.
  [[nodiscard]] std::uint64_t wall_ns() const noexcept {
    return queue_ns() + parse_ns + engine_ns + serialize_ns + send_ns;
  }
};

/// Folds a completed request's stage clock into the per-stage
/// histograms (serve.stage_ns.*), offers it to the slow-query ring
/// (obs::SlowQueryLog::global()), and - when PANAGREE_TRACE is live -
/// records its span tree: one "serve.request" root span carrying the
/// wire id, one "serve.stage.*" child span per nonzero stage. Called by
/// the server worker after the response bytes are on the socket (so a
/// slowlog response never contains its own request) and by handle_line
/// itself for --direct calls.
void finish_request_observation(const RequestStages& stages);

/// Order-insensitive canonical key of a delta (whatif/rebase memo key):
/// added links keep their direction (provider/customer roles), removals
/// are normalized undirected, both sorted. Shared by the engine's epoch
/// batch and the shard router's.
[[nodiscard]] std::string canonical_delta_key(const scenario::Delta& delta);

namespace detail {

/// Per-request-kind counter + latency histogram (serve.requests.*,
/// serve.latency_ns.*), shared by every dispatch front end so a scripted
/// session scores the same counters through the engine, the shard
/// router, or --direct.
struct RequestMetricsRef {
  obs::Counter& count;
  obs::Histogram& latency_ns;
};

[[nodiscard]] RequestMetricsRef& request_metrics(RequestKind kind);
[[nodiscard]] RequestMetricsRef& error_metrics();

}  // namespace detail

struct EngineConfig {
  /// Worker threads of prime()/rebase() per-source fan-outs
  /// (0 = hardware concurrency). Request handling itself runs on the
  /// caller's thread.
  std::size_t threads = 0;
  /// Bound on memoized what-if evaluations per epoch (the epoch batch):
  /// concurrent identical requests share one enumeration up to this many
  /// distinct deltas; past the cap, requests compute unshared.
  std::size_t max_batch = 256;
  /// Pin the prime()/rebase() fan-out workers to cpus (NUMA-blocked; see
  /// paths::ExecPolicy). Results are identical either way.
  bool pin_threads = false;
  /// Scoring weights of whatif utilities.
  scenario::UtilityWeights weights;
};

class QueryEngine {
 public:
  /// `base` is the served snapshot; `world`/`economy` feed the
  /// geodistance/fee aggregates (nullptr disables them, like
  /// MetricsAggregator). `sources` is the cached sample - every other
  /// source is served cold. All referenced objects must outlive the
  /// engine. Call prime() before serving.
  QueryEngine(const topology::CompiledTopology& base,
              const geo::World* world, const econ::Economy* economy,
              std::vector<AsId> sources, EngineConfig config = {});
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Enumerates and caches the baseline of every sampled source and its
  /// per-source contribution (the expensive one-time cost). Idempotent.
  void prime();

  /// Primes from an externally restored baseline instead of enumerating:
  /// `baseline` must hold, in sources() order, exactly what prime()'s
  /// enumeration would produce (e.g. deserialized from a snapshot's
  /// primed-baseline sections). The contribution folds still run (cheap);
  /// the per-source path enumeration - the expensive part - is skipped
  /// entirely and no sweep.prime metrics are recorded. Idempotent like
  /// prime(): a no-op on an already-primed engine.
  void prime_restored(std::vector<scenario::SourcePathSet>&& baseline);

  [[nodiscard]] const std::vector<AsId>& sources() const { return sources_; }
  /// Bumped by every rebase(); whatif memo entries never cross epochs.
  [[nodiscard]] std::uint64_t epoch() const;
  /// Aggregate metrics of the current state over the sampled sources.
  [[nodiscard]] scenario::ScenarioMetrics state_metrics() const;

  /// Serves the GRC + MA path sets of `src` to `sink`. The spans are
  /// valid only during the call (they point into the engine's cache for
  /// sampled sources, into a local enumeration otherwise). Throws
  /// util::PreconditionError for out-of-range sources.
  using PathsSink =
      std::function<void(std::span<const diversity::Length3Path> grc,
                         std::span<const diversity::Length3Path> ma)>;
  void paths(AsId src, const PathsSink& sink) const;

  /// Per-source diversity / geodistance / fee aggregate of `src` under
  /// the current state.
  [[nodiscard]] DiversityResult diversity(AsId src) const;

  /// Scores `delta` against the current state (see the header comment).
  /// Throws util::PreconditionError for deltas the state overlay rejects.
  [[nodiscard]] WhatIfResult whatif(const scenario::Delta& delta) const;

  /// Folds a committed deployment step into the served state
  /// (copy-on-rebase; see the header comment). Readers are never blocked
  /// for the duration of the recompute, only for the pointer swap.
  void rebase(const scenario::Delta& step);

  /// Drops the what-if memo without changing state - lets benches and
  /// tests measure the unshared evaluation cost.
  void flush_whatif_memo() const;

  /// A pinned view of the per-source baseline contributions of the
  /// current state, in sources() order. `pin` keeps the underlying state
  /// generation alive for as long as the view is held - the shard
  /// router's fold across shards reads these spans lock-free.
  struct ContributionView {
    std::shared_ptr<const void> pin;
    std::span<const scenario::SourceContribution> contribs;
  };
  [[nodiscard]] ContributionView contributions() const;

  /// The epoch-batch seam the shard router plugs into: evaluates `delta`
  /// over this engine's source sample and returns the splice inputs -
  /// per-source baseline contributions, the dirty positions (local
  /// indices into sources()), their freshly recomputed contributions, and
  /// the sweep accounting - instead of a finalized score. The router
  /// concatenates the slices of all shards in canonical source order and
  /// runs the finalize/subtract/utility fold once, which is what keeps an
  /// N-shard response byte-identical to the single-engine one (floating-
  /// point addition is order-sensitive; partial per-shard sums would
  /// round differently). Bypasses the engine's whatif memo - batching
  /// happens at the router.
  struct WhatIfSlice {
    std::shared_ptr<const void> pin;
    std::span<const scenario::SourceContribution> baseline;
    std::vector<std::size_t> dirty_positions;
    std::vector<scenario::SourceContribution> fresh;
    scenario::SweepStats stats;
  };
  [[nodiscard]] WhatIfSlice whatif_slice(const scenario::Delta& delta) const;

  /// Parses one request line, dispatches it, and appends the
  /// newline-terminated response to `out`: the single entry point shared
  /// by the server workers and the client's --direct mode, which is what
  /// makes their bytes identical. Never throws: malformed requests and
  /// engine rejections become error responses (id 0 when the line was too
  /// broken to carry one).
  ///
  /// Stage clock: when `stages` is non-null the parse/engine/serialize
  /// durations and request identity are written into it and observation
  /// is left to the caller (the server finishes after send); when null,
  /// the request is finished here with no queue/send stages (--direct).
  void handle_line(std::string_view line, std::string& out,
                   RequestStages* stages = nullptr) const;

 private:
  struct State;

  [[nodiscard]] std::shared_ptr<const State> snapshot() const;
  [[nodiscard]] WhatIfResult compute_whatif(
      const State& state, const scenario::Delta& delta) const;

  const topology::CompiledTopology* base_;
  scenario::MetricsAggregator aggregator_;
  std::vector<AsId> sources_;
  /// sources_[source_index_[src]] == src, for the cache fast path.
  std::unordered_map<AsId, std::size_t> source_index_;
  EngineConfig config_;

  mutable std::shared_mutex state_mutex_;
  std::shared_ptr<const State> state_;
  /// Updated together with state_ under the exclusive lock.
  std::uint64_t epoch_ = 0;
  /// Serializes writers (rebase/prime); never held while readers wait.
  std::mutex rebase_mutex_;

  struct MemoEntry {
    std::uint64_t epoch = 0;
    std::shared_future<WhatIfResult> future;
  };
  mutable std::mutex memo_mutex_;
  mutable std::unordered_map<std::string, MemoEntry> memo_;
};

}  // namespace panagree::serve
