// serve::Server - the network front end of the query engine.
//
// One accept loop on a loopback TCP socket, one reader thread per
// connection, and a pool of worker threads draining a bounded request
// queue. Readers split the byte stream into newline-delimited request
// lines and enqueue them; when the queue is full they block (back-
// pressure on the socket, never unbounded memory). Workers hand each
// line to QueryEngine::handle_line and write the response back under the
// connection's write lock - responses carry the request id, so clients
// that pipeline match them by id rather than by stream order.
//
// stop() is a graceful drain: stop accepting, shut the read half of
// every connection, finish every request already queued, flush the
// responses, then join. The panagree-serve tool wires SIGTERM/SIGINT to
// exactly this, so an orchestrator's TERM never drops an accepted
// request.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "panagree/serve/query_engine.hpp"

namespace panagree::serve {

/// Socket-layer failure (bind, listen, accept loop setup).
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see port()).
  std::uint16_t port = 0;
  /// Worker threads draining the request queue.
  std::size_t worker_threads = 2;
  /// Bounded request queue; readers block when it is full.
  std::size_t max_queue = 1024;
};

class Server {
 public:
  /// `engine` must be primed and outlive the server.
  Server(const QueryEngine& engine, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept loop + workers. Throws
  /// ServeError if the socket cannot be set up.
  void start();

  /// The bound port (after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Graceful drain (see the header comment). Idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  /// Requests answered so far (including error responses).
  [[nodiscard]] std::size_t handled_requests() const {
    return handled_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;
  /// One live connection's reader thread; reaped by the accept loop once
  /// the client disconnects (done), joined latest at stop().
  struct ReaderSlot;
  struct WorkItem {
    std::shared_ptr<Connection> conn;
    std::string line;
    /// Reader-side enqueue timestamp (stage_now_ns clock): the queue
    /// stage of the request's stage clock starts here. 0 under
    /// PANAGREE_OBS_OFF.
    std::uint64_t enqueue_ns = 0;
  };

  void accept_loop();
  void reader_loop(ReaderSlot* slot);
  void worker_loop();
  void enqueue(WorkItem item);
  void reap_finished_readers();

  const QueryEngine* engine_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool running_ = false;

  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// Mutated only by the accept thread (under the mutex); stop() reads
  /// it after joining the accept thread.
  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<ReaderSlot>> slots_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::condition_variable space_cv_;
  std::deque<WorkItem> queue_;
  bool draining_ = false;

  std::atomic<std::size_t> handled_{0};
};

}  // namespace panagree::serve
