#include "panagree/serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace panagree::serve {

ClientConnection::ClientConnection(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw ClientError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string message = "cannot connect to 127.0.0.1:" +
                                std::to_string(port) + ": " +
                                std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw ClientError(message);
  }
}

ClientConnection::~ClientConnection() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void ClientConnection::send_line(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      throw ClientError("connection lost while sending");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::string ClientConnection::read_line() {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline + 1);
      buffer_.erase(0, newline + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return {};
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace panagree::serve
