#include "panagree/topology/compiled.hpp"

#include <algorithm>
#include <limits>

namespace panagree::topology {

CompiledTopology::CompiledTopology(const Graph& graph) : graph_(&graph) {
  const std::size_t n = graph.num_ases();
  util::require(2 * graph.num_links() <
                    std::numeric_limits<std::uint32_t>::max(),
                "CompiledTopology: too many links for 32-bit offsets");

  row_start_.assign(n + 1, 0);
  providers_end_.assign(n, 0);
  peers_end_.assign(n, 0);
  for (AsId as = 0; as < n; ++as) {
    const auto base = row_start_[as];
    const auto np = static_cast<std::uint32_t>(graph.providers(as).size());
    const auto ne = static_cast<std::uint32_t>(graph.peers(as).size());
    const auto nc = static_cast<std::uint32_t>(graph.customers(as).size());
    providers_end_[as] = base + np;
    peers_end_[as] = base + np + ne;
    row_start_[as + 1] = base + np + ne + nc;
  }
  entries_.resize(row_start_[n]);

  // Fill each role group from the link table (one pass; group-relative
  // cursors), then sort every group by neighbor id for binary lookup.
  std::vector<std::uint32_t> cursor(3 * n, 0);
  const auto emplace = [&](AsId at, std::size_t group, std::uint32_t begin,
                           AsId neighbor, NeighborRole role, LinkId link) {
    const std::uint32_t slot = begin + cursor[3 * at + group]++;
    entries_[slot] = Entry{neighbor, static_cast<std::uint32_t>(link), role};
  };
  const auto& links = graph.links();
  for (LinkId id = 0; id < links.size(); ++id) {
    const Link& l = links[id];
    if (l.type == LinkType::kProviderCustomer) {
      // a is the provider, b the customer.
      emplace(l.a, 2, peers_end_[l.a], l.b, NeighborRole::kCustomer, id);
      emplace(l.b, 0, row_start_[l.b], l.a, NeighborRole::kProvider, id);
    } else {
      emplace(l.a, 1, providers_end_[l.a], l.b, NeighborRole::kPeer, id);
      emplace(l.b, 1, providers_end_[l.b], l.a, NeighborRole::kPeer, id);
    }
  }

  const auto by_neighbor = [](const Entry& x, const Entry& y) {
    return x.neighbor < y.neighbor;
  };
  for (AsId as = 0; as < n; ++as) {
    std::sort(entries_.begin() + row_start_[as],
              entries_.begin() + providers_end_[as], by_neighbor);
    std::sort(entries_.begin() + providers_end_[as],
              entries_.begin() + peers_end_[as], by_neighbor);
    std::sort(entries_.begin() + peers_end_[as],
              entries_.begin() + row_start_[as + 1], by_neighbor);
  }
}

const CompiledTopology::Entry* CompiledTopology::find(AsId x, AsId y) const {
  check(x);
  // Short rows are scanned linearly (branch-predictable, one cache line);
  // long rows use a binary search per role group.
  constexpr std::size_t kLinearThreshold = 16;
  if (degree(x) <= kLinearThreshold) {
    for (const Entry& e : entries(x)) {
      if (e.neighbor == y) {
        return &e;
      }
    }
    return nullptr;
  }
  const auto search = [&](std::span<const Entry> group) -> const Entry* {
    const auto it = std::lower_bound(
        group.begin(), group.end(), y,
        [](const Entry& e, AsId id) { return e.neighbor < id; });
    return (it != group.end() && it->neighbor == y) ? &*it : nullptr;
  };
  if (const Entry* e = search(providers(x))) {
    return e;
  }
  if (const Entry* e = search(peers(x))) {
    return e;
  }
  return search(customers(x));
}

}  // namespace panagree::topology
