// Tests for the work-stealing parallel source driver: the StealRange
// transfer protocol never duplicates or drops an index under contention,
// cost-balanced seeding partitions exactly, and - the driver's contract -
// enumeration output is byte-identical at 1, 2, and 8 threads even on
// adversarially skewed workloads (one mega-degree source among thousands
// of leaves). Placement (NUMA model, pinning) is smoke-tested as
// best-effort: it may or may not take effect, it must never change
// results.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "panagree/paths/enumerator.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/paths/placement.hpp"
#include "panagree/paths/steal.hpp"
#include "panagree/topology/compiled.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/topology/graph.hpp"

namespace panagree::paths {
namespace {

using topology::AsId;
using topology::CompiledTopology;
using topology::Graph;

// ------------------------------------------------------------ StealRange

TEST(StealRange, OwnerClaimsEverythingWhenUnmolested) {
  detail::StealRange range;
  range.reset(0, 1000);
  std::vector<bool> seen(1000, false);
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  while (range.try_claim(begin, end)) {
    EXPECT_LT(begin, end);
    EXPECT_LE(end - begin, detail::StealRange::kMaxChunk);
    for (std::uint32_t i = begin; i < end; ++i) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  EXPECT_TRUE(
      std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
  EXPECT_EQ(range.remaining(), 0U);
}

TEST(StealRange, StealTakesBackHalfAndLeavesLastIndexToOwner) {
  detail::StealRange range;
  range.reset(10, 20);
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  ASSERT_TRUE(range.try_steal(begin, end));
  EXPECT_EQ(begin, 15U);
  EXPECT_EQ(end, 20U);
  EXPECT_EQ(range.remaining(), 5U);

  detail::StealRange nearly_dry;
  nearly_dry.reset(7, 8);  // one index left: the owner's, not stealable
  EXPECT_FALSE(nearly_dry.try_steal(begin, end));
  EXPECT_TRUE(nearly_dry.try_claim(begin, end));
  EXPECT_EQ(begin, 7U);
  EXPECT_EQ(end, 8U);
}

// The core lock-freedom property: under concurrent owner claims and
// thief steals, every index is handed out exactly once.
TEST(StealRange, ConcurrentClaimAndStealNeverOverlap) {
  constexpr std::uint32_t kCount = 100000;
  for (int round = 0; round < 5; ++round) {
    detail::StealRange range;
    range.reset(0, kCount);
    std::vector<std::atomic<std::uint32_t>> hits(kCount);
    for (auto& h : hits) {
      h.store(0, std::memory_order_relaxed);
    }
    const auto owner = [&] {
      std::uint32_t b = 0;
      std::uint32_t e = 0;
      while (range.try_claim(b, e)) {
        for (std::uint32_t i = b; i < e; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      }
    };
    const auto thief = [&] {
      std::uint32_t b = 0;
      std::uint32_t e = 0;
      // Steal and immediately consume the stolen slice; retry until the
      // victim is too dry to rob. The range only ever shrinks, so one
      // failed steal means this thief is done for good.
      while (range.try_steal(b, e)) {
        for (std::uint32_t i = b; i < e; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.emplace_back(owner);
    for (int t = 0; t < 3; ++t) {
      pool.emplace_back(thief);
    }
    for (auto& t : pool) {
      t.join();
    }
    for (std::uint32_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1U)
          << "index " << i << " handed out " << hits[i].load() << " times";
    }
  }
}

// ------------------------------------------------------ partition_by_cost

TEST(PartitionByCost, EqualSizesWithoutCosts) {
  const auto ranges = partition_by_cost({}, 10, 3);
  ASSERT_EQ(ranges.size(), 3U);
  EXPECT_EQ(ranges[0], (std::pair<std::uint32_t, std::uint32_t>{0, 4}));
  EXPECT_EQ(ranges[1], (std::pair<std::uint32_t, std::uint32_t>{4, 7}));
  EXPECT_EQ(ranges[2], (std::pair<std::uint32_t, std::uint32_t>{7, 10}));
}

TEST(PartitionByCost, CoversSpaceExactlyInOrder) {
  std::vector<std::uint64_t> costs(137);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    costs[i] = (i * 7919) % 101 + 1;
  }
  for (const std::size_t workers : {1U, 2U, 5U, 8U, 137U, 200U}) {
    const auto ranges = partition_by_cost(costs, costs.size(), workers);
    ASSERT_EQ(ranges.size(), workers);
    std::uint32_t expect_begin = 0;
    for (const auto& [begin, end] : ranges) {
      EXPECT_EQ(begin, expect_begin);
      EXPECT_LE(begin, end);
      expect_begin = end;
    }
    EXPECT_EQ(expect_begin, costs.size());
  }
}

TEST(PartitionByCost, DominantIndexGetsItsOwnRange) {
  // One index holding >99% of the total cost must not drag half the
  // space into its worker's seed range.
  std::vector<std::uint64_t> costs(1000, 1);
  costs[0] = 1000000;
  const auto ranges = partition_by_cost(costs, costs.size(), 4);
  ASSERT_EQ(ranges.size(), 4U);
  EXPECT_EQ(ranges[0].first, 0U);
  EXPECT_EQ(ranges[0].second, 1U);  // the mega index alone
  // The remaining workers share the 999 unit-cost indices roughly evenly.
  for (std::size_t w = 1; w < 4; ++w) {
    EXPECT_GT(ranges[w].second - ranges[w].first, 200U);
  }
}

TEST(PartitionByCost, MoreWorkersThanIndices) {
  const auto ranges = partition_by_cost({}, 2, 5);
  ASSERT_EQ(ranges.size(), 5U);
  std::size_t non_empty = 0;
  for (const auto& [begin, end] : ranges) {
    non_empty += begin < end ? 1 : 0;
  }
  EXPECT_EQ(non_empty, 2U);
  EXPECT_EQ(ranges.back().second, 2U);
}

// ------------------------------------------------------------ map_indices

/// An adversarially skewed per-index workload: index 0 costs ~10000x an
/// ordinary index. Results encode the index so any slot mixup is
/// detectable.
std::uint64_t skewed_work(std::size_t i) {
  const std::size_t spins = i == 0 ? 1000000 : 100;
  std::uint64_t acc = i;
  for (std::size_t s = 0; s < spins; ++s) {
    acc = acc * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return acc ^ i;
}

TEST(MapIndices, ByteIdenticalAcrossThreadCountsOnSkewedWork) {
  constexpr std::size_t kCount = 3000;
  std::vector<std::uint64_t> serial(kCount);
  for (std::size_t i = 0; i < kCount; ++i) {
    serial[i] = skewed_work(i);
  }
  std::vector<std::uint64_t> costs(kCount, 1);
  costs[0] = 10000;
  for (const std::size_t threads : {1U, 2U, 8U}) {
    const auto plain = map_indices(kCount, threads, skewed_work);
    EXPECT_EQ(plain, serial) << "threads=" << threads;

    MapOptions options;
    options.costs = costs;
    const auto seeded = map_indices(kCount, threads, skewed_work, options);
    EXPECT_EQ(seeded, serial) << "cost-seeded, threads=" << threads;

    const auto atomic = map_indices_atomic(kCount, threads, skewed_work);
    EXPECT_EQ(atomic, serial) << "atomic baseline, threads=" << threads;
  }
}

TEST(MapIndices, ExplicitMinParallelOverloadStillServesSmallCounts) {
  const auto fn = [](std::size_t i) { return i * 3 + 1; };
  const auto parallel = map_indices(8, 4, fn, /*min_parallel=*/2);
  const auto serial = map_indices(8, 4, fn);  // 8 < kMinParallelSources
  EXPECT_EQ(parallel, serial);
}

TEST(MapIndices, PropagatesFirstExceptionAfterDraining) {
  EXPECT_THROW((void)map_indices(5000, 8,
                                 [](std::size_t i) -> int {
                                   if (i == 4321) {
                                     throw std::runtime_error("boom");
                                   }
                                   return static_cast<int>(i);
                                 }),
               std::runtime_error);
}

TEST(MapIndices, PinnedExecutionIsByteIdentical) {
  const TopologyPlacement placement = TopologyPlacement::single_node(2);
  MapOptions options;
  options.exec.pin_threads = true;
  options.exec.placement = &placement;
  const auto pinned = map_indices(500, 4, skewed_work, options);
  const auto unpinned = map_indices(500, 4, skewed_work);
  EXPECT_EQ(pinned, unpinned);
}

// ----------------------------------------- skewed end-to-end enumeration

/// The adversarial shape from the issue: one mega-degree source among
/// thousands of leaves. The hub is a customer of every provider, so its
/// length-3 fan-out sweeps every provider's whole customer cone while a
/// leaf only sees its own provider's cone - a per-source workload (and
/// two-hop cost estimate) skewed by ~100x.
struct SkewedFixture {
  Graph graph;
  AsId hub = 0;
  AsId first_leaf = 0;

  SkewedFixture() {
    constexpr std::size_t kProviders = 100;
    constexpr std::size_t kLeavesPerProvider = 30;
    hub = graph.add_as("hub");
    std::vector<AsId> providers;
    for (std::size_t p = 0; p < kProviders; ++p) {
      const AsId provider = graph.add_as();
      graph.add_provider_customer(provider, hub);
      providers.push_back(provider);
      for (std::size_t c = 0; c < kLeavesPerProvider; ++c) {
        const AsId leaf = graph.add_as();
        graph.add_provider_customer(provider, leaf);
        if (first_leaf == 0) {
          first_leaf = leaf;
        }
      }
    }
    // A sprinkle of provider peerings so the walks take peer steps too.
    for (std::size_t p = 0; p + 1 < kProviders; p += 7) {
      graph.add_peering(providers[p], providers[p + 1]);
    }
  }
};

TEST(MapSources, SkewedEnumerationByteIdenticalAcrossThreads) {
  const SkewedFixture fixture;
  const CompiledTopology compiled(fixture.graph);

  std::vector<AsId> sources(fixture.graph.num_ases());
  std::iota(sources.begin(), sources.end(), AsId{0});

  const BasicPathEnumerator<CompiledTopology> enumerator(compiled);
  const auto enumerate = [&](AsId src) {
    std::vector<Path> out;
    enumerator.visit_paths(src, 3, ValleyFreeStep{}, [&](const Path& path) {
      out.push_back(path);
      return true;
    });
    return out;
  };

  const auto costs = two_hop_cost_estimates(compiled, sources);
  ASSERT_EQ(costs.size(), sources.size());
  // The hub's estimate must dwarf a leaf's (it sees every provider's
  // whole row; a leaf sees one).
  EXPECT_GT(costs[fixture.hub], 50 * costs[fixture.first_leaf]);

  std::vector<std::vector<Path>> serial(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    serial[i] = enumerate(sources[i]);
  }
  ASSERT_GT(serial[fixture.hub].size(), 1000U);  // the skew is real

  for (const std::size_t threads : {1U, 2U, 8U}) {
    MapOptions options;
    options.costs = costs;
    const auto parallel = map_sources(sources, threads, enumerate, options);
    ASSERT_EQ(parallel.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i], serial[i])
          << "source " << i << ", threads=" << threads;
    }
    // Uniform seeds (no cost estimates) must converge to the same bytes
    // through stealing alone.
    const auto unseeded = map_sources(sources, threads, enumerate);
    ASSERT_EQ(unseeded, serial) << "unseeded, threads=" << threads;
  }
}

// ------------------------------------------------------------- placement

TEST(Placement, ParseCpuListHandlesKernelShapes) {
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-2,8,10-11"),
            (std::vector<int>{0, 1, 2, 8, 10, 11}));
  EXPECT_EQ(parse_cpu_list("5"), (std::vector<int>{5}));
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_TRUE(parse_cpu_list("garbage").empty());
  EXPECT_EQ(parse_cpu_list("1,bad"), (std::vector<int>{1}));
  EXPECT_EQ(parse_cpu_list("3,1,2-3"), (std::vector<int>{1, 2, 3}));
}

TEST(Placement, SingleNodeModel) {
  const TopologyPlacement placement = TopologyPlacement::single_node(4);
  EXPECT_EQ(placement.num_nodes(), 1U);
  EXPECT_EQ(placement.num_cpus(), 4U);
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_EQ(placement.node_of_worker(w, 8), 0U);
  }
  EXPECT_FALSE(placement.describe().empty());
}

TEST(Placement, DetectedSystemIsSane) {
  const TopologyPlacement& system = TopologyPlacement::system();
  EXPECT_GE(system.num_nodes(), 1U);
  EXPECT_GE(system.num_cpus(), 1U);
  // Workers are dealt to nodes in contiguous non-decreasing blocks,
  // mirroring the driver's contiguous seed ranges.
  std::size_t prev = 0;
  for (std::size_t w = 0; w < 16; ++w) {
    const std::size_t node = system.node_of_worker(w, 16);
    EXPECT_LT(node, system.num_nodes());
    EXPECT_GE(node, prev);
    prev = node;
  }
}

TEST(Placement, BindingIsBestEffortAndNeverThrows) {
  const TopologyPlacement& system = TopologyPlacement::system();
  // May succeed or fail depending on the host; must not crash either way.
  (void)system.bind_worker(0, 2);
  (void)system.bind_current_thread(0);
  EXPECT_FALSE(system.bind_current_thread(system.num_nodes()));  // range
  int dummy = 0;
  (void)system.bind_memory(&dummy, sizeof(dummy), 0);
  EXPECT_FALSE(system.bind_memory(nullptr, 0, 0));
  const std::string summary = affinity_summary();
  EXPECT_EQ(summary.rfind("cpus=", 0), 0U) << summary;
}

TEST(Placement, BindTopologyIsNoOpOnSingleNode) {
  const auto generated = topology::generate_internet([] {
    topology::GeneratorParams params;
    params.num_ases = 60;
    params.tier1_count = 3;
    params.seed = 5;
    return params;
  }());
  const CompiledTopology compiled(generated.graph);
  const TopologyPlacement single = TopologyPlacement::single_node(4);
  EXPECT_FALSE(bind_topology_to_nodes(single, compiled));
}

// ---------------------------------------------------- two_hop estimates

TEST(TwoHopCostEstimates, CountsDepthTwoCandidatesExactly) {
  Graph graph;
  const AsId a = graph.add_as();  // provider of b and c
  const AsId b = graph.add_as();
  const AsId c = graph.add_as();
  const AsId d = graph.add_as();  // peer of b
  graph.add_provider_customer(a, b);
  graph.add_provider_customer(a, c);
  graph.add_peering(b, d);
  const CompiledTopology compiled(graph);
  const std::vector<AsId> sources = {a, b, c, d};
  const auto costs = two_hop_cost_estimates(compiled, sources);
  ASSERT_EQ(costs.size(), 4U);
  // cost = 1 + sum of neighbor degrees: deg(a)=2, deg(b)=2, deg(c)=1,
  // deg(d)=1.
  EXPECT_EQ(costs[0], 1U + 2 + 1);  // a: neighbors b, c
  EXPECT_EQ(costs[1], 1U + 2 + 1);  // b: neighbors a, d
  EXPECT_EQ(costs[2], 1U + 2);      // c: neighbor a
  EXPECT_EQ(costs[3], 1U + 2);      // d: neighbor b
}

}  // namespace
}  // namespace panagree::paths
