#include "panagree/bgp/gadgets.hpp"

namespace panagree::bgp {

SppInstance make_disagree() {
  SppInstance spp(3, /*origin=*/0);
  spp.set_permitted(1, {{1, 2, 0}, {1, 0}});
  spp.set_permitted(2, {{2, 1, 0}, {2, 0}});
  return spp;
}

SppInstance make_bad_gadget() {
  SppInstance spp(4, /*origin=*/0);
  spp.set_permitted(1, {{1, 2, 0}, {1, 0}});
  spp.set_permitted(2, {{2, 3, 0}, {2, 0}});
  spp.set_permitted(3, {{3, 1, 0}, {3, 0}});
  return spp;
}

SppInstance make_good_gadget() {
  SppInstance spp(4, /*origin=*/0);
  spp.set_permitted(1, {{1, 0}, {1, 2, 0}});
  spp.set_permitted(2, {{2, 0}, {2, 3, 0}});
  spp.set_permitted(3, {{3, 2, 0}, {3, 1, 0}});
  return spp;
}

SppInstance make_wedgie() {
  SppInstance spp(4, /*origin=*/0);
  spp.set_permitted(1, {{1, 0}});
  spp.set_permitted(2, {{2, 3, 1, 0}, {2, 1, 0}});
  spp.set_permitted(3, {{3, 2, 1, 0}, {3, 1, 0}});
  return spp;
}

SppInstance make_fig1_disagree(const topology::Fig1& t) {
  SppInstance spp(t.graph.num_ases(), /*origin=*/t.A);
  // B reaches its peer A directly.
  spp.set_permitted(t.B, {{t.B, t.A}});
  // D and E exchange their provider routes and prefer the peer-learned one.
  spp.set_permitted(t.D, {{t.D, t.E, t.B, t.A}, {t.D, t.A}});
  spp.set_permitted(t.E, {{t.E, t.D, t.A}, {t.E, t.B, t.A}});
  return spp;
}

SppInstance make_fig1_bad_gadget(const topology::Fig1& t) {
  SppInstance spp(t.graph.num_ases(), /*origin=*/t.A);
  spp.set_permitted(t.B, {{t.B, t.A}});
  // C gains routes via D, D via E, E via C - each preferring the
  // agreement-peer route over its own provider route. The E-C path uses the
  // peering the C-E agreement would create; it does not exist in the plain
  // Fig. 1 graph, which is fine at the SPP level (paths are explicit).
  spp.set_permitted(t.C, {{t.C, t.D, t.A}, {t.C, t.A}});
  spp.set_permitted(t.D, {{t.D, t.E, t.B, t.A}, {t.D, t.A}});
  spp.set_permitted(t.E, {{t.E, t.C, t.A}, {t.E, t.B, t.A}});
  return spp;
}

}  // namespace panagree::bgp
