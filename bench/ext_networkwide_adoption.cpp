// Extension experiment (the paper's §VIII future work: "designing and
// evaluating interconnection agreements that can achieve desirable goals of
// network operators, such as network utilization"):
//
// What happens when MAs are adopted *network-wide*? Every demand of a
// gravity traffic matrix is routed over its geodistance-best length-3 path,
// once with GRC paths only and once with all MA paths additionally
// available. We measure the system-level shifts: mean path geodistance
// (latency proxy), the volume share carried by peering vs. provider links
// (the revenue-relevant utilization shift), link utilization against
// degree-gravity capacities, and the aggregate transit fees saved.
#include <algorithm>
#include <iostream>
#include <unordered_map>

#include "bench_common.hpp"
#include "panagree/diversity/geodistance.hpp"
#include "panagree/diversity/length3.hpp"
#include "panagree/econ/business.hpp"
#include "panagree/paths/parallel.hpp"
#include "panagree/sim/flow_assignment.hpp"
#include "panagree/traffic/matrix.hpp"
#include "panagree/util/table.hpp"

namespace {

using namespace panagree;
using topology::AsId;

struct BestPath {
  std::vector<AsId> path;
  double geodistance_km = 0.0;
};

/// Per-source routing tables: destination -> geodistance-best length-3 path
/// under the GRC-only and all-MA path sets.
struct SourceRoutes {
  std::unordered_map<AsId, BestPath> grc;
  std::unordered_map<AsId, BestPath> ma;
};

}  // namespace

int main() {
  std::cout << "== Extension: network-wide MA adoption (§VIII outlook) ==\n";
  topology::GeneratorParams params = benchcfg::internet_params();
  params.num_ases = std::min<std::size_t>(params.num_ases, 4000);
  auto topo = topology::generate_internet(params);
  topology::assign_degree_gravity_capacities(topo.graph);
  const auto& g = topo.graph;
  std::cerr << "[bench] topology: " << g.num_ases() << " ASes, "
            << g.num_links() << " links\n";

  // Gravity demands (volume units per accounting period).
  util::Rng rng(99);
  traffic::GravityParams gravity;
  gravity.total_volume = 20000.0;
  gravity.sampled_pairs = 4000;
  const auto demands = traffic::generate_gravity_demands(g, gravity, rng);

  const diversity::Length3Analyzer analyzer(g);
  const diversity::GeodistanceModel geodesy(g, topo.world);

  // Per-source routing tables are independent: precompute them for every
  // distinct demand source over the parallel driver (deterministic merge).
  std::vector<AsId> demand_sources;
  demand_sources.reserve(demands.size());
  for (const auto& demand : demands) {
    demand_sources.push_back(demand.src);
  }
  std::sort(demand_sources.begin(), demand_sources.end());
  demand_sources.erase(
      std::unique(demand_sources.begin(), demand_sources.end()),
      demand_sources.end());

  auto tables = paths::map_sources(
      demand_sources, benchcfg::num_threads(), [&](AsId src) {
        SourceRoutes table;
        for (const auto& p : analyzer.grc_paths(src)) {
          const double km = geodesy.path_geodistance_km(p.src, p.mid, p.dst);
          auto& slot = table.grc[p.dst];
          if (slot.path.empty() || km < slot.geodistance_km) {
            slot = BestPath{{p.src, p.mid, p.dst}, km};
          }
        }
        table.ma = table.grc;  // GRC paths remain available under MAs
        for (const auto& p : analyzer.ma_paths(src)) {
          const double km = geodesy.path_geodistance_km(p.src, p.mid, p.dst);
          auto& slot = table.ma[p.dst];
          if (slot.path.empty() || km < slot.geodistance_km) {
            slot = BestPath{{p.src, p.mid, p.dst}, km};
          }
        }
        return table;
      });
  std::unordered_map<AsId, SourceRoutes> routes;
  routes.reserve(demand_sources.size());
  for (std::size_t i = 0; i < demand_sources.size(); ++i) {
    routes.emplace(demand_sources[i], std::move(tables[i]));
  }

  // Route every demand under both regimes.
  std::vector<sim::PathDemand> grc_flows, ma_flows;
  double grc_km_sum = 0.0, ma_km_sum = 0.0, routed_volume = 0.0;
  std::size_t routed = 0, switched = 0;
  for (const auto& demand : demands) {
    const SourceRoutes& table = routes.at(demand.src);
    const auto grc_it = table.grc.find(demand.dst);
    if (grc_it == table.grc.end()) {
      continue;  // not length-3-reachable under GRC: out of scope
    }
    const auto ma_it = table.ma.find(demand.dst);
    const BestPath& grc_best = grc_it->second;
    const BestPath& ma_best = ma_it->second;
    grc_flows.push_back({grc_best.path, demand.volume});
    ma_flows.push_back({ma_best.path, demand.volume});
    grc_km_sum += grc_best.geodistance_km * demand.volume;
    ma_km_sum += ma_best.geodistance_km * demand.volume;
    routed_volume += demand.volume;
    ++routed;
    if (ma_best.path != grc_best.path) {
      ++switched;
    }
  }

  const auto grc_result = sim::assign_flows(g, grc_flows);
  const auto ma_result = sim::assign_flows(g, ma_flows);
  const econ::Economy economy = econ::make_default_economy(g);

  const auto scenario_stats = [&](const sim::FlowAssignmentResult& r) {
    struct Stats {
      double peering_share;
      double max_util;
      std::size_t overloaded;
      double transit_fees;
    } s{};
    double peering = 0.0, total = 0.0;
    for (const auto& lu : r.links) {
      total += lu.volume;
      if (g.link(lu.link).type == topology::LinkType::kPeering) {
        peering += lu.volume;
      }
    }
    s.peering_share = total > 0.0 ? peering / total : 0.0;
    s.max_util = r.max_utilization;
    s.overloaded = r.overloaded_links;
    // Aggregate transit fees = sum of all provider-link charges.
    for (const auto& link : g.links()) {
      if (link.type == topology::LinkType::kProviderCustomer) {
        s.transit_fees += economy.link_pricing(link.a, link.b)(
            r.allocation.link_flow(link.a, link.b));
      }
    }
    return s;
  };
  const auto grc_stats = scenario_stats(grc_result);
  const auto ma_stats = scenario_stats(ma_result);

  std::cout << "routed demands: " << routed << " of " << demands.size()
            << " (volume " << routed_volume << "); demands switching to an "
            << "MA path: " << switched << "\n\n";

  util::Table table({"metric", "GRC only", "all MAs", "change"});
  const auto add = [&](const char* name, double a, double b, int precision) {
    std::string change;
    if (a != 0.0) {
      change = util::format_double(100.0 * (b - a) / a, 1) + "%";
    }
    table.add_row({name, util::format_double(a, precision),
                   util::format_double(b, precision), change});
  };
  add("volume-weighted mean geodistance (km)", grc_km_sum / routed_volume,
      ma_km_sum / routed_volume, 0);
  add("share of volume on peering links", grc_stats.peering_share,
      ma_stats.peering_share, 3);
  add("max link utilization", grc_stats.max_util, ma_stats.max_util, 3);
  add("overloaded links", static_cast<double>(grc_stats.overloaded),
      static_cast<double>(ma_stats.overloaded), 0);
  add("aggregate transit fees paid", grc_stats.transit_fees,
      ma_stats.transit_fees, 0);
  table.print(std::cout);
  table.print_csv(std::cout, "ext_adoption");

  std::cout << "\nReading: network-wide MA adoption moves traffic from paid "
               "provider links onto settlement-free peering, shortens "
               "volume-weighted paths, and cuts aggregate transit fees - "
               "the economic pressure behind the paper's adoption thesis. "
               "The fees forgone by providers are exactly what the "
               "mutuality/compensation structures of §IV redistribute.\n";
  return 0;
}
