#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "panagree/pan/beaconing.hpp"
#include "panagree/pan/forwarding.hpp"
#include "panagree/pan/mac.hpp"
#include "panagree/pan/path_construction.hpp"
#include "panagree/topology/examples.hpp"
#include "panagree/topology/generator.hpp"
#include "panagree/util/rng.hpp"

namespace panagree::pan {
namespace {

using topology::make_fig1;

// -------------------------------------------------------------------- MAC

TEST(SipHash, MatchesReferenceVectors) {
  // Official SipHash-2-4 test vectors: key = 00 01 ... 0f, input = first n
  // bytes of 00 01 02 ...
  const MacKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  std::vector<std::uint8_t> data;
  const std::vector<std::uint64_t> expected{
      0x726fdb47dd0e0e31ULL,  // n = 0
      0x74f839c593dc67fdULL,  // n = 1
      0x0d6c8009d9a94f5aULL,  // n = 2
      0x85676696d7fb7e2dULL,  // n = 3
  };
  for (std::size_t n = 0; n < expected.size(); ++n) {
    EXPECT_EQ(siphash24(key, data), expected[n]) << "length " << n;
    data.push_back(static_cast<std::uint8_t>(n));
  }
}

TEST(SipHash, KeySensitivity) {
  const MacKey k1{1, 2};
  const MacKey k2{1, 3};
  const std::vector<std::uint8_t> data{1, 2, 3, 4};
  EXPECT_NE(siphash24(k1, data), siphash24(k2, data));
}

TEST(SipHash, WordHelperMatchesByteEncoding) {
  const MacKey key{42, 43};
  const std::vector<std::uint8_t> bytes{1, 0, 0, 0, 0, 0, 0, 0,
                                        2, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(siphash24_words(key, {1, 2}), siphash24(key, bytes));
}

// --------------------------------------------------------------- KeyStore

TEST(KeyStore, DeterministicAndPerAsDistinct) {
  const KeyStore a(99, 10);
  const KeyStore b(99, 10);
  std::set<std::uint64_t> k0s;
  for (topology::AsId as = 0; as < 10; ++as) {
    EXPECT_EQ(a.key(as), b.key(as));
    k0s.insert(a.key(as).k0);
  }
  EXPECT_EQ(k0s.size(), 10u);
  EXPECT_THROW((void)a.key(10), util::PreconditionError);
}

// -------------------------------------------------------------- beaconing

TEST(Beaconing, CoreIsTheProviderFreeSet) {
  const auto t = make_fig1();
  const BeaconService beacons(t.graph);
  EXPECT_EQ(beacons.core_ases(), (std::vector<topology::AsId>{t.A, t.B}));
}

TEST(Beaconing, SegmentsEndAtOwnerAndStartAtCore) {
  auto t = make_fig1();
  BeaconService beacons(t.graph);
  beacons.run();
  for (topology::AsId as = 0; as < t.graph.num_ases(); ++as) {
    for (const PathSegment& seg : beacons.up_segments(as)) {
      EXPECT_EQ(seg.leaf_end(), as);
      EXPECT_TRUE(t.graph.providers(seg.core_end()).empty());
      // Consecutive segment hops are provider->customer links.
      for (std::size_t i = 0; i + 1 < seg.ases.size(); ++i) {
        EXPECT_TRUE(t.graph.is_provider_of(seg.ases[i], seg.ases[i + 1]));
      }
    }
  }
}

TEST(Beaconing, HReceivesItsUpSegment) {
  auto t = make_fig1();
  BeaconService beacons(t.graph);
  beacons.run();
  const auto& segs = beacons.up_segments(t.H);
  ASSERT_FALSE(segs.empty());
  EXPECT_EQ(segs.front().ases, (std::vector<topology::AsId>{t.A, t.D, t.H}));
}

TEST(Beaconing, RespectsBeaconBudget) {
  topology::GeneratorParams params;
  params.num_ases = 300;
  params.tier1_count = 4;
  params.seed = 5;
  const auto topo = topology::generate_internet(params);
  BeaconService beacons(topo.graph, {.beacons_per_as = 3});
  beacons.run();
  for (topology::AsId as = 0; as < topo.graph.num_ases(); ++as) {
    EXPECT_LE(beacons.up_segments(as).size(), 3u);
  }
}

TEST(Beaconing, EveryAsIsReachedInGeneratedTopology) {
  topology::GeneratorParams params;
  params.num_ases = 300;
  params.tier1_count = 4;
  params.seed = 6;
  const auto topo = topology::generate_internet(params);
  BeaconService beacons(topo.graph);
  beacons.run();
  for (topology::AsId as = 0; as < topo.graph.num_ases(); ++as) {
    EXPECT_FALSE(beacons.up_segments(as).empty()) << as;
  }
}

TEST(Beaconing, RejectsProviderCycles) {
  topology::Graph g;
  const auto a = g.add_as();
  const auto b = g.add_as();
  const auto c = g.add_as();
  g.add_provider_customer(a, b);
  g.add_provider_customer(b, c);
  g.add_provider_customer(c, a);
  EXPECT_THROW(BeaconService{g}, util::PreconditionError);
}

// ------------------------------------------------------------- forwarding

TEST(Forwarding, IssueAndForwardFollowsExactPath) {
  const auto t = make_fig1();
  const KeyStore keys(1, t.graph.num_ases());
  const ForwardingEngine engine(t.graph, keys);
  const std::vector<topology::AsId> path{t.H, t.D, t.E, t.I};
  const ForwardingPath fp = issue_path(keys, path);
  const ForwardResult r = engine.forward(fp);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.trace, path);
}

TEST(Forwarding, GrcViolatingPathForwardsLoopFree) {
  // The §II example: packets from D to A via path D-E-B-A would never be
  // sent back to D - the embedded path is followed exactly.
  const auto t = make_fig1();
  const KeyStore keys(2, t.graph.num_ases());
  const ForwardingEngine engine(t.graph, keys);
  const std::vector<topology::AsId> deba{t.D, t.E, t.B, t.A};
  const ForwardResult r = engine.forward(issue_path(keys, deba));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.trace, deba);
  std::set<topology::AsId> unique(r.trace.begin(), r.trace.end());
  EXPECT_EQ(unique.size(), r.trace.size());  // no AS visited twice
}

TEST(Forwarding, TamperedHopIsRejected) {
  const auto t = make_fig1();
  const KeyStore keys(3, t.graph.num_ases());
  const ForwardingEngine engine(t.graph, keys);
  ForwardingPath fp = issue_path(keys, {t.H, t.D, t.A});
  fp.hops[1].egress = t.E;  // divert mid-path
  const ForwardResult r = engine.forward(fp);
  EXPECT_FALSE(r.delivered);
  EXPECT_EQ(r.reason, DropReason::kInvalidMac);
}

TEST(Forwarding, ForgedMacIsRejected) {
  const auto t = make_fig1();
  const KeyStore keys(4, t.graph.num_ases());
  const ForwardingEngine engine(t.graph, keys);
  ForwardingPath fp = issue_path(keys, {t.H, t.D, t.A});
  fp.hops[2].mac ^= 1;
  EXPECT_EQ(engine.forward(fp).reason, DropReason::kInvalidMac);
}

TEST(Forwarding, SplicedHopsFromAnotherPathAreRejected) {
  const auto t = make_fig1();
  const KeyStore keys(5, t.graph.num_ases());
  const ForwardingEngine engine(t.graph, keys);
  const ForwardingPath p1 = issue_path(keys, {t.H, t.D, t.A});
  const ForwardingPath p2 = issue_path(keys, {t.I, t.E, t.B});
  ForwardingPath spliced;
  spliced.hops = {p1.hops[0], p1.hops[1], p2.hops[2]};
  EXPECT_FALSE(engine.forward(spliced).delivered);
}

TEST(Forwarding, NonSimplePathIsMalformed) {
  const auto t = make_fig1();
  const KeyStore keys(6, t.graph.num_ases());
  EXPECT_THROW((void)issue_path(keys, std::vector<topology::AsId>{t.H, t.D, t.H}),
               util::PreconditionError);
  // A hand-crafted repeated-AS header is rejected by the engine too.
  ForwardingPath fp = issue_path(keys, {t.H, t.D, t.A});
  ForwardingPath looped;
  looped.hops = {fp.hops[0], fp.hops[1], fp.hops[2], fp.hops[1]};
  const ForwardingEngine engine(t.graph, keys);
  EXPECT_EQ(engine.forward(looped).reason, DropReason::kMalformed);
}

// Loop-freedom as a property: any simple authorized path through a random
// topology is traversed exactly once per AS, whatever its shape.
class ForwardingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForwardingSweep, TraceEqualsEmbeddedSimplePath) {
  topology::GeneratorParams params;
  params.num_ases = 200;
  params.tier1_count = 4;
  params.seed = GetParam();
  const auto topo = topology::generate_internet(params);
  const KeyStore keys(GetParam(), topo.graph.num_ases());
  const ForwardingEngine engine(topo.graph, keys);
  util::Rng rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    // Random walk without revisits = a random simple path.
    std::vector<topology::AsId> path;
    std::set<topology::AsId> seen;
    topology::AsId cur =
        static_cast<topology::AsId>(rng.uniform_index(topo.graph.num_ases()));
    path.push_back(cur);
    seen.insert(cur);
    for (int hop = 0; hop < 6; ++hop) {
      const auto neighbors = topo.graph.neighbors(cur);
      std::vector<topology::AsId> fresh;
      for (const auto n : neighbors) {
        if (!seen.contains(n)) {
          fresh.push_back(n);
        }
      }
      if (fresh.empty()) {
        break;
      }
      cur = fresh[rng.uniform_index(fresh.size())];
      path.push_back(cur);
      seen.insert(cur);
    }
    if (path.size() < 2) {
      continue;
    }
    const ForwardResult r = engine.forward(issue_path(keys, path));
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.trace, path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForwardingSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------ path construction

TEST(PathConstruction, FindsGrcPathsFromSegments) {
  auto t = make_fig1();
  BeaconService beacons(t.graph);
  beacons.run();
  const PathConstructor constructor(t.graph, beacons);
  const auto paths = constructor.construct(t.H, t.I);
  // H-D-E-I via the D-E peering shortcut must be among the candidates.
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      std::vector<topology::AsId>({t.H, t.D, t.E, t.I})),
            paths.end());
  // The core route H-D-A-B-E-I as well.
  EXPECT_NE(std::find(paths.begin(), paths.end(),
                      std::vector<topology::AsId>({t.H, t.D, t.A, t.B, t.E, t.I})),
            paths.end());
  for (const auto& p : paths) {
    EXPECT_TRUE(is_simple_path(p));
    EXPECT_EQ(p.front(), t.H);
    EXPECT_EQ(p.back(), t.I);
  }
}

TEST(PathConstruction, AgreementCrossingUnlocksNewPath) {
  auto t = make_fig1();
  BeaconService beacons(t.graph);
  beacons.run();
  const PathConstructor constructor(t.graph, beacons);

  // Without the agreement, H cannot route to B via D-E (GRC violation).
  const std::vector<topology::AsId> hdeb{t.H, t.D, t.E, t.B};
  const auto before = constructor.construct(t.H, t.B);
  EXPECT_EQ(std::find(before.begin(), before.end(), hdeb), before.end());

  // Agreement a = [D(^{A}); E(^{B}, ->{F})]: E lets D reach B. H is in D's
  // customer cone, so the extended path H-D-E-B becomes constructible.
  CrossingRegistry crossings;
  crossings.add(Crossing{t.E, t.D, t.B, {t.D, t.H}});
  const auto after = constructor.construct(t.H, t.B, &crossings);
  EXPECT_NE(std::find(after.begin(), after.end(), hdeb), after.end());
}

TEST(PathConstruction, CrossingSourceRestrictionIsEnforced) {
  auto t = make_fig1();
  BeaconService beacons(t.graph);
  beacons.run();
  const PathConstructor constructor(t.graph, beacons);
  CrossingRegistry crossings;
  crossings.add(Crossing{t.E, t.D, t.B, {t.D}});  // D only, not its cone
  const auto paths = constructor.construct(t.H, t.B, &crossings);
  EXPECT_EQ(std::find(paths.begin(), paths.end(),
                      std::vector<topology::AsId>({t.H, t.D, t.E, t.B})),
            paths.end());
}

TEST(PathConstruction, CandidatesAreSortedShortestFirst) {
  auto t = make_fig1();
  BeaconService beacons(t.graph);
  beacons.run();
  const PathConstructor constructor(t.graph, beacons);
  const auto paths = constructor.construct(t.H, t.I);
  for (std::size_t i = 0; i + 1 < paths.size(); ++i) {
    EXPECT_LE(paths[i].size(), paths[i + 1].size());
  }
}

TEST(CrossingRegistry, AllowsAndRestricts) {
  CrossingRegistry registry;
  registry.add(Crossing{5, 3, 7, {3, 9}});
  EXPECT_TRUE(registry.allows(3, 5, 3, 7));
  EXPECT_TRUE(registry.allows(9, 5, 3, 7));
  EXPECT_FALSE(registry.allows(4, 5, 3, 7));
  EXPECT_FALSE(registry.allows(3, 5, 3, 8));
  registry.add(Crossing{5, 4, 7, {}});
  EXPECT_TRUE(registry.allows(1234, 5, 4, 7));  // unrestricted crossing
}

TEST(CrossingRegistry, RejectsIncompleteCrossings) {
  CrossingRegistry registry;
  EXPECT_THROW(registry.add(Crossing{}), util::PreconditionError);
  EXPECT_THROW(registry.add(Crossing{1, 2, 2, {}}), util::PreconditionError);
}

}  // namespace
}  // namespace panagree::pan
