// The pre-optimizer way to rank candidate deployments, kept as the shared
// speedup/correctness reference of BM_Optimizer_Exhaustive and
// tab_agreement_optimization's ablation (c): every candidate pays a full
// per-source enumeration over its overlay (no invalidation-ball caching),
// and the winner is the highest positive operator utility against the
// enumerated baseline. One definition, so the two benches can never
// diverge on what "exhaustive" means or which candidate is top.
#pragma once

#include <cstddef>
#include <vector>

#include "panagree/paths/parallel.hpp"
#include "panagree/scenario/metrics.hpp"
#include "panagree/scenario/sweep.hpp"

namespace panagree::benchcfg {

struct ExhaustiveRank {
  scenario::ScenarioMetrics baseline;
  /// candidates.size() when no candidate scores a positive utility.
  std::size_t best_candidate = 0;
  double best_utility = 0.0;
};

inline ExhaustiveRank exhaustive_rank(
    const topology::CompiledTopology& compiled,
    const std::vector<topology::AsId>& sources,
    const std::vector<scenario::Delta>& candidates,
    const scenario::MetricsAggregator& aggregator, std::size_t threads) {
  ExhaustiveRank out;
  const scenario::Overlay base_view(compiled);
  const auto baseline_results =
      paths::map_sources(sources, threads, [&](topology::AsId src) {
        return scenario::enumerate_length3(base_view, src);
      });
  out.baseline = aggregator.aggregate(base_view, sources, baseline_results);
  out.best_candidate = candidates.size();
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    scenario::Overlay overlay(compiled);
    overlay.apply(candidates[c]);
    const auto results =
        paths::map_sources(sources, threads, [&](topology::AsId src) {
          return scenario::enumerate_length3(overlay, src);
        });
    const double utility = scenario::operator_utility(scenario::subtract(
        aggregator.aggregate(overlay, sources, results), out.baseline));
    if (utility > out.best_utility) {
      out.best_utility = utility;
      out.best_candidate = c;
    }
  }
  return out;
}

}  // namespace panagree::benchcfg
