#include "panagree/sim/engine.hpp"

#include <utility>

namespace panagree::sim {

void Engine::schedule(SimTime delay, std::function<void()> action) {
  util::require(delay >= 0.0, "Engine::schedule: delay must be >= 0");
  schedule_at(now_ + delay, std::move(action));
}

void Engine::schedule_at(SimTime when, std::function<void()> action) {
  util::require(when >= now_, "Engine::schedule_at: cannot schedule in the past");
  util::require(static_cast<bool>(action), "Engine::schedule_at: null action");
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

bool Engine::step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns const&; the event must be copied out before
  // pop. The action is a shared-ownership-free functor, so moving via a
  // const_cast-free copy is acceptable here (actions are small).
  Event event = queue_.top();
  queue_.pop();
  now_ = event.when;
  event.action();
  return true;
}

std::size_t Engine::run(SimTime until) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    if (until >= 0.0 && queue_.top().when > until) {
      break;
    }
    step();
    ++executed;
  }
  if (until >= 0.0 && now_ < until) {
    now_ = until;
  }
  return executed;
}

}  // namespace panagree::sim
